"""Regenerate the scheduler golden file and the seed timing baseline.

``tests/golden/sched_golden.json`` pins (II, slots, MaxLive, C_delay)
for every scheduler on every paper kernel (the table2 synthetic SPECfp
populations at the CI ``--quick`` cap, the table3 DOACROSS loops — which
fig5/fig6 reuse — and the motivating example).  The golden-equivalence
tests in ``tests/test_engine_invariants.py`` diff the live schedulers
against this file, so any placement change — intended or not — shows up
as a review-able diff of this file, not a silent drift.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/regen_sched_golden.py            # golden
    PYTHONPATH=src python scripts/regen_sched_golden.py --timing \
        --timing-out benchmarks/baselines/bench_sched_seed.json   # baseline

``--timing`` measures cold TMS schedule wall-time per kernel on the
synthetic SPECfp population (same measurement ``benchmarks/bench_sched.py``
performs), for the engine-vs-seed comparison.  Timings are
machine-specific: regenerate the baseline on the machine you compare on.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: population cap matching the CI --quick runs; REPRO_FULL-style overrides
#: are deliberately not honoured — the golden file must be stable.
MAX_LOOPS = 4


def _kernels():
    """(benchmark, kernel-name, ddg, resources, arch) for every golden
    kernel."""
    from repro.config import ArchConfig
    from repro.experiments.validate import suite_loops
    from repro.graph import build_ddg
    from repro.machine import LatencyModel, ResourceModel
    from repro.workloads.motivating import motivating_ddg, motivating_machine

    arch = ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    latency = LatencyModel.for_arch(arch)
    out = []
    for benchmark, loop in suite_loops(("table2", "table3"), MAX_LOOPS):
        out.append((benchmark, loop.name, build_ddg(loop, latency),
                    resources, arch))
    out.append(("motivating", "motivating", motivating_ddg(),
                motivating_machine(), arch))
    return out


def capture_golden() -> dict:
    """Schedule every golden kernel with every scheduler; return the
    golden dict."""
    from repro.costmodel.exectime import achieved_c_delay
    from repro.sched import (max_live, schedule_ims, schedule_sms,
                             schedule_tms)

    rows = []
    for benchmark, name, ddg, resources, arch in _kernels():
        for alg, build in (
                ("SMS", lambda: schedule_sms(ddg, resources)),
                ("IMS", lambda: schedule_ims(ddg, resources)),
                ("TMS", lambda: schedule_tms(ddg, resources, arch))):
            sched = build()
            row = {
                "benchmark": benchmark,
                "kernel": name,
                "alg": alg,
                "ii": sched.ii,
                "slots": dict(sorted(sched.slots.items())),
                "max_live": max_live(sched),
                "c_delay": achieved_c_delay(sched, arch),
            }
            if alg == "TMS":
                row["c_delay_threshold"] = sched.meta["c_delay_threshold"]
                row["objective_f"] = sched.meta["objective_f"]
                row["p_m"] = sched.meta["p_m"]
            rows.append(row)
    return {"max_loops": MAX_LOOPS, "rows": rows}


def time_tms_cold(repeats: int = 3) -> dict:
    """Best-of-``repeats`` cold TMS schedule time per synthetic-SPECfp
    kernel (fresh scheduler per run; no session cache involved)."""
    from repro.config import ArchConfig
    from repro.experiments.validate import suite_loops
    from repro.graph import build_ddg
    from repro.machine import LatencyModel, ResourceModel
    from repro.sched.tms import ThreadSensitiveScheduler

    arch = ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    latency = LatencyModel.for_arch(arch)
    per_kernel = {}
    for _benchmark, loop in suite_loops(("table2",), MAX_LOOPS):
        ddg = build_ddg(loop, latency)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            ThreadSensitiveScheduler(ddg, resources, arch).schedule()
            best = min(best, time.perf_counter() - start)
        per_kernel[loop.name] = best
    return {
        "max_loops": MAX_LOOPS,
        "repeats": repeats,
        "total_seconds": sum(per_kernel.values()),
        "per_kernel_seconds": per_kernel,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out",
                        default=REPO / "tests" / "golden" /
                        "sched_golden.json")
    parser.add_argument("--timing", action="store_true",
                        help="also capture the cold-TMS timing baseline")
    parser.add_argument("--timing-out",
                        default=REPO / "benchmarks" / "baselines" /
                        "bench_sched_seed.json")
    parser.add_argument("--skip-golden", action="store_true")
    args = parser.parse_args()

    if not args.skip_golden:
        golden = capture_golden()
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
        print(f"[golden: {len(golden['rows'])} rows -> {out}]")
    if args.timing:
        timing = time_tms_cold()
        tout = Path(args.timing_out)
        tout.parent.mkdir(parents=True, exist_ok=True)
        tout.write_text(json.dumps(timing, indent=2, sort_keys=True) + "\n")
        print(f"[timing: {timing['total_seconds']:.3f}s total over "
              f"{len(timing['per_kernel_seconds'])} kernels -> {tout}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
