"""Regenerate the simulator golden file and the sim timing baseline.

``tests/golden/sim_golden.json`` pins :meth:`SimStats.to_dict` for the
SMS and TMS schedules of every paper kernel (table2 synthetic SPECfp at
the CI ``--quick`` cap plus the table3 DOACROSS loops) at a fixed
iteration count and seed.  The stats are captured through the
**reference event loop** (``SimConfig(exact=True)``), so the golden
test — which simulates through the default vectorised/fast-forward
path — doubles as a committed differential oracle: any fidelity drift
in the fast path shows up as a review-able diff of this file, never as
silent corruption.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/regen_sim_golden.py              # golden
    PYTHONPATH=src python scripts/regen_sim_golden.py --timing \
        --timing-out benchmarks/baselines/bench_sim_seed.json      # baseline

``--timing`` measures exact-loop simulation wall-time per kernel (the
measurement ``benchmarks/bench_sim.py`` compares its fast-path runs
against).  Timings are machine-specific: regenerate the baseline on the
machine you compare on.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: population cap matching the CI --quick runs; REPRO_FULL-style overrides
#: are deliberately not honoured — the golden file must be stable.
MAX_LOOPS = 4

#: enough iterations that every steady kernel fast-forwards, small enough
#: that the exact reference capture stays fast.
ITERATIONS = 2000
SEED = 0xACE5


def _pipelined_kernels():
    """(benchmark, kernel, alg, pipelined, arch) for every golden kernel."""
    from repro.config import ArchConfig
    from repro.experiments.validate import suite_loops
    from repro.graph import build_ddg
    from repro.machine import LatencyModel, ResourceModel
    from repro.sched import run_postpass, schedule_sms, schedule_tms

    arch = ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    latency = LatencyModel.for_arch(arch)
    out = []
    for benchmark, loop in suite_loops(("table2", "table3"), MAX_LOOPS):
        ddg = build_ddg(loop, latency)
        for alg, sched in (("SMS", schedule_sms(ddg, resources)),
                           ("TMS", schedule_tms(ddg, resources, arch))):
            out.append((benchmark, loop.name, alg,
                        run_postpass(sched, arch), arch))
    return out


def capture_golden() -> dict:
    """Simulate every golden kernel through the reference loop; return
    the golden dict."""
    from repro.config import SimConfig
    from repro.spmt import simulate

    rows = []
    for benchmark, name, alg, pipelined, arch in _pipelined_kernels():
        stats = simulate(pipelined, arch,
                         SimConfig(iterations=ITERATIONS, seed=SEED,
                                   exact=True))
        row = {"benchmark": benchmark, "kernel": name, "alg": alg}
        row.update(stats.to_dict())
        rows.append(row)
    return {"max_loops": MAX_LOOPS, "iterations": ITERATIONS, "seed": SEED,
            "rows": rows}


def time_exact_sim(iterations: int = 20000, repeats: int = 3) -> dict:
    """Best-of-``repeats`` reference-loop simulation time per kernel.

    This is the baseline ``benchmarks/bench_sim.py`` divides by to report
    the fast path's speedup, so it must be captured with the same
    iteration count the benchmark simulates.
    """
    from repro.config import SimConfig
    from repro.spmt.sim import SpMTSimulator

    per_kernel = {}
    for _b, name, alg, pipelined, arch in _pipelined_kernels():
        sim = SimConfig(iterations=iterations, seed=SEED, exact=True)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            SpMTSimulator(pipelined, arch, sim).run()
            best = min(best, time.perf_counter() - start)
        per_kernel[f"{name}/{alg}"] = best
    return {
        "max_loops": MAX_LOOPS,
        "iterations": iterations,
        "repeats": repeats,
        "mode": "exact",
        "total_seconds": sum(per_kernel.values()),
        "per_kernel_seconds": per_kernel,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out",
                        default=REPO / "tests" / "golden" /
                        "sim_golden.json")
    parser.add_argument("--timing", action="store_true",
                        help="also capture the exact-loop timing baseline")
    parser.add_argument("--timing-out",
                        default=REPO / "benchmarks" / "baselines" /
                        "bench_sim_seed.json")
    parser.add_argument("--skip-golden", action="store_true")
    args = parser.parse_args()

    if not args.skip_golden:
        golden = capture_golden()
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
        print(f"[golden: {len(golden['rows'])} rows -> {out}]")
    if args.timing:
        timing = time_exact_sim()
        tout = Path(args.timing_out)
        tout.parent.mkdir(parents=True, exist_ok=True)
        tout.write_text(json.dumps(timing, indent=2, sort_keys=True) + "\n")
        print(f"[timing: {timing['total_seconds']:.3f}s total over "
              f"{len(timing['per_kernel_seconds'])} kernels -> {tout}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
