#!/usr/bin/env python3
"""Quickstart: the paper's motivating example, end to end.

Builds the Figure-1 loop, schedules it with both SMS and TMS, prints the
schedules and their synchronisation profiles, and simulates both kernels on
the quad-core SpMT machine — reproducing the paper's Section 4.1 story:
SMS's lifetime-minimal placement turns the ``n6 -> n0`` dependence into an
11-cycle inter-thread synchronisation delay; TMS places ``n6`` next to the
consumer's row instead and collapses the delay to ~4 cycles.

Run:  python examples/quickstart.py
"""

from repro.config import ArchConfig, SimConfig
from repro.costmodel import achieved_c_delay, sync_delay
from repro.graph import compute_mii, rec_mii, res_mii
from repro.sched import run_postpass, schedule_sms, schedule_tms
from repro.spmt import simulate, simulate_sequential
from repro.workloads import motivating_ddg, motivating_loop, motivating_machine


def main() -> None:
    arch = ArchConfig.paper_default()
    loop = motivating_loop()
    ddg = motivating_ddg()
    machine = motivating_machine()

    print(loop.listing())
    print()
    print(f"ResII = {res_mii(ddg, machine)}, RecII = {rec_mii(ddg)}, "
          f"MII = {compute_mii(ddg, machine)}   (paper: 4, 8, 8)")
    print()

    sms = schedule_sms(ddg, machine)
    tms = schedule_tms(ddg, machine, arch)
    for label, sched in (("SMS", sms), ("TMS", tms)):
        print(sched.kernel_listing())
        for e in sched.inter_iteration_register_deps():
            delay = sync_delay(sched, e, arch.reg_comm_latency)
            print(f"  sync({e.src}, {e.dst}) = {delay:.1f}")
        print(f"  C_delay = {achieved_c_delay(sched, arch):.1f}")
        print()

    n = 2000
    t_seq = simulate_sequential(ddg, machine, n)
    print(f"single-threaded: {t_seq.total_cycles / n:6.2f} cycles/iteration")
    # Figure 2 compares the kernels on a TWO-core SpMT machine; the paper's
    # evaluation machine has four.
    for ncore in (2, 4):
        machine_arch = arch.with_cores(ncore)
        cfg = SimConfig(iterations=n)
        t_sms = simulate(run_postpass(sms, machine_arch), machine_arch, cfg)
        t_tms = simulate(run_postpass(tms, machine_arch), machine_arch, cfg)
        print(f"{ncore} cores: SMS {t_sms.cycles_per_iteration:5.2f} cyc/iter, "
              f"TMS {t_tms.cycles_per_iteration:5.2f} cyc/iter  ->  "
              f"TMS speedup {t_sms.total_cycles / t_tms.total_cycles:.2f}x")


if __name__ == "__main__":
    main()
