#!/usr/bin/env python3
"""Semantic verification demo: pipelined execution == sequential execution.

Modulo scheduling rearranges a loop across iterations aggressively; this
example shows the library's end-to-end correctness check in action.  It
schedules each Table-3 DOACROSS loop with SMS and TMS, replays the
schedule as real register dataflow (with modulo-variable-expansion
register rotation), and compares the final machine state against the
sequential interpreter.  It then deliberately corrupts a schedule to show
the checker catching the violation.

Run:  python examples/verify_schedules.py
"""

from repro.config import ArchConfig
from repro.errors import SimulationError
from repro.graph import build_ddg
from repro.machine import LatencyModel, ResourceModel
from repro.sched import Schedule, schedule_sms, schedule_tms
from repro.sched.pipeline_exec import check_equivalence
from repro.workloads import DOACROSS_LOOPS


def main() -> None:
    arch = ArchConfig.paper_default()
    resources = ResourceModel.default()
    latency = LatencyModel.for_arch(arch)

    for sl in DOACROSS_LOOPS:
        ddg = build_ddg(sl.loop, latency)
        for name, sched in (("SMS", schedule_sms(ddg, resources)),
                            ("TMS", schedule_tms(ddg, resources, arch))):
            check_equivalence(sl.loop, sched, iterations=24)
            print(f"{sl.loop.name:16s} {name}: II={sched.ii:3d}  "
                  f"equivalent over 24 iterations  OK")

    # now break one schedule on purpose
    sl = DOACROSS_LOOPS[0]
    ddg = build_ddg(sl.loop, latency)
    good = schedule_sms(ddg, resources)
    slots = dict(good.slots)
    victim = max(slots, key=lambda n: slots[n])
    slots[victim] = 0  # yank the last instruction to cycle 0
    try:
        bogus = Schedule(ddg, good.ii, slots)
        check_equivalence(sl.loop, bogus, iterations=24)
    except SimulationError as exc:
        print(f"\ncorrupted schedule rejected as expected:\n  {exc}")


if __name__ == "__main__":
    main()
