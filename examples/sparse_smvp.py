#!/usr/bin/env python3
"""Parallelising a DOACROSS sparse matrix-vector kernel (the equake story).

This is the scenario the paper's introduction motivates: a loop that a
DOALL paralleliser must give up on — every iteration may read what the
previous iteration scattered (``w[col]`` updates through indirect
indices) — but that TMS turns into fine-grain speculative threads.

The example shows the full compiler flow a user would run on their own
loop:

1. write the kernel in the textual DSL;
2. *profile* it with the reference interpreter to estimate memory
   dependence probabilities (the paper's train-input run);
3. build the DDG against the profile and schedule with SMS and TMS;
4. simulate on the SpMT machine and compare against single-threaded code.

Run:  python examples/sparse_smvp.py
"""

from repro.config import ArchConfig, SimConfig
from repro.costmodel import achieved_c_delay
from repro.graph import build_ddg
from repro.ir import parse_loop
from repro.machine import LatencyModel, ResourceModel
from repro.sched import run_postpass, schedule_sms, schedule_tms
from repro.spmt import simulate, simulate_sequential
from repro.workloads import profile_memory_dependences

KERNEL = """
loop smvp
array VAL 256
array COL 256
array V   256
array W   256
livein sum 0.0
livein row 5.0
n0: colf = load COL[row]
n1: col  = fmul colf, 170.0
n2: a    = load VAL[i]
n3: v    = load V[col]
n4: av   = fmul a, v
n5: sum  = fadd sum, av
n6: w    = load W[col]
n7: wa   = fmul av, 0.5
n8: wn   = fadd w, wa
n9: store W[col], wn
n10: b   = load VAL[i+1]
n11: bv  = fmul b, v
n12: s2  = fadd bv, wa
n13: store V[i+7], s2
n14: row = iadd row, 1
"""


def main() -> None:
    arch = ArchConfig.paper_default()
    resources = ResourceModel.default()
    latency = LatencyModel.for_arch(arch)

    loop = parse_loop(KERNEL)
    print(loop.listing())

    # --- profile (train run) -------------------------------------------------
    probs = profile_memory_dependences(loop, iterations=512)
    print("\nprofiled memory dependences (p >= 1e-4):")
    for (prod, cons, d), p in sorted(probs.items()):
        print(f"  {prod} -> {cons} at distance {d}: p = {p:.4f}")

    # --- compile --------------------------------------------------------------
    ddg = build_ddg(loop, latency, probabilities=probs,
                    default_irregular_probability=0.002)
    sms = schedule_sms(ddg, resources)
    tms = schedule_tms(ddg, resources, arch)
    print(f"\nSMS: II={sms.ii}, C_delay={achieved_c_delay(sms, arch):.1f}")
    print(f"TMS: II={tms.ii}, C_delay={achieved_c_delay(tms, arch):.1f} "
          f"(threshold {tms.meta['c_delay_threshold']}, "
          f"P_M={tms.meta['p_m']:.4f})")

    # --- simulate (different seed from the profile run) -----------------------
    n = 2000
    cfg = SimConfig(iterations=n, seed=0xBEEF)
    seq = simulate_sequential(ddg, resources, n)
    s_sms = simulate(run_postpass(sms, arch), arch, cfg)
    s_tms = simulate(run_postpass(tms, arch), arch, cfg)
    print(f"\nsingle-threaded: {seq.total_cycles / n:6.2f} cyc/iter")
    print(f"SMS/SpMT:        {s_sms.cycles_per_iteration:6.2f} cyc/iter   "
          f"misspec {100 * s_sms.misspec_frequency:.2f}%")
    print(f"TMS/SpMT:        {s_tms.cycles_per_iteration:6.2f} cyc/iter   "
          f"misspec {100 * s_tms.misspec_frequency:.2f}%")
    print(f"\nTMS speedup over single-threaded: "
          f"{seq.total_cycles / s_tms.total_cycles:.2f}x")
    print(f"TMS speedup over SMS:             "
          f"{s_sms.total_cycles / s_tms.total_cycles:.2f}x")


if __name__ == "__main__":
    main()
