#!/usr/bin/env python3
"""Trading communication for parallelism by varying thread granularity.

The paper's future work (Section 6): "incorporating loop unrolling into
TMS to allow us to tradeoff between communication and parallelism by
varying thread granularities."  This example implements it: unroll a
fine-grain DOACROSS loop by 1/2/4, TMS-schedule each version, and watch
SEND/RECV traffic per original iteration fall while II (and eventually
per-iteration cost) rises — the sweet spot is where amortised
communication beats the coarser speculation.

It also prints the emitted SpMT thread program for the best granularity,
showing the SPAWN / SEND / RECV / COPY pseudo-ops the post-pass inserts.

Run:  python examples/thread_granularity.py
"""

from repro.config import ArchConfig, SimConfig
from repro.graph import build_ddg
from repro.ir import unroll_loop
from repro.machine import LatencyModel, ResourceModel
from repro.sched import generate_thread_program, run_postpass, schedule_tms
from repro.spmt import simulate
from repro.workloads import selected_loops


def main() -> None:
    arch = ArchConfig.paper_default()
    resources = ResourceModel.default()
    latency = LatencyModel.for_arch(arch)
    base = selected_loops("art")[2].loop  # art_winner, 16 instructions

    print(f"{'factor':>6} {'instr':>6} {'TMS II':>7} {'pairs/orig-iter':>16} "
          f"{'cyc/orig-iter':>14}")
    results = {}
    for factor in (1, 2, 4):
        loop = unroll_loop(base, factor)
        ddg = build_ddg(loop, latency)
        tms = schedule_tms(ddg, resources, arch)
        pipelined = run_postpass(tms, arch)
        stats = simulate(pipelined, arch, SimConfig(iterations=1024 // factor))
        cpi = stats.cycles_per_iteration / factor
        pairs = pipelined.comm.pairs_per_iteration / factor
        results[factor] = (pipelined, cpi)
        print(f"{factor:>6} {len(loop):>6} {tms.ii:>7} {pairs:>16.2f} "
              f"{cpi:>14.2f}")

    best = min(results, key=lambda f: results[f][1])
    print(f"\nbest granularity: {best} original iteration(s) per thread\n")
    print(generate_thread_program(results[best][0]).listing())


if __name__ == "__main__":
    main()
