#!/usr/bin/env python3
"""A gallery of classic loop kernels through the whole pipeline.

Compiles every kernel in ``repro.workloads.kernels`` — DOALL stencils,
reductions, scans, indirect scatters, pointer chases — with SMS and TMS
and simulates them on the quad-core SpMT machine next to the
single-threaded baseline.  The table shows where speculative
multithreading pays (DOACROSS loops with rare conflicts), where plain
software pipelining is already enough (DOALL), and where nothing helps
(serial pointer chasing).

Run:  python examples/kernel_gallery.py
"""

from repro.config import ArchConfig, SimConfig
from repro.graph import build_ddg, rec_mii
from repro.machine import LatencyModel, ResourceModel
from repro.sched import run_postpass, schedule_sms, schedule_tms
from repro.spmt import simulate, simulate_sequential
from repro.workloads import KERNEL_NAMES, kernel_by_name


def main() -> None:
    arch = ArchConfig.paper_default()
    resources = ResourceModel.default()
    latency = LatencyModel.for_arch(arch)
    n = 1000

    print(f"{'kernel':<14} {'#in':>4} {'RecII':>5} {'TMS II':>6} "
          f"{'single':>7} {'SMS':>6} {'TMS':>6} {'TMSvs1T':>8}")
    for name in KERNEL_NAMES:
        loop = kernel_by_name(name)
        ddg = build_ddg(loop, latency)
        sms = schedule_sms(ddg, resources)
        tms = schedule_tms(ddg, resources, arch)
        cfg = SimConfig(iterations=n)
        seq = simulate_sequential(ddg, resources, n).total_cycles / n
        s_sms = simulate(run_postpass(sms, arch), arch, cfg)
        s_tms = simulate(run_postpass(tms, arch), arch, cfg)
        print(f"{name:<14} {len(loop):>4} {rec_mii(ddg):>5} {tms.ii:>6} "
              f"{seq:>7.2f} {s_sms.cycles_per_iteration:>6.2f} "
              f"{s_tms.cycles_per_iteration:>6.2f} "
              f"{seq / s_tms.cycles_per_iteration:>7.2f}x")


if __name__ == "__main__":
    main()
