#!/usr/bin/env python3
"""If-conversion: making a branchy loop modulo-schedulable.

The paper's evaluation notes that GCC considers "loops whose branches can
be converted by compare and move instructions" as modulo-scheduling
candidates.  This example writes a branchy loop (conditional clamp and a
conditional accumulation into memory), if-converts it with
``GuardedLoopBuilder`` into straight-line SELECT form, verifies the
lowering against the branchy reference semantics, and runs the converted
loop through TMS and the SpMT simulator.

Run:  python examples/predicated_loop.py
"""

import numpy as np

from repro.config import ArchConfig, SimConfig
from repro.graph import build_ddg
from repro.ir import run_sequential
from repro.ir.ifconvert import GuardedLoopBuilder
from repro.ir.opcode import Opcode
from repro.machine import LatencyModel, ResourceModel
from repro.sched import run_postpass, schedule_tms
from repro.sched.pipeline_exec import check_equivalence
from repro.spmt import simulate, simulate_sequential


def build() -> GuardedLoopBuilder:
    gb = GuardedLoopBuilder(
        "clamp_acc", arrays={"X": 128, "A": 128},
        live_ins={"th": 1.0, "gain": 1.5})
    gb.load("l0", "x", "X")
    gb.op("c0", Opcode.CMPLT, "big", "th", "x")     # big = x > th
    gb.op("d0", Opcode.FMUL, "scaled", "x", "gain")
    with gb.when("big"):                            # only for big elements:
        gb.op("u0", Opcode.FADD, "boost", "scaled", 0.25)
        gb.store("s0", "A", "boost")                #   conditional scatter
    return gb


def main() -> None:
    gb = build()
    loop = gb.lower()
    print("if-converted loop:")
    print(loop.listing())

    # prove the lowering equals the branchy semantics
    n = 32
    init = {"X": np.linspace(0.0, 2.0, 128), "A": np.zeros(128)}
    _regs, ref_arrays = gb.reference_run(n, array_init=init)
    got = run_sequential(loop, n, array_init=init)
    assert np.allclose(ref_arrays["A"], got.arrays["A"])
    print("\nlowering == branchy reference over 32 iterations: OK")

    # ...and through the whole pipeline
    arch = ArchConfig.paper_default()
    resources = ResourceModel.default()
    ddg = build_ddg(loop, LatencyModel.for_arch(arch))
    tms = schedule_tms(ddg, resources, arch)
    check_equivalence(loop, tms, iterations=24)
    stats = simulate(run_postpass(tms, arch), arch, SimConfig(iterations=1000))
    seq = simulate_sequential(ddg, resources, 1000)
    print(f"TMS: II={tms.ii}, {stats.cycles_per_iteration:.2f} cyc/iter "
          f"on 4 cores vs {seq.total_cycles / 1000:.2f} single-threaded "
          f"({seq.total_cycles / stats.total_cycles:.2f}x)")
    print("(this loop is DOALL after conversion — an ideal out-of-order "
          "core already pipelines it,\n so SpMT overheads don't pay here; "
          "see examples/kernel_gallery.py for where they do)")


if __name__ == "__main__":
    main()
