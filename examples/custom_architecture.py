#!/usr/bin/env python3
"""Exploring the machine-design space for one loop.

TMS's cost model makes the chosen (II, C_delay) trade-off a function of
the machine: more cores push the objective toward smaller C_delay; a
slower operand network raises the floor under every synchronised
dependence.  This example compiles one stencil-with-recurrence loop for a
grid of machines and prints how the schedule and its simulated throughput
move.

Run:  python examples/custom_architecture.py
"""

from repro.config import ArchConfig, SimConfig
from repro.costmodel import achieved_c_delay
from repro.graph import build_ddg
from repro.ir import parse_loop
from repro.machine import LatencyModel, ResourceModel
from repro.sched import run_postpass, schedule_tms
from repro.spmt import simulate

KERNEL = """
loop stencil
array A 256
array B 256
livein acc 0.0
livein k 7.0
n0: a0 = load A[i]
n1: a1 = load A[i+1]
n2: s  = fadd a0, a1
n3: m  = fmul s, 0.5
n4: store B[i], m
n5: acc = fadd acc, m
n6: w  = load B[k] !alias n4:1:0.002
n7: t  = fmul w, 1.1
n8: store A[i+4], t
n9: k  = iadd k, 3
"""


def main() -> None:
    loop = parse_loop(KERNEL)
    print(loop.listing(), "\n")
    print(f"{'cores':>5} {'C_reg_com':>9} {'TMS II':>7} {'C_delay':>8} "
          f"{'cyc/iter':>9}")
    for ncore in (2, 4, 8):
        for comm in (1, 3, 6):
            arch = ArchConfig(ncore=ncore, reg_comm_latency=comm)
            resources = ResourceModel.default(arch.issue_width)
            ddg = build_ddg(loop, LatencyModel.for_arch(arch))
            tms = schedule_tms(ddg, resources, arch)
            stats = simulate(run_postpass(tms, arch), arch,
                             SimConfig(iterations=1000))
            print(f"{ncore:>5} {comm:>9} {tms.ii:>7} "
                  f"{achieved_c_delay(tms, arch):>8.1f} "
                  f"{stats.cycles_per_iteration:>9.2f}")


if __name__ == "__main__":
    main()
