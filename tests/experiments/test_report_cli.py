"""``tms-experiments report``: rendering and the perf-regression gate."""

from __future__ import annotations

import argparse
import json

from repro.experiments.report_cli import (
    EXIT_REGRESSION,
    add_report_arguments,
    check_regressions,
    extract_bench_metrics,
    run_report_command,
)
from repro.experiments.runner import main
from repro.obs.ledger import LEDGER_FILENAME, append_run_record


def parse(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser()
    add_report_arguments(parser)
    return parser.parse_args(argv)


BENCH_SCHED_SHAPE = {
    "total_seconds": 2.0,
    "per_kernel_seconds": {"art_loop0": 1.2, "art_loop1": 0.8},
    "repeats": 1,
}

PYTEST_BENCHMARK_SHAPE = {
    "benchmarks": [
        {"name": "test_table1", "stats": {"mean": 0.5, "rounds": 3}},
        {"name": "test_table2", "stats": {"mean": 0.25}},
        "not-a-dict",
        {"name": "no_stats"},
    ],
}


class TestExtraction:
    def test_bench_sched_shape(self):
        metrics = extract_bench_metrics(BENCH_SCHED_SHAPE, "bench-sched")
        assert metrics == {"bench-sched.total_seconds": 2.0}

    def test_pytest_benchmark_shape(self):
        metrics = extract_bench_metrics(PYTEST_BENCHMARK_SHAPE, "t1")
        assert metrics == {"t1.test_table1.mean_seconds": 0.5,
                           "t1.test_table2.mean_seconds": 0.25}

    def test_unknown_shape_yields_nothing(self):
        assert extract_bench_metrics({"hello": "world"}, "x") == {}


class TestCheckMath:
    def test_threshold_boundary(self):
        rows = check_regressions({"m": 1.10}, {"m": 1.0}, threshold=0.10)
        assert rows[0]["regressed"] is False  # exactly at the limit
        rows = check_regressions({"m": 1.11}, {"m": 1.0}, threshold=0.10)
        assert rows[0]["regressed"] is True

    def test_improvement_never_regresses(self):
        rows = check_regressions({"m": 0.5}, {"m": 1.0}, threshold=0.0)
        assert rows[0]["ratio"] == 0.5
        assert not rows[0]["regressed"]

    def test_only_shared_metrics_compared(self):
        rows = check_regressions({"a": 1.0, "b": 1.0}, {"b": 1.0, "c": 1.0},
                                 threshold=0.1)
        assert [r["metric"] for r in rows] == ["b"]

    def test_zero_baseline_handled(self):
        rows = check_regressions({"m": 0.1}, {"m": 0.0}, threshold=0.1)
        assert rows[0]["ratio"] == float("inf")
        assert rows[0]["regressed"]


class TestRunReportCommand:
    def _write_pair(self, tmp_path, factor: float):
        """A current bench JSON scaled ``factor``x over its baseline."""
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(BENCH_SCHED_SHAPE))
        scaled = dict(BENCH_SCHED_SHAPE,
                      total_seconds=BENCH_SCHED_SHAPE["total_seconds"]
                      * factor)
        current = tmp_path / "bench-sched.json"
        current.write_text(json.dumps(scaled))
        return current, baseline

    def test_clean_check_exits_zero(self, tmp_path, capsys):
        current, baseline = self._write_pair(tmp_path, factor=1.05)
        code = run_report_command(parse(
            ["--bench", str(current), "--against", str(baseline),
             "--check", "--threshold", "0.10"]))
        assert code == 0
        captured = capsys.readouterr()
        assert "ok" in captured.out
        assert "metrics within 10%" in captured.err

    def test_synthetic_regression_exits_typed_code(self, tmp_path, capsys):
        current, baseline = self._write_pair(tmp_path, factor=1.20)
        code = run_report_command(parse(
            ["--bench", str(current), "--against", str(baseline),
             "--check", "--threshold", "0.10"]))
        assert code == EXIT_REGRESSION == 3
        captured = capsys.readouterr()
        assert "**REGRESSED**" in captured.out
        assert "REGRESSION:" in captured.err
        assert "bench-sched.total_seconds" in captured.err

    def test_no_check_reports_without_gating(self, tmp_path, capsys):
        current, baseline = self._write_pair(tmp_path, factor=2.0)
        code = run_report_command(parse(
            ["--bench", str(current), "--against", str(baseline)]))
        assert code == 0  # regression shown but not gated
        assert "**REGRESSED**" in capsys.readouterr().out

    def test_against_count_mismatch_is_usage_error(self, tmp_path, capsys):
        current, baseline = self._write_pair(tmp_path, factor=1.0)
        code = run_report_command(parse(
            ["--bench", str(current), "--bench", str(baseline),
             "--against", str(baseline)]))
        assert code == 1
        assert "pair them positionally" in capsys.readouterr().err

    def test_unreadable_bench_is_an_error(self, tmp_path, capsys):
        code = run_report_command(parse(
            ["--bench", str(tmp_path / "absent.json")]))
        assert code == 1
        assert "cannot read bench JSON" in capsys.readouterr().err

    def test_baseline_resolved_from_baselines_dir(self, tmp_path):
        basedir = tmp_path / "baselines"
        basedir.mkdir()
        (basedir / "bench-sched_seed.json").write_text(
            json.dumps(BENCH_SCHED_SHAPE))
        current = tmp_path / "bench-sched.json"
        current.write_text(json.dumps(
            dict(BENCH_SCHED_SHAPE, total_seconds=3.0)))
        code = run_report_command(parse(
            ["--bench", str(current), "--baselines", str(basedir),
             "--check", "--threshold", "0.10"]))
        assert code == EXIT_REGRESSION

    def test_markdown_and_html_outputs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        append_run_record("compile", ["--stats"], duration_seconds=0.5)
        current, baseline = self._write_pair(tmp_path, factor=1.0)
        md = tmp_path / "out" / "report.md"
        dashboard = tmp_path / "out" / "dash.html"
        code = run_report_command(parse(
            ["--bench", str(current), "--against", str(baseline),
             "--markdown", str(md), "--html", str(dashboard)]))
        assert code == 0
        text = md.read_text()
        assert "# repro perf & run report" in text
        assert "| compile " in text  # the ledger row made it in
        page = dashboard.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page  # self-contained, no JS
        assert "bench-sched.total_seconds" in page

    def test_corrupt_ledger_lines_reported_not_fatal(self, tmp_path,
                                                     capsys):
        ledger = tmp_path / LEDGER_FILENAME
        append_run_record("validate", [], directory=tmp_path)
        with open(ledger, "a", encoding="utf-8") as fh:
            fh.write("garbage line\n")
        code = run_report_command(parse(["--ledger", str(ledger)]))
        assert code == 0
        assert "1 corrupt lines skipped" in capsys.readouterr().out


class TestCliWiring:
    def test_report_subcommand_reachable_from_main(self, tmp_path, capsys,
                                                   monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        bench = tmp_path / "b.json"
        bench.write_text(json.dumps(BENCH_SCHED_SHAPE))
        code = main(["report", "--bench", str(bench),
                     "--against", str(bench), "--check"])
        assert code == 0
        assert "Run ledger" in capsys.readouterr().out
