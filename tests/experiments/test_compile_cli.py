"""The 'tms-experiments compile' flow."""

import json

import pytest

from repro.experiments.compile_cli import compile_report, render_compile_report
from repro.experiments.runner import main

SRC = """
loop dotacc
array X 128
array Y 128
livein s 0.0
livein p 3.0
n0: x = load X[i]
n1: y = load Y[p]
n2: m = fmul x, y
n3: s = fadd s, m
n4: store Y[i+5], m
n5: p = iadd p, 2
"""


@pytest.fixture(scope="module")
def report():
    return compile_report(SRC, iterations=200, profile_iterations=128)


def test_report_structure(report):
    assert report["loop"] == "dotacc"
    assert report["instructions"] == 6
    assert set(report["algorithms"]) == {"sms", "tms"}
    for alg in report["algorithms"].values():
        assert alg["ii"] >= 1
        assert alg["simulated_cycles_per_iteration"] > 0
        assert "SPAWN" in alg["thread_program"]


def test_report_is_json_serialisable(report):
    text = json.dumps(report)
    assert "dotacc" in text


def test_tms_cdelay_not_worse(report):
    assert report["algorithms"]["tms"]["c_delay"] <= \
        report["algorithms"]["sms"]["c_delay"] + 1e-9


def test_render(report):
    text = render_compile_report(report)
    assert "TMS speedup over SMS" in text and "thread program" in text


def test_unroll_option():
    r = compile_report(SRC, iterations=100, unroll=2, profile_iterations=64)
    assert r["instructions"] == 12


def test_cli_end_to_end(tmp_path, capsys):
    src_file = tmp_path / "loop.dsl"
    src_file.write_text(SRC)
    json_file = tmp_path / "out.json"
    assert main(["compile", str(src_file), "--iterations", "100",
                 "--json", str(json_file)]) == 0
    out = capsys.readouterr().out
    assert "TMS speedup over SMS" in out
    data = json.loads(json_file.read_text())
    assert data["loop"] == "dotacc"
