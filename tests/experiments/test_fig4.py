"""Figure 4 harness."""

import pytest

from repro.experiments import render_fig4, run_fig4, run_table2
from repro.experiments.fig4 import amdahl


def test_amdahl():
    assert amdahl(0.5, 2.0) == pytest.approx(1 / 0.75)
    assert amdahl(1.0, 2.0) == pytest.approx(2.0)
    assert amdahl(0.0, 10.0) == pytest.approx(1.0)
    assert amdahl(0.5, 0.0) == 1.0


@pytest.fixture(scope="module")
def rows():
    t2 = run_table2(max_loops=2, benchmarks=["swim", "art"])
    return run_fig4(iterations=150, table2_rows=t2)


def test_speedups_positive(rows):
    for r in rows:
        assert r.loop_speedup > 0.9, r.benchmark
        assert len(r.per_loop) == 2


def test_program_composition(rows):
    for r in rows:
        if r.loop_speedup > 1:
            assert 1.0 <= r.program_speedup <= r.loop_speedup


def test_render(rows):
    text = render_fig4(rows)
    assert "AVERAGE" in text and "+28.0%" in text
