"""Table 3 harness."""

import pytest

from repro.experiments import render_table3, run_table3


@pytest.fixture(scope="module")
def rows():
    return run_table3()


def test_four_benchmarks(rows):
    assert {r.benchmark for r in rows} == {"art", "equake", "lucas", "fma3d"}
    by = {r.benchmark: r for r in rows}
    assert by["art"].n_loops == 4
    assert by["equake"].n_loops == 1


def test_coverage_column(rows):
    by = {r.benchmark: r for r in rows}
    assert by["equake"].coverage == pytest.approx(0.585)


def test_lucas_cdelay_near_mii(rows):
    by = {r.benchmark: r for r in rows}
    lucas = by["lucas"]
    assert lucas.tms_cdelay >= lucas.avg_mii  # recurrence-bound


def test_others_cdelay_small(rows):
    by = {r.benchmark: r for r in rows}
    for name in ("equake", "fma3d"):
        assert by[name].tms_cdelay <= 10, name


def test_render(rows):
    text = render_table3(rows)
    assert "58.5%" in text and "(paper)" in text
