"""Section 5.2 speculation ablation."""

import pytest

from repro.experiments import run_speculation, render_speculation


@pytest.fixture(scope="module")
def rows():
    return run_speculation(iterations=400, benchmarks=["equake", "fma3d"])


def test_speculation_helps(rows):
    for r in rows:
        assert r.speedup_with_spec > r.speedup_without_spec, r.loop


def test_gain_reduction_positive(rows):
    for r in rows:
        assert r.gain_reduction > 0.0


def test_misspec_frequency_below_paper_bound(rows):
    for r in rows:
        assert r.misspec_frequency < 0.001  # paper: < 0.1%


def test_render(rows):
    assert "equake" in render_speculation(rows)
