"""Ablation sweeps (restricted to the small art loops for speed)."""

import pytest

from repro.experiments import run_comm_latency_sweep, run_core_sweep, run_pmax_sweep
from repro.experiments.ablation import run_scheduler_comparison

BENCH = ["art"]


def test_pmax_sweep_monotone_misspec():
    points = run_pmax_sweep(p_values=(0.0, 1.0), iterations=200,
                            benchmarks=BENCH)
    assert points[0].misspec_frequency <= points[1].misspec_frequency + 1e-9


def test_comm_latency_sweep():
    rows = run_comm_latency_sweep(latencies=(1, 6), iterations=200,
                                  benchmarks=BENCH)
    assert rows[0]["avg_c_delay"] <= rows[1]["avg_c_delay"]


def test_core_sweep():
    rows = run_core_sweep(cores=(2, 8), iterations=200, benchmarks=BENCH)
    assert rows[0]["ncore"] == 2 and rows[1]["ncore"] == 8
    assert rows[1]["avg_cycles_per_iteration"] <= \
        rows[0]["avg_cycles_per_iteration"] + 1e-9


def test_scheduler_comparison():
    rows = run_scheduler_comparison(iterations=200, benchmarks=BENCH)
    for row in rows:
        assert row["tms_cdelay"] <= row["sms_cdelay"] + 1e-9
        assert row["ims_ii"] > 0
