"""Loop-nest strategy crossover."""

import pytest

from repro.config import ArchConfig
from repro.experiments.nest import render_nest_crossover, run_nest_crossover
from repro.spmt.nest import loop_entry_overhead


@pytest.fixture(scope="module")
def points():
    return run_nest_crossover(inner_trips=(4, 64), benchmarks=["equake"])


def test_amortisation_improves_with_trip(points):
    by_trip = {p.inner_trip: p for p in points}
    assert by_trip[64].inner_tms_cpi < by_trip[4].inner_tms_cpi


def test_outer_doall_is_a_bound(points):
    for p in points:
        assert p.outer_parallel_cpi <= p.single_cpi + 1e-9


def test_tms_wins_at_large_trips(points):
    big = next(p for p in points if p.inner_trip == 64)
    assert big.winner == "inner-tms"
    assert big.tms_speedup > 1.0


def test_entry_overhead_components(arch):
    from repro.machine import ResourceModel
    from repro.sched import run_postpass, schedule_tms
    from repro.workloads import motivating_ddg, motivating_machine
    sched = schedule_tms(motivating_ddg(), motivating_machine(), arch)
    pipelined = run_postpass(sched, arch)
    overhead = loop_entry_overhead(pipelined, arch)
    assert overhead >= (arch.ncore - 1) * arch.reg_comm_latency


def test_render(points):
    text = render_nest_crossover(points)
    assert "outer-DOALL" in text and "equake" in text
