"""Table formatting."""

from repro.experiments.report import format_table, pct, ratio


def test_alignment():
    text = format_table(["A", "Bee"], [[1, 2.5], ["xx", 3]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "A" in lines[1] and "Bee" in lines[1]
    assert len({len(l) for l in lines[1:]}) <= 2


def test_pct():
    assert pct(0.283) == "+28.3%"
    assert pct(-0.05) == "-5.0%"


def test_ratio():
    assert ratio(4, 2) == 2
    assert ratio(1, 0) == 0
