"""Compile-and-simulate pipeline."""

import pytest

from repro.experiments.pipeline import compile_loop, simulate_baselines, simulate_loop
from repro.machine import ResourceModel


def test_compile_loop_from_loop(fig1_loop, fig1_machine, fig1_latency, arch):
    compiled = compile_loop(fig1_loop, arch, fig1_machine,
                            latency=fig1_latency)
    assert compiled.mii == 8
    assert compiled.sms.ii == 8
    assert compiled.tms.c_delay <= compiled.sms.c_delay
    assert compiled.n_scc >= 4


def test_compile_loop_from_ddg(fig1_ddg, fig1_machine, arch):
    compiled = compile_loop(fig1_ddg, arch, fig1_machine)
    assert compiled.name == "motivating"
    assert compiled.n_inst == 9


def test_gaps(fig1_ddg, fig1_machine, arch):
    compiled = compile_loop(fig1_ddg, arch, fig1_machine)
    assert compiled.tlp_gap_tms == pytest.approx(
        compiled.tms.ii - compiled.tms.c_delay)


def test_simulate_loop_deterministic(fig1_ddg, fig1_machine, arch):
    compiled = compile_loop(fig1_ddg, arch, fig1_machine)
    a = simulate_loop(compiled.tms, arch, iterations=200, seed=3)
    b = simulate_loop(compiled.tms, arch, iterations=200, seed=3)
    assert a.total_cycles == b.total_cycles


def test_baselines(fig1_ddg, fig1_machine, arch):
    compiled = compile_loop(fig1_ddg, arch, fig1_machine)
    base = simulate_baselines(compiled, arch, fig1_machine, 100)
    assert base["sequential"].total_cycles > 0
    assert base["sms_single_core"].total_cycles > 0
