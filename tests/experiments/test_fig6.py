"""Figure 6 harness."""

import pytest

from repro.experiments import run_fig6, run_table3


@pytest.fixture(scope="module")
def rows():
    t3 = run_table3()
    return run_fig6(iterations=400, table3_rows=t3)


def test_stall_reductions(rows):
    by = {r.benchmark: r for r in rows}
    # >50% reduction for art/equake/fma3d; lucas least impressive
    for name in ("art", "equake", "fma3d"):
        assert by[name].stall_reduction > 0.5, name
    assert by["lucas"].stall_reduction < min(
        by[n].stall_reduction for n in ("art", "equake", "fma3d"))


def test_comm_overhead_reduced(rows):
    for r in rows:
        assert r.comm_reduction > 0.0, r.benchmark


def test_lucas_pays_extra_pairs(rows):
    by = {r.benchmark: r for r in rows}
    assert by["lucas"].extra_pairs_per_iteration > 0


def test_render(rows):
    from repro.experiments import render_fig6
    assert "lucas" in render_fig6(rows)
