"""CLI entry point."""

from repro.experiments.runner import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Architecture simulated" in out


def test_quick_table3(capsys):
    assert main(["table3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "DOACROSS" in out
