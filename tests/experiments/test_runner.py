"""CLI entry point."""

import json

from repro.experiments.runner import main
from repro.obs.report import validate_report_dict


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Architecture simulated" in out


def test_quick_table3(capsys):
    assert main(["table3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "DOACROSS" in out


def test_stats_flag_dumps_metrics(capsys):
    assert main(["table3", "--quick", "--stats"]) == 0
    captured = capsys.readouterr()
    assert "[metrics]" in captured.err
    assert "sim.runs" in captured.err
    assert "[cache:" in captured.err
    # the report stream itself stays clean for diffing
    assert "[metrics]" not in captured.out


def test_trace_flag_writes_exports(tmp_path, capsys):
    from repro.session import reset_session
    reset_session()  # a warm cache would skip the traced compiles/sims
    prefix = tmp_path / "run"
    assert main(["table3", "--quick", "--trace", str(prefix)]) == 0
    captured = capsys.readouterr()
    assert "events ->" in captured.err
    jsonl = (tmp_path / "run.jsonl").read_text().splitlines()
    assert jsonl and all(json.loads(line) for line in jsonl)
    chrome = json.loads((tmp_path / "run.trace.json").read_text())
    assert chrome["traceEvents"]
    assert any(r["ph"] == "M" for r in chrome["traceEvents"])


def test_validate_subcommand(tmp_path, capsys):
    out_json = tmp_path / "report.json"
    assert main(["validate", "--suite", "table3", "--iterations", "100",
                 "--out", str(out_json)]) == 0
    captured = capsys.readouterr()
    assert "MAPE (overall" in captured.out
    data = json.loads(out_json.read_text())
    validate_report_dict(data)
    assert data["summary"]["n_rows"] > 0


def test_cli_table2_accepts_seed(capsys):
    assert main(["table2", "--quick", "--seed", "9"]) == 0
    assert "swim" in capsys.readouterr().out
