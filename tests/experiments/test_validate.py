"""Cost-model-vs-simulator validation harness."""

import json

import pytest

from repro.config import ArchConfig, SchedulerConfig
from repro.experiments.validate import run_validate, write_report_json
from repro.obs.report import validate_report_dict


@pytest.fixture(scope="module")
def table3_report():
    return run_validate(ArchConfig.paper_default(), SchedulerConfig(),
                        suites=("table3",), iterations=100, seed=42)


def test_rows_cover_suite(table3_report):
    from repro.workloads.doacross import DOACROSS_LOOPS
    # one row per (kernel, algorithm); compiles may soft-fail but the
    # Table 3 suite is known-good
    assert len(table3_report.rows) == 2 * len(DOACROSS_LOOPS)
    assert {r.algorithm for r in table3_report.rows} == {"sms", "tms"}


def test_rows_are_consistent(table3_report):
    for row in table3_report.rows:
        assert row.ii >= 1
        assert row.predicted_cycles > 0
        assert row.simulated_cycles > 0
        assert 0.0 <= row.p_m <= 1.0
        assert row.error_cycles == pytest.approx(
            row.simulated_cycles - row.predicted_cycles)


def test_report_matches_golden_schema(table3_report):
    validate_report_dict(table3_report.to_dict())


def test_written_json_round_trips_schema(table3_report, tmp_path):
    path = tmp_path / "report.json"
    write_report_json(table3_report, path)
    data = json.loads(path.read_text())
    validate_report_dict(data)
    assert data["summary"]["n_rows"] == len(table3_report.rows)
    assert data["summary"]["mape"] == pytest.approx(table3_report.mape)


def test_render_summarises(table3_report):
    text = table3_report.render()
    assert "MAPE (overall" in text
    assert "Worst kernel:" in text


def test_deterministic(table3_report):
    again = run_validate(ArchConfig.paper_default(), SchedulerConfig(),
                         suites=("table3",), iterations=100, seed=42)
    assert again.to_dict() == table3_report.to_dict()


def test_unknown_suite_rejected():
    with pytest.raises(ValueError, match="unknown suite"):
        run_validate(suites=("table9",))
