"""Table 2 harness (small populations for speed)."""

import pytest

from repro.experiments import render_table2, run_table2


@pytest.fixture(scope="module")
def rows():
    return run_table2(max_loops=2, benchmarks=["swim", "art", "wupwise"])


def test_row_per_benchmark(rows):
    assert {r.benchmark for r in rows} == {"swim", "art", "wupwise"}
    for r in rows:
        assert r.n_loops == 2


def test_tms_trades_ii_for_cdelay(rows):
    # the paper's headline Table-2 shape
    for r in rows:
        assert r.tms_ii >= r.sms_ii - 1e-9, r.benchmark
        assert r.tms_cdelay <= r.sms_cdelay + 1e-9, r.benchmark


def test_tlp_gap_widens(rows):
    for r in rows:
        assert r.tlp_gap_tms >= r.tlp_gap_sms - 1e-9, r.benchmark


def test_render(rows):
    text = render_table2(rows)
    assert "swim" in text and "(paper)" in text
    text2 = render_table2(rows, with_paper=False)
    assert "(paper)" not in text2


def test_workload_seed_threads_through_run_table2():
    from repro.session import Session
    from repro.session.fingerprint import fingerprint
    from repro.workloads import benchmark_by_name, generate_benchmark_loops

    kw = dict(max_loops=1, benchmarks=["art"])
    # the harness accepts the seed and stays deterministic for it
    reseeded = run_table2(session=Session(), workload_seed=9, **kw)
    again = run_table2(session=Session(), workload_seed=9, **kw)
    assert [(r.sms_ii, r.sms_cdelay, r.tms_ii) for r in reseeded] \
        == [(r.sms_ii, r.sms_cdelay, r.tms_ii) for r in again]
    # and the seed really reaches the population generator
    spec = benchmark_by_name("art")
    assert fingerprint(generate_benchmark_loops(spec, max_loops=1,
                                                seed=9)[0]) \
        != fingerprint(generate_benchmark_loops(spec, max_loops=1)[0])
