"""Figure 5 harness."""

import pytest

from repro.experiments import run_fig5, render_fig5, run_table3


@pytest.fixture(scope="module")
def rows():
    t3 = run_table3()
    return run_fig5(iterations=300, table3_rows=t3)


def test_seven_rows(rows):
    assert len(rows) == 7


def test_all_loops_speed_up(rows):
    for r in rows:
        assert r.loop_speedup > 1.0, r.loop


def test_equake_has_largest_program_speedup(rows):
    best = max(rows, key=lambda r: r.program_speedup)
    assert best.benchmark == "equake"


def test_lucas_smallest(rows):
    worst = min(rows, key=lambda r: r.loop_speedup)
    assert worst.benchmark == "lucas"


def test_render(rows):
    text = render_fig5(rows)
    assert "+73.0%" in text  # the paper's average, for comparison
