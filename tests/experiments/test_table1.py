from repro.config import ArchConfig
from repro.experiments import table1


def test_contains_paper_values():
    text = table1()
    for fragment in ("3 cycles", "2 cycles", "15 cycles", "80 cycles"):
        assert fragment in text


def test_respects_overrides():
    text = table1(ArchConfig(ncore=8, reg_comm_latency=1))
    assert "8" in text and "1 cycles" in text
