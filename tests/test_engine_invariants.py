"""Engine invariants and golden schedule equivalence.

Two safety nets around the unified placement engine:

* **Invariants** — every schedule any policy produces respects the
  machine (per-row FU capacity and issue width, reservation occupancy)
  and the dependence algebra (``slot(dst) >= slot(src) + delay -
  II*distance``), and TMS schedules honour their own acceptance
  conditions (achieved ``C_delay`` within threshold, kernel
  misspeculation within ``P_max``) unless they record the SMS fallback.

* **Golden equivalence** — the engine's schedules are byte-identical
  (II, slots, MaxLive, C_delay) to ``tests/golden/sched_golden.json``,
  captured from the pre-engine implementation.  Regenerate only for an
  *intended* placement change, via ``scripts/regen_sched_golden.py``,
  and review the diff.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.config import ArchConfig
from repro.costmodel.exectime import achieved_c_delay
from repro.machine import LatencyModel, ResourceModel

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden" / "sched_golden.json"


def _load_regen_module():
    spec = importlib.util.spec_from_file_location(
        "regen_sched_golden", REPO / "scripts" / "regen_sched_golden.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _invariant_kernels():
    from repro.experiments.validate import suite_loops
    from repro.graph import build_ddg
    from repro.workloads.motivating import motivating_ddg, motivating_machine

    arch = ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    latency = LatencyModel.for_arch(arch)
    out = [(build_ddg(loop, latency), resources, arch)
           for _b, loop in suite_loops(("table3",), 4)]
    out.append((motivating_ddg(), motivating_machine(), arch))
    return out


def _check_machine_invariants(sched, resources):
    """Per-row FU usage within capacity x occupancy; issue width held;
    every dependence satisfied mod II."""
    ii = sched.ii
    issue_use = [0] * ii
    fu_use: dict[tuple[int, object], int] = {}
    for node in sched.ddg.nodes:
        cycle = sched.slot(node.name)
        issue_use[cycle % ii] += 1
        spec = resources.spec(node.opcode.fu_class)
        for k in range(min(spec.occupancy, ii)):
            key = ((cycle + k) % ii, node.opcode.fu_class)
            fu_use[key] = fu_use.get(key, 0) + 1
    for row in range(ii):
        assert issue_use[row] <= resources.issue_width, \
            f"{sched.ddg.name}: issue row {row} over width"
    for (row, fu), used in fu_use.items():
        assert used <= resources.spec(fu).count, \
            f"{sched.ddg.name}: {fu} over capacity in row {row}"
    for e in sched.ddg.edges:
        assert sched.slot(e.dst) >= \
            sched.slot(e.src) + e.delay - ii * e.distance, \
            f"{sched.ddg.name}: dependence {e} violated"


@pytest.mark.parametrize("alg", ["sms", "ims", "tms", "seq"])
def test_every_policy_respects_machine_and_dependences(alg):
    from repro.sched import schedule_with_policy

    for ddg, resources, arch in _invariant_kernels():
        sched = schedule_with_policy(ddg, resources, arch, alg)
        assert sched.meta["policy"] == alg
        _check_machine_invariants(sched, resources)


def test_tms_honours_c1_and_c2():
    """Non-fallback TMS schedules achieve a sync delay within their own
    C_delay threshold (C1) and a kernel misspeculation probability within
    P_max (C2)."""
    from repro.sched import schedule_tms

    checked = 0
    for ddg, resources, arch in _invariant_kernels():
        sched = schedule_tms(ddg, resources, arch)
        if sched.meta.get("fallback"):
            continue
        checked += 1
        assert achieved_c_delay(sched, arch) <= \
            sched.meta["c_delay_threshold"] + 1e-9, ddg.name
        assert sched.meta["p_m"] <= sched.meta["p_max"] + 1e-9, ddg.name
    assert checked > 0, "no non-fallback TMS schedule to check"


def test_golden_equivalence():
    """Every scheduler reproduces the pre-engine golden file exactly:
    same II, same slots, same MaxLive, same C_delay on every table2,
    table3 and motivating kernel."""
    golden = json.loads(GOLDEN.read_text())
    current = _load_regen_module().capture_golden()
    assert current["max_loops"] == golden["max_loops"]
    gold_rows = {(r["kernel"], r["alg"]): r for r in golden["rows"]}
    cur_rows = {(r["kernel"], r["alg"]): r for r in current["rows"]}
    assert set(cur_rows) == set(gold_rows)
    mismatched = [key for key in gold_rows if cur_rows[key] != gold_rows[key]]
    assert not mismatched, \
        f"{len(mismatched)} schedules diverge from the golden file " \
        f"(first: {mismatched[0]}); if the placement change is intended, " \
        f"regenerate via scripts/regen_sched_golden.py and review the diff"
