"""Configuration dataclasses."""

import pytest

from repro.config import ArchConfig, SchedulerConfig, SimConfig, summarize_config
from repro.errors import MachineError


class TestArchConfig:
    def test_paper_default_is_table1(self):
        a = ArchConfig.paper_default()
        assert (a.ncore, a.reg_comm_latency, a.spawn_overhead,
                a.commit_overhead, a.invalidation_overhead) == (4, 3, 3, 2, 15)
        assert (a.l1_hit_latency, a.l2_hit_latency, a.l2_miss_latency) == \
            (3, 12, 80)

    def test_single_core(self):
        a = ArchConfig.single_core()
        assert a.ncore == 1 and a.spawn_overhead == 0

    def test_with_helpers(self):
        a = ArchConfig.paper_default()
        assert a.with_cores(8).ncore == 8
        assert a.with_reg_comm_latency(1).reg_comm_latency == 1
        assert a.ncore == 4  # original untouched (frozen)

    @pytest.mark.parametrize("kw", [
        dict(ncore=0), dict(issue_width=0), dict(l1_miss_rate=1.5),
        dict(spawn_overhead=-1), dict(l2_miss_rate=-0.1),
    ])
    def test_validation(self, kw):
        with pytest.raises(MachineError):
            ArchConfig(**kw)

    def test_as_table_rows(self):
        rows = ArchConfig.paper_default().as_table()
        assert any("SEND/RECV" in k for k, _v in rows)


class TestSchedulerConfig:
    def test_defaults(self):
        c = SchedulerConfig()
        assert 0 < c.p_max <= 1 and c.speculation

    @pytest.mark.parametrize("kw", [
        dict(p_max=1.5), dict(max_ii_factor=0.5), dict(max_candidates=0),
    ])
    def test_validation(self, kw):
        with pytest.raises(MachineError):
            SchedulerConfig(**kw)


class TestSimConfig:
    def test_helpers(self):
        c = SimConfig(iterations=10)
        assert c.with_iterations(20).iterations == 20
        assert c.with_seed(5).seed == 5

    def test_validation(self):
        with pytest.raises(MachineError):
            SimConfig(iterations=0)


def test_summarize_config():
    text = summarize_config(SimConfig(iterations=7))
    assert "SimConfig" in text and "iterations=7" in text
