"""Examples stay importable (bitrot guard; their main()s are exercised
manually / in docs, not in CI, because some run for minutes)."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main")


def test_quickstart_runs(capsys):
    spec = importlib.util.spec_from_file_location(
        "quickstart", EXAMPLES[0].parent / "quickstart.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert "TMS speedup" in out
