"""Property-based tests on supporting data structures."""

from hypothesis import given, settings, strategies as st

from repro.ir import loads_loop, dumps_loop, run_sequential
from repro.sched.regalloc import _CyclicInterval
from repro.workloads import LoopShape, SyntheticLoopGenerator


def _brute_overlap(a: _CyclicInterval, b: _CyclicInterval) -> bool:
    if a.length == 0 or b.length == 0:
        return False
    cover_a = {(a.start + i) % a.period for i in range(min(a.length, a.period))}
    cover_b = {(b.start + i) % b.period for i in range(min(b.length, b.period))}
    return bool(cover_a & cover_b)


@given(period=st.integers(2, 24),
       s1=st.integers(0, 48), l1=st.integers(0, 30),
       s2=st.integers(0, 48), l2=st.integers(0, 30))
@settings(max_examples=300)
def test_cyclic_overlap_matches_brute_force(period, s1, l1, s2, l2):
    a = _CyclicInterval(s1 % period, l1, period)
    b = _CyclicInterval(s2 % period, l2, period)
    assert a.overlaps(b) == _brute_overlap(a, b)
    assert a.overlaps(b) == b.overlaps(a)  # symmetry


shapes = st.builds(
    LoopShape,
    n_instr=st.integers(6, 20),
    n_counters=st.integers(1, 2),
    n_reg_recurrences=st.integers(0, 2),
    n_mem_recurrences=st.integers(0, 1),
    n_spec_deps=st.integers(0, 2),
)


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_serialization_roundtrip(shape, seed):
    loop = SyntheticLoopGenerator(shape, seed).generate("roundtrip")
    clone = loads_loop(dumps_loop(loop))
    assert clone.instruction_names == loop.instruction_names
    assert run_sequential(clone, 8).state_fingerprint() == \
        run_sequential(loop, 8).state_fingerprint()
