"""Property-based tests: modulo-schedule validity invariants.

Random loops come from the synthetic generator (itself seeded), so shapes
vary widely: recurrences, memory recurrences, speculated pairs, counters.
"""

from hypothesis import given, settings, strategies as st

from repro.config import ArchConfig, SchedulerConfig
from repro.costmodel import achieved_c_delay, sync_delay
from repro.graph import build_ddg, compute_mii
from repro.machine import LatencyModel, ResourceModel
from repro.sched import (
    max_live,
    run_postpass,
    schedule_sms,
    schedule_tms,
    validate_schedule,
)
from repro.workloads import LoopShape, SyntheticLoopGenerator

ARCH = ArchConfig.paper_default()
RES = ResourceModel.default()
LAT = LatencyModel.for_arch(ARCH)

shapes = st.builds(
    LoopShape,
    n_instr=st.integers(8, 28),
    n_counters=st.integers(1, 2),
    n_reg_recurrences=st.integers(0, 2),
    reg_recurrence_len=st.integers(1, 3),
    serial_recurrence=st.booleans(),
    n_mem_recurrences=st.integers(0, 1),
    mem_rec_ops=st.integers(1, 2),
    mem_rec_distance=st.integers(1, 3),
    n_spec_deps=st.integers(0, 2),
    spec_probability=st.floats(0.0, 0.05),
    mul_fraction=st.floats(0.0, 0.5),
    store_fraction=st.floats(0.0, 1.0),
)


def _ddg(shape, seed):
    loop = SyntheticLoopGenerator(shape, seed).generate("prop")
    return build_ddg(loop, LAT)


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_sms_schedules_are_valid(shape, seed):
    ddg = _ddg(shape, seed)
    sched = schedule_sms(ddg, RES)
    validate_schedule(sched, RES)          # deps + resources
    assert sched.ii >= compute_mii(ddg, RES)
    assert min(sched.stage(n) for n in sched.slots) == 0


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_tms_schedules_are_valid_and_threshold_held(shape, seed):
    ddg = _ddg(shape, seed)
    sched = schedule_tms(ddg, RES, ARCH)
    validate_schedule(sched, RES)
    if not sched.meta["fallback"]:
        thr = sched.meta["c_delay_threshold"]
        for e in sched.inter_iteration_register_deps():
            assert sync_delay(sched, e, ARCH.reg_comm_latency) <= thr + 1e-9


#: shapes whose memory dependences can never force C2 preservation (no
#: probability-1 recurrences; a single speculated dependence below P_max),
#: so TMS's only thread-sensitivity pressure is C1.
no_preservation_shapes = st.builds(
    LoopShape,
    n_instr=st.integers(8, 28),
    n_counters=st.integers(1, 2),
    n_reg_recurrences=st.integers(0, 2),
    reg_recurrence_len=st.integers(1, 3),
    serial_recurrence=st.booleans(),
    n_mem_recurrences=st.just(0),
    n_spec_deps=st.integers(0, 1),
    spec_probability=st.floats(0.0, 0.04),
    mul_fraction=st.floats(0.0, 0.5),
    store_fraction=st.floats(0.0, 1.0),
)


@given(shape=no_preservation_shapes, seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_tms_cdelay_never_worse_than_sms(shape, seed):
    # Holds when C2 cannot force preservation.  (With probability-1 memory
    # recurrences TMS legitimately *pays* C_delay to preserve them — the
    # art suite loops — so the blanket inequality is false in general.)
    ddg = _ddg(shape, seed)
    sms_cd = achieved_c_delay(schedule_sms(ddg, RES), ARCH)
    tms_cd = achieved_c_delay(schedule_tms(ddg, RES, ARCH), ARCH)
    assert tms_cd <= sms_cd + 1e-9


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_d_ker_cycle_conservation(shape, seed):
    # summed around any dependence cycle, d_ker equals the summed source
    # distances; spot-check via stage-difference telescoping on every edge
    ddg = _ddg(shape, seed)
    sched = schedule_sms(ddg, RES)
    for e in ddg.edges:
        assert sched.d_ker(e) == e.distance + sched.stage(e.dst) - \
            sched.stage(e.src)
        # a valid schedule never needs a negative kernel distance for a
        # flow dependence whose delay is positive
        if e.delay > 0 and e.dtype.value == "flow":
            assert sched.d_ker(e) >= 0


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_maxlive_positive_and_bounded(shape, seed):
    ddg = _ddg(shape, seed)
    sched = schedule_sms(ddg, RES)
    ml = max_live(sched)
    producers = sum(
        1 for n in ddg.nodes
        if any(e.is_register_flow for e in ddg.succs(n.name)))
    assert 0 <= ml
    # every live value needs a producer; lifetimes can overlap themselves
    # at most ceil(lifetime / II) times, bounded by stage span + distance
    max_overlap = sched.num_stages + max(
        (e.distance for e in ddg.edges), default=0) + 1
    assert ml <= producers * max_overlap


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_postpass_channel_invariants(shape, seed):
    ddg = _ddg(shape, seed)
    sched = schedule_sms(ddg, RES)
    pipelined = run_postpass(sched, ARCH)
    hops_by_producer = {}
    for ch in pipelined.comm.channels:
        assert ch.hops >= 1
        hops_by_producer[ch.edge.src] = max(
            hops_by_producer.get(ch.edge.src, 0), ch.hops)
    assert pipelined.comm.pairs_per_iteration == sum(hops_by_producer.values())
    assert pipelined.comm.copies == sum(
        h - 1 for h in hops_by_producer.values() if h > 1)


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_huff_and_ims_schedules_are_valid(shape, seed):
    from repro.sched import schedule_huff, schedule_ims
    ddg = _ddg(shape, seed)
    for scheduler in (schedule_huff, schedule_ims):
        sched = scheduler(ddg, RES)
        validate_schedule(sched, RES)
        assert sched.ii >= compute_mii(ddg, RES)
