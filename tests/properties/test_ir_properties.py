"""Property-based tests on the IR and DDG layers."""

from hypothesis import given, settings, strategies as st

from repro.graph import build_ddg, rec_mii, is_feasible_ii, compute_metrics
from repro.ir import run_sequential
from repro.machine import LatencyModel
from repro.workloads import LoopShape, SyntheticLoopGenerator

LAT = LatencyModel()

shapes = st.builds(
    LoopShape,
    n_instr=st.integers(6, 24),
    n_counters=st.integers(1, 2),
    n_reg_recurrences=st.integers(0, 2),
    reg_recurrence_len=st.integers(1, 3),
    n_mem_recurrences=st.integers(0, 1),
    n_spec_deps=st.integers(0, 2),
)


def _loop(shape, seed):
    return SyntheticLoopGenerator(shape, seed).generate("prop")


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_interpreter_deterministic(shape, seed):
    loop = _loop(shape, seed)
    a = run_sequential(loop, 12).state_fingerprint()
    b = run_sequential(loop, 12).state_fingerprint()
    assert a == b


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_ddg_edges_well_formed(shape, seed):
    ddg = build_ddg(_loop(shape, seed), LAT)
    names = set(ddg.node_names)
    for e in ddg.edges:
        assert e.src in names and e.dst in names
        assert e.distance >= 0
        assert 0.0 <= e.probability <= 1.0
        if e.distance == 0:
            # intra-iteration edges always run forward in program order
            assert ddg.node(e.src).position < ddg.node(e.dst).position


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_rec_mii_is_tight(shape, seed):
    ddg = build_ddg(_loop(shape, seed), LAT)
    r = rec_mii(ddg)
    assert is_feasible_ii(ddg, r)
    if r > 1:
        assert not is_feasible_ii(ddg, r - 1)


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_metrics_relations(shape, seed):
    ddg = build_ddg(_loop(shape, seed), LAT)
    metrics = compute_metrics(ddg)
    for e in ddg.edges:
        if e.distance == 0:
            assert metrics[e.dst].depth >= metrics[e.src].depth + e.delay
            assert metrics[e.src].height >= metrics[e.dst].height + e.delay
    for m in metrics.values():
        assert m.mobility >= 0


@given(shape=shapes, seed=st.integers(0, 10_000),
       factor=st.sampled_from([2, 3, 4]))
@settings(max_examples=20, deadline=None)
def test_unroll_equivalence(shape, seed, factor):
    from repro.ir.unroll import check_unroll_equivalence
    loop = _loop(shape, seed)
    assert check_unroll_equivalence(loop, factor, iterations=6)


@given(shape=shapes, seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_unrolled_loops_still_schedule(shape, seed):
    from repro.errors import SchedulingError
    from repro.ir.unroll import unroll_loop
    from repro.machine import ResourceModel
    from repro.sched import schedule_ims, schedule_sms, validate_schedule
    loop = unroll_loop(_loop(shape, seed), 2)
    ddg = build_ddg(loop, LAT)
    res = ResourceModel.default()
    try:
        sched = schedule_sms(ddg, res)
    except SchedulingError:
        # SMS is restart-only and can wedge on pinched windows (GCC's SMS
        # bails to list scheduling in the same situation); the
        # backtracking scheduler must still cope.
        sched = schedule_ims(ddg, res)
    validate_schedule(sched, res)
