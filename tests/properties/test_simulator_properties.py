"""Property-based tests on the SpMT simulator: conservation laws, plus
the differential oracle for the steady-state fast path — every random
(loop, arch, fault-plan) draw must produce byte-identical ``SimStats``
through the default vectorised/fast-forward path and the reference
event loop (``SimConfig.exact``)."""

from hypothesis import given, settings, strategies as st

from repro.config import ArchConfig, SimConfig
from repro.faults import FaultPlan, FaultSpec, simulate_with_faults
from repro.graph import build_ddg
from repro.machine import LatencyModel, ResourceModel
from repro.sched import run_postpass, schedule_sms
from repro.spmt import simulate
from repro.workloads import LoopShape, SyntheticLoopGenerator

ARCH = ArchConfig.paper_default()
RES = ResourceModel.default()
LAT = LatencyModel.for_arch(ARCH)

shapes = st.builds(
    LoopShape,
    n_instr=st.integers(8, 20),
    n_counters=st.integers(1, 2),
    n_reg_recurrences=st.integers(0, 1),
    n_mem_recurrences=st.integers(0, 1),
    n_spec_deps=st.integers(0, 2),
    spec_probability=st.floats(0.0, 0.1),
)


def _pipelined(shape, seed):
    loop = SyntheticLoopGenerator(shape, seed).generate("prop")
    return run_postpass(schedule_sms(build_ddg(loop, LAT), RES), ARCH)


@given(shape=shapes, seed=st.integers(0, 5000),
       n=st.integers(1, 200))
@settings(max_examples=20, deadline=None)
def test_conservation(shape, seed, n):
    pipelined = _pipelined(shape, seed)
    stats = simulate(pipelined, ARCH, SimConfig(iterations=n, seed=seed))
    assert stats.iterations == n
    assert stats.send_recv_pairs == pipelined.comm.pairs_per_iteration * n
    assert stats.total_cycles >= n * pipelined.ii / ARCH.ncore
    assert stats.sync_stall_cycles >= 0
    assert stats.squashed_threads >= stats.misspeculations
    assert stats.invalidation_cycles == \
        stats.misspeculations * ARCH.invalidation_overhead


@given(shape=shapes, seed=st.integers(0, 5000))
@settings(max_examples=15, deadline=None)
def test_monotone_in_iterations(shape, seed):
    pipelined = _pipelined(shape, seed)
    t50 = simulate(pipelined, ARCH, SimConfig(iterations=50, seed=1))
    t150 = simulate(pipelined, ARCH, SimConfig(iterations=150, seed=1))
    assert t150.total_cycles > t50.total_cycles


archs = st.sampled_from([
    ArchConfig.paper_default(),
    ArchConfig(ncore=2),
    ArchConfig(ncore=8),
    ArchConfig(spawn_overhead=0),
    ArchConfig(spawn_overhead=1.5),
    ArchConfig(reg_comm_latency=7),
    ArchConfig(commit_overhead=0, invalidation_overhead=1),
    ArchConfig.single_core(),
])


@given(shape=shapes, seed=st.integers(0, 5000), arch=archs,
       n=st.integers(1, 1200))
@settings(max_examples=30, deadline=None)
def test_fast_path_matches_reference_loop(shape, seed, arch, n):
    """The differential oracle: random loop x arch grid, default path vs
    the reference event loop, full SimStats equality (dataclass ``==``
    compares every field, so cycle counts must match to the last bit)."""
    pipelined = _pipelined(shape, seed)
    fast = simulate(pipelined, arch, SimConfig(iterations=n, seed=seed))
    exact = simulate(pipelined, arch,
                     SimConfig(iterations=n, seed=seed, exact=True))
    assert fast == exact


fault_specs = st.sampled_from([
    FaultSpec("violation", probability=0.3, every=2),
    FaultSpec("comm_jitter", probability=0.5, magnitude=3.0),
    FaultSpec("spawn_failure", probability=0.2, magnitude=5.0),
])


@given(shape=shapes, seed=st.integers(0, 5000),
       specs=st.lists(fault_specs, min_size=1, max_size=2, unique=True))
@settings(max_examples=10, deadline=None)
def test_faulted_runs_match_reference_loop(shape, seed, specs):
    """Fault hooks override the event-loop extension points, which must
    disengage the fast path — so faulted runs agree with the reference
    loop too (and the hook-override gate is what this exercises)."""
    pipelined = _pipelined(shape, seed)
    plan = FaultPlan(seed=seed % 97, specs=tuple(specs))
    fast, _ = simulate_with_faults(
        pipelined, ARCH, plan, SimConfig(iterations=120, seed=seed))
    exact, _ = simulate_with_faults(
        pipelined, ARCH, plan,
        SimConfig(iterations=120, seed=seed, exact=True))
    assert fast == exact


@given(shape=shapes, seed=st.integers(0, 5000))
@settings(max_examples=10, deadline=None)
def test_invalidation_overhead_monotone(shape, seed):
    pipelined = _pipelined(shape, seed)
    cheap = ArchConfig(invalidation_overhead=0)
    dear = ArchConfig(invalidation_overhead=40)
    a = simulate(pipelined, cheap, SimConfig(iterations=150, seed=2))
    b = simulate(pipelined, dear, SimConfig(iterations=150, seed=2))
    assert b.total_cycles >= a.total_cycles
