"""Property-based tests on the SpMT simulator: conservation laws."""

from hypothesis import given, settings, strategies as st

from repro.config import ArchConfig, SimConfig
from repro.graph import build_ddg
from repro.machine import LatencyModel, ResourceModel
from repro.sched import run_postpass, schedule_sms
from repro.spmt import simulate
from repro.workloads import LoopShape, SyntheticLoopGenerator

ARCH = ArchConfig.paper_default()
RES = ResourceModel.default()
LAT = LatencyModel.for_arch(ARCH)

shapes = st.builds(
    LoopShape,
    n_instr=st.integers(8, 20),
    n_counters=st.integers(1, 2),
    n_reg_recurrences=st.integers(0, 1),
    n_mem_recurrences=st.integers(0, 1),
    n_spec_deps=st.integers(0, 2),
    spec_probability=st.floats(0.0, 0.1),
)


def _pipelined(shape, seed):
    loop = SyntheticLoopGenerator(shape, seed).generate("prop")
    return run_postpass(schedule_sms(build_ddg(loop, LAT), RES), ARCH)


@given(shape=shapes, seed=st.integers(0, 5000),
       n=st.integers(1, 200))
@settings(max_examples=20, deadline=None)
def test_conservation(shape, seed, n):
    pipelined = _pipelined(shape, seed)
    stats = simulate(pipelined, ARCH, SimConfig(iterations=n, seed=seed))
    assert stats.iterations == n
    assert stats.send_recv_pairs == pipelined.comm.pairs_per_iteration * n
    assert stats.total_cycles >= n * pipelined.ii / ARCH.ncore
    assert stats.sync_stall_cycles >= 0
    assert stats.squashed_threads >= stats.misspeculations
    assert stats.invalidation_cycles == \
        stats.misspeculations * ARCH.invalidation_overhead


@given(shape=shapes, seed=st.integers(0, 5000))
@settings(max_examples=15, deadline=None)
def test_monotone_in_iterations(shape, seed):
    pipelined = _pipelined(shape, seed)
    t50 = simulate(pipelined, ARCH, SimConfig(iterations=50, seed=1))
    t150 = simulate(pipelined, ARCH, SimConfig(iterations=150, seed=1))
    assert t150.total_cycles > t50.total_cycles


@given(shape=shapes, seed=st.integers(0, 5000))
@settings(max_examples=10, deadline=None)
def test_invalidation_overhead_monotone(shape, seed):
    pipelined = _pipelined(shape, seed)
    cheap = ArchConfig(invalidation_overhead=0)
    dear = ArchConfig(invalidation_overhead=40)
    a = simulate(pipelined, cheap, SimConfig(iterations=150, seed=2))
    b = simulate(pipelined, dear, SimConfig(iterations=150, seed=2))
    assert b.total_cycles >= a.total_cycles
