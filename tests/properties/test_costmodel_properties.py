"""Property-based tests on the cost model."""

from hypothesis import given, settings, strategies as st

from repro.config import ArchConfig
from repro.costmodel import misspec_penalty, misspec_probability, objective_f, t_lower_bound

ARCH = ArchConfig.paper_default()


@given(ii=st.integers(1, 200), cd=st.floats(0.0, 200.0))
@settings(max_examples=200)
def test_objective_bounds(ii, cd):
    f = objective_f(ii, cd, ARCH)
    assert f >= max(ARCH.spawn_overhead, ARCH.commit_overhead, cd)
    assert f >= t_lower_bound(ii, cd, ARCH) / ARCH.ncore
    # T_nomiss/N can never be cheaper than perfect core-parallelism of II
    assert f >= ii / ARCH.ncore


@given(ii=st.integers(1, 100),
       cd1=st.floats(0, 100), cd2=st.floats(0, 100))
@settings(max_examples=200)
def test_objective_monotone_cd(ii, cd1, cd2):
    lo, hi = sorted((cd1, cd2))
    assert objective_f(ii, lo, ARCH) <= objective_f(ii, hi, ARCH)


@given(ps=st.lists(st.floats(0.0, 1.0), max_size=8))
@settings(max_examples=200)
def test_misspec_probability_bounds(ps):
    p = misspec_probability(ps)
    assert 0.0 <= p <= 1.0
    if ps:
        assert p >= max(ps) - 1e-12
        assert p <= min(1.0, sum(ps) + 1e-12)


@given(ii=st.integers(1, 100), cd=st.floats(0, 100))
@settings(max_examples=200)
def test_penalty_bounds(ii, cd):
    pen = misspec_penalty(ii, cd, ARCH)
    assert pen <= ii + ARCH.invalidation_overhead
