"""Shared fixtures: architectures, machines, and reference loops.

Also installs a repo-wide per-test wall-clock timeout (SIGALRM-based, no
plugin dependency): any single test exceeding ``REPRO_TEST_TIMEOUT``
seconds (default 120) fails with a clear message instead of hanging the
suite — the robustness counterpart of the TMS scheduling watchdog.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.config import ArchConfig, SchedulerConfig, SimConfig
from repro.graph import build_ddg
from repro.ir import parse_loop
from repro.machine import LatencyModel, ResourceModel
from repro.workloads import motivating_ddg, motivating_latency, motivating_loop, motivating_machine

AXPY_SRC = """
loop axpy
array X 64
array Y 64
livein a 2.0
livein s 0.0
n0: x = load X[i]
n1: t = fmul x, a
n2: y = load Y[i]
n3: r = fadd t, y
n4: store Y[i], r
n5: s = fadd s, r
"""

#: a loop with an exact distance-2 memory recurrence and a counter
RECURRENT_SRC = """
loop recur
array A 128
array B 128
livein acc 1.0
livein k 3.0
n0: v = load A[i]
n1: w = fmul v, 1.5
n2: store A[i+2], w
n3: acc = fadd acc, w
n4: u = load B[k]
n5: z = fadd u, acc
n6: store B[i], z
n7: k = iadd k, 5
"""


_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Per-test wall-clock timeout via SIGALRM (main thread, POSIX only;
    elsewhere the hook is a no-op and tests run unbounded)."""
    usable = (
        _TEST_TIMEOUT > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={_TEST_TIMEOUT:.0f}s: "
            f"{item.nodeid}")

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def arch() -> ArchConfig:
    return ArchConfig.paper_default()

@pytest.fixture
def single_core_arch() -> ArchConfig:
    return ArchConfig.single_core()

@pytest.fixture
def resources() -> ResourceModel:
    return ResourceModel.default()

@pytest.fixture
def latency(arch) -> LatencyModel:
    return LatencyModel.for_arch(arch)

@pytest.fixture
def sched_config() -> SchedulerConfig:
    return SchedulerConfig()

@pytest.fixture
def sim_config() -> SimConfig:
    return SimConfig(iterations=200, seed=7)

@pytest.fixture
def axpy_loop():
    return parse_loop(AXPY_SRC)

@pytest.fixture
def axpy_ddg(axpy_loop, latency):
    return build_ddg(axpy_loop, latency)

@pytest.fixture
def recurrent_loop():
    return parse_loop(RECURRENT_SRC)

@pytest.fixture
def recurrent_ddg(recurrent_loop, latency):
    return build_ddg(recurrent_loop, latency)

@pytest.fixture
def fig1_loop():
    return motivating_loop()

@pytest.fixture
def fig1_ddg():
    return motivating_ddg()

@pytest.fixture
def fig1_machine():
    return motivating_machine()

@pytest.fixture
def fig1_latency():
    return motivating_latency()
