"""DSE test fixtures: an isolated session so trial-result caching in
the process-wide session never leaks between tests."""

from __future__ import annotations

import pytest

from repro.session import Session, set_session


@pytest.fixture()
def fresh_session():
    """Install a fresh memory-only default session for one test."""
    previous = set_session(Session())
    try:
        yield
    finally:
        set_session(previous)
