"""Parameter spaces: enumeration, ranges, validation, file parsing."""

from __future__ import annotations

import json

import pytest

from repro.config import (ArchConfig, coerce_field_value,
                          config_field_types, replace_config)
from repro.dse import Dimension, ParameterSpace, space_from_dict, space_from_file
from repro.errors import MachineError


def test_grid_size_and_enumeration_order():
    space = space_from_dict({
        "arch.ncore": [2, 4, 8],
        "sched.p_max": [0.01, 0.05],
    })
    assert space.size == 6
    points = list(space.points())
    assert len(points) == 6
    # lexicographic: first dimension slowest, last fastest
    assert points[0] == {"arch.ncore": 2, "sched.p_max": 0.01}
    assert points[1] == {"arch.ncore": 2, "sched.p_max": 0.05}
    assert points[5] == {"arch.ncore": 8, "sched.p_max": 0.05}
    # point_at agrees with enumeration
    for i, p in enumerate(points):
        assert space.point_at(i) == p


def test_point_at_bounds():
    space = space_from_dict({"arch.ncore": [2, 4]})
    with pytest.raises(IndexError):
        space.point_at(2)
    with pytest.raises(IndexError):
        space.point_at(-1)


def test_int_range_and_linspace_expansion():
    space = space_from_dict({
        "arch.reg_comm_latency": {"min": 1, "max": 7, "step": 2},
        "sched.p_max": {"min": 0.0, "max": 0.2, "steps": 5},
    })
    dims = {d.name: d.values for d in space.dimensions}
    assert dims["arch.reg_comm_latency"] == (1, 3, 5, 7)
    assert dims["sched.p_max"] == (0.0, 0.05, 0.1, 0.15, 0.2)


def test_unknown_field_rejected_at_construction():
    with pytest.raises(MachineError, match="no field"):
        space_from_dict({"arch.ncors": [2, 4]})
    with pytest.raises(MachineError, match="namespace"):
        space_from_dict({"bogus.ncore": [2]})
    with pytest.raises(MachineError):
        Dimension("arch.ncore", ())


def test_workload_dimensions_validate_against_loopshape():
    space = space_from_dict({"workload.spec_probability": [0.0, 0.1],
                             "workload.n_loops": [2, 4]})
    assert space.size == 4
    with pytest.raises(MachineError, match="no field"):
        space_from_dict({"workload.nope": [1]})


def test_value_coercion_to_field_types():
    space = space_from_dict({"arch.ncore": [2.0, 4.0],
                             "sched.p_max": [0, 1]})
    dims = {d.name: d.values for d in space.dimensions}
    assert dims["arch.ncore"] == (2, 4)
    assert all(isinstance(v, int) for v in dims["arch.ncore"])
    assert dims["sched.p_max"] == (0.0, 1.0)
    assert all(isinstance(v, float) for v in dims["sched.p_max"])
    with pytest.raises(MachineError):
        space_from_dict({"arch.ncore": [2.5]})


def test_duplicate_values_and_names_rejected():
    with pytest.raises(MachineError, match="duplicate"):
        space_from_dict({"arch.ncore": [2, 2]})
    with pytest.raises(MachineError, match="duplicate"):
        ParameterSpace((Dimension("arch.ncore", (2,)),
                        Dimension("arch.ncore", (4,))))


def test_space_from_json_and_toml_files(tmp_path):
    spec = {"space": {"arch.ncore": [2, 4, 8]}}
    jpath = tmp_path / "space.json"
    jpath.write_text(json.dumps(spec))
    tpath = tmp_path / "space.toml"
    tpath.write_text('[space]\n"arch.ncore" = [2, 4, 8]\n')
    for path in (jpath, tpath):
        space = space_from_file(path)
        assert space.size == 3
        assert space.to_dict() == {"arch.ncore": [2, 4, 8]}


def test_config_field_introspection():
    types = config_field_types(ArchConfig)
    assert types["ncore"] is int
    assert types["l1_miss_rate"] is float
    assert coerce_field_value(ArchConfig, "ncore", 4.0) == 4
    with pytest.raises(MachineError):
        coerce_field_value(ArchConfig, "ncore", True)
    arch = replace_config(ArchConfig.paper_default(), {"ncore": 8})
    assert arch.ncore == 8
