"""Sweep engine: caching, checkpoint/resume round-trip, interruption."""

from __future__ import annotations

import json

import pytest

from repro.dse import (SweepEngine, SweepInterrupted, SweepReport,
                       WorkloadSpec, build_trial, evaluate_trial,
                       make_strategy, space_from_dict, trial_key,
                       write_report_json)
from repro.errors import MachineError
from repro.session import Session

SPACE = space_from_dict({"arch.ncore": [2, 4]})
WORKLOAD = WorkloadSpec(suite="synthetic", n_loops=1, seed=3)
FIDELITY = 20


def _engine(session, batch_size=8, **kw):
    # batch_size=1 makes every trial a checkpoint boundary, so
    # stop_after=1 interrupts after exactly one evaluated trial
    strategy = make_strategy("grid", SPACE, fidelity=FIDELITY,
                             batch_size=batch_size)
    return SweepEngine(SPACE, strategy, workload=WORKLOAD, seed=7,
                       session=session, jobs=1, **kw)


def _report_bytes(outcome, tmp_path, name):
    report = SweepReport.build(SPACE, "grid", 7, outcome.results)
    path = tmp_path / name
    write_report_json(report, path)
    return path.read_bytes()


def test_evaluate_trial_produces_speedups():
    spec = build_trial({"arch.ncore": 4}, base_workload=WORKLOAD,
                       iterations=FIDELITY, seed=7)
    result = evaluate_trial(spec, session=Session(), jobs=1)
    assert result.key == trial_key(spec)
    assert result.fidelity == FIDELITY
    assert not result.failed_kernels
    assert len(result.kernels) == 1
    assert result.kernels[0].sms_cycles > 0
    assert result.kernels[0].tms_cycles > 0
    assert result.mean_speedup > 0


def test_warm_cache_rerun_evaluates_nothing(tmp_path):
    session = Session()
    cold = _engine(session).run()
    assert cold.evaluated == 2 and cold.from_cache == 0
    warm = _engine(session).run()
    assert warm.evaluated == 0 and warm.from_cache == 2
    assert session.stats.compiles == 2  # cold run only
    assert _report_bytes(cold, tmp_path, "cold.json") \
        == _report_bytes(warm, tmp_path, "warm.json")


def test_checkpoint_resume_round_trip_byte_identical(tmp_path):
    # the uninterrupted reference run
    clean = _engine(Session(), checkpoint=tmp_path / "clean.jsonl").run()
    reference = _report_bytes(clean, tmp_path, "clean.json")

    # interrupted run: killed after one newly evaluated trial
    ck = tmp_path / "trials.jsonl"
    with pytest.raises(SweepInterrupted):
        _engine(Session(), batch_size=1, checkpoint=ck,
                stop_after=1).run()
    lines = [json.loads(l) for l in ck.read_text().splitlines()]
    assert lines[0]["kind"] == "header"
    assert len([l for l in lines if l["kind"] == "trial"]) == 1

    # resume with a fresh session (no artifact cache to lean on)
    resumed = _engine(Session(), checkpoint=ck, resume=True).run()
    assert resumed.from_checkpoint == 1
    assert resumed.evaluated == 1
    assert _report_bytes(resumed, tmp_path, "resumed.json") == reference


def test_resume_rejects_checkpoint_from_different_sweep(tmp_path):
    ck = tmp_path / "trials.jsonl"
    _engine(Session(), checkpoint=ck).run()
    strategy = make_strategy("grid", SPACE, fidelity=FIDELITY)
    other = SweepEngine(SPACE, strategy, workload=WORKLOAD, seed=8,
                        session=Session(), jobs=1, checkpoint=ck,
                        resume=True)
    with pytest.raises(MachineError, match="different sweep"):
        other.run()


def test_resume_drops_torn_tail_line(tmp_path):
    ck = tmp_path / "trials.jsonl"
    with pytest.raises(SweepInterrupted):
        _engine(Session(), batch_size=1, checkpoint=ck,
                stop_after=1).run()
    with ck.open("a", encoding="utf-8") as fh:
        fh.write('{"kind": "trial", "trial": {"key": ')  # torn write
    resumed = _engine(Session(), checkpoint=ck, resume=True).run()
    assert resumed.from_checkpoint == 1
    assert len(resumed.results) == 2
