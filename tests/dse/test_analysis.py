"""Analysis: Pareto correctness on hand-built results, report schema."""

from __future__ import annotations

import json

import pytest

from repro.dse import (KernelOutcome, SweepReport, TrialResult,
                       pareto_frontier, space_from_dict,
                       validate_dse_report_dict, write_report_json)
from repro.errors import MachineError


def _trial(key, ncore, speedup, fidelity=10, kernel="k"):
    return TrialResult(
        key=key, params=(("arch.ncore", ncore),), fidelity=fidelity,
        seed=0,
        kernels=(KernelOutcome(kernel=kernel, sms_cycles=speedup * 100.0,
                               tms_cycles=100.0,
                               tms_misspec_frequency=0.0),))


OBJECTIVES = (("mean_speedup", "max"), ("arch.ncore", "min"))


def test_pareto_frontier_on_hand_built_results():
    a = _trial("a", ncore=2, speedup=1.0)   # cheapest: on the frontier
    b = _trial("b", ncore=4, speedup=1.5)   # best speedup at mid cost
    c = _trial("c", ncore=8, speedup=1.4)   # dominated by b (slower, dearer)
    d = _trial("d", ncore=4, speedup=1.2)   # dominated by b (same cost)
    frontier = pareto_frontier([a, b, c, d], OBJECTIVES)
    assert frontier == [a, b]


def test_pareto_keeps_first_of_duplicate_vectors():
    a = _trial("a", ncore=2, speedup=1.3)
    twin = _trial("twin", ncore=2, speedup=1.3)
    assert pareto_frontier([a, twin], OBJECTIVES) == [a]


def test_pareto_rejects_bad_direction():
    with pytest.raises(MachineError, match="max.*min|direction"):
        pareto_frontier([_trial("a", 2, 1.0)], [("mean_speedup", "up")])


def test_final_results_keep_highest_fidelity_per_point():
    lo = _trial("lo", ncore=4, speedup=1.1, fidelity=10)
    hi = _trial("hi", ncore=4, speedup=1.2, fidelity=40)
    space = space_from_dict({"arch.ncore": [2, 4]})
    report = SweepReport.build(space, "halving", 0, [lo, hi])
    finals = report.final_results()
    assert finals == [hi]


def test_best_configs_pick_fastest_per_kernel():
    space = space_from_dict({"arch.ncore": [2, 4]})
    report = SweepReport.build(space, "grid", 0, [
        _trial("a", ncore=2, speedup=1.1, kernel="alpha"),
        _trial("b", ncore=4, speedup=1.6, kernel="alpha"),
    ])
    best = report.best_configs()
    assert best["alpha"]["params"] == {"arch.ncore": 4}
    assert best["alpha"]["speedup"] == pytest.approx(1.6)


def test_report_dict_validates_and_is_deterministic(tmp_path):
    space = space_from_dict({"arch.ncore": [2, 4, 8]})
    results = [_trial(k, n, s) for k, n, s in
               [("a", 2, 1.0), ("b", 4, 1.5), ("c", 8, 1.4)]]
    report = SweepReport.build(space, "grid", 7, results)
    data = report.to_dict()
    validate_dse_report_dict(data)
    # default objectives: max mean_speedup, min each swept cost axis
    assert data["objectives"] == [["mean_speedup", "max"],
                                  ["arch.ncore", "min"]]
    assert [p["params"] for p in data["pareto"]] == [
        {"arch.ncore": 2}, {"arch.ncore": 4}]
    assert data["sensitivity"]["arch.ncore"]["delta"] == pytest.approx(0.5)
    p1 = tmp_path / "r1.json"
    p2 = tmp_path / "r2.json"
    write_report_json(report, p1)
    write_report_json(SweepReport.build(space, "grid", 7, results), p2)
    assert p1.read_bytes() == p2.read_bytes()
    assert json.loads(p1.read_text())["schema_version"] == 1


def test_validate_rejects_broken_reports():
    space = space_from_dict({"arch.ncore": [2]})
    data = SweepReport.build(space, "grid", 0,
                             [_trial("a", 2, 1.0)]).to_dict()
    with pytest.raises(ValueError, match="schema_version"):
        validate_dse_report_dict({**data, "schema_version": 99})
    broken = dict(data)
    del broken["pareto"]
    with pytest.raises(ValueError, match="pareto"):
        validate_dse_report_dict(broken)
    with pytest.raises(ValueError, match="n_trials"):
        validate_dse_report_dict({**data, "n_trials": "three"})


def test_render_markdown_lists_frontier_and_best_configs():
    space = space_from_dict({"arch.ncore": [2, 4]})
    report = SweepReport.build(space, "grid", 0, [
        _trial("a", ncore=2, speedup=1.0, kernel="alpha"),
        _trial("b", ncore=4, speedup=1.5, kernel="alpha"),
    ])
    md = report.render_markdown()
    assert "## Pareto frontier" in md
    assert "## Best configuration per kernel" in md
    assert "alpha" in md
    assert "1.500" in md
