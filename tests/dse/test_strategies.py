"""Search strategies: grid coverage, seeded-random determinism,
successive-halving promotion."""

from __future__ import annotations

import pytest

from repro.dse import make_strategy, space_from_dict
from repro.dse.trial import TrialResult, KernelOutcome
from repro.errors import MachineError


def _drain(strategy):
    """Run a strategy to exhaustion with no feedback; return its trials."""
    trials = []
    while (batch := strategy.ask()) is not None:
        trials.extend(batch)
        strategy.tell([_result(params, fidelity, speedup=1.0)
                       for params, fidelity in batch])
    return trials


def _result(params, fidelity, speedup):
    return TrialResult(
        key=f"k{sorted(params.items())}@{fidelity}",
        params=tuple(sorted(params.items())), fidelity=fidelity, seed=0,
        kernels=(KernelOutcome(kernel="k", sms_cycles=speedup * 100.0,
                               tms_cycles=100.0,
                               tms_misspec_frequency=0.0),))


SPACE = space_from_dict({"arch.ncore": [2, 4, 8],
                         "sched.p_max": [0.0, 0.05]})


def test_grid_covers_every_point_once():
    trials = _drain(make_strategy("grid", SPACE, fidelity=100))
    assert len(trials) == SPACE.size
    assert all(f == 100 for _p, f in trials)
    seen = {tuple(sorted(p.items())) for p, _f in trials}
    assert len(seen) == SPACE.size


def test_grid_batching_respects_batch_size():
    strategy = make_strategy("grid", SPACE, fidelity=10)
    strategy.batch_size = 4
    first = strategy.ask()
    assert len(first) == 4
    strategy.tell([])
    second = strategy.ask()
    assert len(second) == 2


def test_random_same_seed_identical_trial_list():
    a = _drain(make_strategy("random", SPACE, fidelity=10, n_trials=4,
                             seed=123))
    b = _drain(make_strategy("random", SPACE, fidelity=10, n_trials=4,
                             seed=123))
    assert a == b
    c = _drain(make_strategy("random", SPACE, fidelity=10, n_trials=4,
                             seed=124))
    assert a != c


def test_random_samples_without_replacement():
    trials = _drain(make_strategy("random", SPACE, fidelity=10,
                                  n_trials=100, seed=5))
    assert len(trials) == SPACE.size  # capped at the grid
    seen = {tuple(sorted(p.items())) for p, _f in trials}
    assert len(seen) == SPACE.size


def test_halving_promotes_best_by_speedup():
    space = space_from_dict({"arch.ncore": [2, 4, 8, 16]})
    strategy = make_strategy("halving", space, fidelity=80,
                             n_trials=4, seed=0, min_fidelity=10)
    # rung 0: all four configs at min fidelity (one batch, batch_size=8)
    rung0 = strategy.ask()
    assert all(f == 10 for _p, f in rung0)
    assert len(rung0) == 4
    # feed back: speedup grows with ncore -> big cores promoted
    results = [_result(p, f, speedup=p["arch.ncore"] / 2.0)
               for p, f in rung0]
    strategy.tell(results)
    rung1 = strategy.ask()
    assert rung1 is not None
    assert all(f == 20 for _p, f in rung1)
    promoted = {p["arch.ncore"] for p, _f in rung1}
    assert promoted == {8, 16}  # top 1/eta of four


def test_halving_reaches_max_fidelity_and_stops():
    space = space_from_dict({"arch.ncore": [2, 4, 8, 16]})
    strategy = make_strategy("halving", space, fidelity=40,
                             n_trials=4, seed=0, min_fidelity=10)
    fidelities = []
    while (batch := strategy.ask()) is not None:
        fidelities.extend(f for _p, f in batch)
        strategy.tell([_result(p, f, speedup=p["arch.ncore"] / 2.0)
                       for p, f in batch])
    assert max(fidelities) == 40
    assert min(fidelities) == 10


def test_unknown_strategy_rejected():
    with pytest.raises(MachineError):
        make_strategy("annealing", SPACE, fidelity=10)
