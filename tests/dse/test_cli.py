"""The ``tms-experiments dse`` subcommand, end to end (quick runs)."""

from __future__ import annotations

import json

import pytest

from repro.dse import validate_dse_report_dict
from repro.experiments.runner import main

pytestmark = pytest.mark.usefixtures("fresh_session")


def _space_file(tmp_path):
    path = tmp_path / "space.json"
    path.write_text(json.dumps({"arch.ncore": [2, 4]}))
    return path


def test_dse_space_file_quick_run(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["dse", "--space", str(_space_file(tmp_path)),
                 "--suite", "synthetic", "--iterations", "20",
                 "--quick", "--jobs", "1", "--out", "out"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Pareto frontier" in out
    assert "best config per kernel" in out
    report = json.loads((tmp_path / "out" / "report.json").read_text())
    validate_dse_report_dict(report)
    assert report["n_trials"] == 2
    assert (tmp_path / "out" / "report.md").read_text().startswith(
        "# Design-space exploration report")
    assert (tmp_path / "out" / "trials.jsonl").exists()


def test_dse_warm_rerun_reuses_cache_and_matches(tmp_path, capsys,
                                                 monkeypatch):
    monkeypatch.chdir(tmp_path)
    argv = ["dse", "--space", str(_space_file(tmp_path)),
            "--suite", "synthetic", "--iterations", "20",
            "--quick", "--jobs", "1"]
    assert main(argv + ["--out", "cold"]) == 0
    cold_out = capsys.readouterr().out
    assert "2 evaluated" in cold_out
    # same process session: the artifact cache serves every trial
    assert main(argv + ["--out", "warm"]) == 0
    warm_out = capsys.readouterr().out
    assert "0 evaluated" in warm_out
    assert "2 from cache" in warm_out
    assert (tmp_path / "cold" / "report.json").read_bytes() \
        == (tmp_path / "warm" / "report.json").read_bytes()


def test_dse_preset_quick_run(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["dse", "--preset", "paper-cores", "--quick",
                 "--iterations", "15", "--kernels", "1",
                 "--jobs", "1", "--out", "out"])
    assert code == 0
    report = json.loads((tmp_path / "out" / "report.json").read_text())
    validate_dse_report_dict(report)
    assert report["n_trials"] == 3  # ncore in {2, 4, 8}


def test_dse_requires_exactly_one_source(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["dse"]) == 2
    assert main(["dse", "--preset", "paper-cores",
                 "--space", str(_space_file(tmp_path))]) == 2
    err = capsys.readouterr().err
    assert "exactly one of --preset or --space" in err


def test_dse_unknown_preset_fails_cleanly(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["dse", "--preset", "nope"]) == 2
    assert "dse:" in capsys.readouterr().err
