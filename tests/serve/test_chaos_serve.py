"""Serve-chaos harness: seeded request generation, the versioned report
schema, and one real fault-injected campaign."""

from __future__ import annotations

import json

import pytest

from repro.serve.chaos import (
    SCHEMA_VERSION,
    SERVE_SCENARIOS,
    ServeChaosReport,
    ServeChaosRow,
    build_requests,
    run_serve_chaos,
    validate_serve_chaos_report_dict,
    write_serve_chaos_report_json,
)


# -- seeded request generation ---------------------------------------------------

def test_build_requests_is_deterministic():
    a = build_requests(11, "conn-reset", 8)
    b = build_requests(11, "conn-reset", 8)
    assert [r.fingerprint() for r in a] == [r.fingerprint() for r in b]


def test_build_requests_varies_by_seed_and_scenario():
    base = [r.fingerprint() for r in build_requests(11, "conn-reset", 8)]
    other_seed = [r.fingerprint() for r in build_requests(12, "conn-reset", 8)]
    other_scenario = [r.fingerprint() for r in build_requests(11, "latency", 8)]
    assert base != other_seed
    assert base != other_scenario


def test_build_requests_are_valid_wire_payloads():
    for request in build_requests(3, "sigkill", 6):
        payload = request.to_dict()
        assert payload["kind"] in ("compile", "simulate")
        assert payload["source"].lstrip().startswith("loop ")
        assert request.request_id()


# -- report schema -----------------------------------------------------------------

def _row(**kw):
    base = dict(scenario="conn-reset", seed=1, n_requests=4, n_unique=3,
                completed=4, wrong_answers=0,
                digests=(("r" * 16, "d" * 64),))
    base.update(kw)
    return ServeChaosRow(**base)


def _report(rows=None):
    rows = rows if rows is not None else (_row(),)
    return ServeChaosReport(rows=rows, seed=1, n_requests=4,
                            scenarios=tuple(r.scenario for r in rows))


def test_row_verdict():
    assert _row().ok
    assert not _row(completed=3).ok
    assert not _row(wrong_answers=1).ok


def test_report_dict_round_trips_the_schema():
    data = _report().to_dict()
    validate_serve_chaos_report_dict(data)          # must not raise
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["summary"]["all_ok"] is True
    assert data["summary"]["total_requests"] == 4


def test_validator_rejects_foreign_versions_and_shape_drift():
    data = _report().to_dict()
    with pytest.raises(ValueError, match="schema_version"):
        validate_serve_chaos_report_dict(
            {**data, "schema_version": SCHEMA_VERSION + 1})
    missing = dict(data)
    del missing["summary"]
    with pytest.raises(ValueError, match="summary"):
        validate_serve_chaos_report_dict(missing)
    mistyped = json.loads(json.dumps(data))
    mistyped["rows"][0]["completed"] = "four"
    with pytest.raises(ValueError, match="completed"):
        validate_serve_chaos_report_dict(mistyped)


def test_render_names_failing_scenarios():
    text = _report((_row(), _row(scenario="latency", completed=2))).render()
    assert "FAILED latency: 2/4 completed" in text
    failing_free = _report().render()
    assert "byte-identical" in failing_free


def test_report_json_is_stable_on_disk(tmp_path):
    report = _report()
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    write_serve_chaos_report_json(report, first)
    write_serve_chaos_report_json(report, second)
    assert first.read_bytes() == second.read_bytes()
    validate_serve_chaos_report_dict(json.loads(first.read_text()))


def test_scenario_names_are_stable():
    # CI and docs reference these names; renaming one is a breaking change
    assert SERVE_SCENARIOS == ("conn-reset", "latency", "pool-break",
                               "sigkill")


# -- one real campaign ---------------------------------------------------------------

def test_conn_reset_campaign_yields_zero_wrong_answers(registry,
                                                       span_tracer):
    """Injected connection resets must cost retries, never answers:
    every request completes and matches the clean run byte-for-byte."""
    report, notes, gates = run_serve_chaos(
        scenarios=("conn-reset",), n_requests=4, seed=5, retries=10)
    assert gates == []
    assert report.all_ok
    (row,) = report.rows
    assert row.completed == 4
    assert row.wrong_answers == 0
    assert len(row.digests) == row.n_unique
    validate_serve_chaos_report_dict(report.to_dict())
    # the digests are pure functions of the seed: a rerun must agree
    rerun, _, _ = run_serve_chaos(
        scenarios=("conn-reset",), n_requests=4, seed=5, retries=10)
    assert rerun.rows[0].digests == row.digests
