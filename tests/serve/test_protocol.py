"""Wire protocol: validation, fingerprints, canonical responses."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    REJECT_REASONS,
    ServeRequest,
    error_response,
    ok_response,
    rejected_response,
    response_bytes,
)

from .conftest import AXPY_SRC


def _req(**kw):
    base = dict(kind="simulate", source=AXPY_SRC)
    base.update(kw)
    return ServeRequest(**base)


# -- validation --------------------------------------------------------------

def test_round_trip_through_dict():
    req = _req(cores=8, unroll=2, iterations=300, seed=7, policy="sms",
               deadline_seconds=1.5)
    assert ServeRequest.from_dict(req.to_dict()) == req


def test_to_dict_omits_null_deadline():
    assert "deadline_seconds" not in _req().to_dict()


def test_from_dict_survives_json_round_trip():
    req = _req(deadline_seconds=0.5)
    again = ServeRequest.from_dict(json.loads(json.dumps(req.to_dict())))
    assert again == req


@pytest.mark.parametrize("mutation,match", [
    (dict(kind="transmogrify"), "unknown request kind"),
    (dict(source="   "), "non-empty DSL text"),
    (dict(cores=0), "cores"),
    (dict(cores="4"), "must be an integer"),
    (dict(cores=True), "must be an integer"),
    (dict(unroll=0), "unroll"),
    (dict(iterations=0), "iterations"),
    (dict(policy="lru"), "unknown policy"),
    (dict(deadline_seconds=0), "deadline_seconds"),
    (dict(deadline_seconds=-1.0), "deadline_seconds"),
])
def test_invalid_fields_rejected(mutation, match):
    with pytest.raises(ProtocolError, match=match):
        _req(**mutation)


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ProtocolError, match="unknown request field"):
        ServeRequest.from_dict({"kind": "compile", "source": AXPY_SRC,
                                "sourc": "typo"})


@pytest.mark.parametrize("missing", ["kind", "source"])
def test_from_dict_requires_kind_and_source(missing):
    payload = {"kind": "compile", "source": AXPY_SRC}
    del payload[missing]
    with pytest.raises(ProtocolError, match=f"missing '{missing}'"):
        ServeRequest.from_dict(payload)


def test_from_dict_rejects_non_object():
    with pytest.raises(ProtocolError, match="JSON object"):
        ServeRequest.from_dict(["compile"])


# -- identity ----------------------------------------------------------------

def test_fingerprint_ignores_deadline():
    assert _req().fingerprint() == _req(deadline_seconds=0.25).fingerprint()
    assert _req().request_id() == _req(deadline_seconds=0.25).request_id()


def test_fingerprint_tracks_work_fields():
    base = _req().fingerprint()
    assert _req(cores=8).fingerprint() != base
    assert _req(iterations=9).fingerprint() != base
    assert _req(seed=1).fingerprint() != base
    assert _req(policy="sms").fingerprint() != base
    assert _req(source=AXPY_SRC + "\n# changed").fingerprint() != base


def test_compile_fingerprint_ignores_simulation_knobs():
    # a compile's result cannot depend on trip count / seed / policy, so
    # requests differing only there must still coalesce
    base = _req(kind="compile").fingerprint()
    assert _req(kind="compile", iterations=9).fingerprint() == base
    assert _req(kind="compile", seed=1).fingerprint() == base
    assert _req(kind="compile", policy="sms").fingerprint() == base
    assert _req(kind="compile", cores=8).fingerprint() != base


def test_kinds_never_share_fingerprints():
    assert _req(kind="compile").fingerprint() != _req().fingerprint()


def test_request_id_is_a_fingerprint_prefix():
    req = _req()
    assert req.request_id() == f"r-{req.fingerprint()[:16]}"


# -- responses ---------------------------------------------------------------

def test_ok_response_envelope():
    req = _req()
    resp = ok_response(req, {"kind": "simulate", "x": 1})
    assert resp["protocol_version"] == PROTOCOL_VERSION
    assert resp["status"] == "ok"
    assert resp["request_id"] == req.request_id()
    assert resp["fingerprint"] == req.fingerprint()
    assert resp["result"] == {"kind": "simulate", "x": 1}


@pytest.mark.parametrize("reason", REJECT_REASONS)
def test_rejected_response_carries_reason(reason):
    resp = rejected_response(_req(), reason)
    assert resp["status"] == "rejected"
    assert resp["reason"] == reason


def test_rejected_response_validates_reason():
    with pytest.raises(ProtocolError, match="unknown rejection reason"):
        rejected_response(_req(), "bad_hair_day")


def test_error_response_carries_message():
    resp = error_response(_req(), "SchedulingError: no feasible II")
    assert resp["status"] == "error"
    assert "SchedulingError" in resp["error"]


def test_response_bytes_are_canonical():
    # key order must not leak into the wire bytes
    a = response_bytes({"b": 1, "a": {"y": 2, "x": 3}})
    b = response_bytes({"a": {"x": 3, "y": 2}, "b": 1})
    assert a == b
    assert json.loads(a) == {"a": {"x": 3, "y": 2}, "b": 1}
