"""Hardened-client behaviour against a scripted HTTP server: retry
waves, circuit breaking, hedged reads, oversized-body rejection."""

from __future__ import annotations

import http.server
import json
import socket
import threading
import time

import pytest

from repro.errors import (
    AdmissionRejected,
    CircuitOpen,
    ProtocolError,
    ServerUnavailable,
)
from repro.serve.client import ServeClient
from repro.serve.resilience import BackoffPolicy, CircuitBreaker

from .conftest import AXPY_SRC

#: effectively-instant retry pacing so tests never sleep for real
_FAST = BackoffPolicy(initial=0.001, factor=1.0, max_delay=0.001,
                      jitter=0.0)

_OK_BODY = {"status": "ok", "request_id": "r" * 16,
            "result": {"kind": "compile", "loop": "axpy"}}


def _req_payload():
    return {"kind": "compile", "source": AXPY_SRC}


class _ScriptedServer:
    """An HTTP server answering ``/submit`` from a behaviour script.

    Each behaviour is a dict: ``status`` (HTTP), ``body`` (JSON),
    ``served`` (the ``X-Repro-Served`` header) and ``delay`` (seconds to
    stall before answering).  The last behaviour repeats once the script
    is exhausted; ``/healthz`` always answers ok.
    """

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.hits = 0
        self._lock = threading.Lock()
        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers.get("Content-Length", "0"))
                self.rfile.read(length)
                with outer._lock:
                    behavior = outer.behaviors[
                        min(outer.hits, len(outer.behaviors) - 1)]
                    outer.hits += 1
                if behavior.get("delay"):
                    time.sleep(behavior["delay"])
                self._reply(behavior.get("status", 200),
                            behavior.get("body", _OK_BODY),
                            behavior.get("served", "computed"))

            def do_GET(self):
                self._reply(200, {"status": "ok"}, None)

            def _reply(self, status, body, served):
                payload = json.dumps(body).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                if served:
                    self.send_header("X-Repro-Served", served)
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        self.httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                                     Handler)
        self.port = self.httpd.server_address[1]
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=10.0)


def _reject(reason):
    return {"status": 503 if reason != "deadline" else 504,
            "body": {"status": "rejected", "reason": reason,
                     "request_id": "r" * 16},
            "served": "rejected"}


def _dead_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


# -- retry waves -------------------------------------------------------------

def test_retryable_rejection_is_retried_to_success(registry):
    server = _ScriptedServer([_reject("queue_full"), _reject("shed"), {}])
    try:
        client = ServeClient("127.0.0.1", server.port, timeout=10.0)
        outcome = client.submit(_req_payload(), retries=3, backoff=_FAST)
        assert outcome.ok
        assert outcome.attempts == 3
        assert server.hits == 3
        assert registry.deterministic_totals()["serve.client.retries"] == 2
    finally:
        server.close()


def test_deadline_rejection_is_never_retried(registry):
    server = _ScriptedServer([_reject("deadline"), {}])
    try:
        client = ServeClient("127.0.0.1", server.port, timeout=10.0)
        with pytest.raises(AdmissionRejected) as excinfo:
            client.submit(_req_payload(), retries=5, backoff=_FAST)
        assert excinfo.value.reason == "deadline"
        assert server.hits == 1                    # the daemon answered
    finally:
        server.close()


def test_exhausted_retries_surface_the_rejection(registry):
    server = _ScriptedServer([_reject("queue_full")])
    try:
        client = ServeClient("127.0.0.1", server.port, timeout=10.0)
        outcome = client.submit(_req_payload(), retries=2, backoff=_FAST,
                                raise_on_reject=False)
        assert outcome.status == "rejected"
        assert outcome.attempts == 3
        assert server.hits == 3
    finally:
        server.close()


def test_transport_failures_retry_then_reraise(registry):
    client = ServeClient("127.0.0.1", _dead_port(), timeout=1.0)
    with pytest.raises(ServerUnavailable):
        client.submit(_req_payload(), retries=2, backoff=_FAST)
    assert registry.deterministic_totals()["serve.client.retries"] == 2


def test_retries_validate(registry):
    client = ServeClient("127.0.0.1", _dead_port(), timeout=1.0)
    with pytest.raises(ValueError, match="retries"):
        client.submit(_req_payload(), retries=-1)


# -- circuit breaking ---------------------------------------------------------

def test_breaker_opens_and_fails_fast_without_sockets(registry):
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
    client = ServeClient("127.0.0.1", _dead_port(), timeout=1.0,
                         circuit_breaker=breaker)
    for _ in range(2):
        with pytest.raises(ServerUnavailable):
            client.submit(_req_payload())
    assert breaker.state == CircuitBreaker.OPEN
    started = time.monotonic()
    with pytest.raises(CircuitOpen):
        client.submit(_req_payload())
    assert time.monotonic() - started < 0.5       # no connect attempt


def test_breaker_closes_again_once_the_server_recovers(registry):
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.05)
    client = ServeClient("127.0.0.1", 0, timeout=2.0,
                         circuit_breaker=breaker)
    client.port = _dead_port()
    with pytest.raises(ServerUnavailable):
        client.submit(_req_payload())
    assert breaker.state == CircuitBreaker.OPEN

    server = _ScriptedServer([{}])
    try:
        client.port = server.port
        # the retry loop sleeps past retry_after, so the wave's next
        # round trip is the half-open probe — and it succeeds
        outcome = client.submit(_req_payload(), retries=3, backoff=_FAST)
        assert outcome.ok
        assert breaker.state == CircuitBreaker.CLOSED
    finally:
        server.close()


def test_typed_rejections_do_not_trip_the_breaker(registry):
    breaker = CircuitBreaker(failure_threshold=1)
    server = _ScriptedServer([_reject("queue_full")])
    try:
        client = ServeClient("127.0.0.1", server.port, timeout=10.0,
                             circuit_breaker=breaker)
        with pytest.raises(AdmissionRejected):
            client.submit(_req_payload())
        assert breaker.state == CircuitBreaker.CLOSED   # the daemon is alive
    finally:
        server.close()


def test_circuit_breaker_true_builds_a_default(registry):
    client = ServeClient("127.0.0.1", 1, circuit_breaker=True)
    assert isinstance(client.breaker, CircuitBreaker)
    assert client.breaker.endpoint == "127.0.0.1:1"
    assert ServeClient("127.0.0.1", 1).breaker is None


# -- hedged reads ---------------------------------------------------------------

def test_hedge_fires_when_the_primary_stalls(registry):
    server = _ScriptedServer([{"delay": 5.0}, {}])
    try:
        client = ServeClient("127.0.0.1", server.port, timeout=30.0)
        started = time.monotonic()
        outcome = client.submit(_req_payload(), hedge_after=0.1)
        assert outcome.ok
        assert time.monotonic() - started < 4.0   # hedge won, no full stall
        assert registry.deterministic_totals()["serve.client.hedges"] == 1
    finally:
        server.close()


def test_no_hedge_when_the_primary_is_fast(registry):
    server = _ScriptedServer([{}])
    try:
        client = ServeClient("127.0.0.1", server.port, timeout=10.0)
        outcome = client.submit(_req_payload(), hedge_after=5.0)
        assert outcome.ok
        assert server.hits == 1
        assert "serve.client.hedges" not in registry.deterministic_totals()
    finally:
        server.close()


# -- protocol-level client errors -------------------------------------------------

def test_http_413_is_a_protocol_error(registry):
    oversized = {"status": 413,
                 "body": {"status": "rejected", "reason": "oversized",
                          "error": "request body of 9999 bytes exceeds "
                                   "the 100-byte limit"},
                 "served": "rejected"}
    server = _ScriptedServer([oversized])
    try:
        client = ServeClient("127.0.0.1", server.port, timeout=10.0)
        with pytest.raises(ProtocolError, match="exceeds the 100-byte"):
            client.submit(_req_payload())
    finally:
        server.close()
