"""Daemon integration over real HTTP, and serve-vs-direct equivalence."""

from __future__ import annotations

import contextlib
import socket

import pytest

from repro.errors import AdmissionRejected, ProtocolError, ServerUnavailable
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.spans import SpanTracer, set_span_tracer, span_tree
from repro.serve import (
    ServeClient,
    ServeDaemon,
    ServeRequest,
    execute_request,
    response_bytes,
    wait_ready,
)
from repro.serve.protocol import PROTOCOL_VERSION, ok_response
from repro.session import Session

from .conftest import AXPY_SRC


@pytest.fixture
def daemon(registry, span_tracer):
    d = ServeDaemon(port=0, broker=None).start()
    client = ServeClient("127.0.0.1", d.port, timeout=60.0)
    assert wait_ready(client, timeout=15.0)
    yield d, client
    if not d.wait(timeout=0):
        d.stop(drain_timeout=10.0)


def _req(**kw):
    base = dict(kind="simulate", source=AXPY_SRC, iterations=64)
    base.update(kw)
    return ServeRequest(**base)


# -- integration -------------------------------------------------------------

def test_round_trip_and_warm_rerun(daemon):
    d, client = daemon
    first = client.submit(_req())
    second = client.submit(_req())
    assert first.ok and second.ok
    assert first.served == "computed"
    assert second.served == "cached"
    assert first.body == second.body           # byte-identical off the wire
    assert first.result["stats"]["iterations"] == 64

    stats = client.stats()
    assert stats["counts"]["requests"] == 2
    assert stats["counts"]["completed"] == 1
    assert stats["counts"]["result_hits"] == 1
    assert stats["session"]["compiles"] == 1

    health = client.healthz()
    assert health["status"] == "ok"


def test_compile_requests_over_http(daemon):
    _, client = daemon
    out = client.submit(_req(kind="compile"))
    assert out.ok
    assert out.result["algorithms"]["tms"]["ii"] >= out.result["mii"]
    assert out.result["algorithms"]["tms"]["kernel"]


def test_malformed_requests_get_http_400(daemon):
    _, client = daemon
    with pytest.raises(ProtocolError, match="unknown request kind"):
        client.submit({"kind": "transmogrify", "source": AXPY_SRC})
    with pytest.raises(ProtocolError, match="unknown request field"):
        client.submit({"kind": "compile", "source": AXPY_SRC, "bogus": 1})


def test_unknown_paths_get_http_404(daemon):
    d, client = daemon
    status, _, _ = client._round_trip("GET", "/nope")
    assert status == 404
    status, _, _ = client._round_trip("POST", "/nope")
    assert status == 404


def test_draining_daemon_rejects_with_503(daemon):
    d, client = daemon
    d.broker.begin_drain()
    assert client.healthz()["status"] == "draining"
    with pytest.raises(AdmissionRejected) as excinfo:
        client.submit(_req())
    assert excinfo.value.reason == "draining"
    out = client.submit(_req(), raise_on_reject=False)
    assert out.http_status == 503
    assert out.served == "rejected"


def test_shutdown_endpoint_drains_and_stops(daemon):
    d, client = daemon
    assert client.submit(_req(kind="compile")).ok
    reply = client.shutdown()
    assert reply["status"] == "stopping"
    assert d.wait(timeout=30.0)
    assert d.drained is True
    # the listener is gone: the next call is a typed unavailability
    assert not client.ping()


def test_healthz_carries_state_reasons_and_version(daemon):
    d, client = daemon
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["reasons"] == []
    assert health["protocol_version"] == PROTOCOL_VERSION
    d.broker.begin_drain()
    health = client.healthz()
    assert health["status"] == "draining"
    assert health["reasons"] == ["drain requested"]


def test_oversized_bodies_get_http_413(registry, span_tracer):
    d = ServeDaemon(port=0, broker=None, max_body_bytes=64).start()
    try:
        client = ServeClient("127.0.0.1", d.port, timeout=30.0)
        assert wait_ready(client, timeout=15.0)
        import json
        body = json.dumps(_req().to_dict()).encode("utf-8")
        assert len(body) > 64
        status, headers, raw = client._round_trip("POST", "/submit", body)
        assert status == 413
        assert headers["x-repro-served"] == "rejected"
        payload = json.loads(raw)
        assert "exceeds the 64-byte limit" in payload["error"]
        # the typed client surfaces the refusal as a protocol error
        with pytest.raises(ProtocolError, match="64-byte limit"):
            client.submit(_req())
        # undersized requests still work: the daemon is not poisoned
        assert client.healthz()["status"] == "ok"
    finally:
        d.stop(drain_timeout=10.0)


def test_max_body_bytes_validates():
    with pytest.raises(ValueError, match="max_body_bytes"):
        ServeDaemon(port=0, max_body_bytes=0)


def test_no_daemon_is_server_unavailable(registry):
    with socket.socket() as s:                 # a port nothing listens on
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
    client = ServeClient("127.0.0.1", port, timeout=2.0)
    assert not client.ping()
    with pytest.raises(ServerUnavailable):
        client.submit(_req())


def test_from_address_parses_and_validates():
    client = ServeClient.from_address("localhost:9000")
    assert (client.host, client.port) == ("localhost", 9000)
    assert ServeClient.from_address(":9000").host == "127.0.0.1"
    with pytest.raises(ServerUnavailable, match="malformed"):
        ServeClient.from_address("no-port-here")


# -- serve-vs-direct equivalence ---------------------------------------------

@contextlib.contextmanager
def _fresh_obs():
    registry = MetricsRegistry(enabled=True)
    tracer = SpanTracer(enabled=True, detail=True)
    prev_r = set_registry(registry)
    prev_t = set_span_tracer(tracer)
    try:
        yield registry, tracer
    finally:
        set_registry(prev_r)
        set_span_tracer(prev_t)


def _observable(totals):
    """Registry totals minus serve plumbing: ``serve.*`` only exists on
    the daemon side, ``cache.*`` aggregates the broker's response cache
    on top of the session cache."""
    return {k: v for k, v in totals.items()
            if not k.startswith(("serve.", "cache."))}


def test_serve_and_direct_execution_are_equivalent():
    """The daemon must answer exactly what a local Session computes:
    byte-identical payloads, identical session-cache behaviour,
    identical metric totals, and an identical normalized span tree
    under the ``serve.request`` root."""
    req = _req()

    with _fresh_obs() as (reg_direct, tr_direct):
        direct_session = Session(jobs=1)
        result = execute_request(direct_session, req)
        direct_bytes = response_bytes(ok_response(req, result))
        direct_tree = span_tree(tr_direct.spans, normalize=True)
        direct_totals = _observable(reg_direct.deterministic_totals())
        direct_cache = direct_session.cache.stats_dict()

    with _fresh_obs() as (reg_serve, tr_serve):
        serve_session = Session(jobs=1)
        from repro.serve import RequestBroker
        daemon = ServeDaemon(
            port=0, broker=RequestBroker(session=serve_session)).start()
        try:
            client = ServeClient("127.0.0.1", daemon.port, timeout=60.0)
            assert wait_ready(client, timeout=15.0)
            outcome = client.submit(req)
        finally:
            daemon.stop(drain_timeout=10.0)
        serve_tree = span_tree(tr_serve.spans, normalize=True)
        serve_totals = _observable(reg_serve.deterministic_totals())
        serve_cache = serve_session.cache.stats_dict()

    assert outcome.body == direct_bytes                    # byte-identical
    assert serve_cache == direct_cache                     # same cache walk
    assert serve_totals == direct_totals                   # same metrics

    roots = [n for n in serve_tree if n["name"] == "serve.request"]
    assert len(roots) == 1
    assert roots[0]["attrs"]["outcome"] == "ok"
    assert roots[0]["children"] == direct_tree             # same span tree
