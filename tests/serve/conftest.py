"""Serve tests: isolated registry/tracer and a tiny reference loop.

The registry fixture must be installed *before* any ``Session`` /
``ArtifactCache`` is constructed — cache counter handles bind to the
process-default registry at construction time.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.spans import SpanTracer, set_span_tracer

#: same loop as the repo-wide AXPY fixture (kept inline: serve requests
#: carry raw DSL text over the wire, so the test mirrors a real payload)
AXPY_SRC = """
loop axpy
array X 64
array Y 64
livein a 2.0
livein s 0.0
n0: x = load X[i]
n1: t = fmul x, a
n2: y = load Y[i]
n3: r = fadd t, y
n4: store Y[i], r
n5: s = fadd s, r
"""


@pytest.fixture
def registry():
    """A fresh enabled registry installed as the process default."""
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


@pytest.fixture
def span_tracer():
    """A fresh enabled span tracer installed as the process default."""
    fresh = SpanTracer(enabled=True, detail=True)
    previous = set_span_tracer(fresh)
    try:
        yield fresh
    finally:
        set_span_tracer(previous)
