"""Broker semantics: coalescing, admission control, deadlines, errors."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ProtocolError, TaskTimeout
from repro.serve.broker import BrokerConfig, RequestBroker, execute_request
from repro.serve.journal import RequestJournal, read_journal
from repro.serve.protocol import ServeRequest, response_bytes
from repro.serve.resilience import HealthPolicy
from repro.session import Session

from .conftest import AXPY_SRC


def _req(**kw):
    base = dict(kind="compile", source=AXPY_SRC)
    base.update(kw)
    return ServeRequest(**base)


@pytest.fixture
def broker(registry, span_tracer):
    """A real broker over a sequential session (no warm pool: broker
    tests exercise admission, not parallelism)."""
    b = RequestBroker(session=Session(jobs=1), config=BrokerConfig())
    yield b
    b.stop(drain=False, timeout=1.0)


def _gated_broker(registry, gate: threading.Event, *,
                  config: BrokerConfig | None = None,
                  execute=None) -> RequestBroker:
    """A broker whose execution blocks on ``gate`` — lets tests pin
    jobs in flight deterministically."""
    inner = execute or execute_request

    def gated(session, request, **kw):
        gate.wait(timeout=30.0)
        return inner(session, request, **kw)

    return RequestBroker(session=Session(jobs=1), config=config,
                         execute=gated)


def _wait_until(predicate, timeout: float = 10.0) -> None:
    import time
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.005)


# -- basics ------------------------------------------------------------------

def test_submit_computes_and_then_serves_from_cache(broker):
    resp1, served1 = broker.submit(_req())
    resp2, served2 = broker.submit(_req())
    assert (served1, served2) == ("computed", "cached")
    assert response_bytes(resp1) == response_bytes(resp2)
    assert resp1["status"] == "ok"
    assert resp1["result"]["loop"] == "axpy"
    assert broker.counts["completed"] == 1
    assert broker.counts["result_hits"] == 1
    assert broker.session.stats.compiles == 1


def test_submit_accepts_wire_payloads(broker):
    resp, served = broker.submit({"kind": "compile", "source": AXPY_SRC})
    assert served == "computed"
    assert resp["status"] == "ok"


def test_submit_propagates_protocol_errors(broker):
    with pytest.raises(ProtocolError, match="unknown request kind"):
        broker.submit({"kind": "nope", "source": AXPY_SRC})


def test_simulate_requests_return_stats(broker):
    resp, _ = broker.submit(_req(kind="simulate", iterations=64))
    result = resp["result"]
    assert result["kind"] == "simulate"
    assert result["policy"] == "tms"
    assert result["stats"]["iterations"] == 64
    assert result["stats"]["total_cycles"] > 0
    assert result["kernel"]


def test_stats_payload_shape(broker):
    broker.submit(_req())
    stats = broker.stats()
    assert stats["queue_depth"] == 0
    assert stats["counts"]["requests"] == 1
    assert stats["cache"]["misses"] == 1
    assert stats["result_cache"]["stores"] == 1
    assert stats["session"]["compiles"] == 1
    assert not stats["draining"]


# -- coalescing --------------------------------------------------------------

def test_concurrent_identical_requests_coalesce(registry, span_tracer):
    """N concurrent identical submits → exactly one computation,
    byte-identical responses for every waiter."""
    gate = threading.Event()
    broker = _gated_broker(registry, gate)
    try:
        n = 8
        outcomes: list[tuple[dict, str]] = [None] * n  # type: ignore

        def submit(i):
            outcomes[i] = broker.submit(_req())

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        # every submission is in (requests counter), exactly one job is
        # in flight — only then may it execute
        _wait_until(lambda: broker.counts["requests"] == n
                    and broker.queue_depth() == 1)
        gate.set()
        for t in threads:
            t.join(timeout=30.0)

        assert broker.session.stats.compiles == 1         # one computation
        assert broker.session.cache.stats.misses == 1     # one cache miss
        assert broker.counts["completed"] == 1
        assert broker.counts["coalesce_hits"] == n - 1
        bodies = {response_bytes(resp) for resp, _ in outcomes}
        assert len(bodies) == 1                           # byte-identical
        served = sorted(s for _, s in outcomes)
        assert served == ["coalesced"] * (n - 1) + ["computed"]
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_distinct_requests_do_not_coalesce(registry, span_tracer):
    broker = RequestBroker(session=Session(jobs=1))
    try:
        broker.submit(_req(cores=2))
        broker.submit(_req(cores=4))
        assert broker.counts["coalesce_hits"] == 0
        assert broker.session.stats.compiles == 2
    finally:
        broker.stop(drain=False, timeout=1.0)


# -- admission control -------------------------------------------------------

def test_queue_full_rejection(registry, span_tracer):
    gate = threading.Event()
    broker = _gated_broker(registry, gate,
                           config=BrokerConfig(max_queue_depth=2, workers=1))
    try:
        results = {}

        def submit(name, req):
            results[name] = broker.submit(req)

        t1 = threading.Thread(target=submit, args=("a", _req(cores=2)))
        t2 = threading.Thread(target=submit, args=("b", _req(cores=4)))
        t1.start()
        t2.start()
        _wait_until(lambda: broker.queue_depth() == 2)

        resp, served = broker.submit(_req(cores=8))       # over the bound
        assert served == "rejected"
        assert resp["status"] == "rejected"
        assert resp["reason"] == "queue_full"
        assert broker.counts["rejects_queue_full"] == 1

        # coalescing onto an in-flight job is NOT a new admission — it
        # must still succeed at full depth
        t3 = threading.Thread(target=submit, args=("a2", _req(cores=2)))
        t3.start()
        gate.set()
        for t in (t1, t2, t3):
            t.join(timeout=30.0)
        assert results["a"][1] == "computed"
        assert results["b"][1] == "computed"
        assert results["a2"][1] in ("coalesced", "cached")
        assert results["a"][0]["status"] == "ok"
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_deadline_expired_in_queue_is_rejected(registry, span_tracer):
    gate = threading.Event()
    broker = _gated_broker(registry, gate,
                           config=BrokerConfig(workers=1))
    try:
        results = {}

        def submit(name, req):
            results[name] = broker.submit(req)

        # job A occupies the single executor...
        t1 = threading.Thread(target=submit, args=("a", _req(cores=2)))
        t1.start()
        _wait_until(lambda: broker.queue_depth() == 1)
        # ...so job B's tiny deadline burns down while it queues
        t2 = threading.Thread(
            target=submit,
            args=("b", _req(cores=4, deadline_seconds=0.001)))
        t2.start()
        _wait_until(lambda: broker.queue_depth() == 2)
        import time
        time.sleep(0.05)
        gate.set()
        t1.join(timeout=30.0)
        t2.join(timeout=30.0)

        assert results["a"][0]["status"] == "ok"
        resp, served = results["b"]
        assert served == "rejected"
        assert resp["reason"] == "deadline"
        assert broker.counts["rejects_deadline"] == 1
        # a rejected job must not poison the result cache
        resp2, served2 = broker.submit(_req(cores=4))
        assert served2 == "computed"
        assert resp2["status"] == "ok"
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_task_timeout_during_execution_is_a_deadline_rejection(
        registry, span_tracer):
    def timing_out(session, request, **kw):
        raise TaskTimeout("task exceeded 0.5s")

    broker = RequestBroker(session=Session(jobs=1), execute=timing_out)
    try:
        resp, served = broker.submit(_req())
        assert served == "rejected"
        assert resp["reason"] == "deadline"
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_wrapped_task_timeout_still_counts_as_deadline(registry,
                                                       span_tracer):
    def wrapped(session, request, **kw):
        try:
            raise TaskTimeout("inner")
        except TaskTimeout as exc:
            raise RuntimeError("outer") from exc

    broker = RequestBroker(session=Session(jobs=1), execute=wrapped)
    try:
        resp, _ = broker.submit(_req())
        assert resp["reason"] == "deadline"
        assert broker.counts["errors"] == 0
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_expired_deadline_in_queue_is_never_executed(registry,
                                                     span_tracer):
    """A job whose deadline burned down while queued must be rejected
    *without* touching the execution path — deadline misses shed work,
    they never waste it."""
    gate = threading.Event()
    calls: list[str] = []

    def counting(session, request, **kw):
        calls.append(request.fingerprint())
        return execute_request(session, request, **kw)

    broker = _gated_broker(registry, gate, execute=counting,
                           config=BrokerConfig(workers=1))
    try:
        results = {}

        def submit(name, req):
            results[name] = broker.submit(req)

        t1 = threading.Thread(target=submit, args=("a", _req(cores=2)))
        t1.start()
        _wait_until(lambda: broker.queue_depth() == 1)
        expiring = _req(cores=4, deadline_seconds=0.001)
        t2 = threading.Thread(target=submit, args=("b", expiring))
        t2.start()
        _wait_until(lambda: broker.queue_depth() == 2)
        import time
        time.sleep(0.05)
        gate.set()
        t1.join(timeout=30.0)
        t2.join(timeout=30.0)

        assert results["b"][0]["reason"] == "deadline"
        assert calls == [_req(cores=2).fingerprint()]   # b never executed
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_deadline_mid_coalesce_wait_rejects_only_the_waiter(registry,
                                                            span_tracer):
    """A coalesced waiter whose own deadline expires is rejected, but
    the computation it adopted keeps running for everyone else."""
    gate = threading.Event()
    broker = _gated_broker(registry, gate)
    try:
        results = {}

        def submit():
            results["primary"] = broker.submit(_req())

        t1 = threading.Thread(target=submit)
        t1.start()
        _wait_until(lambda: broker.queue_depth() == 1)
        # same fingerprint (deadline_seconds is QoS, not identity):
        # this waiter coalesces, then times out while the job is gated
        resp, served = broker.submit(_req(deadline_seconds=0.1))
        assert served == "rejected"
        assert resp["reason"] == "deadline"
        assert broker.counts["rejects_deadline"] == 1

        gate.set()
        t1.join(timeout=30.0)
        assert results["primary"][0]["status"] == "ok"
        assert results["primary"][1] == "computed"
        # the adopted computation completed and is cached for retries
        resp2, served2 = broker.submit(_req())
        assert served2 == "cached"
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_non_positive_deadlines_are_protocol_errors(broker):
    with pytest.raises(ProtocolError, match="deadline_seconds"):
        broker.submit({"kind": "compile", "source": AXPY_SRC,
                       "deadline_seconds": 0})
    with pytest.raises(ProtocolError, match="deadline_seconds"):
        ServeRequest(kind="compile", source=AXPY_SRC,
                     deadline_seconds=-1.0)


def test_draining_broker_rejects_new_work(broker):
    broker.begin_drain()
    resp, served = broker.submit(_req())
    assert served == "rejected"
    assert resp["reason"] == "draining"
    assert broker.counts["rejects_draining"] == 1


# -- failure paths -----------------------------------------------------------

def test_execution_errors_become_typed_responses(registry, span_tracer):
    def boom(session, request, **kw):
        raise ValueError("no feasible II")

    broker = RequestBroker(session=Session(jobs=1), execute=boom)
    try:
        resp, served = broker.submit(_req())
        assert served == "computed"
        assert resp["status"] == "error"
        assert "no feasible II" in resp["error"]
        assert broker.counts["errors"] == 1
        # errors are not cached: the next identical submit re-executes
        _, served2 = broker.submit(_req())
        assert served2 == "computed"
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_stop_drains_in_flight_work(registry, span_tracer):
    gate = threading.Event()
    broker = _gated_broker(registry, gate)
    result = {}

    def submit():
        result["out"] = broker.submit(_req())

    t = threading.Thread(target=submit)
    t.start()
    _wait_until(lambda: broker.queue_depth() == 1)
    stopper = threading.Thread(target=lambda: result.update(
        drained=broker.stop(drain=True, timeout=30.0)))
    stopper.start()
    gate.set()
    t.join(timeout=30.0)
    stopper.join(timeout=30.0)
    assert result["drained"] is True
    assert result["out"][0]["status"] == "ok"


def test_config_validation():
    with pytest.raises(ValueError, match="max_queue_depth"):
        BrokerConfig(max_queue_depth=0)
    with pytest.raises(ValueError, match="workers"):
        BrokerConfig(workers=0)
    with pytest.raises(ValueError, match="retries"):
        BrokerConfig(retries=-1)


# -- health & shedding ---------------------------------------------------------

def test_queue_pressure_degrades_without_shedding(registry, span_tracer):
    """A full queue makes /healthz degraded, but duplicates still
    coalesce — a coalesced waiter costs no queue slot, so shedding it
    would only throw away free work."""
    gate = threading.Event()
    broker = _gated_broker(registry, gate,
                           config=BrokerConfig(max_queue_depth=2, workers=1))
    try:
        threads = [threading.Thread(target=broker.submit,
                                    args=(_req(cores=c),)) for c in (2, 4)]
        for t in threads:
            t.start()
        _wait_until(lambda: broker.queue_depth() == 2)
        health = broker.health()
        assert health.state == "degraded"
        assert not health.shed_duplicates
        assert any("queue depth" in r for r in health.reasons)
        gate.set()
        for t in threads:
            t.join(timeout=30.0)
        assert broker.counts["rejects_shed"] == 0
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_execution_distress_sheds_coalescible_duplicates(registry,
                                                         span_tracer):
    """Once recent jobs miss deadlines, new duplicate submissions are
    shed with a typed retryable rejection instead of piling waiters
    onto a struggling executor; fresh work is still admitted."""
    gate = threading.Event()
    broker = _gated_broker(
        registry, gate,
        config=BrokerConfig(workers=1,
                            health=HealthPolicy(min_samples=2)))
    try:
        results = {}

        def submit(name, req):
            results[name] = broker.submit(req)

        # one gated job plus two queued jobs whose deadlines burn down:
        # the recent-outcome window becomes [ok, deadline, deadline]
        t1 = threading.Thread(target=submit, args=("a", _req(cores=2)))
        t1.start()
        _wait_until(lambda: broker.queue_depth() == 1)
        t2 = threading.Thread(
            target=submit, args=("b", _req(cores=4,
                                           deadline_seconds=0.001)))
        t3 = threading.Thread(
            target=submit, args=("c", _req(cores=8,
                                           deadline_seconds=0.001)))
        t2.start()
        t3.start()
        _wait_until(lambda: broker.queue_depth() == 3)
        import time
        time.sleep(0.05)
        gate.set()
        for t in (t1, t2, t3):
            t.join(timeout=30.0)
        health = broker.health()
        assert health.state == "degraded"
        assert health.shed_duplicates

        # pin a fresh job in flight, then submit its duplicate
        gate.clear()
        t4 = threading.Thread(target=submit, args=("d", _req(cores=16)))
        t4.start()
        _wait_until(lambda: broker.queue_depth() == 1)
        resp, served = broker.submit(_req(cores=16))
        assert served == "rejected"
        assert resp["reason"] == "shed"
        assert broker.counts["rejects_shed"] == 1
        gate.set()
        t4.join(timeout=30.0)
        assert results["d"][0]["status"] == "ok"     # the original finished

        # distress sheds duplicates only — fresh work is still admitted
        resp2, served2 = broker.submit(_req(cores=2, unroll=2))
        assert served2 == "computed"
        assert resp2["status"] == "ok"
    finally:
        broker.stop(drain=False, timeout=1.0)


# -- journal replay ------------------------------------------------------------

def test_journal_records_admissions_and_completions(registry, span_tracer,
                                                    tmp_path):
    journal = RequestJournal.in_dir(tmp_path)
    broker = RequestBroker(session=Session(jobs=1), journal=journal)
    try:
        resp, _ = broker.submit(_req())
        replay = read_journal(journal.path)
        assert replay.incomplete == {}           # admitted, then completed
        assert replay.completed == {_req().fingerprint(): resp}
        appends = journal.appends
        _, served = broker.submit(_req())        # cache hit: no new records
        assert served == "cached"
        assert journal.appends == appends
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_restart_restores_completed_responses_without_recomputing(
        registry, span_tracer, tmp_path):
    first = RequestBroker(session=Session(jobs=1),
                          journal=RequestJournal.in_dir(tmp_path))
    resp1, _ = first.submit(_req())
    first.stop(drain=False, timeout=5.0)

    def must_not_execute(session, request, **kw):
        raise AssertionError("restored responses must not re-execute")

    second = RequestBroker(session=Session(jobs=1),
                           journal=RequestJournal.in_dir(tmp_path),
                           execute=must_not_execute).start()
    try:
        assert second.journal_counts["restored"] == 1
        resp2, served = second.submit(_req())
        assert served == "cached"
        assert response_bytes(resp2) == response_bytes(resp1)
        assert second.stats()["journal"]["restored"] == 1
    finally:
        second.stop(drain=False, timeout=1.0)


def test_restart_recovers_admitted_but_unfinished_work(registry,
                                                       span_tracer,
                                                       tmp_path):
    """An admitted-without-completed record — the signature a SIGKILL
    leaves — is re-executed on restart, so the retrying client's
    resubmission is a warm cache hit."""
    req = _req()
    crashed = RequestJournal.in_dir(tmp_path)
    crashed.admitted(req.fingerprint(), req.to_dict())

    calls: list[str] = []

    def counting(session, request, **kw):
        calls.append(request.fingerprint())
        return execute_request(session, request, **kw)

    broker = RequestBroker(session=Session(jobs=1),
                           journal=RequestJournal.in_dir(tmp_path),
                           execute=counting).start()
    try:
        _wait_until(lambda: broker.journal_counts["recovered"] == 1)
        resp, served = broker.submit(req)
        assert served == "cached"                # replay warmed the cache
        assert resp["status"] == "ok"
        assert calls == [req.fingerprint()]      # exactly one execution
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_unreplayable_journal_entries_are_abandoned(registry, span_tracer,
                                                    tmp_path):
    crashed = RequestJournal.in_dir(tmp_path)
    crashed.admitted("f" * 16, {"kind": "transmogrify", "source": "x"})
    broker = RequestBroker(session=Session(jobs=1),
                           journal=RequestJournal.in_dir(tmp_path)).start()
    try:
        assert broker.journal_counts["abandoned"] == 1
        assert broker.stats()["journal"]["abandoned"] == 1
    finally:
        broker.stop(drain=False, timeout=1.0)


def test_stats_without_a_journal_reports_none(broker):
    broker.submit(_req())
    assert broker.stats()["journal"] is None


# -- telemetry ---------------------------------------------------------------

def test_serve_metrics_and_spans(registry, span_tracer, broker):
    broker.submit(_req())
    broker.submit(_req())
    totals = registry.deterministic_totals()
    assert totals["serve.requests"] == 2
    assert totals["serve.completed"] == 1
    assert totals["serve.result_hits"] == 1
    assert totals["serve.request_seconds"] == {"count": 1}
    roots = [s for s in span_tracer.spans if s.name == "serve.request"]
    assert len(roots) == 1
    assert roots[0].attrs["kind"] == "compile"
    assert roots[0].attrs["outcome"] == "ok"
    assert roots[0].attrs["request_id"] == _req().request_id()
