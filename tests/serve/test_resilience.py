"""Resilience primitives: backoff, circuit breaker, health machine,
supervisor."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import CircuitOpen
from repro.serve.resilience import (
    HEALTH_DEGRADED,
    HEALTH_DRAINING,
    HEALTH_OK,
    BackoffPolicy,
    CircuitBreaker,
    HealthPolicy,
    Supervisor,
    SupervisorConfig,
)


# -- backoff -------------------------------------------------------------------

def test_backoff_is_deterministic_per_seed_and_attempt():
    a = BackoffPolicy(seed=7)
    b = BackoffPolicy(seed=7)
    assert [a.delay(i) for i in range(8)] == [b.delay(i) for i in range(8)]
    c = BackoffPolicy(seed=8)
    assert [a.delay(i) for i in range(8)] != [c.delay(i) for i in range(8)]


def test_backoff_grows_exponentially_and_caps():
    p = BackoffPolicy(initial=0.1, factor=2.0, max_delay=0.8, jitter=0.0)
    assert [p.delay(i) for i in range(5)] == [0.1, 0.2, 0.4, 0.8, 0.8]


def test_backoff_jitter_stays_in_band():
    p = BackoffPolicy(initial=1.0, factor=1.0, max_delay=1.0,
                      jitter=0.5, seed=3)
    for attempt in range(64):
        assert 0.75 <= p.delay(attempt) < 1.25


def test_backoff_validates():
    with pytest.raises(ValueError, match="initial"):
        BackoffPolicy(initial=0.0)
    with pytest.raises(ValueError, match="factor"):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ValueError, match="max_delay"):
        BackoffPolicy(initial=1.0, max_delay=0.5)
    with pytest.raises(ValueError, match="jitter"):
        BackoffPolicy(jitter=2.0)
    with pytest.raises(ValueError, match="attempt"):
        BackoffPolicy().delay(-1)


# -- circuit breaker -----------------------------------------------------------

class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_after_threshold_and_fails_fast(registry):
    clock = _Clock()
    b = CircuitBreaker("x:1", failure_threshold=3, reset_timeout=2.0,
                       clock=clock)
    for _ in range(2):
        b.guard()
        b.record_failure()
    assert b.state == CircuitBreaker.CLOSED     # under the threshold
    b.guard()
    b.record_failure()
    assert b.state == CircuitBreaker.OPEN
    with pytest.raises(CircuitOpen) as excinfo:
        b.guard()
    assert excinfo.value.retry_after == pytest.approx(2.0)
    assert registry.deterministic_totals()["serve.client.circuit_opens"] == 1


def test_breaker_half_open_admits_exactly_one_probe(registry):
    clock = _Clock()
    b = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
    b.record_failure()
    assert b.state == CircuitBreaker.OPEN
    clock.now = 1.5
    b.guard()                                   # the probe goes through
    assert b.state == CircuitBreaker.HALF_OPEN
    with pytest.raises(CircuitOpen):
        b.guard()                               # concurrent caller: no
    b.record_success()                          # probe succeeded
    assert b.state == CircuitBreaker.CLOSED
    b.guard()


def test_breaker_probe_failure_reopens(registry):
    clock = _Clock()
    b = CircuitBreaker(failure_threshold=2, reset_timeout=1.0, clock=clock)
    b.record_failure()
    b.record_failure()
    clock.now = 1.1
    b.guard()                                   # half-open probe
    b.record_failure()                          # one probe failure suffices
    assert b.state == CircuitBreaker.OPEN
    with pytest.raises(CircuitOpen):
        b.guard()


def test_breaker_success_resets_the_failure_count(registry):
    b = CircuitBreaker(failure_threshold=2)
    b.record_failure()
    b.record_success()
    b.record_failure()                          # 1 again, not 2
    assert b.state == CircuitBreaker.CLOSED


def test_breaker_validates():
    with pytest.raises(ValueError, match="failure_threshold"):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError, match="reset_timeout"):
        CircuitBreaker(reset_timeout=0.0)


# -- health machine --------------------------------------------------------------

def _evaluate(policy=None, **kw):
    base = dict(draining=False, queue_depth=0, max_queue_depth=64,
                recent_outcomes=(), pool_rebuilds_in_window=0)
    base.update(kw)
    return (policy or HealthPolicy()).evaluate(**base)


def test_health_ok_when_idle():
    report = _evaluate()
    assert report.state == HEALTH_OK
    assert report.ok
    assert not report.shed_duplicates
    assert report.reasons == ()


def test_health_queue_pressure_degrades_without_shedding():
    report = _evaluate(queue_depth=48)          # 75% of 64
    assert report.state == HEALTH_DEGRADED
    assert not report.shed_duplicates           # coalescing must survive
    assert any("queue depth" in r for r in report.reasons)


def test_health_pool_rebuilds_degrade_and_shed():
    report = _evaluate(pool_rebuilds_in_window=1)
    assert report.state == HEALTH_DEGRADED
    assert report.shed_duplicates
    assert any("rebuild" in r for r in report.reasons)


def test_health_deadline_miss_rate_degrades_and_sheds():
    report = _evaluate(recent_outcomes=("ok", "deadline", "deadline", "ok"))
    assert report.state == HEALTH_DEGRADED
    assert report.shed_duplicates
    assert any("deadline-miss" in r for r in report.reasons)


def test_health_deadline_rate_needs_min_samples():
    report = _evaluate(recent_outcomes=("deadline", "deadline"))
    assert report.state == HEALTH_OK            # below min_samples=4


def test_health_draining_wins():
    report = _evaluate(draining=True, queue_depth=64,
                       pool_rebuilds_in_window=3)
    assert report.state == HEALTH_DRAINING
    assert report.reasons == ("drain requested",)
    assert report.to_dict()["state"] == HEALTH_DRAINING


def test_health_policy_validates():
    with pytest.raises(ValueError, match="queue_fraction"):
        HealthPolicy(queue_fraction=0.0)
    with pytest.raises(ValueError, match="deadline_miss_rate"):
        HealthPolicy(deadline_miss_rate=1.5)
    with pytest.raises(ValueError, match="window"):
        HealthPolicy(window=0)
    with pytest.raises(ValueError, match="min_samples"):
        HealthPolicy(min_samples=0)


# -- supervisor ------------------------------------------------------------------

#: a minimal child answering /healthz — just enough daemon for the
#: supervisor's liveness probes, without compile cost per restart
_HEALTHZ_CHILD = """
import http.server, json, sys

class H(http.server.BaseHTTPRequestHandler):
    def do_GET(self):
        body = json.dumps({"status": "ok"}).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass

http.server.ThreadingHTTPServer(
    ("127.0.0.1", int(sys.argv[1])), H).serve_forever()
"""


def _free_port() -> int:
    import socket
    with socket.socket() as s:
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _wait_until(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.01)


def test_supervisor_restarts_a_sigkilled_child(registry):
    port = _free_port()

    def spawn():
        return subprocess.Popen(
            [sys.executable, "-c", _HEALTHZ_CHILD, str(port)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    config = SupervisorConfig(
        check_interval=0.05, startup_timeout=20.0, hang_timeout=5.0,
        backoff=BackoffPolicy(initial=0.05, max_delay=0.2),
        healthy_reset_seconds=3600.0)
    sup = Supervisor(spawn, "127.0.0.1", port, config, verbose=False)
    runner = threading.Thread(target=lambda: sup.run(), daemon=True)
    runner.start()
    try:
        _wait_until(lambda: sup.child_pid is not None)
        first_pid = sup.child_pid
        from repro.serve.client import ServeClient
        client = ServeClient("127.0.0.1", port, timeout=5.0)
        _wait_until(client.ping)
        # only kill once the supervisor is in its watch loop — a child
        # dying during startup counts as a failed start, not a crash
        checks = registry.counter("serve.supervisor.checks")
        _wait_until(lambda: checks.value >= 1)

        os.kill(first_pid, signal.SIGKILL)
        _wait_until(lambda: sup.restarts >= 1)
        _wait_until(lambda: client.ping()
                    and sup.child_pid not in (None, first_pid))
        assert sup.crashes >= 1
        totals = registry.deterministic_totals()
        assert totals["serve.restarts"] >= 1
        assert totals["serve.supervisor.crashes"] >= 1
    finally:
        sup.request_stop()
        runner.join(timeout=30.0)
    assert not runner.is_alive()
    assert sup.child_pid is None or sup.child.poll() is not None


def test_supervisor_gives_up_when_the_budget_is_exhausted(registry):
    port = _free_port()

    def spawn():
        return subprocess.Popen([sys.executable, "-c", "raise SystemExit(7)"],
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)

    config = SupervisorConfig(
        check_interval=0.05, startup_timeout=0.3, hang_timeout=1.0,
        backoff=BackoffPolicy(initial=0.01, max_delay=0.05),
        max_restarts=1)
    sup = Supervisor(spawn, "127.0.0.1", port, config, verbose=False)
    assert sup.run() == 1
    assert sup.restarts == 1
