"""Request-journal semantics: WAL discipline, corrupt-tail tolerance,
compaction, degradation on filesystem failure."""

from __future__ import annotations

import json

import pytest

from repro.serve.journal import (
    JOURNAL_FILENAME,
    JOURNAL_SCHEMA_VERSION,
    RequestJournal,
    read_journal,
)
from repro.serve.protocol import ServeRequest, ok_response

from .conftest import AXPY_SRC


def _req(**kw):
    base = dict(kind="compile", source=AXPY_SRC)
    base.update(kw)
    return ServeRequest(**base)


def _response(request):
    return ok_response(request, {"kind": "compile", "loop": "axpy"})


# -- reading -------------------------------------------------------------------

def test_missing_journal_reads_as_empty(tmp_path):
    replay = read_journal(tmp_path / "absent.jsonl")
    assert replay.records == 0
    assert replay.corrupt == 0
    assert not replay.completed and not replay.incomplete


def test_admitted_then_completed_restores_the_response(tmp_path, registry):
    journal = RequestJournal.in_dir(tmp_path)
    req = _req()
    fp = req.fingerprint()
    journal.admitted(fp, req.to_dict())
    journal.completed(fp, "ok", _response(req))

    replay = read_journal(journal.path)
    assert replay.records == 2
    assert replay.incomplete == {}
    assert replay.completed[fp] == _response(req)


def test_admitted_without_completion_is_incomplete(tmp_path, registry):
    journal = RequestJournal.in_dir(tmp_path)
    req = _req()
    journal.admitted(req.fingerprint(), req.to_dict())

    replay = read_journal(journal.path)
    assert replay.incomplete == {req.fingerprint(): req.to_dict()}
    assert replay.completed == {}


def test_non_ok_completion_closes_without_restoring(tmp_path, registry):
    journal = RequestJournal.in_dir(tmp_path)
    req = _req()
    journal.admitted(req.fingerprint(), req.to_dict())
    journal.completed(req.fingerprint(), "error")

    replay = read_journal(journal.path)
    assert replay.incomplete == {}
    assert replay.completed == {}
    assert replay.records == 2


def test_truncated_tail_is_skipped_not_fatal(tmp_path, registry):
    """The partial line a SIGKILL'd writer leaves must cost exactly that
    record, never the journal."""
    journal = RequestJournal.in_dir(tmp_path)
    req = _req()
    journal.admitted(req.fingerprint(), req.to_dict())
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"schema_version": 1, "kind": "completed", "fing')

    replay = read_journal(journal.path)
    assert replay.corrupt == 1
    assert replay.records == 1
    assert req.fingerprint() in replay.incomplete


def test_foreign_schema_versions_are_skipped(tmp_path):
    path = tmp_path / JOURNAL_FILENAME
    record = {"schema_version": JOURNAL_SCHEMA_VERSION + 1,
              "kind": "admitted", "fingerprint": "f" * 16,
              "request": {"kind": "compile", "source": "x"}}
    path.write_text(json.dumps(record) + "\n", encoding="utf-8")
    replay = read_journal(path)
    assert replay.corrupt == 1
    assert replay.records == 0


def test_malformed_records_are_skipped(tmp_path):
    path = tmp_path / JOURNAL_FILENAME
    lines = [
        "[1, 2, 3]",                                          # not an object
        '{"schema_version": 1, "kind": "mystery", "fingerprint": "f"}',
        '{"schema_version": 1, "kind": "admitted", "fingerprint": ""}',
        '{"schema_version": 1, "kind": "admitted", "fingerprint": "f"}',
        '{"schema_version": 1, "kind": "completed", "fingerprint": "f",'
        ' "status": "ok"}',                                   # no response
        "",                                                   # blank: free
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    replay = read_journal(path)
    assert replay.corrupt == 5
    assert replay.records == 0


# -- compaction -----------------------------------------------------------------

def test_compact_rewrites_to_exactly_the_live_records(tmp_path, registry):
    journal = RequestJournal.in_dir(tmp_path)
    done, pending = _req(cores=2), _req(cores=4)
    journal.admitted(done.fingerprint(), done.to_dict())
    journal.completed(done.fingerprint(), "ok", _response(done))
    journal.admitted(pending.fingerprint(), pending.to_dict())

    journal.compact({done.fingerprint(): _response(done)})

    replay = read_journal(journal.path)
    assert replay.corrupt == 0
    assert replay.completed == {done.fingerprint(): _response(done)}
    assert replay.incomplete == {}                # the admitted entry is gone
    # nothing but the journal file survives in the directory (the
    # tempfile was renamed over it, not left behind)
    assert [p.name for p in tmp_path.iterdir()] == [JOURNAL_FILENAME]


# -- degradation ------------------------------------------------------------------

def test_append_failure_disables_the_journal(tmp_path, registry, capsys):
    journal = RequestJournal(tmp_path / "no-such-dir" / JOURNAL_FILENAME)
    req = _req()
    journal.admitted(req.fingerprint(), req.to_dict())
    assert not journal.enabled
    assert journal.append_errors == 1
    assert "request journal disabled" in capsys.readouterr().err
    # further appends and compactions are silent no-ops
    journal.completed(req.fingerprint(), "ok", _response(req))
    journal.compact({})
    assert journal.appends == 0


def test_stats_dict_shape(tmp_path, registry):
    journal = RequestJournal.in_dir(tmp_path)
    journal.admitted("f" * 16, _req().to_dict())
    stats = journal.stats_dict()
    assert stats["enabled"] is True
    assert stats["appends"] == 1
    assert stats["append_errors"] == 0
    assert stats["path"].endswith(JOURNAL_FILENAME)
    assert registry.deterministic_totals()["serve.journal.appends"] == 1
