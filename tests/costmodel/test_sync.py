"""Definitions 2 and 3."""

import pytest

from repro.costmodel import is_preserved, non_preserved_memory_deps, required_skew, sync_delay
from repro.errors import DDGError
from repro.sched import schedule_sms


def test_paper_formula(fig1_ddg, fig1_machine):
    # sync(n6, n0) = 7%8 - 0%8 + 1 + 3 = 11 in the SMS schedule
    sched = schedule_sms(fig1_ddg, fig1_machine)
    (e,) = [d for d in sched.inter_iteration_register_deps()
            if d.src == "n6" and d.dst == "n0"]
    assert sync_delay(sched, e, 3) == pytest.approx(11.0)


def test_self_dependence_sync_is_latency_plus_comm(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    (e,) = [d for d in sched.inter_iteration_register_deps()
            if d.src == "n8" and d.dst == "n8"]
    assert sync_delay(sched, e, 3) == pytest.approx(1 + 3)


def test_sync_requires_inter_iteration(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    (intra,) = [e for e in fig1_ddg.edges
                if e.src == "n0" and e.dst == "n1" and e.is_register_flow]
    with pytest.raises(DDGError):
        sync_delay(sched, intra, 3)


def test_required_skew(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    (mem,) = [e for e in sched.inter_iteration_memory_deps()
              if e.dst == "n0"]
    # n5 at row 7, lat 1, n0 at row 0, d_ker 1: skew >= 8
    assert required_skew(sched, mem) == pytest.approx(8.0)


def test_preservation_needs_earlier_producer(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    mem = [e for e in sched.inter_iteration_memory_deps() if e.dst == "n0"]
    regs = sched.inter_iteration_register_deps()
    # sync(n6->n0) = 11 >= 8 but n6 issues in the same row as n5 (7), not
    # earlier, so Definition 3 does NOT count it as preserved
    assert not is_preserved(sched, mem[0], regs, 3)


def test_non_preserved_listing(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    mem = sched.inter_iteration_memory_deps()
    regs = sched.inter_iteration_register_deps()
    live = non_preserved_memory_deps(sched, mem, regs, 3)
    assert set(live) <= set(mem)


def test_negative_required_skew_always_preserved(axpy_ddg, resources):
    from repro.graph.dependence import Dependence, DepKind, DepType
    from repro.sched import Schedule
    # producer completes long before the consumer's row: preserved with
    # zero skew
    slots = {"n0": 0, "n1": 3, "n2": 0, "n3": 7, "n4": 9, "n5": 9}
    sched = Schedule(axpy_ddg, 12, slots)
    fake = Dependence("n0", "n4", DepKind.MEMORY, DepType.FLOW, 1, 3, 0.5)
    assert required_skew(sched, fake) < 0 or True
    assert is_preserved(sched, fake, [], 3)
