"""Equation 3."""

import pytest

from repro.costmodel import misspec_probability
from repro.graph.dependence import Dependence, DepKind, DepType


def _mem(p, name="x"):
    return Dependence(name, "y", DepKind.MEMORY, DepType.FLOW, 1, 1, p)


def test_empty_is_zero():
    assert misspec_probability([]) == 0.0


def test_single(): 
    assert misspec_probability([_mem(0.25)]) == pytest.approx(0.25)


def test_compounding():
    assert misspec_probability([_mem(0.5), _mem(0.5)]) == pytest.approx(0.75)


def test_certain_dep_dominates():
    assert misspec_probability([_mem(1.0), _mem(0.01)]) == pytest.approx(1.0)


def test_accepts_raw_floats():
    assert misspec_probability([0.1, 0.2]) == pytest.approx(1 - 0.9 * 0.8)
