"""Section 4.2 cost model."""

import pytest

from repro.config import ArchConfig
from repro.costmodel import (
    achieved_c_delay,
    estimate_execution_time,
    kernel_misspec_probability,
    misspec_penalty,
    objective_f,
    t_lower_bound,
)
from repro.sched import schedule_sms, schedule_tms


def test_t_lb_formula(arch):
    # T_lb = II + C_ci + max(C_spn, C_delay)
    assert t_lower_bound(8, 11, arch) == 8 + 2 + 11
    assert t_lower_bound(8, 1, arch) == 8 + 2 + 3


def test_objective_regimes(arch):
    # serial-part-dominated
    assert objective_f(8, 20, arch) == 20
    # core-throughput-dominated
    assert objective_f(40, 4, arch) == pytest.approx((40 + 2 + 4) / 4)
    # overhead floor
    assert objective_f(1, 1, arch) >= arch.spawn_overhead


def test_objective_monotone(arch):
    assert objective_f(10, 5, arch) <= objective_f(12, 5, arch)
    assert objective_f(10, 5, arch) <= objective_f(10, 8, arch)


def test_misspec_penalty(arch):
    # II + C_inv - max(0, C_delay - C_spn)
    assert misspec_penalty(8, 11, arch) == 8 + 15 - 8
    assert misspec_penalty(8, 2, arch) == 8 + 15


def test_achieved_c_delay_floor_zero(axpy_ddg, resources, arch):
    sched = schedule_sms(axpy_ddg, resources)
    assert achieved_c_delay(sched, arch) >= 0.0


def test_estimate_components(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    est = estimate_execution_time(sched, arch, iterations=1000)
    assert est.total == pytest.approx(est.t_nomiss + est.t_mis_spec)
    assert est.t_nomiss == pytest.approx(
        objective_f(sched.ii, est.c_delay, arch) * 1000)
    assert 0.0 <= est.p_m <= 1.0
    assert est.per_iteration > 0


def test_sync_all_mode_kills_misspec(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    est = estimate_execution_time(sched, arch, 100, synchronize_memory=True)
    assert est.t_mis_spec == 0.0


def test_tms_estimate_beats_sms(fig1_ddg, fig1_machine, arch):
    sms = schedule_sms(fig1_ddg, fig1_machine)
    tms = schedule_tms(fig1_ddg, fig1_machine, arch)
    assert estimate_execution_time(tms, arch, 1000).total < \
        estimate_execution_time(sms, arch, 1000).total
