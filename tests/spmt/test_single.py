"""Single-core baselines."""

import pytest

from repro.sched import list_schedule, schedule_sms
from repro.spmt import simulate_modulo_single_core, simulate_sequential


def test_sequential_linear(axpy_ddg, resources):
    t100 = simulate_sequential(axpy_ddg, resources, 100).total_cycles
    t200 = simulate_sequential(axpy_ddg, resources, 200).total_cycles
    assert t200 > t100
    assert (t200 - t100) == pytest.approx(
        simulate_sequential(axpy_ddg, resources, 300).total_cycles - t200)


def test_reorder_window_limits_overlap(axpy_ddg, resources):
    wide = simulate_sequential(axpy_ddg, resources, 100, window=4096)
    narrow = simulate_sequential(axpy_ddg, resources, 100, window=6)
    assert narrow.total_cycles >= wide.total_cycles


def test_modulo_single_core(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    stats = simulate_modulo_single_core(sched, 100)
    assert stats.total_cycles == (100 - 1) * sched.ii + sched.span


def test_modulo_single_core_zero_iterations(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    assert simulate_modulo_single_core(sched, 0).total_cycles == 0.0


def test_software_pipelining_helps_large_bodies(resources):
    # a recurrence-light large body: modulo scheduling beats the
    # window-limited sequential core (the lucas effect)
    from repro.workloads.doacross import _lucas_fft_loop
    from repro.graph import build_ddg
    from repro.machine import LatencyModel
    ddg = build_ddg(_lucas_fft_loop(), LatencyModel())
    seq = simulate_sequential(ddg, resources, 500)
    sched = schedule_sms(ddg, resources)
    smc = simulate_modulo_single_core(sched, 500)
    assert smc.total_cycles < seq.total_cycles
