"""Unit-level loop-nest model checks."""

import math

import pytest

from repro.config import ArchConfig
from repro.machine import ResourceModel
from repro.sched import run_postpass, schedule_tms
from repro.spmt.nest import (
    loop_entry_overhead,
    simulate_nest_inner_tms,
    simulate_nest_outer_parallel,
)
from repro.workloads import motivating_ddg, motivating_machine

ARCH = ArchConfig.paper_default()


@pytest.fixture(scope="module")
def pipelined():
    sched = schedule_tms(motivating_ddg(), motivating_machine(), ARCH)
    return run_postpass(sched, ARCH)


def test_entry_overhead_formula(pipelined):
    overhead = loop_entry_overhead(pipelined, ARCH)
    broadcast = (ARCH.ncore - 1) * ARCH.reg_comm_latency
    fill = (pipelined.num_stages - 1) * pipelined.ii / ARCH.ncore
    assert overhead == pytest.approx(broadcast + fill)


def test_inner_tms_scales_with_outer_trip(pipelined):
    a = simulate_nest_inner_tms(pipelined, ARCH, outer_trip=4, inner_trip=50)
    b = simulate_nest_inner_tms(pipelined, ARCH, outer_trip=8, inner_trip=50)
    assert b.total_cycles == pytest.approx(2 * a.total_cycles)
    assert b.iterations == 2 * a.iterations


def test_outer_parallel_wave_math():
    res = ResourceModel.default()
    ddg = motivating_ddg()
    t5 = simulate_nest_outer_parallel(ddg, res, ARCH, outer_trip=5,
                                      inner_trip=32)
    t8 = simulate_nest_outer_parallel(ddg, res, ARCH, outer_trip=8,
                                      inner_trip=32)
    # 5 outer iterations need 2 waves on 4 cores; 8 also need 2
    assert t5.total_cycles == pytest.approx(t8.total_cycles)
    t9 = simulate_nest_outer_parallel(ddg, res, ARCH, outer_trip=9,
                                      inner_trip=32)
    assert t9.total_cycles > t8.total_cycles
