"""Steady-state fast path: differential oracle, detector gating, and the
event-loop bugfixes that rode along (spawn-chain estimate, lazy cache rng).
"""

import numpy as np
import pytest

from repro.config import ArchConfig, SimConfig
from repro.obs import metrics
from repro.sched import run_postpass, schedule_sms, schedule_tms
from repro.spmt import simulate
from repro.spmt.fastpath import SteadyStateDetector
from repro.spmt.sim import SpMTSimulator
from repro.spmt.violations import RealisationTable


@pytest.fixture
def fig1_pipelined_sms(fig1_ddg, fig1_machine, arch):
    return run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)


@pytest.fixture
def axpy_pipelined(axpy_ddg, resources, arch):
    """Speculation-free kernel: any misspeculation is one we forced."""
    return run_postpass(schedule_sms(axpy_ddg, resources), arch)


@pytest.fixture
def fig1_pipelined_tms(fig1_ddg, fig1_machine, arch):
    return run_postpass(schedule_tms(fig1_ddg, fig1_machine, arch), arch)


def _both(pipelined, arch, **sim_kwargs):
    fast = simulate(pipelined, arch, SimConfig(**sim_kwargs))
    exact = simulate(pipelined, arch, SimConfig(exact=True, **sim_kwargs))
    return fast, exact


# -- differential oracle -----------------------------------------------------


@pytest.mark.parametrize("iterations", [1, 7, 60, 500, 5000])
@pytest.mark.parametrize("seed", [0xACE5, 3])
def test_fast_matches_exact_sms(fig1_pipelined_sms, arch, iterations, seed):
    fast, exact = _both(fig1_pipelined_sms, arch,
                        iterations=iterations, seed=seed)
    assert fast == exact


@pytest.mark.parametrize("iterations", [60, 500, 5000])
@pytest.mark.parametrize("seed", [0xACE5, 3])
def test_fast_matches_exact_tms(fig1_pipelined_tms, arch, iterations, seed):
    """TMS kernels carry manifest-unsafe speculated dependences, so skips
    must stop exactly at each violating thread."""
    fast, exact = _both(fig1_pipelined_tms, arch,
                        iterations=iterations, seed=seed)
    assert fast == exact


@pytest.mark.parametrize("arch_variant", [
    ArchConfig(ncore=2),
    ArchConfig(ncore=8),
    ArchConfig(spawn_overhead=0),
    ArchConfig(reg_comm_latency=7, commit_overhead=0),
    ArchConfig.single_core(),
])
def test_fast_matches_exact_arch_grid(fig1_pipelined_tms, arch_variant):
    fast, exact = _both(fig1_pipelined_tms, arch_variant,
                        iterations=900, seed=5)
    assert fast == exact


def test_fastforward_engages_and_is_counted(axpy_pipelined, arch):
    counter = metrics.counter("sim.fastforward_threads",
                              "threads skipped analytically")
    before = counter.value
    fast, exact = _both(axpy_pipelined, arch, iterations=20_000)
    assert fast == exact
    # spec-free kernel: one clean skip covers nearly the whole run
    assert counter.value - before > 15_000


def test_exact_env_var_forces_reference_loop(fig1_pipelined_sms, arch,
                                             monkeypatch):
    monkeypatch.setenv("REPRO_SIM_EXACT", "1")
    sim = SpMTSimulator(fig1_pipelined_sms, arch)
    assert sim._exact
    monkeypatch.setenv("REPRO_SIM_EXACT", "0")
    assert not SpMTSimulator(fig1_pipelined_sms, arch)._exact


def test_trace_records_identical_and_disable_fastforward(fig1_pipelined_sms,
                                                         arch):
    """Tracing keeps every per-thread record, so the fast-forward must
    stay out of the way — and the vectorised resolver must produce the
    same records the scalar one does."""
    traced = simulate(fig1_pipelined_sms, arch,
                      SimConfig(iterations=300, trace=True))
    exact = simulate(fig1_pipelined_sms, arch,
                     SimConfig(iterations=300, trace=True, exact=True))
    assert len(traced.thread_records) == 300
    assert traced.thread_records == exact.thread_records
    assert traced == exact


# -- detector gating ---------------------------------------------------------


def test_detector_rejects_fractional_spawn(fig1_pipelined_sms):
    sim = SpMTSimulator(fig1_pipelined_sms, ArchConfig(spawn_overhead=1.5))
    det = SteadyStateDetector(sim.template, sim.arch, 10_000)
    assert not det.viable


def test_fractional_spawn_still_matches_exact(fig1_pipelined_tms):
    arch = ArchConfig(spawn_overhead=1.5)
    fast, exact = _both(fig1_pipelined_tms, arch, iterations=800, seed=2)
    assert fast == exact


def test_detector_period_multiple_of_ncore(fig1_pipelined_sms, arch):
    sim = SpMTSimulator(fig1_pipelined_sms, arch)
    det = SteadyStateDetector(sim.template, arch, 10_000)
    assert all(p % arch.ncore == 0 for p in det.candidates)


# -- realisation block draws -------------------------------------------------


def test_block_draws_match_sequential(fig1_pipelined_tms, arch):
    sim = SpMTSimulator(fig1_pipelined_tms, arch)
    seq = RealisationTable(sim.template, seed=42)
    batched = RealisationTable(sim.template, seed=42)
    mat = batched.block(0, 64)
    for j in range(64):
        assert tuple(bool(x) for x in mat[j]) == seq.realised(j)
    # draws after the block continue the same stream
    assert batched.realised(64) == seq.realised(64)


def test_block_overlap_does_not_redraw(fig1_pipelined_tms, arch):
    sim = SpMTSimulator(fig1_pipelined_tms, arch)
    seq = RealisationTable(sim.template, seed=9)
    tab = RealisationTable(sim.template, seed=9)
    first = tab.block(0, 32)
    again = tab.block(16, 32)  # [16, 48): 16 overlap + 16 fresh
    assert np.array_equal(first[16:], again[:16])
    for j in range(48, 52):
        assert tab.realised(j) == seq_realised_at(seq, j)


def seq_realised_at(table, j):
    for i in range(j + 1):
        got = table.realised(i)
    return got


# -- spawn-chain squash estimate (satellite bugfix) --------------------------


class _ForcedViolation(SpMTSimulator):
    """Forces one violation on thread 5, detected ``gap`` cycles in."""

    GAP = 1.0

    def _inject_violation(self, j, core, attempt, timing):
        if j == 5 and attempt == 0:
            return timing.start + self.GAP
        return None


def _forced(axpy_ddg, resources, arch):
    pipelined = run_postpass(schedule_sms(axpy_ddg, resources), arch)
    return _ForcedViolation(pipelined, arch,
                            SimConfig(iterations=50, seed=1)).run()


def test_started_after_zero_spawn_squashes_window(axpy_ddg, resources):
    """With free spawns the whole speculative window was already running
    at detection time; the old estimate divided by max(C_spn, 1) and
    squashed only int(gap) threads."""
    arch = ArchConfig(ncore=4, spawn_overhead=0)
    stats = _forced(axpy_ddg, resources, arch)
    assert stats.misspeculations == 1
    assert stats.squashed_threads == 1 + (arch.ncore - 1)


def test_started_after_fractional_spawn_uses_true_chain(axpy_ddg, resources):
    """gap // C_spn with C_spn = 0.5 admits two spawned threads for a
    1-cycle gap (the old floor-by-1 admitted one)."""
    arch = ArchConfig(ncore=4, spawn_overhead=0.5)
    stats = _forced(axpy_ddg, resources, arch)
    assert stats.misspeculations == 1
    assert stats.squashed_threads == 1 + 2


def test_started_after_integer_spawn_unchanged(axpy_ddg, resources):
    """The estimate for the paper machine (C_spn = 3) is untouched: a
    1-cycle gap outruns no spawn."""
    arch = ArchConfig(ncore=4, spawn_overhead=3)
    stats = _forced(axpy_ddg, resources, arch)
    assert stats.misspeculations == 1
    assert stats.squashed_threads == 1


# -- lazy cache-perturbation state (satellite bugfix) ------------------------


def test_reused_simulator_replays_cache_stream(fig1_pipelined_sms):
    """run() twice on one simulator must give identical stats: the miss
    rng is re-derived per run instead of continuing the previous run's
    stream (the old eager state made reuse order-dependent)."""
    sim = SpMTSimulator(fig1_pipelined_sms, ArchConfig(l1_miss_rate=0.4),
                        SimConfig(iterations=200, seed=6))
    assert sim.run() == sim.run()


def test_cache_rng_seed_mix_pinned(fig1_pipelined_sms):
    """The miss stream is seeded with ``sim.seed ^ 0xCAC4E`` over the
    template's load instructions — pinned so the derivation cannot drift
    silently (it was previously unexercised on the default path)."""
    arch = ArchConfig(l1_miss_rate=1.0, l2_miss_rate=0.0)
    seed = 1234
    sim = SpMTSimulator(fig1_pipelined_sms, arch, SimConfig(seed=seed))
    extra = sim._draw_cache_extra()
    rng = np.random.default_rng(seed ^ 0xCAC4E)
    loads = [i for i, name in enumerate(sim.template.names)
             if fig1_pipelined_sms.schedule.ddg.node(name).opcode.is_load]
    expected = [0] * len(sim.template.names)
    for i in loads:
        assert rng.random() < 1.0  # l1 always misses at rate 1.0
        expected[i] = arch.l2_hit_latency - arch.l1_hit_latency
    assert extra == expected
    assert loads, "fig1 kernel has loads"


def test_cache_state_lazy_until_first_draw(fig1_pipelined_sms, arch):
    deterministic = SpMTSimulator(fig1_pipelined_sms, arch)
    assert deterministic._cache_rng is None
    assert deterministic._draw_cache_extra() is None
    assert deterministic._cache_rng is None  # zero miss rate never builds
    probabilistic = SpMTSimulator(fig1_pipelined_sms,
                                  ArchConfig(l1_miss_rate=0.9))
    assert probabilistic._cache_rng is None
    assert probabilistic._draw_cache_extra() is not None
    assert probabilistic._cache_rng is not None
