"""SpMT multicore simulator."""

import pytest

from repro.config import ArchConfig, SimConfig
from repro.sched import run_postpass, schedule_sms, schedule_tms
from repro.spmt import simulate


@pytest.fixture
def fig1_pipelined_sms(fig1_ddg, fig1_machine, arch):
    return run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)


@pytest.fixture
def fig1_pipelined_tms(fig1_ddg, fig1_machine, arch):
    return run_postpass(schedule_tms(fig1_ddg, fig1_machine, arch), arch)


def test_deterministic(fig1_pipelined_sms, arch):
    cfg = SimConfig(iterations=300, seed=11)
    s1 = simulate(fig1_pipelined_sms, arch, cfg)
    s2 = simulate(fig1_pipelined_sms, arch, cfg)
    assert s1.total_cycles == s2.total_cycles
    assert s1.misspeculations == s2.misspeculations


def test_seed_changes_violations(fig1_pipelined_tms, arch):
    a = simulate(fig1_pipelined_tms, arch, SimConfig(iterations=500, seed=1))
    b = simulate(fig1_pipelined_tms, arch, SimConfig(iterations=500, seed=2))
    assert a.misspeculations != b.misspeculations or \
        a.total_cycles != b.total_cycles


def test_throughput_bounds(fig1_pipelined_sms, arch):
    n = 1000
    stats = simulate(fig1_pipelined_sms, arch, SimConfig(iterations=n))
    # cannot beat perfect core-parallel issue of the kernel
    assert stats.total_cycles >= n * fig1_pipelined_sms.ii / arch.ncore
    # and cannot be worse than fully serial execution with overheads
    serial = n * (fig1_pipelined_sms.schedule.span
                  + arch.spawn_overhead + arch.commit_overhead
                  + arch.invalidation_overhead + 50)
    assert stats.total_cycles <= serial


def test_tms_beats_sms_on_motivating(fig1_pipelined_sms, fig1_pipelined_tms, arch):
    cfg = SimConfig(iterations=1000)
    sms = simulate(fig1_pipelined_sms, arch, cfg)
    tms = simulate(fig1_pipelined_tms, arch, cfg)
    assert tms.total_cycles < sms.total_cycles


def test_more_cores_help(fig1_pipelined_tms):
    cfg = SimConfig(iterations=500)
    t2 = simulate(fig1_pipelined_tms, ArchConfig(ncore=2), cfg)
    t4 = simulate(fig1_pipelined_tms, ArchConfig(ncore=4), cfg)
    assert t4.total_cycles <= t2.total_cycles


def test_stats_accounting(fig1_pipelined_sms, arch):
    n = 400
    stats = simulate(fig1_pipelined_sms, arch, SimConfig(iterations=n))
    assert stats.iterations == n
    assert stats.send_recv_pairs == \
        fig1_pipelined_sms.comm.pairs_per_iteration * n
    assert stats.spawn_cycles == arch.spawn_overhead * n
    assert stats.commit_cycles == arch.commit_overhead * n
    assert stats.communication_overhead == pytest.approx(
        stats.sync_stall_cycles
        + arch.reg_comm_latency * stats.send_recv_pairs)


def test_misspeculation_costs_cycles(fig1_pipelined_tms, arch):
    clean_arch = ArchConfig(invalidation_overhead=0)
    n = 2000
    base = simulate(fig1_pipelined_tms, arch, SimConfig(iterations=n))
    assert base.misspeculations > 0  # probabilities make some inevitable
    assert base.squashed_threads >= base.misspeculations
    assert base.invalidation_cycles == \
        base.misspeculations * arch.invalidation_overhead


def test_single_iteration(fig1_pipelined_sms, arch):
    stats = simulate(fig1_pipelined_sms, arch, SimConfig(iterations=1))
    # one thread = one kernel execution (II rows) plus commit
    assert stats.total_cycles >= fig1_pipelined_sms.ii


def test_summary_text(fig1_pipelined_sms, arch):
    stats = simulate(fig1_pipelined_sms, arch, SimConfig(iterations=10))
    assert "cycles" in stats.summary()


def test_cache_misses_slow_execution(fig1_pipelined_sms):
    from repro.config import ArchConfig, SimConfig
    from repro.spmt import simulate
    fast = ArchConfig.paper_default()
    slow = ArchConfig(l1_miss_rate=0.5, l2_miss_rate=0.5)
    cfg = SimConfig(iterations=400, seed=9)
    t_fast = simulate(fig1_pipelined_sms, fast, cfg)
    t_slow = simulate(fig1_pipelined_sms, slow, cfg)
    assert t_slow.total_cycles > t_fast.total_cycles


def test_cache_draws_deterministic(fig1_pipelined_sms):
    from repro.config import ArchConfig, SimConfig
    from repro.spmt import simulate
    arch = ArchConfig(l1_miss_rate=0.3)
    cfg = SimConfig(iterations=300, seed=4)
    a = simulate(fig1_pipelined_sms, arch, cfg)
    b = simulate(fig1_pipelined_sms, arch, cfg)
    assert a.total_cycles == b.total_cycles


def test_cache_same_seed_identical_stats(fig1_pipelined_sms):
    """The probabilistic cache is fully seeded: every counter repeats."""
    arch = ArchConfig(l1_miss_rate=0.4, l2_miss_rate=0.5)
    cfg = SimConfig(iterations=300, seed=21)
    a = simulate(fig1_pipelined_sms, arch, cfg)
    b = simulate(fig1_pipelined_sms, arch, cfg)
    for field in ("total_cycles", "sync_stall_cycles", "misspeculations",
                  "squashed_threads", "wasted_execution_cycles",
                  "invalidation_cycles"):
        assert getattr(a, field) == getattr(b, field), field


def test_cache_seed_changes_stall_totals(fig1_pipelined_sms):
    arch = ArchConfig(l1_miss_rate=0.4, l2_miss_rate=0.5)
    a = simulate(fig1_pipelined_sms, arch, SimConfig(iterations=300, seed=1))
    b = simulate(fig1_pipelined_sms, arch, SimConfig(iterations=300, seed=2))
    assert (a.sync_stall_cycles != b.sync_stall_cycles
            or a.total_cycles != b.total_cycles)


def test_zero_miss_rate_draws_nothing(fig1_pipelined_sms):
    from repro.spmt.sim import SpMTSimulator
    deterministic = SpMTSimulator(fig1_pipelined_sms,
                                  ArchConfig.paper_default())
    assert deterministic._cache_rng is None
    assert deterministic._draw_cache_extra() is None
    probabilistic = SpMTSimulator(fig1_pipelined_sms,
                                  ArchConfig(l1_miss_rate=0.9))
    extra = probabilistic._draw_cache_extra()
    assert extra is not None and any(e > 0 for e in extra)


def test_squash_counts_wasted_spawn_work(fig1_pipelined_tms, arch):
    """More-speculative threads' partial executions are charged to
    wasted_execution_cycles (estimated from the spawn chain), so the
    wasted total at least covers the violated threads' own work."""
    stats = simulate(fig1_pipelined_tms, arch, SimConfig(iterations=2000))
    assert stats.misspeculations > 0
    assert stats.squashed_threads >= stats.misspeculations
    assert stats.squashed_threads <= stats.misspeculations * arch.ncore
    assert stats.wasted_execution_cycles > 0
