"""Squash cascade edge cases, driven through deterministic fault
injection: violation on the most-speculative thread, back-to-back
violations on one thread, detection during the commit window, and a
full cascade storm — each also checked against the trace sanitizer.

Uses the axpy kernel: its memory dependences are all affine (strong
SIV), so the clean run has *zero* organic misspeculations and every
violation below is attributable to the plan."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.faults import FaultInjectingSimulator, FaultPlan, FaultSpec, \
    sanitize_events
from repro.obs import events as obs_events
from repro.sched import run_postpass, schedule_sms
from repro.spmt import simulate


@pytest.fixture
def axpy_pipelined(axpy_ddg, resources, arch):
    return run_postpass(schedule_sms(axpy_ddg, resources), arch)


def _run_sanitized(pipelined, arch, plan, iterations=40):
    sim = FaultInjectingSimulator(
        pipelined, arch, SimConfig(iterations=iterations, seed=2), plan=plan)
    with obs_events.tracing() as tracer:
        stats = sim.run()
        findings = sanitize_events(tracer.events, arch, stats=stats)
    assert findings == [], [str(f) for f in findings]
    return stats, dict(sim.injected)


def test_axpy_clean_run_has_no_organic_violations(axpy_pipelined, arch):
    stats = simulate(axpy_pipelined, arch, SimConfig(iterations=40, seed=2))
    assert stats.misspeculations == 0


def test_most_speculative_thread_squashes_only_itself(axpy_pipelined, arch):
    """A violation on the last thread has nothing more speculative in
    flight: exactly one thread squashed, even with late detection."""
    n = 40
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("violation", threads=(n - 1,), detect_frac=2.0),))
    stats, injected = _run_sanitized(axpy_pipelined, arch, plan,
                                     iterations=n)
    assert injected["violation"] == 1
    assert stats.misspeculations == 1
    assert stats.squashed_threads == 1


def test_back_to_back_violations_same_thread(axpy_pipelined, arch):
    """One thread violated on three consecutive attempts pays three
    invalidations and then clears (max_per_thread bounds the storm)."""
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("violation", threads=(5,), max_per_thread=3),))
    stats, injected = _run_sanitized(axpy_pipelined, arch, plan)
    assert injected["violation"] == 3
    assert stats.misspeculations == 3
    assert stats.invalidation_cycles == 3 * arch.invalidation_overhead
    assert stats.squashed_threads >= 3
    assert stats.wasted_execution_cycles > 0


def test_violation_during_commit_window(axpy_pipelined, arch):
    """detect_frac > 1 places detection past the thread's own execution
    span (i.e. while it is waiting to commit); the squash radius grows
    but stays within [1, ncore] and the trace still sanitizes."""
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("violation", threads=(8,), detect_frac=1.5),))
    stats, injected = _run_sanitized(axpy_pipelined, arch, plan)
    assert injected["violation"] == 1
    assert 1 <= stats.squashed_threads <= arch.ncore


def test_cascade_storm_every_thread(axpy_pipelined, arch):
    """Every thread violated once: n misspeculations, n invalidations,
    commit order and accounting still intact."""
    n = 30
    plan = FaultPlan(seed=1, specs=(FaultSpec("violation", every=1),))
    stats, injected = _run_sanitized(axpy_pipelined, arch, plan,
                                     iterations=n)
    assert injected["violation"] == n
    assert stats.misspeculations == n
    assert stats.invalidation_cycles == n * arch.invalidation_overhead
    assert stats.squashed_threads >= n


def test_cascade_slowdown_monotone_in_detection_time(axpy_pipelined, arch):
    """Later detection wastes more work: wasted cycles grow with
    detect_frac, everything else equal."""
    wasted = []
    for frac in (0.25, 1.0, 1.75):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec("violation", every=4, detect_frac=frac),))
        stats, _ = _run_sanitized(axpy_pipelined, arch, plan)
        wasted.append(stats.wasted_execution_cycles)
    assert wasted[0] < wasted[1] < wasted[2]
