"""Per-thread dataflow timing."""

import pytest

from repro.sched import run_postpass, schedule_sms
from repro.spmt.channels import KernelTimingTemplate, ThreadTiming


@pytest.fixture
def template(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    return KernelTimingTemplate(run_postpass(sched, arch), arch.reg_comm_latency)


def test_template_shape(template, fig1_ddg):
    assert template.ii == 8
    assert template.span >= 8
    assert len(template.names) == len(fig1_ddg)
    assert len(template.channels) == 4  # n6->n0, n6->n6, n7->n7, n8->n8


def test_no_arrivals_no_stall(template):
    timing = ThreadTiming.resolve(template, 100.0,
                                  [float("-inf")] * len(template.channels))
    assert timing.total_stall == 0.0
    assert timing.finish == 100.0 + template.span


def test_late_arrival_stalls_consumer_and_dependents(template):
    arrivals = [float("-inf")] * len(template.channels)
    # delay the n6 -> n0 value (n0 is the root of the critical chain)
    idx = next(i for i, ch in enumerate(template.channels)
               if ch.producer == "n6" and ch.consumer == "n0")
    arrivals[idx] = 150.0
    timing = ThreadTiming.resolve(template, 100.0, arrivals)
    assert timing.total_stall == pytest.approx(50.0)
    assert timing.issue_time(template, "n0") == pytest.approx(150.0)
    # n1 depends on n0: inherits the stall
    assert timing.issue_time(template, "n1") >= 150.0 + 1
    # the independent counter n7 does NOT inherit it (out-of-order core)
    assert timing.issue_time(template, "n7") < 150.0


def test_value_arrival_adds_hop_latency(template):
    timing = ThreadTiming.resolve(template, 0.0,
                                  [float("-inf")] * len(template.channels))
    idx = next(i for i, ch in enumerate(template.channels)
               if ch.producer == "n6" and ch.consumer == "n0")
    expected = timing.completion_time(template, "n6") + 1 * 3
    assert timing.value_arrival(template, idx) == pytest.approx(expected)


def test_extra_latency_extends_finish(template):
    n = len(template.names)
    base = ThreadTiming.resolve(template, 0.0,
                                [float("-inf")] * len(template.channels))
    slow = ThreadTiming.resolve(template, 0.0,
                                [float("-inf")] * len(template.channels),
                                extra_latency=[10] * n)
    assert slow.finish > base.finish
