"""Per-thread trace records."""

import pytest

from repro.config import ArchConfig, SimConfig
from repro.sched import run_postpass, schedule_sms
from repro.spmt import format_trace, simulate


@pytest.fixture
def traced_stats(fig1_ddg, fig1_machine, arch):
    pipelined = run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)
    return simulate(pipelined, arch, SimConfig(iterations=64, trace=True))


def test_one_record_per_thread(traced_stats):
    assert len(traced_stats.thread_records) == 64
    assert [r.index for r in traced_stats.thread_records] == list(range(64))


def test_round_robin_cores(traced_stats, arch):
    for rec in traced_stats.thread_records:
        assert rec.core == rec.index % arch.ncore


def test_timeline_ordering(traced_stats):
    records = traced_stats.thread_records
    for rec in records:
        assert rec.start <= rec.finish <= rec.commit
    # in-order commit
    commits = [r.commit for r in records]
    assert commits == sorted(commits)
    # spawn chain: starts are non-decreasing
    starts = [r.start for r in records]
    assert starts == sorted(starts)


def test_stall_accounting_matches_stats(traced_stats):
    assert sum(r.stall_cycles for r in traced_stats.thread_records) == \
        pytest.approx(traced_stats.sync_stall_cycles)


def test_restart_accounting(traced_stats):
    assert sum(r.restarts for r in traced_stats.thread_records) == \
        traced_stats.misspeculations


def test_trace_off_by_default(fig1_ddg, fig1_machine, arch):
    pipelined = run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)
    stats = simulate(pipelined, arch, SimConfig(iterations=16))
    assert stats.thread_records == []


def test_format_trace(traced_stats):
    text = format_trace(traced_stats.thread_records, limit=5)
    assert "core" in text and "more" in text


def test_format_trace_totals_cover_all_records(traced_stats):
    records = traced_stats.thread_records
    text = format_trace(records, limit=5)
    # the totals line aggregates every record, not just the shown ones
    assert f"... ({len(records) - 5} more)" in text
    expected = (f"totals: {len(records)} threads, "
                f"{sum(r.restarts for r in records)} restarts, "
                f"{sum(r.stall_cycles for r in records):.1f} stall cycles")
    assert text.splitlines()[-1] == expected


def test_format_trace_totals_without_truncation(traced_stats):
    records = traced_stats.thread_records[:3]
    text = format_trace(records, limit=20)
    assert "more" not in text
    assert text.splitlines()[-1].startswith("totals: 3 threads")


# -- timelines under squash/re-execute ---------------------------------------


@pytest.fixture
def squashed_stats(fig1_ddg, fig1_machine, arch):
    """A TMS run long enough that violations (and hence squash +
    re-execute rounds) are guaranteed to occur."""
    from repro.sched import schedule_tms
    pipelined = run_postpass(schedule_tms(fig1_ddg, fig1_machine, arch), arch)
    return simulate(pipelined, arch,
                    SimConfig(iterations=2000, seed=1, trace=True))


def test_squashes_occurred(squashed_stats):
    assert squashed_stats.misspeculations > 0
    assert any(r.restarts > 0 for r in squashed_stats.thread_records)


def test_restarted_threads_keep_valid_timeline(squashed_stats):
    for rec in squashed_stats.thread_records:
        assert rec.start <= rec.finish <= rec.commit


def test_per_core_monotonic_under_restarts(squashed_stats, arch):
    """A core runs its threads strictly in order even when some of them
    are squashed and re-executed: starts and commits never interleave."""
    by_core = {c: [] for c in range(arch.ncore)}
    for rec in squashed_stats.thread_records:
        by_core[rec.core].append(rec)
    for records in by_core.values():
        starts = [r.start for r in records]
        commits = [r.commit for r in records]
        assert starts == sorted(starts)
        assert commits == sorted(commits)
        # a core never starts iteration j before committing iteration
        # j - ncore (the double-buffered core becomes free at commit)
        for prev, nxt in zip(records, records[1:]):
            assert nxt.start >= prev.commit


def test_stall_accounting_with_restarts(squashed_stats):
    """Committed executions' stalls still sum exactly to the aggregate,
    i.e. squashed attempts' stalls are excluded from both."""
    assert sum(r.stall_cycles for r in squashed_stats.thread_records) == \
        pytest.approx(squashed_stats.sync_stall_cycles)


def test_restart_totals_with_restarts(squashed_stats):
    assert sum(r.restarts for r in squashed_stats.thread_records) == \
        squashed_stats.misspeculations
