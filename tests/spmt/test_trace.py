"""Per-thread trace records."""

import pytest

from repro.config import ArchConfig, SimConfig
from repro.sched import run_postpass, schedule_sms
from repro.spmt import format_trace, simulate


@pytest.fixture
def traced_stats(fig1_ddg, fig1_machine, arch):
    pipelined = run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)
    return simulate(pipelined, arch, SimConfig(iterations=64, trace=True))


def test_one_record_per_thread(traced_stats):
    assert len(traced_stats.thread_records) == 64
    assert [r.index for r in traced_stats.thread_records] == list(range(64))


def test_round_robin_cores(traced_stats, arch):
    for rec in traced_stats.thread_records:
        assert rec.core == rec.index % arch.ncore


def test_timeline_ordering(traced_stats):
    records = traced_stats.thread_records
    for rec in records:
        assert rec.start <= rec.finish <= rec.commit
    # in-order commit
    commits = [r.commit for r in records]
    assert commits == sorted(commits)
    # spawn chain: starts are non-decreasing
    starts = [r.start for r in records]
    assert starts == sorted(starts)


def test_stall_accounting_matches_stats(traced_stats):
    assert sum(r.stall_cycles for r in traced_stats.thread_records) == \
        pytest.approx(traced_stats.sync_stall_cycles)


def test_restart_accounting(traced_stats):
    assert sum(r.restarts for r in traced_stats.thread_records) == \
        traced_stats.misspeculations


def test_trace_off_by_default(fig1_ddg, fig1_machine, arch):
    pipelined = run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)
    stats = simulate(pipelined, arch, SimConfig(iterations=16))
    assert stats.thread_records == []


def test_format_trace(traced_stats):
    text = format_trace(traced_stats.thread_records, limit=5)
    assert "core" in text and "more" in text
