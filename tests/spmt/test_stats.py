"""SimStats derived quantities."""

import pytest

from repro.spmt import SimStats


def test_derived_metrics():
    stats = SimStats(iterations=100, ncore=4, total_cycles=1000.0,
                     sync_stall_cycles=50.0, send_recv_pairs=200,
                     misspeculations=2, reg_comm_latency=3)
    assert stats.cycles_per_iteration == pytest.approx(10.0)
    assert stats.misspec_frequency == pytest.approx(0.02)
    assert stats.communication_overhead == pytest.approx(50 + 600)


def test_zero_iterations_safe():
    stats = SimStats()
    assert stats.cycles_per_iteration == 0.0
    assert stats.misspec_frequency == 0.0
