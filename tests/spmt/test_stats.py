"""SimStats derived quantities."""

import pytest

from repro.spmt import SimStats


def test_derived_metrics():
    stats = SimStats(iterations=100, ncore=4, total_cycles=1000.0,
                     sync_stall_cycles=50.0, send_recv_pairs=200,
                     misspeculations=2, reg_comm_latency=3)
    assert stats.cycles_per_iteration == pytest.approx(10.0)
    assert stats.misspec_frequency == pytest.approx(0.02)
    assert stats.communication_overhead == pytest.approx(50 + 600)


def test_zero_iterations_safe():
    stats = SimStats()
    assert stats.cycles_per_iteration == 0.0
    assert stats.misspec_frequency == 0.0


def test_default_reg_comm_latency_tracks_config():
    from repro.config import ArchConfig
    # the default is derived from the paper's architecture, not a
    # hardcoded literal duplicated in two modules
    assert SimStats().reg_comm_latency == \
        ArchConfig.paper_default().reg_comm_latency


def test_simulator_stamps_arch_latency(fig1_ddg, fig1_machine):
    from repro.config import ArchConfig, SimConfig
    from repro.sched import run_postpass, schedule_sms
    from repro.spmt import simulate
    arch = ArchConfig(ncore=4, reg_comm_latency=7)
    pipelined = run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)
    stats = simulate(pipelined, arch, SimConfig(iterations=8))
    assert stats.reg_comm_latency == 7
