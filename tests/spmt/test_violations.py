"""Speculated-dependence realisation and detection."""

import pytest

from repro.sched import run_postpass, schedule_sms
from repro.spmt.channels import KernelTimingTemplate, ThreadTiming
from repro.spmt.violations import RealisationTable, detect_violation


@pytest.fixture
def template(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    return KernelTimingTemplate(run_postpass(sched, arch), arch.reg_comm_latency)


def test_realisations_deterministic(template):
    t1 = RealisationTable(template, seed=42)
    t2 = RealisationTable(template, seed=42)
    for j in range(32):
        assert t1.realised(j) == t2.realised(j)


def test_realisations_sticky(template):
    table = RealisationTable(template, seed=1)
    first = table.realised(5)
    table.forget(5)
    assert table.realised(5) == first


def test_realisation_rate_tracks_probability(template):
    table = RealisationTable(template, seed=3)
    n = 4000
    counts = [0] * len(template.speculated)
    for j in range(n):
        for i, hit in enumerate(table.realised(j)):
            counts[i] += hit
    for count, (_x, _y, _k, p) in zip(counts, template.speculated):
        assert count / n == pytest.approx(p, abs=0.01)


def test_violation_detection(template):
    timings = {}
    no_arrivals = [float("-inf")] * len(template.channels)
    timings[0] = ThreadTiming.resolve(template, 0.0, no_arrivals)
    # thread 1 starts immediately: its row-0 loads issue before thread 0's
    # store (row 7) completes -> violated if the dependence manifests
    timings[1] = ThreadTiming.resolve(template, 1.0, no_arrivals)
    realised = tuple(True for _ in template.speculated)
    hit = detect_violation(template, timings, realised, 1)
    assert hit is not None
    _idx, detected = hit
    assert detected == pytest.approx(
        timings[0].completion_time(template, "n5"))


def test_no_violation_when_spaced(template):
    timings = {}
    no_arrivals = [float("-inf")] * len(template.channels)
    timings[0] = ThreadTiming.resolve(template, 0.0, no_arrivals)
    timings[1] = ThreadTiming.resolve(template, 100.0, no_arrivals)
    realised = tuple(True for _ in template.speculated)
    assert detect_violation(template, timings, realised, 1) is None


def test_unrealised_never_violates(template):
    timings = {}
    no_arrivals = [float("-inf")] * len(template.channels)
    timings[0] = ThreadTiming.resolve(template, 0.0, no_arrivals)
    timings[1] = ThreadTiming.resolve(template, 0.0, no_arrivals)
    realised = tuple(False for _ in template.speculated)
    assert detect_violation(template, timings, realised, 1) is None
