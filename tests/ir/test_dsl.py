"""DSL parser coverage."""

import pytest

from repro.errors import DSLParseError
from repro.ir import AffineIndex, IndirectIndex, Opcode, parse_loop


def test_full_loop(axpy_loop):
    assert len(axpy_loop) == 6
    assert axpy_loop.live_ins == {"a": 2.0, "s": 0.0}
    assert axpy_loop.arrays == {"X": 64, "Y": 64}


def test_affine_index_forms():
    loop = parse_loop("""
loop idx
array A 32
n0: a = load A[2*i+3]
n1: b = load A[3*i]
n2: c = load A[7]
n3: d = fadd a, b
n4: store A[i], d
""")
    assert loop.instruction("n0").mem.index == AffineIndex(2, 3)
    assert loop.instruction("n1").mem.index == AffineIndex(3, 0)
    assert loop.instruction("n2").mem.index == AffineIndex(0, 7)


def test_indirect_index():
    loop = parse_loop("""
loop ind
array A 32
livein p 1.0
n0: a = load A[p]
n1: p = iadd p, 3
""")
    assert isinstance(loop.instruction("n0").mem.index, IndirectIndex)


def test_alias_hints():
    loop = parse_loop("""
loop hints
array A 32
livein p 1.0
n0: a = load A[p] !alias n2:1:0.05
n1: b = fadd a, 1.0
n2: store A[p], b
n3: p = iadd p, 3
""")
    hint = loop.instruction("n0").alias_hints[0]
    assert hint.producer == "n2"
    assert hint.probability == pytest.approx(0.05)


def test_back_reference_operand():
    loop = parse_loop("""
loop back
livein s 0.0
n0: t = fadd s@-1, 1.0
n1: s = fadd s, t
""")
    assert loop.instruction("n0").srcs[0].back == 1


def test_coverage_attribute():
    loop = parse_loop("""
loop cov coverage=0.25
livein s 0.0
n0: s = fadd s, 1.0
""")
    assert loop.coverage == pytest.approx(0.25)


@pytest.mark.parametrize("bad", [
    "array A 16",                       # no loop directive
    "loop l\nloop m",                   # duplicate directive
    "loop l\nn0: ???",                  # junk instruction
    "loop l\nn0: t = frobnicate a, b",  # unknown opcode
    "loop l\nn0: t = fadd a, b !alias x:1:0.5",  # hint on arith
])
def test_parse_errors(bad):
    with pytest.raises(DSLParseError):
        parse_loop(bad)


def test_error_reports_line_number():
    try:
        parse_loop("loop l\nn0: t = frobnicate a")
    except DSLParseError as exc:
        assert exc.line_no == 2
    else:
        pytest.fail("expected DSLParseError")
