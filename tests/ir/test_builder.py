"""LoopBuilder coercions and construction."""

import pytest

from repro.errors import IRError
from repro.ir import LoopBuilder, Opcode, Reg


def test_operand_coercion():
    b = LoopBuilder("l", live_ins={"a": 1.0})
    b.op("n0", "fadd", "t", "a", 2.5)
    b.op("n1", Opcode.FMUL, "u", Reg("a"), "t@-1")
    loop = b.build()
    ins = loop.instruction("n1")
    assert ins.srcs[1].back == 1


def test_auto_names():
    b = LoopBuilder("l", live_ins={"a": 1.0})
    first = b.op(None, "fadd", "t", "a", 1.0)
    second = b.op(None, "fadd", "u", "t", 1.0)
    assert first.name != second.name


def test_load_store_roundtrip():
    b = LoopBuilder("l", arrays={"A": 16})
    b.load("n0", "v", "A", coeff=2, offset=1)
    b.store("n1", "A", "v", offset=3)
    loop = b.build()
    assert loop.instruction("n0").mem.index.coeff == 2
    assert loop.instruction("n1").mem.index.offset == 3


def test_indirect_index_requires_register():
    b = LoopBuilder("l", arrays={"A": 16})
    with pytest.raises(IRError):
        b.load("n0", "v", "A", index_reg=1.5)


def test_build_validates():
    b = LoopBuilder("l")
    b.op("n0", "fadd", "t", "missing", 1.0)
    with pytest.raises(IRError):
        b.build()
    assert b.build(validate=False) is not None
