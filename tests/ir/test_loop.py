"""Loop container invariants."""

import pytest

from repro.errors import IRError
from repro.ir import Instruction, Loop, Opcode, Reg


def _mk(name, dest, *srcs):
    return Instruction(name, Opcode.FADD, dest=dest,
                       srcs=tuple(Reg(s) for s in srcs))


def test_empty_body_rejected():
    with pytest.raises(IRError):
        Loop("l", body=())


def test_position_and_lookup():
    loop = Loop("l", body=(_mk("a", "x", "u", "u"), _mk("b", "y", "x", "x")),
                live_ins={"u": 1.0})
    assert loop.position("b") == 1
    assert loop.instruction("a").dest == "x"
    with pytest.raises(IRError):
        loop.position("zzz")


def test_double_definition_rejected():
    loop = Loop("l", body=(_mk("a", "x", "u", "u"), _mk("b", "x", "u", "u")),
                live_ins={"u": 1.0})
    with pytest.raises(IRError):
        loop.definers()


def test_coverage_bounds():
    body = (_mk("a", "x", "u", "u"),)
    with pytest.raises(IRError):
        Loop("l", body=body, coverage=0.0)
    with pytest.raises(IRError):
        Loop("l", body=body, coverage=1.5)
    assert Loop("l", body=body, coverage=0.5).coverage == 0.5


def test_listing_contains_instructions(axpy_loop):
    text = axpy_loop.listing()
    for name in axpy_loop.instruction_names:
        assert name in text


def test_loads_and_stores(axpy_loop):
    assert {i.name for i in axpy_loop.loads} == {"n0", "n2"}
    assert {i.name for i in axpy_loop.stores} == {"n4"}
