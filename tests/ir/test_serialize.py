"""Loop / schedule JSON round-trips."""

import json

import pytest

from repro.errors import IRError
from repro.ir import dumps_loop, loads_loop, run_sequential
from repro.ir.serialize import schedule_from_dict, schedule_to_dict
from repro.workloads import DOACROSS_LOOPS, kernel_by_name, motivating_loop


@pytest.mark.parametrize("loop_factory", [
    motivating_loop,
    lambda: kernel_by_name("histogram"),
    lambda: DOACROSS_LOOPS[4].loop,  # equake (indirect + hints)
])
def test_loop_roundtrip(loop_factory):
    loop = loop_factory()
    clone = loads_loop(dumps_loop(loop))
    assert clone.name == loop.name
    assert clone.instruction_names == loop.instruction_names
    assert clone.live_ins == dict(loop.live_ins)
    assert clone.arrays == dict(loop.arrays)
    # semantics survive the round trip
    assert run_sequential(clone, 12).state_fingerprint() == \
        run_sequential(loop, 12).state_fingerprint()


def test_hints_survive():
    loop = kernel_by_name("histogram")
    clone = loads_loop(dumps_loop(loop))
    orig = loop.instruction("n2").alias_hints
    got = clone.instruction("n2").alias_hints
    assert got == orig


def test_bad_format_rejected():
    with pytest.raises(IRError):
        loads_loop(json.dumps({"format": 99}))


def test_schedule_roundtrip(axpy_loop, resources):
    from repro.graph import build_ddg
    from repro.machine import LatencyModel
    from repro.sched import schedule_sms, validate_schedule
    ddg = build_ddg(axpy_loop, LatencyModel())
    sched = schedule_sms(ddg, resources)
    data = schedule_to_dict(sched)
    clone = schedule_from_dict(data)
    assert clone.ii == sched.ii
    assert dict(clone.slots) == dict(sched.slots)
    validate_schedule(clone, resources)


def test_schedule_without_loop_rejected(resources):
    from repro.graph import DDG, DDGNode
    from repro.ir.opcode import Opcode
    from repro.sched import Schedule
    ddg = DDG("synth", [DDGNode("a", Opcode.FADD, 2, 0)], [])
    sched = Schedule(ddg, 1, {"a": 0})
    data = schedule_to_dict(sched)
    with pytest.raises(IRError):
        schedule_from_dict(data)
