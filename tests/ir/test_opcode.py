"""Opcode/FU-class invariants."""

import pytest

from repro.ir.opcode import DEFAULT_LATENCY, OPCODE_FU, FUClass, Opcode


def test_every_opcode_has_fu_class():
    for op in Opcode:
        assert op.fu_class in FUClass


def test_every_opcode_has_default_latency():
    for op in Opcode:
        assert DEFAULT_LATENCY[op] >= 1


def test_memory_classification():
    assert Opcode.LOAD.is_load and Opcode.LOAD.is_mem
    assert Opcode.STORE.is_store and Opcode.STORE.is_mem
    assert not Opcode.FADD.is_mem


def test_dest_classification():
    assert Opcode.LOAD.has_dest
    assert Opcode.FADD.has_dest
    assert not Opcode.STORE.has_dest
    assert not Opcode.SPAWN.has_dest
    assert not Opcode.NOP.has_dest


def test_comm_opcodes():
    for op in (Opcode.SEND, Opcode.RECV, Opcode.SPAWN):
        assert op.is_comm
        assert op.fu_class is FUClass.COMM
    assert not Opcode.COPY.is_comm


def test_operand_counts():
    assert Opcode.FADD.num_srcs == 2
    assert Opcode.FNEG.num_srcs == 1
    assert Opcode.SELECT.num_srcs == 3
    assert Opcode.FMA.num_srcs == 3
    assert Opcode.LOAD.num_srcs == 0
    assert Opcode.STORE.num_srcs == 1


def test_fmul_slower_than_fadd():
    # the paper's motivating example relies on the multiply being the
    # longest arithmetic latency
    assert DEFAULT_LATENCY[Opcode.FMUL] > DEFAULT_LATENCY[Opcode.FADD]


def test_division_heaviest():
    assert DEFAULT_LATENCY[Opcode.FDIV] > DEFAULT_LATENCY[Opcode.FMUL]
    assert DEFAULT_LATENCY[Opcode.FSQRT] >= DEFAULT_LATENCY[Opcode.FDIV]
