"""If-conversion of guarded regions."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import run_sequential
from repro.ir.ifconvert import GuardedLoopBuilder
from repro.ir.opcode import Opcode


def _clip_builder():
    """Conditionally clamp: if x > t: y = t; always store y."""
    gb = GuardedLoopBuilder("clip", arrays={"X": 32, "Y": 32},
                            live_ins={"t": 1.0, "y": 0.0})
    gb.load("l0", "x", "X")
    gb.op("c0", Opcode.CMPLT, "over", "t", "x")   # over = t < x
    with gb.when("over"):
        gb.op("u0", Opcode.MOV, "y", "t")
    gb.op("e0", Opcode.SELECT, "z", "over", "y", "x")
    gb.store("s0", "Y", "z")
    return gb


def _guarded_store_builder():
    """Conditionally accumulate into memory."""
    gb = GuardedLoopBuilder("condacc", arrays={"X": 32, "A": 32},
                            live_ins={"th": 1.0})
    gb.load("l0", "x", "X")
    gb.op("c0", Opcode.CMPLT, "big", "th", "x")
    gb.op("d0", Opcode.FMUL, "v", "x", 2.0)
    with gb.when("big"):
        gb.store("s0", "A", "v")
    return gb


@pytest.mark.parametrize("factory", [_clip_builder, _guarded_store_builder])
def test_lowered_loop_is_single_basic_block(factory):
    loop = factory().lower()
    # only plain compute/memory opcodes remain (if-converted)
    assert all(not ins.opcode.is_comm for ins in loop.body)


@pytest.mark.parametrize("factory", [_clip_builder, _guarded_store_builder])
def test_lowering_preserves_semantics(factory):
    gb = factory()
    loop = gb.lower()
    n = 24
    init = {name: np.linspace(0.0, 2.0, size)
            for name, size in gb.arrays.items()}
    ref_regs, ref_arrays = gb.reference_run(n, array_init=init)
    got = run_sequential(loop, n, array_init=init)
    for name, arr in ref_arrays.items():
        assert np.allclose(arr, got.arrays[name]), name
    for reg, val in ref_regs.items():
        if reg in got.registers:
            assert got.registers[reg] == pytest.approx(val), reg


def test_converted_loop_schedules_and_pipelines(resources, arch):
    from repro.graph import build_ddg
    from repro.machine import LatencyModel
    from repro.sched import schedule_tms
    from repro.sched.pipeline_exec import check_equivalence
    loop = _guarded_store_builder().lower()
    ddg = build_ddg(loop, LatencyModel.for_arch(arch))
    sched = schedule_tms(ddg, resources, arch)
    assert check_equivalence(loop, sched, iterations=16)


def test_nested_guards_rejected():
    gb = GuardedLoopBuilder("nested", live_ins={"c": 1.0})
    with gb.when("c"):
        with pytest.raises(IRError):
            with gb.when("c"):
                pass


def test_guarded_load_rejected():
    gb = GuardedLoopBuilder("gl", arrays={"X": 8}, live_ins={"c": 1.0})
    with gb.when("c"):
        with pytest.raises(IRError):
            gb.load("l0", "x", "X")
