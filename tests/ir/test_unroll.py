"""Loop unrolling (the paper's future-work extension)."""

import pytest

from repro.errors import IRError
from repro.graph import build_ddg
from repro.ir import parse_loop, unroll_loop
from repro.ir.unroll import check_unroll_equivalence
from repro.machine import LatencyModel
from repro.workloads import DOACROSS_LOOPS, motivating_loop


def test_factor_one_is_identity(axpy_loop):
    assert unroll_loop(axpy_loop, 1) is axpy_loop


def test_invalid_factor(axpy_loop):
    with pytest.raises(IRError):
        unroll_loop(axpy_loop, 0)


def test_instruction_count(axpy_loop):
    assert len(unroll_loop(axpy_loop, 3)) == 3 * len(axpy_loop)


@pytest.mark.parametrize("factor", [2, 3, 4])
def test_axpy_equivalence(axpy_loop, factor):
    assert check_unroll_equivalence(axpy_loop, factor, iterations=10)


@pytest.mark.parametrize("factor", [2, 4])
def test_recurrent_equivalence(recurrent_loop, factor):
    assert check_unroll_equivalence(recurrent_loop, factor, iterations=10)


def test_motivating_equivalence():
    assert check_unroll_equivalence(motivating_loop(), 2, iterations=12)


def test_small_doacross_equivalence():
    small = [sl for sl in DOACROSS_LOOPS if len(sl.loop) <= 20]
    assert small
    for sl in small:
        assert check_unroll_equivalence(sl.loop, 2, iterations=10)


def test_induction_variable_reads():
    loop = parse_loop("""
loop iv
array A 64
livein s 0.0
n0: t = fmul i, 2.0
n1: s = fadd s, t
n2: store A[i], t
n3: v = load A[2*i+1]
""")
    assert check_unroll_equivalence(loop, 3, iterations=8)


def test_affine_subscripts_rescaled(axpy_loop):
    unrolled = unroll_loop(axpy_loop, 2)
    idx0 = unrolled.instruction("n0__u0").mem.index
    idx1 = unrolled.instruction("n0__u1").mem.index
    assert (idx0.coeff, idx0.offset) == (2, 0)
    assert (idx1.coeff, idx1.offset) == (2, 1)


def test_carried_dependence_distance_shrinks(recurrent_loop):
    # the original distance-2 memory recurrence becomes distance-1 at
    # factor 2: the recurrence amortises over coarser threads
    lat = LatencyModel()
    orig = build_ddg(recurrent_loop, lat)
    unrolled = build_ddg(unroll_loop(recurrent_loop, 2), lat)
    orig_d = {e.distance for e in orig.memory_flow_edges()}
    new_d = {e.distance for e in unrolled.memory_flow_edges()}
    assert 2 in orig_d
    assert 1 in new_d


def test_alias_hints_retargeted():
    loop = parse_loop("""
loop hints
array A 64
livein p 1.0
n0: v = load A[p] !alias n2:1:0.01
n1: w = fadd v, 1.0
n2: store A[p], w
n3: p = iadd p, 3
""")
    unrolled = unroll_loop(loop, 2)
    h0 = unrolled.instruction("n0__u0").alias_hints[0]
    h1 = unrolled.instruction("n0__u1").alias_hints[0]
    # copy 0's load depends on copy 1's store one unrolled iteration back;
    # copy 1's load depends on copy 0's store in the same unrolled iteration
    assert (h0.producer, h0.distance) == ("n2__u1", 1)
    assert (h1.producer, h1.distance) == ("n2__u0", 0)


def test_unrolled_loop_schedules(axpy_loop, resources, arch):
    from repro.sched import schedule_tms, validate_schedule
    ddg = build_ddg(unroll_loop(axpy_loop, 4), LatencyModel.for_arch(arch))
    sched = schedule_tms(ddg, resources, arch)
    validate_schedule(sched, resources)


def test_granularity_trades_communication(arch, resources):
    # more original iterations per thread -> fewer SEND/RECV pairs per
    # original iteration (the paper's motivation for unrolling)
    from repro.experiments.pipeline import compile_loop
    sl = next(s for s in DOACROSS_LOOPS if len(s.loop) <= 20)
    base = compile_loop(sl.loop, arch, resources)
    coarse = compile_loop(unroll_loop(sl.loop, 4), arch, resources)
    assert coarse.tms.pipelined.comm.pairs_per_iteration / 4 < \
        base.tms.pipelined.comm.pairs_per_iteration
