"""IR validation rules."""

import pytest

from repro.errors import IRError
from repro.ir import parse_loop, validate_loop
from repro.ir.builder import LoopBuilder
from repro.ir.instruction import Instruction
from repro.ir.opcode import Opcode
from repro.ir.operand import Reg


def test_undefined_register_rejected():
    with pytest.raises(IRError, match="undefined"):
        parse_loop("loop l\nn0: t = fadd ghost, 1.0")


def test_induction_var_cannot_be_defined():
    with pytest.raises(IRError):
        parse_loop("loop l\nn0: i = iadd i, 1")


def test_backref_on_live_in_only_register_rejected():
    with pytest.raises(IRError, match="back-reference"):
        parse_loop("loop l\nlivein a 1.0\nn0: t = fadd a@-1, 1.0")


def test_undeclared_array_rejected():
    with pytest.raises(IRError, match="undeclared"):
        parse_loop("loop l\nn0: t = load GHOST[i]")


def test_alias_hint_must_name_store():
    with pytest.raises(IRError, match="alias hint"):
        parse_loop("""
loop l
array A 8
n0: t = load A[i] !alias n1:1:0.5
n1: u = fadd t, 1.0
""")


def test_postpass_opcodes_rejected_in_source():
    b = LoopBuilder("l")
    b.add(Instruction("n0", Opcode.RECV, dest="t"))
    with pytest.raises(IRError, match="post-pass"):
        b.build()


def test_negative_affine_start_rejected():
    with pytest.raises(IRError, match="negative"):
        parse_loop("loop l\narray A 8\nn0: t = load A[i-1]")


def test_valid_loop_passes(axpy_loop):
    validate_loop(axpy_loop)  # no raise
