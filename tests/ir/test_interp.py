"""Reference interpreter semantics."""

import numpy as np
import pytest

from repro.ir import parse_loop, run_sequential
from repro.ir.interp import SequentialInterpreter


def test_accumulator():
    loop = parse_loop("""
loop acc
livein s 0.0
n0: s = fadd s, 2.0
""")
    result = run_sequential(loop, 10)
    assert result.registers["s"] == pytest.approx(20.0)


def test_induction_variable():
    loop = parse_loop("""
loop ind
livein s 0.0
n0: t = fmul i, 1.0
n1: s = fadd s, t
""")
    result = run_sequential(loop, 5)
    assert result.registers["s"] == pytest.approx(0 + 1 + 2 + 3 + 4)


def test_back_reference_reads_older_value():
    # fib-ish: f = f@-1 + f@-2 (using two registers)
    loop = parse_loop("""
loop fib
livein f 1.0
n0: t = fadd f, f@-1
n1: f = fadd t, 0.0
""")
    # f history: [1], then f1 = 1+1=2 (f@-1 falls back to oldest), f2 = 2+1,
    # f3 = 3+2, f4 = 5+3 ...
    result = run_sequential(loop, 4)
    assert result.registers["f"] == pytest.approx(8.0)


def test_store_load_roundtrip():
    loop = parse_loop("""
loop mem
array A 16
livein s 0.0
n0: store A[i], i
n1: v = load A[i]
n2: s = fadd s, v
""")
    result = run_sequential(loop, 8)
    assert result.registers["s"] == pytest.approx(sum(range(8)))
    assert result.arrays["A"][3] == pytest.approx(3.0)


def test_array_wraparound():
    loop = parse_loop("""
loop wrap
array A 4
n0: store A[i], 1.0
""")
    result = run_sequential(loop, 8)
    assert np.allclose(result.arrays["A"], 1.0)


def test_use_before_def_reads_previous_iteration():
    loop = parse_loop("""
loop prev
livein s 10.0
n0: t = fadd s, 0.0
n1: s = fadd s, 1.0
""")
    interp = SequentialInterpreter(loop)
    interp.step()
    assert interp._hist["t"][-1] == pytest.approx(10.0)
    interp.step()
    assert interp._hist["t"][-1] == pytest.approx(11.0)


def test_indirect_addressing():
    loop = parse_loop("""
loop indir
array A 8
livein p 0.0
n0: store A[p], 5.0
n1: p = iadd p, 2
""")
    result = run_sequential(loop, 3)
    assert result.arrays["A"][0] == pytest.approx(5.0)
    assert result.arrays["A"][2] == pytest.approx(5.0)
    assert result.arrays["A"][4] == pytest.approx(5.0)


def test_select_and_compare():
    loop = parse_loop("""
loop sel
livein s 0.0
n0: c = cmplt i, 3
n1: v = select c, 10.0, 1.0
n2: s = fadd s, v
""")
    result = run_sequential(loop, 5)
    assert result.registers["s"] == pytest.approx(3 * 10 + 2 * 1)


def test_address_trace():
    loop = parse_loop("""
loop tr
array A 16
n0: v = load A[2*i]
""")
    result = run_sequential(loop, 4, trace=True)
    assert result.address_trace["n0"] == [(0, 0), (1, 2), (2, 4), (3, 6)]


def test_array_init_override():
    loop = parse_loop("""
loop init
array A 4
livein s 0.0
n0: v = load A[i]
n1: s = fadd s, v
""")
    init = {"A": np.array([1.0, 2.0, 3.0, 4.0])}
    result = run_sequential(loop, 4, array_init=init)
    assert result.registers["s"] == pytest.approx(10.0)


def test_default_arrays_deterministic():
    loop = parse_loop("""
loop det
array A 8
livein s 0.0
n0: v = load A[i]
n1: s = fadd s, v
""")
    r1 = run_sequential(loop, 8)
    r2 = run_sequential(loop, 8)
    assert r1.registers["s"] == pytest.approx(r2.registers["s"])


def test_fingerprint_stability():
    loop = parse_loop("""
loop fp
livein s 0.0
n0: s = fadd s, 1.0
""")
    assert (run_sequential(loop, 5).state_fingerprint()
            == run_sequential(loop, 5).state_fingerprint())
    assert (run_sequential(loop, 5).state_fingerprint()
            != run_sequential(loop, 6).state_fingerprint())
