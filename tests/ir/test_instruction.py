"""Instruction construction rules."""

import pytest

from repro.errors import IRError
from repro.ir import AffineIndex, AliasHint, Imm, IndirectIndex, Instruction, MemRef, Opcode, Reg


def test_simple_arith():
    ins = Instruction("n0", Opcode.FADD, dest="t", srcs=(Reg("a"), Imm(1.0)))
    assert ins.dest == "t"
    assert len(ins.reg_reads) == 1


def test_missing_dest_rejected():
    with pytest.raises(IRError):
        Instruction("n0", Opcode.FADD, srcs=(Reg("a"), Reg("b")))


def test_store_cannot_have_dest():
    with pytest.raises(IRError):
        Instruction("n0", Opcode.STORE, dest="t",
                    mem=MemRef("A", AffineIndex()), srcs=(Reg("v"),))


def test_load_requires_mem():
    with pytest.raises(IRError):
        Instruction("n0", Opcode.LOAD, dest="t")


def test_arith_cannot_have_mem():
    with pytest.raises(IRError):
        Instruction("n0", Opcode.FADD, dest="t",
                    srcs=(Reg("a"), Reg("b")), mem=MemRef("A", AffineIndex()))


def test_wrong_operand_count():
    with pytest.raises(IRError):
        Instruction("n0", Opcode.FADD, dest="t", srcs=(Reg("a"),))


def test_indirect_address_counts_as_read():
    ins = Instruction("n0", Opcode.LOAD, dest="t",
                      mem=MemRef("A", IndirectIndex(Reg("p"))))
    assert Reg("p") in ins.reg_reads


def test_alias_hint_validation():
    with pytest.raises(IRError):
        AliasHint("n9", distance=-1)
    with pytest.raises(IRError):
        AliasHint("n9", probability=1.5)
    hint = AliasHint("n9", distance=2, probability=0.25)
    assert hint.distance == 2


def test_str_rendering():
    ins = Instruction("n3", Opcode.FMUL, dest="t", srcs=(Reg("a"), Imm(2.0)))
    assert "n3" in str(ins) and "fmul" in str(ins)
