"""Operand and memory-reference semantics."""

import pytest

from repro.errors import IRError
from repro.ir.operand import AffineIndex, Imm, IndirectIndex, MemRef, Reg


class TestReg:
    def test_default_back(self):
        assert Reg("x").back == 0

    def test_str(self):
        assert str(Reg("s")) == "s"
        assert str(Reg("s", back=2)) == "s@-2"

    def test_negative_back_rejected(self):
        with pytest.raises(IRError):
            Reg("s", back=-1)

    def test_empty_name_rejected(self):
        with pytest.raises(IRError):
            Reg("")

    def test_hashable_equality(self):
        assert Reg("a") == Reg("a")
        assert Reg("a", 1) != Reg("a", 0)
        assert len({Reg("a"), Reg("a"), Reg("b")}) == 2


class TestImm:
    def test_str_integral(self):
        assert str(Imm(3.0)) == "3"

    def test_str_fractional(self):
        assert str(Imm(2.5)) == "2.5"


class TestAffineIndex:
    def test_at(self):
        assert AffineIndex(2, 3).at(5) == 13
        assert AffineIndex(0, 7).at(100) == 7

    def test_str(self):
        assert str(AffineIndex(1, 0)) == "i"
        assert str(AffineIndex(2, 1)) == "2*i+1"
        assert str(AffineIndex(1, -3)) == "i-3"
        assert str(AffineIndex(0, 5)) == "5"


class TestMemRef:
    def test_affine_flag(self):
        assert MemRef("A", AffineIndex()).is_affine
        assert not MemRef("A", IndirectIndex(Reg("p"))).is_affine

    def test_str(self):
        assert str(MemRef("A", AffineIndex(1, 2))) == "A[i+2]"
        assert str(MemRef("A", IndirectIndex(Reg("p")))) == "A[p]"

    def test_empty_array_rejected(self):
        with pytest.raises(IRError):
            MemRef("", AffineIndex())
