"""Golden simulation equivalence: the committed differential oracle.

``tests/golden/sim_golden.json`` was captured through the **reference
event loop** (``SimConfig(exact=True)``); this test replays every pinned
kernel through the **default** vectorised/fast-forward path and demands
byte-identical :meth:`SimStats.to_dict` rows.  Any fidelity drift in the
steady-state fast path — or any intended change to the simulator's cost
model — therefore surfaces as a review-able diff of the golden file
(regenerate via ``scripts/regen_sim_golden.py``), never as silent
corruption of the paper's numbers.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden" / "sim_golden.json"


def _load_regen_module():
    spec = importlib.util.spec_from_file_location(
        "regen_sim_golden", REPO / "scripts" / "regen_sim_golden.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_sim_golden_equivalence():
    from repro.config import SimConfig
    from repro.spmt import simulate

    golden = json.loads(GOLDEN.read_text())
    regen = _load_regen_module()
    assert golden["max_loops"] == regen.MAX_LOOPS
    assert golden["iterations"] == regen.ITERATIONS
    assert golden["seed"] == regen.SEED
    gold_rows = {(r["kernel"], r["alg"]): r for r in golden["rows"]}
    cfg = SimConfig(iterations=regen.ITERATIONS, seed=regen.SEED)

    cur_rows = {}
    for benchmark, name, alg, pipelined, arch in regen._pipelined_kernels():
        row = {"benchmark": benchmark, "kernel": name, "alg": alg}
        row.update(simulate(pipelined, arch, cfg).to_dict())
        cur_rows[(name, alg)] = row

    assert set(cur_rows) == set(gold_rows)
    mismatched = [key for key in gold_rows if cur_rows[key] != gold_rows[key]]
    assert not mismatched, \
        f"{len(mismatched)} simulations diverge from the golden file " \
        f"(first: {mismatched[0]}); the pins were captured with " \
        f"SimConfig(exact=True), so a mismatch here means the fast path " \
        f"drifted from the reference loop — or, if the cost-model change " \
        f"is intended, regenerate via scripts/regen_sim_golden.py and " \
        f"review the diff"
