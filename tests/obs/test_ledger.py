"""Run-ledger schema golden gate + corrupt/truncated-line recovery."""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.obs.ledger import (
    LEDGER_FILENAME,
    SCHEMA_VERSION,
    append_jsonl_line,
    append_run_record,
    build_run_record,
    ledger_dir,
    read_ledger,
    validate_ledger_record_dict,
)


def valid_record(**overrides) -> dict:
    """A minimal hand-built record passing the golden gate."""
    record = {
        "schema_version": SCHEMA_VERSION,
        "kind": "run",
        "timestamp": "2026-08-08T00:00:00+00:00",
        "command": "compile",
        "argv": ["--stats"],
        "version": "1.3.0",
        "fingerprint": "deadbeefdeadbeef",
        "exit_code": 0,
        "duration_seconds": 1.5,
        "metrics": {"session.compiles": 4},
        "spans": [{"name": "session.compile", "count": 4,
                   "wall_seconds": 1.2, "exclusive_seconds": 0.9}],
        "extra": {},
    }
    record.update(overrides)
    return record


class TestGoldenSchemaGate:
    def test_build_run_record_passes_the_gate(self, registry, span_tracer):
        registry.counter("session.compiles").inc(2)
        with span_tracer.span("session.compile"):
            pass
        record = build_run_record("compile", ["--stats"], exit_code=0,
                                  duration_seconds=0.25,
                                  extra={"note": "x"})
        validate_ledger_record_dict(record)  # must not raise
        assert record["metrics"]["session.compiles"] == 2
        assert record["spans"][0]["name"] == "session.compile"
        assert record["extra"] == {"note": "x"}
        # the ledger line must be plain JSON
        json.dumps(record)

    def test_fingerprint_stable_for_same_invocation(self):
        a = build_run_record("compile", ["--stats"])
        b = build_run_record("compile", ["--stats"])
        c = build_run_record("compile", ["--trace"])
        assert a["fingerprint"] == b["fingerprint"]
        assert a["fingerprint"] != c["fingerprint"]

    def test_hand_built_valid_record_passes(self):
        validate_ledger_record_dict(valid_record())

    @pytest.mark.parametrize("key", [
        "kind", "timestamp", "command", "argv", "version",
        "fingerprint", "exit_code", "duration_seconds", "metrics",
        "spans", "extra",
    ])
    def test_missing_key_rejected(self, key):
        record = valid_record()
        del record[key]
        with pytest.raises(ValueError, match=key):
            validate_ledger_record_dict(record)

    def test_unsupported_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            validate_ledger_record_dict(valid_record(schema_version=99))

    def test_wrong_types_rejected(self):
        with pytest.raises(ValueError, match="command"):
            validate_ledger_record_dict(valid_record(command=7))
        with pytest.raises(ValueError, match="duration_seconds"):
            validate_ledger_record_dict(
                valid_record(duration_seconds="fast"))
        with pytest.raises(ValueError, match="argv"):
            validate_ledger_record_dict(valid_record(argv="--stats"))

    def test_bool_does_not_satisfy_int(self):
        with pytest.raises(ValueError, match="exit_code"):
            validate_ledger_record_dict(valid_record(exit_code=True))

    def test_span_rows_checked_one_level_deep(self):
        bad_row = valid_record(spans=[{"name": "x", "count": 1,
                                       "wall_seconds": 0.1}])
        with pytest.raises(ValueError, match="exclusive_seconds"):
            validate_ledger_record_dict(bad_row)
        with pytest.raises(ValueError, match="spans"):
            validate_ledger_record_dict(valid_record(spans={"name": "x"}))
        with pytest.raises(ValueError, match=r"spans\[0\]"):
            validate_ledger_record_dict(valid_record(spans=["oops"]))


class TestAppend:
    def test_disabled_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert ledger_dir() is None
        assert append_run_record("compile") is None

    def test_append_creates_dir_and_accumulates(self, tmp_path):
        target = tmp_path / "ledger" / "nested"
        for i in range(2):
            path = append_run_record("compile", [f"--run{i}"],
                                     directory=target)
        assert path == target / LEDGER_FILENAME
        records, skipped = read_ledger(path)
        assert skipped == 0
        assert [r["argv"] for r in records] == [["--run0"], ["--run1"]]

    def test_env_var_enables_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        path = append_run_record("validate", [])
        assert path == tmp_path / LEDGER_FILENAME
        assert read_ledger(path)[0][0]["command"] == "validate"

    def test_unwritable_target_warns_not_raises(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory\n")
        assert append_run_record("compile", directory=blocker) is None
        assert "run ledger" in capsys.readouterr().err

    @pytest.mark.skipif(os.getuid() == 0,
                        reason="chmod is advisory for root")
    def test_readonly_directory_warns_not_raises(self, tmp_path, capsys):
        ro = tmp_path / "ro"
        ro.mkdir()
        ro.chmod(0o500)
        try:
            assert append_run_record("compile", directory=ro) is None
        finally:
            ro.chmod(0o700)
        assert "run ledger" in capsys.readouterr().err


class TestAppendJsonlLine:
    """The shared crash-safety primitive under the ledger and the serve
    request journal."""

    def test_appends_newline_and_accepts_bytes(self, tmp_path):
        path = tmp_path / "lines.jsonl"
        append_jsonl_line(path, '{"a": 1}')
        append_jsonl_line(path, b'{"b": 2}\n')
        assert path.read_text() == '{"a": 1}\n{"b": 2}\n'

    def test_filesystem_failure_raises_for_the_caller(self, tmp_path):
        with pytest.raises(OSError):
            append_jsonl_line(tmp_path / "no-dir" / "x.jsonl", "{}")

    def test_concurrent_writers_never_interleave(self, tmp_path):
        """8 threads × 50 appends: every line lands intact — one
        O_APPEND write per record means no torn or merged lines."""
        path = tmp_path / "contended.jsonl"
        n_threads, n_lines = 8, 50

        def writer(tid):
            for i in range(n_lines):
                append_jsonl_line(
                    path, json.dumps({"tid": tid, "i": i,
                                      "pad": "x" * 200}),
                    fsync=False)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)

        lines = path.read_text().splitlines()
        assert len(lines) == n_threads * n_lines
        seen = {(r["tid"], r["i"]) for r in map(json.loads, lines)}
        assert seen == {(t, i) for t in range(n_threads)
                        for i in range(n_lines)}

    def test_sigkilled_writer_leaves_at_most_a_truncated_tail(
            self, tmp_path):
        """A writer killed mid-stream must cost at most its very last
        line; every acknowledged line before it stays parseable."""
        path = tmp_path / "killed.jsonl"
        src = (
            "import itertools, json, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.obs.ledger import append_jsonl_line\n"
            "for i in itertools.count():\n"
            "    append_jsonl_line(sys.argv[2],\n"
            "                      json.dumps({'i': i, 'pad': 'x' * 256}),\n"
            "                      fsync=False)\n"
        )
        src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        child = subprocess.Popen(
            [sys.executable, "-c", src, os.path.abspath(src_dir),
             str(path)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            import time
            deadline = time.monotonic() + 30.0
            while (not path.exists() or path.stat().st_size < 4096) \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert path.exists() and path.stat().st_size > 0
        finally:
            child.kill()
            child.wait(timeout=10.0)

        lines = path.read_text(encoding="utf-8").split("\n")
        complete, tail = lines[:-1], lines[-1]
        assert len(complete) >= 1
        indices = [json.loads(line)["i"] for line in complete]
        assert indices == list(range(len(indices)))   # no torn middle line
        # the unterminated tail (if any) is the only damage, and the
        # ledger reader skips exactly that
        if tail:
            with pytest.raises(json.JSONDecodeError):
                json.loads(tail)


class TestReadRecovery:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == ([], 0)

    def test_corrupt_and_truncated_lines_skipped(self, tmp_path, capsys):
        good = json.dumps(valid_record())
        path = tmp_path / LEDGER_FILENAME
        path.write_text("\n".join([
            good,
            good[: len(good) // 2],          # truncated mid-write
            "not json at all {{{",
            json.dumps({"schema_version": SCHEMA_VERSION}),  # invalid
            json.dumps(["a", "list"]),       # not an object
            "",                              # blank line is fine
            json.dumps(valid_record(command="validate")),
        ]) + "\n")
        records, skipped = read_ledger(path)
        assert [r["command"] for r in records] == ["compile", "validate"]
        assert skipped == 4
        err = capsys.readouterr().err
        assert err.count("skipping ledger line") == 4

    def test_future_schema_version_skipped_not_fatal(self, tmp_path):
        path = tmp_path / LEDGER_FILENAME
        path.write_text(json.dumps(valid_record(schema_version=2)) + "\n"
                        + json.dumps(valid_record()) + "\n")
        records, skipped = read_ledger(path)
        assert len(records) == 1
        assert skipped == 1
