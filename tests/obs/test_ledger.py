"""Run-ledger schema golden gate + corrupt/truncated-line recovery."""

import json
import os

import pytest

from repro.obs.ledger import (
    LEDGER_FILENAME,
    SCHEMA_VERSION,
    append_run_record,
    build_run_record,
    ledger_dir,
    read_ledger,
    validate_ledger_record_dict,
)


def valid_record(**overrides) -> dict:
    """A minimal hand-built record passing the golden gate."""
    record = {
        "schema_version": SCHEMA_VERSION,
        "kind": "run",
        "timestamp": "2026-08-08T00:00:00+00:00",
        "command": "compile",
        "argv": ["--stats"],
        "version": "1.3.0",
        "fingerprint": "deadbeefdeadbeef",
        "exit_code": 0,
        "duration_seconds": 1.5,
        "metrics": {"session.compiles": 4},
        "spans": [{"name": "session.compile", "count": 4,
                   "wall_seconds": 1.2, "exclusive_seconds": 0.9}],
        "extra": {},
    }
    record.update(overrides)
    return record


class TestGoldenSchemaGate:
    def test_build_run_record_passes_the_gate(self, registry, span_tracer):
        registry.counter("session.compiles").inc(2)
        with span_tracer.span("session.compile"):
            pass
        record = build_run_record("compile", ["--stats"], exit_code=0,
                                  duration_seconds=0.25,
                                  extra={"note": "x"})
        validate_ledger_record_dict(record)  # must not raise
        assert record["metrics"]["session.compiles"] == 2
        assert record["spans"][0]["name"] == "session.compile"
        assert record["extra"] == {"note": "x"}
        # the ledger line must be plain JSON
        json.dumps(record)

    def test_fingerprint_stable_for_same_invocation(self):
        a = build_run_record("compile", ["--stats"])
        b = build_run_record("compile", ["--stats"])
        c = build_run_record("compile", ["--trace"])
        assert a["fingerprint"] == b["fingerprint"]
        assert a["fingerprint"] != c["fingerprint"]

    def test_hand_built_valid_record_passes(self):
        validate_ledger_record_dict(valid_record())

    @pytest.mark.parametrize("key", [
        "kind", "timestamp", "command", "argv", "version",
        "fingerprint", "exit_code", "duration_seconds", "metrics",
        "spans", "extra",
    ])
    def test_missing_key_rejected(self, key):
        record = valid_record()
        del record[key]
        with pytest.raises(ValueError, match=key):
            validate_ledger_record_dict(record)

    def test_unsupported_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            validate_ledger_record_dict(valid_record(schema_version=99))

    def test_wrong_types_rejected(self):
        with pytest.raises(ValueError, match="command"):
            validate_ledger_record_dict(valid_record(command=7))
        with pytest.raises(ValueError, match="duration_seconds"):
            validate_ledger_record_dict(
                valid_record(duration_seconds="fast"))
        with pytest.raises(ValueError, match="argv"):
            validate_ledger_record_dict(valid_record(argv="--stats"))

    def test_bool_does_not_satisfy_int(self):
        with pytest.raises(ValueError, match="exit_code"):
            validate_ledger_record_dict(valid_record(exit_code=True))

    def test_span_rows_checked_one_level_deep(self):
        bad_row = valid_record(spans=[{"name": "x", "count": 1,
                                       "wall_seconds": 0.1}])
        with pytest.raises(ValueError, match="exclusive_seconds"):
            validate_ledger_record_dict(bad_row)
        with pytest.raises(ValueError, match="spans"):
            validate_ledger_record_dict(valid_record(spans={"name": "x"}))
        with pytest.raises(ValueError, match=r"spans\[0\]"):
            validate_ledger_record_dict(valid_record(spans=["oops"]))


class TestAppend:
    def test_disabled_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert ledger_dir() is None
        assert append_run_record("compile") is None

    def test_append_creates_dir_and_accumulates(self, tmp_path):
        target = tmp_path / "ledger" / "nested"
        for i in range(2):
            path = append_run_record("compile", [f"--run{i}"],
                                     directory=target)
        assert path == target / LEDGER_FILENAME
        records, skipped = read_ledger(path)
        assert skipped == 0
        assert [r["argv"] for r in records] == [["--run0"], ["--run1"]]

    def test_env_var_enables_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        path = append_run_record("validate", [])
        assert path == tmp_path / LEDGER_FILENAME
        assert read_ledger(path)[0][0]["command"] == "validate"

    def test_unwritable_target_warns_not_raises(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory\n")
        assert append_run_record("compile", directory=blocker) is None
        assert "run ledger" in capsys.readouterr().err

    @pytest.mark.skipif(os.getuid() == 0,
                        reason="chmod is advisory for root")
    def test_readonly_directory_warns_not_raises(self, tmp_path, capsys):
        ro = tmp_path / "ro"
        ro.mkdir()
        ro.chmod(0o500)
        try:
            assert append_run_record("compile", directory=ro) is None
        finally:
            ro.chmod(0o700)
        assert "run ledger" in capsys.readouterr().err


class TestReadRecovery:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == ([], 0)

    def test_corrupt_and_truncated_lines_skipped(self, tmp_path, capsys):
        good = json.dumps(valid_record())
        path = tmp_path / LEDGER_FILENAME
        path.write_text("\n".join([
            good,
            good[: len(good) // 2],          # truncated mid-write
            "not json at all {{{",
            json.dumps({"schema_version": SCHEMA_VERSION}),  # invalid
            json.dumps(["a", "list"]),       # not an object
            "",                              # blank line is fine
            json.dumps(valid_record(command="validate")),
        ]) + "\n")
        records, skipped = read_ledger(path)
        assert [r["command"] for r in records] == ["compile", "validate"]
        assert skipped == 4
        err = capsys.readouterr().err
        assert err.count("skipping ledger line") == 4

    def test_future_schema_version_skipped_not_fatal(self, tmp_path):
        path = tmp_path / LEDGER_FILENAME
        path.write_text(json.dumps(valid_record(schema_version=2)) + "\n"
                        + json.dumps(valid_record()) + "\n")
        records, skipped = read_ledger(path)
        assert len(records) == 1
        assert skipped == 1
