"""Unit tests for the hierarchical span tracer (repro.obs.spans)."""

import json

import pytest

from repro.obs.spans import (
    Span,
    SpanTracer,
    get_span_tracer,
    set_span_tracer,
    span,
    span_tree,
    spans_to_dicts,
)


class TestSpanRecording:
    def test_disabled_tracer_yields_none_and_records_nothing(self):
        st = SpanTracer(enabled=False)
        with st.span("x") as s:
            assert s is None
        assert len(st) == 0

    def test_detail_span_skipped_without_detail_mode(self):
        st = SpanTracer(enabled=True, detail=False)
        with st.span("coarse"):
            with st.span("fine", detail=True) as s:
                assert s is None
        assert [s.name for s in st.spans] == ["coarse"]

    def test_detail_span_recorded_in_detail_mode(self):
        st = SpanTracer(enabled=True, detail=True)
        with st.span("fine", detail=True):
            pass
        assert [s.name for s in st.spans] == ["fine"]

    def test_ids_assigned_in_open_order_with_parent_links(self):
        st = SpanTracer(enabled=True)
        with st.span("a"):
            with st.span("b"):
                pass
            with st.span("c"):
                pass
        a, b, c = st.spans
        assert (a.id, b.id, c.id) == (0, 1, 2)
        assert a.parent_id is None
        assert b.parent_id == a.id
        assert c.parent_id == a.id

    def test_attrs_captured_and_mutable_until_close(self):
        st = SpanTracer(enabled=True)
        with st.span("a", kernel="k1") as s:
            s.attrs["outcome"] = "ok"
        assert st.spans[0].attrs == {"kernel": "k1", "outcome": "ok"}

    def test_wall_and_exclusive_time(self):
        st = SpanTracer(enabled=True)
        with st.span("outer"):
            with st.span("inner"):
                pass
        outer, inner = st.spans
        assert outer.wall >= inner.wall >= 0.0
        assert outer.exclusive == pytest.approx(outer.wall - inner.wall)
        assert inner.exclusive == pytest.approx(inner.wall)

    def test_metric_deltas_only_include_changed_instruments(self, registry):
        registry.counter("pre.existing").inc(10)
        st = SpanTracer(enabled=True)
        with st.span("work"):
            registry.counter("work.done").inc(3)
            registry.histogram("work.sizes").observe(2.0)
        (s,) = st.spans
        assert s.metrics == {"work.done": 3,
                             "work.sizes": {"count": 1, "sum": 2.0}}

    def test_nested_deltas_accumulate_to_parent(self, registry):
        st = SpanTracer(enabled=True)
        with st.span("outer"):
            registry.counter("n").inc()
            with st.span("inner"):
                registry.counter("n").inc(2)
        outer, inner = st.spans
        assert outer.metrics == {"n": 3}
        assert inner.metrics == {"n": 2}

    def test_exception_still_closes_span(self):
        st = SpanTracer(enabled=True)
        with pytest.raises(RuntimeError):
            with st.span("boom"):
                raise RuntimeError("x")
        assert len(st.spans) == 1
        assert st._stack == []

    def test_clear_resets_ids(self):
        st = SpanTracer(enabled=True)
        with st.span("a"):
            pass
        st.clear()
        with st.span("b"):
            pass
        assert st.spans[0].id == 0


class TestIngest:
    def test_ingest_rebases_under_open_span(self):
        worker = SpanTracer(enabled=True)
        with worker.span("w.outer"):
            with worker.span("w.inner"):
                pass
        payload = spans_to_dicts(worker.spans)

        parent = SpanTracer(enabled=True)
        with parent.span("p.root"):
            added = parent.ingest(payload, origin="worker.0")
        assert added == 2
        root, outer, inner = parent.spans
        assert outer.parent_id == root.id
        assert inner.parent_id == outer.id
        assert outer.origin == "worker.0"

    def test_ingest_without_open_span_makes_roots(self):
        worker = SpanTracer(enabled=True)
        with worker.span("w"):
            pass
        parent = SpanTracer(enabled=True)
        parent.ingest(spans_to_dicts(worker.spans), origin="worker.1")
        assert parent.spans[0].parent_id is None

    def test_ingest_disabled_is_noop(self):
        parent = SpanTracer(enabled=False)
        assert parent.ingest([{"name": "x", "id": 0,
                               "parent_id": None}]) == 0


class TestTreeAndRollup:
    def test_normalized_tree_drops_ids_and_wall(self):
        st = SpanTracer(enabled=True)
        with st.span("a", k=1):
            with st.span("b"):
                pass
        tree = span_tree(st.spans)
        assert tree == [{"name": "a", "attrs": {"k": 1},
                         "children": [{"name": "b"}]}]

    def test_normalized_tree_sorts_siblings(self):
        left = SpanTracer(enabled=True)
        with left.span("root"):
            with left.span("z"):
                pass
            with left.span("a"):
                pass
        right = SpanTracer(enabled=True)
        with right.span("root"):
            with right.span("a"):
                pass
            with right.span("z"):
                pass
        assert span_tree(left.spans) == span_tree(right.spans)

    def test_raw_tree_keeps_ids_and_order(self):
        st = SpanTracer(enabled=True)
        with st.span("root"):
            with st.span("z"):
                pass
            with st.span("a"):
                pass
        tree = span_tree(st.spans, normalize=False)
        assert [c["name"] for c in tree[0]["children"]] == ["z", "a"]
        assert tree[0]["id"] == 0

    def test_rollup_aggregates_by_name(self):
        st = SpanTracer(enabled=True)
        for _ in range(3):
            with st.span("work"):
                pass
        roll = st.rollup()
        assert roll["work"]["count"] == 3
        assert roll["work"]["wall_seconds"] >= 0.0

    def test_round_trip_to_dict_from_dict(self):
        st = SpanTracer(enabled=True)
        with st.span("a", k="v") as s:
            pass
        d = s.to_dict()
        clone = Span.from_dict(d, id=7, parent_id=None, origin="w")
        assert clone.name == "a"
        assert clone.attrs == {"k": "v"}
        assert clone.wall == s.wall
        assert json.dumps(d)  # payload is JSON-serialisable


class TestModuleDefaults:
    def test_module_span_follows_set_span_tracer(self):
        fresh = SpanTracer(enabled=True)
        previous = set_span_tracer(fresh)
        try:
            with span("via.module"):
                pass
            assert [s.name for s in fresh.spans] == ["via.module"]
            assert get_span_tracer() is fresh
        finally:
            set_span_tracer(previous)
