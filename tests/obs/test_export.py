"""JSONL and Chrome trace-event exports."""

import json

from repro.obs.events import Tracer
from repro.obs.export import (
    KNOWN_CATS,
    events_to_jsonl,
    format_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)


def _sample_events():
    t = Tracer(enabled=True)
    t.emit("sched", "place", node="n1", cycle=3)
    t.emit("sim", "spawn", ts=0.0, dur=4.0, thread=0, tid=0)
    t.emit("sim", "violation", ts=9.0, thread=1, tid=1)
    return t.events


def test_jsonl_round_trip():
    lines = events_to_jsonl(_sample_events()).splitlines()
    assert len(lines) == 3
    objs = [json.loads(line) for line in lines]
    assert [o["seq"] for o in objs] == [0, 1, 2]
    assert objs[1] == {"seq": 1, "cat": "sim", "name": "spawn", "ts": 0.0,
                       "dur": 4.0, "args": {"thread": 0, "tid": 0}}


def test_write_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    write_events_jsonl(_sample_events(), path)
    text = path.read_text()
    assert text.endswith("\n")
    assert len(text.splitlines()) == 3


def test_write_jsonl_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    write_events_jsonl([], path)
    assert path.read_text() == ""


def test_chrome_trace_shape():
    doc = to_chrome_trace(_sample_events())
    records = doc["traceEvents"]
    # one metadata record per category, in order of first appearance
    meta = [r for r in records if r["ph"] == "M"]
    assert [m["args"]["name"] for m in meta] == ["sched", "sim"]
    assert [m["pid"] for m in meta] == [0, 1]
    by_name = {r["name"]: r for r in records if r["ph"] != "M"}
    # event with a duration -> complete slice
    spawn = by_name["spawn"]
    assert spawn["ph"] == "X" and spawn["dur"] == 4.0 and spawn["tid"] == 0
    assert "tid" not in spawn["args"]  # lifted to the record, not duplicated
    # no duration -> instant; no ts -> falls back to seq
    place = by_name["place"]
    assert place["ph"] == "i" and place["ts"] == 0.0
    violation = by_name["violation"]
    assert violation["ph"] == "i" and violation["tid"] == 1


def test_chrome_trace_unknown_cats_share_other_lane():
    t = Tracer(enabled=True)
    t.emit("sched", "place", node="n1")
    t.emit("plugin", "hook")
    t.emit("custom", "probe", ts=2.0)
    doc = to_chrome_trace(t.events)
    records = doc["traceEvents"]
    meta = [r for r in records if r["ph"] == "M"]
    # one shared lane for both unknown categories, after the known one
    assert [m["args"]["name"] for m in meta] == ["sched", "other"]
    other_pid = meta[1]["pid"]
    by_name = {r["name"]: r for r in records if r["ph"] != "M"}
    assert by_name["hook"]["pid"] == other_pid
    assert by_name["probe"]["pid"] == other_pid
    # the original category is preserved on the record
    assert by_name["hook"]["cat"] == "plugin"
    assert by_name["probe"]["cat"] == "custom"
    # nothing dropped
    assert len([r for r in records if r["ph"] != "M"]) == 3


def test_format_trace_counts_every_event():
    t = Tracer(enabled=True)
    t.emit("sched", "place")
    t.emit("sched", "place")
    t.emit("sim", "commit")
    t.emit("plugin", "hook")
    t.emit("custom", "probe")
    text = format_trace(t.events)
    lines = text.splitlines()
    assert lines[0].startswith("sched") and "place=2" in lines[0]
    assert lines[1].startswith("sim")
    other = lines[2]
    assert other.startswith("other") and "2 events" in other
    assert "[cats: custom, plugin]" in other
    # totals line counts all 5 events across 3 lanes
    assert lines[-1].split() == ["total", "5", "events", "in", "3", "lanes"]


def test_format_trace_known_lane_order():
    t = Tracer(enabled=True)
    t.emit("dse", "trial")
    t.emit("sim", "commit")
    t.emit("sched", "place")
    lanes = [line.split()[0] for line in format_trace(t.events).splitlines()]
    assert lanes == list(KNOWN_CATS) + ["total"]


def test_chrome_trace_deterministic(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_chrome_trace(_sample_events(), a)
    write_chrome_trace(_sample_events(), b)
    assert a.read_bytes() == b.read_bytes()
    json.loads(a.read_text())  # well-formed
