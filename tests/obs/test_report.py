"""Discrepancy report data model and golden schema."""

import pytest

from repro.obs.report import (
    SCHEMA_VERSION,
    DiscrepancyReport,
    DiscrepancyRow,
    mape,
    validate_report_dict,
)


def _row(kernel="k0", alg="tms", predicted=900.0, simulated=1000.0):
    return DiscrepancyRow(kernel=kernel, benchmark="bench", algorithm=alg,
                          ii=8, c_delay=4.0, p_m=0.01,
                          predicted_cycles=predicted,
                          simulated_cycles=simulated)


def _report(rows=None):
    if rows is None:
        rows = (_row(), _row("k1", "sms", 1200.0, 1000.0))
    return DiscrepancyReport(rows=tuple(rows), iterations=300, seed=7,
                             ncore=4)


def test_row_error_fields():
    row = _row(predicted=900.0, simulated=1000.0)
    assert row.error_cycles == pytest.approx(100.0)
    assert row.abs_pct_error == pytest.approx(10.0)


def test_row_zero_simulated_guard():
    assert _row(simulated=0.0).abs_pct_error == 0.0


def test_mape():
    rows = [_row(predicted=900.0, simulated=1000.0),
            _row(predicted=1300.0, simulated=1000.0)]
    assert mape(rows) == pytest.approx(20.0)
    assert mape([]) == 0.0


def test_report_aggregates():
    report = _report()
    assert report.mape == pytest.approx(15.0)
    assert report.mape_by_algorithm() == {
        "sms": pytest.approx(20.0), "tms": pytest.approx(10.0)}
    assert report.worst().kernel == "k1"


def test_empty_report():
    report = _report(rows=())
    assert report.mape == 0.0
    assert report.worst() is None
    validate_report_dict(report.to_dict())


def test_to_dict_matches_schema():
    data = _report().to_dict()
    validate_report_dict(data)  # does not raise
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["summary"]["n_rows"] == 2
    assert data["summary"]["worst_kernel"] == "k1"


def test_render_contains_table_and_mape():
    text = _report().render()
    assert "Cost model vs simulator" in text
    assert "MAPE (TMS)" in text and "MAPE (overall, 2 rows)" in text
    assert "Worst kernel: k1" in text


def test_validate_rejects_missing_key():
    data = _report().to_dict()
    del data["summary"]["mape"]
    with pytest.raises(ValueError, match="mape"):
        validate_report_dict(data)


def test_validate_rejects_mistyped_row_field():
    data = _report().to_dict()
    data["rows"][0]["ii"] = "8"
    with pytest.raises(ValueError, match="ii"):
        validate_report_dict(data)


def test_validate_rejects_bool_for_int():
    data = _report().to_dict()
    data["iterations"] = True
    with pytest.raises(ValueError, match="iterations"):
        validate_report_dict(data)


def test_validate_rejects_wrong_version():
    data = _report().to_dict()
    data["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema_version"):
        validate_report_dict(data)
