"""Cross-process telemetry capture/merge (repro.obs.aggregate) and the
origin-aware registry merge (satellite: atomic merge + snapshot filter)."""

import threading

from repro.obs import events as events_mod
from repro.obs.aggregate import (
    collecting,
    merge_into_process,
    telemetry_config,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import get_span_tracer


class TestCollecting:
    def test_worker_scope_isolates_and_snapshots(self, registry):
        registry.counter("parent.only").inc()
        cfg = {"metrics": True, "events": True, "spans": True,
               "spans_detail": False}
        with collecting(cfg) as collector:
            get_registry().counter("task.work").inc(5)
            events_mod.get_tracer().emit("sched", "place", node="a")
            with get_span_tracer().span("task.span"):
                pass
            snap = collector.snapshot()
        # parent state untouched by the task
        assert "task.work" not in registry
        assert registry.counter("parent.only").value == 1
        assert snap["metrics"]["task.work"]["value"] == 5
        assert len(snap["events"]) == 1
        assert [s["name"] for s in snap["spans"]] == ["task.span"]

    def test_previous_defaults_restored_after_scope(self, registry):
        before_tracer = events_mod.get_tracer()
        before_spans = get_span_tracer()
        with collecting({"metrics": True}):
            assert get_registry() is not registry
            assert events_mod.get_tracer() is not before_tracer
        assert get_registry() is registry
        assert events_mod.get_tracer() is before_tracer
        assert get_span_tracer() is before_spans

    def test_empty_scope_snapshots_none(self):
        with collecting({"metrics": True, "events": True,
                         "spans": True}) as collector:
            pass
        assert collector.snapshot() is None

    def test_zero_valued_instruments_skipped(self):
        with collecting({"metrics": True}) as collector:
            get_registry().counter("touched.but.zero")
            get_registry().counter("real").inc()
            snap = collector.snapshot()
        assert "touched.but.zero" not in snap["metrics"]
        assert "real" in snap["metrics"]

    def test_telemetry_config_reflects_defaults(self, registry):
        cfg = telemetry_config()
        assert cfg["metrics"] is True
        assert isinstance(cfg["events"], bool)
        assert isinstance(cfg["spans"], bool)


class TestMergeIntoProcess:
    def test_merge_combines_into_registry_tracer_spans(
            self, registry, tracer, span_tracer):
        with collecting({"metrics": True, "events": True,
                         "spans": True}) as collector:
            get_registry().counter("w.count").inc(2)
            events_mod.get_tracer().emit("sim", "commit", thread=0)
            with get_span_tracer().span("w.region"):
                pass
            snap = collector.snapshot()
        merge_into_process(snap, "worker.0")
        assert registry.snapshot()["w.count"]["value"] == 2
        assert [e.name for e in tracer.events] == ["commit"]
        assert tracer.ingest_counts == {"worker.0": 1}
        assert [s.name for s in span_tracer.spans] == ["w.region"]
        assert span_tracer.spans[0].origin == "worker.0"

    def test_merge_none_and_unknown_version_are_noops(self, registry):
        merge_into_process(None, "worker.0")
        merge_into_process({"version": 999, "metrics": {"x": {}}},
                           "worker.0")
        assert registry.origins() == []


class TestRegistryOriginMerge:
    def test_snapshot_origin_filter(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc(1)
        reg.merge_snapshot({"c": {"kind": "counter", "value": 10}},
                           "worker.0")
        reg.merge_snapshot({"c": {"kind": "counter", "value": 100}},
                           "worker.1")
        assert reg.snapshot()["c"]["value"] == 111
        assert reg.snapshot(origin="local")["c"]["value"] == 1
        assert reg.snapshot(origin="worker.0")["c"]["value"] == 10
        assert reg.snapshot(origin="worker.1")["c"]["value"] == 100
        assert reg.snapshot(origin="worker.9") == {}
        assert reg.origins() == ["worker.0", "worker.1"]

    def test_histograms_merge_counts_and_bounds(self):
        reg = MetricsRegistry(enabled=True)
        reg.histogram("h").observe(1.0)
        reg.merge_snapshot(
            {"h": {"kind": "histogram", "count": 2, "sum": 10.0,
                   "min": 4.0, "max": 6.0, "mean": 5.0}}, "worker.0")
        snap = reg.snapshot()["h"]
        assert snap["count"] == 3
        assert snap["sum"] == 11.0
        assert snap["min"] == 1.0
        assert snap["max"] == 6.0

    def test_repeated_merge_same_origin_accumulates(self):
        reg = MetricsRegistry(enabled=True)
        for _ in range(3):
            reg.merge_snapshot({"c": {"kind": "counter", "value": 2}},
                               "worker.0")
        assert reg.snapshot(origin="worker.0")["c"]["value"] == 6

    def test_reset_clears_merged_contributions(self):
        reg = MetricsRegistry(enabled=True)
        reg.merge_snapshot({"c": {"kind": "counter", "value": 5}}, "w")
        reg.reset()
        assert reg.origins() == []
        assert "c" not in reg.snapshot()

    def test_merge_is_atomic_under_concurrent_snapshots(self):
        """Snapshots racing a merge never observe a half-applied
        contribution: every snapshot of the merged counter pair sums to
        a multiple of the per-merge delta."""
        reg = MetricsRegistry(enabled=True)
        contribution = {"a": {"kind": "counter", "value": 1},
                        "b": {"kind": "counter", "value": 1}}
        bad: list[dict] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                snap = reg.snapshot()
                a = snap.get("a", {}).get("value", 0)
                b = snap.get("b", {}).get("value", 0)
                if a != b:
                    bad.append(snap)

        t = threading.Thread(target=reader)
        t.start()
        try:
            for _ in range(500):
                reg.merge_snapshot(contribution, "worker.0")
        finally:
            stop.set()
            t.join()
        assert not bad
        assert reg.snapshot()["a"]["value"] == 500

    def test_deterministic_totals_shapes(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        with reg.timer("t").time():
            pass
        totals = reg.deterministic_totals()
        assert totals["c"] == 2
        assert totals["g"] == 1.5
        assert totals["h"] == {"count": 1, "sum": 3.0}
        assert totals["t"] == {"count": 1}  # no wall-clock sum


class TestTracerIngest:
    def test_ingest_reassigns_seq_preserving_content(self, tracer):
        tracer.emit("sched", "local_first")
        payload = [{"seq": 40, "cat": "sim", "name": "commit",
                    "ts": 5.0, "args": {"thread": 2}}]
        added = tracer.ingest(payload, origin="worker.3")
        assert added == 1
        merged = tracer.events[-1]
        assert merged.seq == 1                # fresh, not 40
        assert merged.cat == "sim"
        assert merged.ts == 5.0
        assert merged.args == {"thread": 2}   # no origin stamped in
        assert tracer.ingest_counts == {"worker.3": 1}

    def test_clear_resets_ingest_counts(self, tracer):
        tracer.ingest([{"cat": "sim", "name": "x"}], origin="w")
        tracer.clear()
        assert tracer.ingest_counts == {}
