"""End-to-end instrumentation: scheduler search events, simulator
timelines, and deterministic exports."""

import pytest

from repro.config import ArchConfig, SimConfig
from repro.costmodel import objective_f
from repro.obs.events import tracing
from repro.obs.export import events_to_jsonl, to_chrome_trace
from repro.sched import (
    ThreadSensitiveScheduler,
    run_postpass,
    schedule_sms,
    schedule_tms,
)
from repro.spmt import simulate


# -- scheduler search events --------------------------------------------------


@pytest.fixture
def tms_search(fig1_ddg, fig1_machine, arch):
    with tracing() as tracer:
        sched = schedule_tms(fig1_ddg, fig1_machine, arch)
    return sched, tracer.select("sched", "tms.candidate")


def test_tms_events_reconstruct_enumeration(fig1_ddg, fig1_machine, arch,
                                            tms_search):
    """The candidate events replay `_candidates()`' (II, C_delay)
    enumeration order, exactly and from the start."""
    _sched, events = tms_search
    expected = ThreadSensitiveScheduler(
        fig1_ddg, fig1_machine, arch)._candidates()
    assert len(events) >= 1
    assert [e.args["index"] for e in events] == list(range(len(events)))
    for event, (f_value, cd, ii) in zip(events, expected):
        assert event.args["ii"] == ii
        assert event.args["c_delay"] == cd
        assert event.args["f"] == pytest.approx(f_value)


def test_tms_chosen_pair_minimises_f(arch, tms_search):
    """The accepted pair is the first feasible one in ascending-F order:
    every earlier candidate was rejected or pruned, so the chosen
    (II, C_delay) minimises F over the feasible set."""
    sched, events = tms_search
    assert not sched.meta["fallback"]
    f_values = [e.args["f"] for e in events]
    assert f_values == sorted(f_values)
    accepted = [e for e in events if e.args["outcome"] == "accept"]
    assert len(accepted) == 1 and accepted[0] is events[-1]
    assert all(e.args["outcome"] in ("reject", "pruned")
               for e in events[:-1])
    args = accepted[0].args
    assert args["ii"] == sched.ii
    assert args["c_delay"] == sched.meta["c_delay_threshold"]
    assert args["f"] == pytest.approx(
        objective_f(sched.ii, sched.meta["c_delay_threshold"], arch))


def test_tms_candidate_f_breakdown(arch, tms_search):
    """Each event carries F's four max-terms and F is their maximum."""
    _sched, events = tms_search
    for e in events:
        parts = (e.args["f_c_spn"], e.args["f_c_ci"],
                 e.args["f_c_delay"], e.args["f_t_lb_share"])
        assert e.args["f"] == pytest.approx(max(parts))


def test_sms_place_events_match_schedule(fig1_ddg, fig1_machine):
    with tracing() as tracer:
        sched = schedule_sms(fig1_ddg, fig1_machine)
        places = tracer.select("sched", "place")
    final = [e for e in places if e.args["ii"] == sched.ii
             and e.args["alg"] == "SMS"]
    placed = {e.args["node"]: e.args["cycle"] for e in final}
    assert placed == dict(sched.slots)
    for e in final:
        assert e.args["row"] == e.args["cycle"] % sched.ii
        assert e.args["stage"] == e.args["cycle"] // sched.ii


# -- simulator events ---------------------------------------------------------


@pytest.fixture
def sim_trace(fig1_ddg, fig1_machine, arch):
    pipelined = run_postpass(schedule_tms(fig1_ddg, fig1_machine, arch), arch)
    with tracing() as tracer:
        stats = simulate(pipelined, arch,
                         SimConfig(iterations=200, seed=3, trace=True))
    return stats, tracer.select("sim")


def test_one_lifecycle_per_thread(sim_trace):
    stats, events = sim_trace
    for name in ("spawn", "exec", "commit"):
        per_thread = [e for e in events if e.name == name]
        assert len(per_thread) == stats.iterations
        assert [e.args["thread"] for e in per_thread] == \
            list(range(stats.iterations))


def test_violation_and_squash_events(sim_trace):
    stats, events = sim_trace
    assert stats.misspeculations > 0  # the fixture must exercise squashes
    violations = [e for e in events if e.name == "violation"]
    squashes = [e for e in events if e.name == "squash"]
    assert len(violations) == stats.misspeculations
    assert len(squashes) == stats.misspeculations
    assert sum(e.args["squashed"] for e in squashes) == \
        stats.squashed_threads
    restarts = sum(e.args["restarts"] for e in events if e.name == "exec")
    assert restarts == stats.misspeculations


def test_recv_stalls_sum_to_stats(sim_trace):
    """recv_stall events cover the committed executions' stalls exactly
    (squashed attempts' stalls are not part of sync_stall_cycles)."""
    stats, events = sim_trace
    stalls = [e for e in events if e.name == "recv_stall"]
    assert sum(e.dur for e in stalls) == pytest.approx(
        stats.sync_stall_cycles)


def test_commits_in_order(sim_trace):
    _stats, events = sim_trace
    ends = [e.ts + e.dur for e in events if e.name == "commit"]
    assert ends == sorted(ends)


def test_events_carry_core_as_tid(sim_trace, arch):
    _stats, events = sim_trace
    for e in events:
        assert e.args["tid"] == e.args["thread"] % arch.ncore


def test_tracing_does_not_perturb_results(fig1_ddg, fig1_machine, arch):
    pipelined = run_postpass(schedule_tms(fig1_ddg, fig1_machine, arch), arch)
    cfg = SimConfig(iterations=300, seed=11)
    baseline = simulate(pipelined, arch, cfg)
    with tracing():
        traced = simulate(pipelined, arch, cfg)
    assert traced.total_cycles == baseline.total_cycles
    assert traced.misspeculations == baseline.misspeculations


def test_exports_deterministic_across_runs(fig1_ddg, fig1_machine, arch):
    """Same seed, two runs: byte-identical JSONL and Chrome exports."""
    def one_run():
        pipelined = run_postpass(
            schedule_tms(fig1_ddg, fig1_machine, arch), arch)
        with tracing() as tracer:
            simulate(pipelined, arch, SimConfig(iterations=150, seed=5))
            return (events_to_jsonl(tracer.events),
                    to_chrome_trace(tracer.events))
    jsonl_a, chrome_a = one_run()
    jsonl_b, chrome_b = one_run()
    assert jsonl_a == jsonl_b
    assert chrome_a == chrome_b


def test_no_speculation_arch_has_no_violation_events(fig1_ddg, fig1_machine):
    arch = ArchConfig(ncore=4)
    pipelined = run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)
    with tracing() as tracer:
        stats = simulate(pipelined, arch, SimConfig(iterations=50, seed=0))
    assert len(tracer.select("sim", "violation")) == stats.misspeculations
