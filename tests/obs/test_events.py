"""Structured event tracing."""

from repro.obs.events import Tracer, get_tracer, tracing


def test_disabled_tracer_records_nothing():
    t = Tracer()
    assert t.emit("sim", "spawn", thread=0) is None
    assert len(t) == 0


def test_emit_sequences_events():
    t = Tracer(enabled=True)
    a = t.emit("sched", "place", node="n1")
    b = t.emit("sim", "spawn", ts=4.0, dur=2.0, thread=0)
    assert (a.seq, b.seq) == (0, 1)
    assert [e.name for e in t] == ["place", "spawn"]
    assert b.ts == 4.0 and b.dur == 2.0 and b.args == {"thread": 0}


def test_to_dict_omits_empty_fields():
    t = Tracer(enabled=True)
    bare = t.emit("sched", "search")
    full = t.emit("sim", "exec", ts=1.0, dur=2.0, thread=3)
    assert bare.to_dict() == {"seq": 0, "cat": "sched", "name": "search"}
    assert full.to_dict() == {"seq": 1, "cat": "sim", "name": "exec",
                              "ts": 1.0, "dur": 2.0, "args": {"thread": 3}}


def test_select_filters():
    t = Tracer(enabled=True)
    t.emit("sched", "place")
    t.emit("sim", "spawn")
    t.emit("sim", "commit")
    assert [e.name for e in t.select(cat="sim")] == ["spawn", "commit"]
    assert [e.cat for e in t.select(name="place")] == ["sched"]
    assert len(t.select()) == 3


def test_clear_restarts_sequence():
    t = Tracer(enabled=True)
    t.emit("sim", "spawn")
    t.clear()
    assert len(t) == 0
    assert t.emit("sim", "spawn").seq == 0


def test_tracing_contextmanager_restores_state():
    tracer = get_tracer()
    assert tracer.enabled is False
    with tracing() as t:
        assert t is tracer and t.enabled
        t.emit("sim", "spawn")
        assert len(t) == 1
    assert tracer.enabled is False
    tracer.clear()


def test_tracing_keeps_buffer_when_not_cleared():
    tracer = get_tracer()
    with tracing():
        tracer.emit("sim", "spawn")
    with tracing(clear=False):
        tracer.emit("sim", "commit")
    assert [e.name for e in tracer] == ["spawn", "commit"]
    tracer.clear()
