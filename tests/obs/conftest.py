"""Keep the process-wide registry/tracer isolated per test."""

import pytest

from repro.obs.events import get_tracer
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.spans import SpanTracer, set_span_tracer


@pytest.fixture
def registry():
    """A fresh enabled registry installed as the process default."""
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


@pytest.fixture
def span_tracer():
    """A fresh enabled span tracer (detail on) installed as the
    process default."""
    fresh = SpanTracer(enabled=True, detail=True)
    previous = set_span_tracer(fresh)
    try:
        yield fresh
    finally:
        set_span_tracer(previous)


@pytest.fixture
def tracer():
    """The default tracer, enabled and empty; state restored on exit."""
    t = get_tracer()
    previous = t.enabled
    t.clear()
    t.enabled = True
    try:
        yield t
    finally:
        t.enabled = previous
        t.clear()
