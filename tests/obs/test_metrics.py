"""Metrics registry: counters, gauges, histograms, timers."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import Counter, MetricsRegistry, Timer


def test_counter_inc(registry):
    c = registry.counter("a.hits", "hits")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_idempotent_creation(registry):
    assert registry.counter("x") is registry.counter("x")
    assert len(registry) == 1


def test_kind_collision_raises(registry):
    registry.counter("x")
    with pytest.raises(TypeError, match="already registered"):
        registry.gauge("x")


def test_timer_is_not_a_plain_histogram(registry):
    registry.timer("t")
    with pytest.raises(TypeError):
        registry.histogram("t")


def test_disabled_registry_is_inert():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("c")
    g = reg.gauge("g")
    h = reg.histogram("h")
    c.inc()
    g.set(7.0)
    h.observe(1.0)
    assert c.value == 0 and g.value == 0.0 and h.count == 0


def test_gauge_last_write_wins(registry):
    g = registry.gauge("g")
    g.set(3.0)
    g.set(1.5)
    assert g.value == 1.5


def test_histogram_summary(registry):
    h = registry.histogram("h")
    for v in (2.0, 4.0, 6.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(12.0)
    assert snap["min"] == 2.0 and snap["max"] == 6.0
    assert snap["mean"] == pytest.approx(4.0)


def test_empty_histogram_snapshot(registry):
    snap = registry.histogram("h").snapshot()
    assert snap["count"] == 0
    assert snap["min"] == 0.0 and snap["max"] == 0.0 and snap["mean"] == 0.0


def test_timer_observes_elapsed(registry):
    t = registry.timer("t")
    fake = iter([10.0, 10.25])
    with t.time(clock=lambda: next(fake)):
        pass
    assert t.count == 1
    assert t.total == pytest.approx(0.25)


def test_timer_observes_on_exception(registry):
    t = registry.timer("t")
    fake = iter([0.0, 1.0])
    with pytest.raises(RuntimeError):
        with t.time(clock=lambda: next(fake)):
            raise RuntimeError("boom")
    assert t.count == 1


def test_disabled_timer_skips_clock():
    reg = MetricsRegistry(enabled=False)
    with reg.timer("t").time(clock=lambda: 1 / 0):  # clock never called
        pass


def test_snapshot_sorted_and_render(registry):
    registry.counter("b").inc(2)
    registry.gauge("a").set(1.0)
    snap = registry.snapshot()
    assert list(snap) == ["a", "b"]
    text = registry.render()
    assert "a" in text and "2" in text


def test_reset_keeps_instruments(registry):
    c = registry.counter("c")
    c.inc(9)
    registry.reset()
    assert c.value == 0
    assert "c" in registry


def test_module_shortcuts_use_default_registry(registry):
    metrics.counter("short").inc()
    assert registry.get("short").value == 1
    assert isinstance(registry.get("short"), Counter)
    assert isinstance(metrics.timer("short.t"), Timer)


def test_env_kill_switch(monkeypatch):
    monkeypatch.setenv("REPRO_METRICS", "0")
    assert MetricsRegistry().enabled is False
    monkeypatch.setenv("REPRO_METRICS", "1")
    assert MetricsRegistry().enabled is True
    monkeypatch.delenv("REPRO_METRICS")
    assert MetricsRegistry().enabled is True
