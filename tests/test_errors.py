"""Error hierarchy."""

import pytest

from repro import errors


def test_hierarchy():
    for cls in (errors.IRError, errors.DDGError, errors.MachineError,
                errors.SchedulingError, errors.SimulationError,
                errors.WorkloadError, errors.ExperimentError):
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.DSLParseError, errors.IRError)
    assert issubclass(errors.ScheduleValidationError, errors.SchedulingError)


def test_dsl_error_formats_location():
    exc = errors.DSLParseError("boom", line_no=3, line="  bad text ")
    assert "line 3" in str(exc) and "bad text" in str(exc)


def test_dsl_error_without_location():
    assert str(errors.DSLParseError("boom")) == "boom"
