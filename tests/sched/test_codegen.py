"""SpMT thread-program emission."""

import pytest

from repro.sched import generate_thread_program, run_postpass, schedule_sms, schedule_tms


@pytest.fixture
def program(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    return generate_thread_program(run_postpass(sched, arch))


def test_spawn_leads_the_thread(program):
    assert any("SPAWN" in text for text in program.rows[0])
    assert program.n_spawn == 1


def test_row_count_matches_ii(program):
    assert len(program.rows) == program.ii == 8


def test_send_recv_counts_match_comm_plan(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    pipelined = run_postpass(sched, arch)
    program = generate_thread_program(pipelined)
    # one SEND per communicating producer; one RECV per channel
    assert program.n_send == len(
        {ch.edge.src for ch in pipelined.comm.channels})
    assert program.n_recv == len(
        {(ch.edge.src, ch.edge.dst) for ch in pipelined.comm.channels})
    assert program.n_copies == pipelined.comm.copies


def test_all_instructions_present(program, fig1_ddg):
    flat = "\n".join(t for row in program.rows for t in row)
    for name in fig1_ddg.node_names:
        assert name in flat


def test_listing_renders(program):
    text = program.listing()
    assert "row   0" in text and "prologue" in text and "epilogue" in text


def test_tms_program(fig1_ddg, fig1_machine, arch):
    sched = schedule_tms(fig1_ddg, fig1_machine, arch)
    program = generate_thread_program(run_postpass(sched, arch))
    assert program.instructions_per_iteration >= len(fig1_ddg) + 1


def test_synthetic_ddg_without_loop(arch, resources):
    # a DDG constructed without source IR still renders
    from repro.graph import DDG, DDGNode, Dependence, DepKind, DepType
    from repro.ir.opcode import Opcode
    nodes = [DDGNode("a", Opcode.FADD, 2, 0), DDGNode("b", Opcode.FMUL, 4, 1)]
    edges = [Dependence("a", "b", DepKind.REGISTER, DepType.FLOW, 0, 2),
             Dependence("b", "a", DepKind.REGISTER, DepType.FLOW, 1, 4)]
    ddg = DDG("synth", nodes, edges)
    sched = schedule_sms(ddg, resources)
    program = generate_thread_program(run_postpass(sched, arch))
    assert "a: fadd" in program.listing()
