"""Post-pass: copies, SEND/RECV planning."""

import pytest

from repro.sched import run_postpass, schedule_sms, schedule_tms, Schedule


def test_channels_cover_inter_iteration_reg_deps(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    pipelined = run_postpass(sched, arch)
    chan_edges = {(ch.edge.src, ch.edge.dst) for ch in pipelined.comm.channels}
    expected = {(e.src, e.dst) for e in sched.inter_iteration_register_deps()}
    assert chan_edges == expected


def test_shared_producer_counted_once(fig1_ddg, fig1_machine, arch):
    # n6 -> n0 and n6 -> n6 share producer n6: one SEND/RECV pair suffices
    sched = schedule_sms(fig1_ddg, fig1_machine)
    pipelined = run_postpass(sched, arch)
    producers = [ch.edge.src for ch in pipelined.comm.channels]
    assert producers.count("n6") == 2  # two channels...
    # ...but pairs are per producer (chain length = max hops)
    assert pipelined.comm.pairs_per_iteration == 3  # n6, n7, n8


def test_copies_for_multi_hop(axpy_ddg, resources, arch):
    sched = schedule_sms(axpy_ddg, resources)
    slots = dict(sched.slots)
    # force the accumulator's consumer two stages later -> d_ker 3
    pipelined = run_postpass(sched, arch)
    assert pipelined.comm.copies == sum(
        h - 1 for h in
        {ch.edge.src: ch.hops for ch in pipelined.comm.channels}.values()
        if h > 1)


def test_speculated_deps_listed(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    pipelined = run_postpass(sched, arch)
    spec = {(e.src, e.dst) for e in pipelined.speculated}
    assert spec == {("n5", "n0"), ("n5", "n2"), ("n5", "n3")}


def test_synchronize_memory_mode(fig1_ddg, fig1_machine, arch):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    pipelined = run_postpass(sched, arch, synchronize_memory=True)
    assert pipelined.speculated == ()
    chan_edges = {(ch.edge.src, ch.edge.dst) for ch in pipelined.comm.channels}
    assert ("n5", "n0") in chan_edges


def test_c_delay_matches_costmodel(fig1_ddg, fig1_machine, arch):
    from repro.costmodel import achieved_c_delay
    sched = schedule_sms(fig1_ddg, fig1_machine)
    pipelined = run_postpass(sched, arch)
    assert pipelined.comm.c_delay == pytest.approx(
        max(achieved_c_delay(sched, arch), 0.0))
