"""Rotating register allocation."""

import pytest

from repro.sched import allocate_registers, max_live, schedule_sms, schedule_tms
from repro.sched.regalloc import _CyclicInterval


class TestCyclicInterval:
    def test_disjoint(self):
        a = _CyclicInterval(0, 3, 16)
        b = _CyclicInterval(5, 3, 16)
        assert not a.overlaps(b) and not b.overlaps(a)

    def test_overlap(self):
        a = _CyclicInterval(0, 6, 16)
        b = _CyclicInterval(5, 3, 16)
        assert a.overlaps(b) and b.overlaps(a)

    def test_wraparound(self):
        a = _CyclicInterval(14, 5, 16)  # wraps to [14,16) U [0,3)
        b = _CyclicInterval(1, 2, 16)
        c = _CyclicInterval(4, 2, 16)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_full_period(self):
        a = _CyclicInterval(0, 16, 16)
        b = _CyclicInterval(8, 1, 16)
        assert a.overlaps(b)

    def test_zero_length(self):
        a = _CyclicInterval(0, 0, 16)
        b = _CyclicInterval(0, 16, 16)
        assert not a.overlaps(b)


def test_allocation_valid(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    alloc = allocate_registers(sched)  # _verify raises on bugs
    assert alloc.n_registers >= 1
    assert alloc.kernel_unroll == max(alloc.copies.values())


def test_register_count_bounds(fig1_ddg, fig1_machine, arch):
    for sched in (schedule_sms(fig1_ddg, fig1_machine),
                  schedule_tms(fig1_ddg, fig1_machine, arch)):
        alloc = allocate_registers(sched)
        # colours >= simultaneous live ranges, <= naive per-copy total
        assert alloc.n_registers >= max_live(sched)
        assert alloc.n_registers <= sum(alloc.copies.values())


def test_every_instance_assigned(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    alloc = allocate_registers(sched)
    for name, n in alloc.copies.items():
        assert len(alloc.registers_of(name)) == alloc.kernel_unroll


def test_no_values_case(resources, arch):
    from repro.graph import DDG, DDGNode
    from repro.ir.opcode import Opcode
    from repro.sched import Schedule
    ddg = DDG("empty", [DDGNode("a", Opcode.NOP, 1, 0)], [])
    sched = Schedule(ddg, 1, {"a": 0})
    alloc = allocate_registers(sched)
    assert alloc.n_registers == 0


def test_doacross_loops_allocate(latency, resources, arch):
    from repro.graph import build_ddg
    from repro.workloads import DOACROSS_LOOPS
    for sl in DOACROSS_LOOPS:
        ddg = build_ddg(sl.loop, latency)
        sched = schedule_tms(ddg, resources, arch)
        alloc = allocate_registers(sched)
        assert alloc.n_registers >= max_live(sched)
