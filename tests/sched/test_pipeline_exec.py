"""Semantic equivalence: pipelined execution vs sequential interpreter."""

import pytest

from repro.config import ArchConfig
from repro.errors import SimulationError
from repro.graph import build_ddg
from repro.ir import parse_loop
from repro.machine import LatencyModel, ResourceModel
from repro.sched import Schedule, schedule_ims, schedule_sms, schedule_tms
from repro.sched.pipeline_exec import check_equivalence, execute_pipelined


def test_axpy_sms_equivalent(axpy_loop, axpy_ddg, resources):
    sched = schedule_sms(axpy_ddg, resources)
    assert check_equivalence(axpy_loop, sched, iterations=24)


def test_axpy_tms_equivalent(axpy_loop, axpy_ddg, resources, arch):
    sched = schedule_tms(axpy_ddg, resources, arch)
    assert check_equivalence(axpy_loop, sched, iterations=24)


def test_axpy_ims_equivalent(axpy_loop, axpy_ddg, resources):
    sched = schedule_ims(axpy_ddg, resources)
    assert check_equivalence(axpy_loop, sched, iterations=24)


def test_recurrent_equivalent(recurrent_loop, recurrent_ddg, resources, arch):
    for sched in (schedule_sms(recurrent_ddg, resources),
                  schedule_tms(recurrent_ddg, resources, arch)):
        assert check_equivalence(recurrent_loop, sched, iterations=24)


def test_motivating_equivalent(fig1_loop, fig1_ddg, fig1_machine, arch):
    for sched in (schedule_sms(fig1_ddg, fig1_machine),
                  schedule_tms(fig1_ddg, fig1_machine, arch)):
        assert check_equivalence(fig1_loop, sched, iterations=32)


def test_bogus_schedule_detected(axpy_loop, axpy_ddg):
    # a "schedule" that issues the consumer before the producer completes
    # must diverge from sequential semantics
    slots = {"n0": 0, "n1": 0, "n2": 0, "n3": 0, "n4": 0, "n5": 0}
    bogus = Schedule(axpy_ddg, 1, slots)
    with pytest.raises(SimulationError):
        check_equivalence(axpy_loop, bogus, iterations=8)


def test_execute_pipelined_returns_state(axpy_loop, axpy_ddg, resources):
    sched = schedule_sms(axpy_ddg, resources)
    result = execute_pipelined(axpy_loop, sched, 16)
    assert result.iterations == 16
    assert "s" in result.registers
    assert "Y" in result.arrays
