"""Schedule representation: stages, rows, d_ker, validation."""

import pytest

from repro.errors import ScheduleValidationError
from repro.sched import Schedule, schedule_sms, validate_schedule


def test_normalisation_preserves_rows(axpy_ddg):
    slots = {"n0": -8, "n1": -5, "n2": -8, "n3": -1, "n4": 1, "n5": 1}
    sched = Schedule(axpy_ddg, 4, slots)
    assert min(sched.stage(n) for n in slots) == 0
    assert sched.row("n0") == (-8) % 4
    assert sched.row("n4") == 1


def test_missing_node_rejected(axpy_ddg):
    with pytest.raises(ScheduleValidationError):
        Schedule(axpy_ddg, 4, {"n0": 0})


def test_unknown_node_rejected(axpy_ddg):
    slots = {n: 0 for n in axpy_ddg.node_names}
    slots["ghost"] = 3
    with pytest.raises(ScheduleValidationError):
        Schedule(axpy_ddg, 4, slots)


def test_d_ker_definition(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    for e in fig1_ddg.edges:
        expected = e.distance + sched.stage(e.dst) - sched.stage(e.src)
        assert sched.d_ker(e) == expected


def test_kernel_rows_partition(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    rows = sched.kernel_rows()
    assert len(rows) == sched.ii
    flat = [n for row in rows for n in row]
    assert sorted(flat) == sorted(fig1_ddg.node_names)


def test_validation_catches_dependence_violation(axpy_ddg, resources):
    slots = {"n0": 0, "n1": 0, "n2": 0, "n3": 9, "n4": 11, "n5": 11}
    sched = Schedule(axpy_ddg, 16, slots)  # n1 issues before n0 completes
    with pytest.raises(ScheduleValidationError, match="violated"):
        validate_schedule(sched, resources)


def test_validation_catches_resource_conflict(axpy_ddg, resources):
    # both loads plus the store in the same kernel row exceeds the two
    # memory ports
    good = {"n0": 0, "n2": 0, "n1": 3, "n3": 16, "n4": 18, "n5": 18}
    validate_schedule(Schedule(axpy_ddg, 32, good), resources)
    bad = {"n0": 0, "n2": 0, "n1": 3, "n3": 16, "n4": 32, "n5": 18}
    with pytest.raises(ScheduleValidationError, match="resource"):
        validate_schedule(Schedule(axpy_ddg, 32, bad), resources)


def test_kernel_listing(fig1_ddg, fig1_machine):
    sched = schedule_sms(fig1_ddg, fig1_machine)
    text = sched.kernel_listing()
    assert f"II={sched.ii}" in text


def test_span(axpy_ddg, resources):
    sched = schedule_sms(axpy_ddg, resources)
    assert sched.span >= max(sched.slots[n.name] for n in axpy_ddg.nodes)
