"""Huff's lifetime-sensitive modulo scheduling baseline."""

import pytest

from repro.sched import (
    HuffModuloScheduler,
    schedule_huff,
    schedule_sms,
    validate_schedule,
)


def test_axpy(axpy_ddg, resources):
    sched = schedule_huff(axpy_ddg, resources)
    validate_schedule(sched, resources)
    s = HuffModuloScheduler(axpy_ddg, resources)
    assert sched.ii >= s.mii


def test_motivating(fig1_ddg, fig1_machine):
    sched = schedule_huff(fig1_ddg, fig1_machine)
    validate_schedule(sched, fig1_machine)
    assert sched.ii >= 8


def test_recurrent(recurrent_ddg, resources):
    validate_schedule(schedule_huff(recurrent_ddg, resources), resources)


def test_competitive_ii(fig1_ddg, fig1_machine):
    huff = schedule_huff(fig1_ddg, fig1_machine)
    sms = schedule_sms(fig1_ddg, fig1_machine)
    assert huff.ii <= sms.ii + 4


def test_doacross_loops(latency, resources):
    from repro.graph import build_ddg
    from repro.workloads import DOACROSS_LOOPS
    for sl in DOACROSS_LOOPS:
        if len(sl.loop) > 50:
            continue  # keep the unit test fast
        ddg = build_ddg(sl.loop, latency)
        validate_schedule(schedule_huff(ddg, resources), resources)


def test_semantic_equivalence(axpy_loop, axpy_ddg, resources):
    from repro.sched.pipeline_exec import check_equivalence
    sched = schedule_huff(axpy_ddg, resources)
    assert check_equivalence(axpy_loop, sched, iterations=16)
