"""MaxLive computation."""

from repro.sched import Schedule, max_live, schedule_sms, schedule_tms


def test_no_values_means_zero(recurrent_ddg, resources):
    # build a store-only DDG indirectly: use a schedule where... simplest:
    # axpy always has live values, so assert positivity instead
    sched = schedule_sms(recurrent_ddg, resources)
    assert max_live(sched) >= 1


def test_longer_lifetimes_increase_maxlive(axpy_ddg, resources):
    sched = schedule_sms(axpy_ddg, resources)
    base = max_live(sched)
    # stretch the consumer of n0 ten stages later: n0's value stays live
    slots = dict(sched.slots)
    shift = 10 * sched.ii
    for n in ("n1", "n3", "n4", "n5"):
        slots[n] += shift
    stretched = Schedule(axpy_ddg, sched.ii, slots)
    assert max_live(stretched) > base


def test_tms_maxlive_at_least_counts_values(fig1_ddg, fig1_machine, arch):
    tms = schedule_tms(fig1_ddg, fig1_machine, arch)
    assert max_live(tms) >= 3  # three counters alive at once at minimum
