"""Thread-sensitive modulo scheduling."""

import pytest

from repro.config import ArchConfig, SchedulerConfig
from repro.costmodel import achieved_c_delay, kernel_misspec_probability, sync_delay
from repro.sched import (
    ThreadSensitiveScheduler,
    schedule_sms,
    schedule_tms,
    validate_schedule,
)


def test_motivating_anchor(fig1_ddg, fig1_machine, arch):
    # TMS collapses the motivating example's sync delay from 11 to 4 at
    # the same II = MII = 8 (the paper reaches 5 with slightly different
    # resource details; the shape — a ~2-3x reduction at unchanged II —
    # is the anchor)
    tms = schedule_tms(fig1_ddg, fig1_machine, arch)
    assert tms.ii == 8
    assert achieved_c_delay(tms, arch) <= 5.0
    validate_schedule(tms, fig1_machine)


def test_c1_threshold_respected(fig1_ddg, fig1_machine, arch):
    tms = schedule_tms(fig1_ddg, fig1_machine, arch)
    threshold = tms.meta["c_delay_threshold"]
    for e in tms.inter_iteration_register_deps():
        assert sync_delay(tms, e, arch.reg_comm_latency) <= threshold + 1e-9


def test_c2_threshold_respected(fig1_ddg, fig1_machine, arch):
    cfg = SchedulerConfig(p_max=0.05)
    tms = ThreadSensitiveScheduler(fig1_ddg, fig1_machine, arch, cfg).schedule()
    if not tms.meta["fallback"]:
        assert kernel_misspec_probability(tms, arch) <= cfg.p_max + 1e-9


def test_tms_never_beats_mii(axpy_ddg, resources, arch):
    tms = schedule_tms(axpy_ddg, resources, arch)
    s = ThreadSensitiveScheduler(axpy_ddg, resources, arch)
    assert tms.ii >= s.mii


def test_tms_cdelay_leq_sms(fig1_ddg, fig1_machine, arch):
    sms = schedule_sms(fig1_ddg, fig1_machine)
    tms = schedule_tms(fig1_ddg, fig1_machine, arch)
    assert achieved_c_delay(tms, arch) <= achieved_c_delay(sms, arch)


def test_strict_pmax_forces_preservation_or_big_cd(fig1_ddg, fig1_machine, arch):
    # with P_max = 0 every inter-thread memory dependence must be preserved
    cfg = SchedulerConfig(p_max=0.0)
    tms = ThreadSensitiveScheduler(fig1_ddg, fig1_machine, arch, cfg).schedule()
    if not tms.meta["fallback"]:
        assert kernel_misspec_probability(tms, arch) == pytest.approx(0.0)


def test_pmax_trades_cdelay(fig1_ddg, fig1_machine, arch):
    loose = ThreadSensitiveScheduler(
        fig1_ddg, fig1_machine, arch, SchedulerConfig(p_max=1.0)).schedule()
    strict = ThreadSensitiveScheduler(
        fig1_ddg, fig1_machine, arch, SchedulerConfig(p_max=0.0)).schedule()
    # stricter speculation control can only cost C_delay/II, never help
    assert (achieved_c_delay(strict, arch), strict.ii) >= \
        (achieved_c_delay(loose, arch) - 1e-9, loose.ii)


def test_no_speculation_mode(fig1_ddg, fig1_machine, arch):
    cfg = SchedulerConfig(speculation=False)
    tms = ThreadSensitiveScheduler(fig1_ddg, fig1_machine, arch, cfg).schedule()
    validate_schedule(tms, fig1_machine)
    # achieved C_delay now includes the synchronised memory dependences
    cd_all = achieved_c_delay(tms, arch, include_memory=True)
    assert cd_all <= tms.meta["c_delay_threshold"] + 1e-9


def test_try_p_max_values(fig1_ddg, fig1_machine, arch):
    cfg = SchedulerConfig(try_p_max_values=True,
                          p_max_candidates=(0.0, 0.05, 1.0))
    tms = ThreadSensitiveScheduler(fig1_ddg, fig1_machine, arch, cfg).schedule()
    validate_schedule(tms, fig1_machine)
    assert tms.meta["p_max"] in (0.0, 0.05, 1.0)


def test_objective_monotone_in_candidates(fig1_ddg, fig1_machine, arch):
    s = ThreadSensitiveScheduler(fig1_ddg, fig1_machine, arch)
    cands = s._candidates()
    fs = [f for f, _cd, _ii in cands]
    assert fs == sorted(fs)


def test_meta_fields(fig1_ddg, fig1_machine, arch):
    tms = schedule_tms(fig1_ddg, fig1_machine, arch)
    for key in ("mii", "ldp", "c_delay_threshold", "p_max", "objective_f",
                "fallback", "achieved_c_delay", "p_m"):
        assert key in tms.meta
