"""Unit tests for the unified placement engine (repro.sched.engine)."""

from __future__ import annotations

import random

import pytest

from repro.errors import MachineError
from repro.machine.reservation import ModuloReservationTable
from repro.sched import (
    HookPolicy,
    PartialSchedule,
    PlacementEngine,
    Schedule,
    SlotPolicy,
    max_live,
    schedule_sms,
    schedule_tms,
)
from repro.sched.engine import EngineContext, LiveTracker, WindowService
from repro.sched.window import compute_window


def _random_partial(ddg, ii, rng):
    """A random (dependence-oblivious) partial slot assignment — windows
    are pure functions of the slots, so legality doesn't matter here."""
    names = list(ddg.node_names)
    rng.shuffle(names)
    k = rng.randrange(len(names) + 1)
    return {v: rng.randrange(0, 4 * ii) for v in names[:k]}


@pytest.mark.parametrize("ddg_fixture", ["fig1_ddg", "axpy_ddg",
                                         "recurrent_ddg"])
def test_window_table_matches_compute_window(ddg_fixture, resources, request):
    """The folded per-II window tables reproduce compute_window exactly —
    bounds AND scan direction — on random partial schedules."""
    ddg = request.getfixturevalue(ddg_fixture)
    ctx = EngineContext(ddg, resources)
    rng = random.Random(1234)
    for ii in (2, 3, 5, 8):
        table = WindowService(ctx).table(ii)
        for _ in range(25):
            partial = _random_partial(ddg, ii, rng)
            for v in ddg.node_names:
                if v in partial:
                    continue
                for direction in ("top-down", "bottom-up"):
                    for seed_high in (False, True):
                        ref = compute_window(ddg, v, partial, ii,
                                             ctx.metrics, direction,
                                             seed_high=seed_high)
                        got = table.window(v, partial,
                                           direction == "bottom-up",
                                           seed_high)
                        assert got == (ref.start, ref.end,
                                       ref.direction == "down"), \
                            f"{ddg.name}/{v} ii={ii} {direction} " \
                            f"seed_high={seed_high}"


def test_window_service_memoizes(fig1_ddg, resources):
    svc = WindowService(EngineContext(fig1_ddg, resources))
    assert svc.table(4) is svc.table(4)
    assert svc.table(4) is not svc.table(5)


@pytest.mark.parametrize("schedule_fn", [schedule_sms])
def test_live_tracker_matches_maxlive(schedule_fn, axpy_ddg, recurrent_ddg,
                                      fig1_ddg, fig1_machine, resources):
    """Replaying a completed schedule through the incremental tracker
    yields exactly repro.sched.maxlive.max_live."""
    for ddg, res in ((axpy_ddg, resources), (recurrent_ddg, resources),
                     (fig1_ddg, fig1_machine)):
        sched = schedule_fn(ddg, res)
        ps = PartialSchedule(EngineContext(ddg, res), sched.ii,
                             track_live=True)
        for v, cycle in sched.slots.items():
            ps.place(v, cycle)
        assert ps.live.max_live == max_live(sched)


def test_live_tracker_survives_removal(recurrent_ddg, resources):
    """remove() is the exact inverse of place() for the live counts."""
    sched = schedule_sms(recurrent_ddg, resources)
    ctx = EngineContext(recurrent_ddg, resources)
    ps = PartialSchedule(ctx, sched.ii, track_live=True)
    items = list(sched.slots.items())
    for v, cycle in items:
        ps.place(v, cycle)
    expected = ps.live.max_live
    # remove half, then re-place in a different order
    for v, _cycle in items[::2]:
        ps.remove(v)
    for v, cycle in reversed(items[::2]):
        ps.place(v, cycle)
    assert ps.live.max_live == expected
    for v, _ in items:
        ps.remove(v)
    assert ps.live.max_live == 0


def test_partial_schedule_matches_mrt(recurrent_ddg, resources):
    """fits/place/remove agree with ModuloReservationTable on random
    operation sequences (the engine's MRT replacement is behaviourally
    identical)."""
    ddg = recurrent_ddg
    ctx = EngineContext(ddg, resources)
    opcode = {n.name: n.opcode for n in ddg.nodes}
    rng = random.Random(99)
    for ii in (2, 4, 7):
        ps = PartialSchedule(ctx, ii)
        mrt = ModuloReservationTable(ii, resources)
        placed: dict[str, int] = {}
        for _ in range(300):
            v = rng.choice(ddg.node_names)
            if v in placed:
                ps.remove(v)
                mrt.remove(v)
                del placed[v]
                continue
            cycle = rng.randrange(0, 3 * ii)
            assert ps.fits(v, cycle) == mrt.fits(v, opcode[v], cycle)
            assert ps.occupancy_rows(v, cycle) == \
                mrt.occupancy_rows(opcode[v], cycle)
            if ps.fits(v, cycle):
                ps.place(v, cycle)
                mrt.place(v, opcode[v], cycle)
                placed[v] = cycle
        assert dict(ps.slots) == placed


def test_partial_schedule_guards(fig1_ddg, fig1_machine):
    ps = PartialSchedule(EngineContext(fig1_ddg, fig1_machine), 4)
    name = fig1_ddg.node_names[0]
    ps.place(name, 0)
    with pytest.raises(MachineError, match="already placed"):
        ps.place(name, 1)
    ps.remove(name)
    with pytest.raises(MachineError, match="not placed"):
        ps.remove(name)
    with pytest.raises(MachineError, match="II must be"):
        PartialSchedule(EngineContext(fig1_ddg, fig1_machine), 0)


def test_try_place_first_fit_equals_sms(axpy_ddg, resources):
    """PlacementEngine.try_place under the default policy reproduces the
    SMS scheduler's slots at the same II."""
    from repro.sched.sms import SwingModuloScheduler

    sms = SwingModuloScheduler(axpy_ddg, resources)
    sched = sms.schedule()
    engine = PlacementEngine(axpy_ddg, resources)
    slots = engine.try_place(sched.ii, sms.order, sms.order_directions,
                             None, alg="SMS")
    assert slots == sched.slots


def test_hook_policy_wraps_hooks(axpy_ddg, resources):
    seen: list[str] = []
    policy = HookPolicy(
        accept=lambda v, c, p: True,
        on_place=lambda v, c, p: seen.append(v),
        score=lambda v, c, p: float(c))
    engine = PlacementEngine(axpy_ddg, resources)
    slots = engine.try_place(8, list(axpy_ddg.node_names), {}, policy,
                             alg="SMS")
    assert slots is not None
    assert set(seen) == set(slots)


def test_slot_policy_defaults_are_inert():
    policy = SlotPolicy()
    assert policy.accept is None and policy.score is None
    assert policy.on_place is None and policy.on_eject is None
    policy.begin_attempt(None)  # no-op


def test_engine_metrics_published(axpy_ddg, resources, arch):
    from repro.obs import metrics as obs_metrics

    reg = obs_metrics.MetricsRegistry(enabled=True)
    old = obs_metrics.set_registry(reg)
    try:
        schedule_tms(axpy_ddg, resources, arch)
    finally:
        obs_metrics.set_registry(old)
    snap = {name: s.get("value", 0) for name, s in reg.snapshot().items()}
    assert snap.get("sched.engine.attempts", 0) > 0
    assert snap.get("sched.engine.slot_probes", 0) > 0
    assert snap.get("sched.engine.window_tables", 0) > 0
    # the TMS (II, C_delay) search re-attempts IIs: the memo must hit
    assert snap.get("sched.engine.window_reuses", 0) > 0


def test_deprecated_ordering_reexports_warn():
    import repro.sched as sched_pkg
    from repro.sched import ordering

    with pytest.warns(DeprecationWarning, match="repro.sched.ordering"):
        fn = sched_pkg.compute_node_order
    assert fn is ordering.compute_node_order
    with pytest.warns(DeprecationWarning):
        assert sched_pkg.partition_into_sets is ordering.partition_into_sets
    with pytest.raises(AttributeError):
        sched_pkg.not_a_symbol


def test_schedule_round_trip_still_validates(fig1_ddg, fig1_machine):
    """The engine's slot maps build real, validating Schedules."""
    from repro.sched import validate_schedule
    from repro.sched.sms import SwingModuloScheduler

    sms = SwingModuloScheduler(fig1_ddg, fig1_machine)
    sched = sms.schedule()
    validate_schedule(Schedule(fig1_ddg, sched.ii, dict(sched.slots),
                               algorithm="SMS"), fig1_machine)
