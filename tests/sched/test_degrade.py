"""Graceful scheduler degradation: sequential fallback, TMS watchdog,
and the TMS -> SMS -> IMS -> SEQ chain."""

from __future__ import annotations

import pytest

from repro.config import ArchConfig, SchedulerConfig
from repro.errors import MachineError, SchedulingBudgetExceeded, \
    SchedulingError
from repro.obs import metrics
from repro.sched.degrade import schedule_sequential_fallback, \
    schedule_with_degradation
from repro.sched.schedule import validate_schedule
from repro.sched.tms import schedule_tms


class TestSequentialFallback:
    def test_valid_schedule(self, fig1_ddg, fig1_machine):
        sched = schedule_sequential_fallback(fig1_ddg, fig1_machine)
        validate_schedule(sched, fig1_machine)
        assert sched.algorithm == "SEQ"
        assert sched.ii == max(sched.meta["span"], 1)

    def test_valid_on_recurrent_loop(self, recurrent_ddg, resources):
        sched = schedule_sequential_fallback(recurrent_ddg, resources)
        validate_schedule(sched, resources)

    def test_ii_at_least_tms(self, fig1_ddg, fig1_machine, arch):
        """SEQ has no overlap: its II can never beat the real schedulers."""
        seq = schedule_sequential_fallback(fig1_ddg, fig1_machine)
        tms = schedule_tms(fig1_ddg, fig1_machine, arch)
        assert seq.ii >= tms.ii


class TestWatchdog:
    def test_zero_budget_raises_budget_exceeded(self, fig1_ddg,
                                                fig1_machine, arch):
        cfg = SchedulerConfig(max_schedule_seconds=0.0)
        with pytest.raises(SchedulingBudgetExceeded):
            schedule_tms(fig1_ddg, fig1_machine, arch, cfg)

    def test_budget_exceeded_is_scheduling_error(self):
        assert issubclass(SchedulingBudgetExceeded, SchedulingError)

    def test_generous_budget_schedules_normally(self, fig1_ddg,
                                                fig1_machine, arch):
        cfg = SchedulerConfig(max_schedule_seconds=60.0)
        sched = schedule_tms(fig1_ddg, fig1_machine, arch, cfg)
        assert sched.algorithm == "TMS"
        assert "degraded_from" not in sched.meta

    def test_negative_budget_rejected(self):
        with pytest.raises(MachineError):
            SchedulerConfig(max_schedule_seconds=-1.0)


class TestDegradationChain:
    def test_no_degradation_when_tms_succeeds(self, fig1_ddg, fig1_machine,
                                              arch):
        sched = schedule_with_degradation(fig1_ddg, fig1_machine, arch)
        assert sched.algorithm == "TMS"
        assert "degraded_from" not in sched.meta

    def test_exhausted_budget_degrades_to_sms(self, fig1_ddg, fig1_machine,
                                              arch):
        counter = metrics.counter(
            "sched.degraded",
            "schedules produced by a degradation fallback")
        before = counter.value
        cfg = SchedulerConfig(max_schedule_seconds=0.0)
        sched = schedule_with_degradation(fig1_ddg, fig1_machine, arch, cfg)
        assert sched.meta["degraded_from"] == "TMS"
        assert sched.meta["degraded_to"] == "SMS"
        assert "degradation_reason" in sched.meta
        assert sched.algorithm == "SMS"
        validate_schedule(sched, fig1_machine)
        assert counter.value == before + 1

    def test_watchdog_metric_increments(self, fig1_ddg, fig1_machine, arch):
        counter = metrics.counter(
            "tms.watchdog_fires", "TMS watchdog deadline expiries")
        before = counter.value
        cfg = SchedulerConfig(max_schedule_seconds=0.0)
        schedule_with_degradation(fig1_ddg, fig1_machine, arch, cfg)
        assert counter.value > before

    def test_degraded_schedule_still_simulates(self, fig1_ddg, fig1_machine,
                                               arch):
        from repro.config import SimConfig
        from repro.sched import run_postpass
        from repro.spmt import simulate
        cfg = SchedulerConfig(max_schedule_seconds=0.0)
        sched = schedule_with_degradation(fig1_ddg, fig1_machine, arch, cfg)
        pipelined = run_postpass(sched, arch)
        stats = simulate(pipelined, arch, SimConfig(iterations=50))
        assert stats.total_cycles > 0
