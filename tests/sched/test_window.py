"""Scheduling-window computation."""

from repro.graph.paths import compute_metrics
from repro.sched.window import SchedulingWindow, compute_window


def test_pred_only_window(axpy_ddg):
    m = compute_metrics(axpy_ddg)
    w = compute_window(axpy_ddg, "n1", {"n0": 0}, 8, m)
    assert (w.start, w.end, w.direction) == (3, 10, "up")


def test_succ_only_window_scans_down(axpy_ddg):
    m = compute_metrics(axpy_ddg)
    w = compute_window(axpy_ddg, "n1", {"n3": 10}, 8, m)
    # Lstart = 10 - lat(n1) = 6
    assert (w.start, w.end, w.direction) == (-1, 6, "down")
    assert w.candidates()[0] == 6


def test_both_window_topdown(axpy_ddg):
    m = compute_metrics(axpy_ddg)
    w = compute_window(axpy_ddg, "n1", {"n0": 0, "n3": 20}, 8, m, "top-down")
    assert w.direction == "up"
    assert w.start == 3


def test_both_window_bottomup(axpy_ddg):
    m = compute_metrics(axpy_ddg)
    w = compute_window(axpy_ddg, "n1", {"n0": 0, "n3": 20}, 8, m, "bottom-up")
    assert w.direction == "down"
    assert w.end == 16
    assert w.start >= 3 + 20 - 8 - 8  # within II of Lstart, above Estart


def test_loop_carried_pred(fig1_ddg):
    m = compute_metrics(fig1_ddg)
    # n0's pred n5 via memory dep d=1: Estart = slot(n5) + 1 - II
    w = compute_window(fig1_ddg, "n0", {"n5": 7}, 8, m)
    assert w.start == 0


def test_unconstrained_window_uses_asap(axpy_ddg):
    m = compute_metrics(axpy_ddg)
    w = compute_window(axpy_ddg, "n3", {}, 8, m)
    assert (w.start, w.end, w.direction) == (7, 14, "up")
    w2 = compute_window(axpy_ddg, "n3", {}, 8, m, seed_high=True)
    assert w2.direction == "down"


def test_empty_window():
    w = SchedulingWindow(5, 3, "up")
    assert w.empty and w.candidates() == []
