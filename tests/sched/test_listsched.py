"""Acyclic list scheduling (single-threaded baseline)."""

from repro.sched import list_schedule


def test_dependences_respected(axpy_ddg, resources):
    ls = list_schedule(axpy_ddg, resources)
    for e in axpy_ddg.edges:
        if e.distance == 0:
            assert ls.times[e.dst] >= ls.times[e.src] + e.delay


def test_span_at_least_ldp(axpy_ddg, resources):
    from repro.graph import longest_dependence_path
    ls = list_schedule(axpy_ddg, resources)
    assert ls.span >= longest_dependence_path(axpy_ddg)


def test_resources_respected(fig1_ddg, fig1_machine):
    ls = list_schedule(fig1_ddg, fig1_machine)
    by_cycle = {}
    for name, t in ls.times.items():
        by_cycle.setdefault(t, []).append(name)
    for cycle, names in by_cycle.items():
        assert len(names) <= fig1_machine.issue_width


def test_delta_bounds(fig1_ddg, fig1_machine):
    ls = list_schedule(fig1_ddg, fig1_machine)
    assert ls.delta >= fig1_machine.res_mii(fig1_ddg.opcodes())


def test_execution_time_linear(axpy_ddg, resources):
    ls = list_schedule(axpy_ddg, resources)
    t10 = ls.execution_time(10)
    t20 = ls.execution_time(20)
    assert t20 - t10 == 10 * ls.delta
    assert ls.execution_time(0) == 0
