"""Iterative modulo scheduling baseline."""

from repro.sched import IterativeModuloScheduler, schedule_ims, validate_schedule


def test_axpy(axpy_ddg, resources):
    sched = schedule_ims(axpy_ddg, resources)
    validate_schedule(sched, resources)
    s = IterativeModuloScheduler(axpy_ddg, resources)
    assert sched.ii >= s.mii


def test_motivating(fig1_ddg, fig1_machine):
    sched = schedule_ims(fig1_ddg, fig1_machine)
    validate_schedule(sched, fig1_machine)
    assert sched.ii >= 8


def test_recurrent(recurrent_ddg, resources):
    sched = schedule_ims(recurrent_ddg, resources)
    validate_schedule(sched, resources)


def test_ims_competitive_with_sms(fig1_ddg, fig1_machine):
    from repro.sched import schedule_sms
    ims = schedule_ims(fig1_ddg, fig1_machine)
    sms = schedule_sms(fig1_ddg, fig1_machine)
    assert ims.ii <= sms.ii + 4
