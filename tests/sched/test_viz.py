"""ASCII visualisations."""

import pytest

from repro.config import SimConfig
from repro.sched import (
    flat_schedule_chart,
    kernel_gantt,
    run_postpass,
    schedule_sms,
    thread_timeline,
)
from repro.spmt import simulate


@pytest.fixture
def sched(fig1_ddg, fig1_machine):
    return schedule_sms(fig1_ddg, fig1_machine)


def test_kernel_gantt(sched, fig1_ddg):
    text = kernel_gantt(sched)
    assert f"II={sched.ii}" in text
    for name in fig1_ddg.node_names:
        assert name in text
    assert len([l for l in text.splitlines() if l.startswith(" ")]) >= sched.ii


def test_flat_chart(sched):
    text = flat_schedule_chart(sched)
    assert "#" in text and "span=" in text


def test_thread_timeline(sched, arch):
    stats = simulate(run_postpass(sched, arch), arch,
                     SimConfig(iterations=12, trace=True))
    text = thread_timeline(stats.thread_records, arch.ncore)
    assert "t0" in text and "=" in text


def test_thread_timeline_empty():
    assert "no thread records" in thread_timeline([], 4)
