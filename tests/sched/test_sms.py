"""Swing modulo scheduling."""

import pytest

from repro.config import SchedulerConfig
from repro.costmodel import achieved_c_delay, sync_delay
from repro.errors import SchedulingError
from repro.graph import build_ddg
from repro.ir import parse_loop
from repro.machine import LatencyModel, ResourceModel
from repro.sched import SwingModuloScheduler, schedule_sms, validate_schedule


def test_axpy_schedules_at_mii(axpy_ddg, resources):
    s = SwingModuloScheduler(axpy_ddg, resources)
    sched = s.schedule()
    assert sched.ii == s.mii
    validate_schedule(sched, resources)


def test_motivating_anchors(fig1_ddg, fig1_machine, arch):
    # Figure 2(a): II = 8, n0 at cycle 0, n6 at cycle 7, sync(n6,n0) = 11
    sched = schedule_sms(fig1_ddg, fig1_machine)
    assert sched.ii == 8
    assert sched.slot("n0") == 0
    assert sched.slot("n6") == 7
    (e,) = [d for d in sched.inter_iteration_register_deps()
            if d.src == "n6" and d.dst == "n0"]
    assert sync_delay(sched, e, arch.reg_comm_latency) == pytest.approx(11.0)
    assert achieved_c_delay(sched, arch) == pytest.approx(11.0)


def test_motivating_kernel_distances(fig1_ddg, fig1_machine):
    # the paper: n8 -> n5 becomes intra-iteration in the kernel; the listed
    # inter-iteration flow dependences all have kernel distance 1
    sched = schedule_sms(fig1_ddg, fig1_machine)
    (n8n5,) = [e for e in fig1_ddg.edges
               if e.src == "n8" and e.dst == "n5" and e.is_register_flow]
    assert sched.d_ker(n8n5) == 0
    mem = {(e.src, e.dst) for e in sched.inter_iteration_memory_deps()}
    assert mem == {("n5", "n0"), ("n5", "n2"), ("n5", "n3")}


def test_all_loops_validate(recurrent_ddg, resources):
    sched = schedule_sms(recurrent_ddg, resources)
    validate_schedule(sched, resources)


def test_unschedulable_raises():
    loop = parse_loop("""
loop tight
livein s 0.0
n0: s = fdiv s, 2.0
""")
    ddg = build_ddg(loop, LatencyModel())
    rm = ResourceModel.default()
    cfg = SchedulerConfig(max_ii_factor=1.0)
    s = SwingModuloScheduler(ddg, rm, cfg)
    # this one schedules fine (self-loop, II = 12); check max_ii bound math
    assert s.max_ii() >= s.mii
    sched = s.schedule()
    assert sched.ii >= 12


def test_try_ii_accept_hook(axpy_ddg, resources):
    s = SwingModuloScheduler(axpy_ddg, resources)
    vetoed = []
    def accept(v, cycle, partial):
        if v == "n4" and not vetoed:
            vetoed.append(cycle)
            return False
        return True
    slots = s.try_ii(s.mii + 4, accept=accept)
    assert slots is not None
    assert vetoed  # the hook really ran and vetoed a slot
    assert slots["n4"] != vetoed[0]


def test_on_place_sees_updated_partial(axpy_ddg, resources):
    s = SwingModuloScheduler(axpy_ddg, resources)
    seen = {}
    def on_place(v, cycle, partial):
        assert partial[v] == cycle
        seen[v] = cycle
    s.try_ii(s.mii + 2, on_place=on_place)
    assert set(seen) == set(axpy_ddg.node_names)


def test_score_hook_selects_minimum(axpy_ddg, resources):
    s = SwingModuloScheduler(axpy_ddg, resources)
    # a score that prefers the earliest slot in every window
    slots_first = s.try_ii(s.mii + 4)
    slots_early = s.try_ii(s.mii + 4, score=lambda v, c, p: float(c))
    assert slots_first is not None and slots_early is not None
    assert any(slots_early[n] != slots_first[n] for n in slots_first)
