"""SMS node ordering."""

from repro.graph.scc import strongly_connected_components
from repro.sched.ordering import compute_node_order, partition_into_sets
from repro.sched.ordering import compute_node_order_with_directions


def test_motivating_order_matches_paper(fig1_ddg):
    # Section 4.1: "the nodes in the DDG are scheduled in the order:
    # n5, n4, n2, n1, n0, n3, n6, n8 and n7" (we differ only in the
    # tie-break between the independent counters n7/n8).
    order = compute_node_order(fig1_ddg)
    assert order[:6] == ["n5", "n4", "n2", "n1", "n0", "n3"]
    assert set(order[6:]) == {"n6", "n7", "n8"}


def test_order_is_permutation(axpy_ddg, recurrent_ddg, fig1_ddg):
    for ddg in (axpy_ddg, recurrent_ddg, fig1_ddg):
        order = compute_node_order(ddg)
        assert sorted(order) == sorted(ddg.node_names)


def test_critical_scc_first(fig1_ddg):
    sets = partition_into_sets(fig1_ddg)
    assert set(sets[0]) == {"n0", "n1", "n2", "n3", "n4", "n5"}


def test_every_node_in_some_set(recurrent_ddg):
    sets = partition_into_sets(recurrent_ddg)
    flat = [n for s in sets for n in s]
    assert sorted(flat) == sorted(recurrent_ddg.node_names)
    assert len(flat) == len(set(flat))


def test_directions_cover_all_nodes(fig1_ddg):
    order, directions = compute_node_order_with_directions(fig1_ddg)
    assert set(directions) == set(order)
    assert set(directions.values()) <= {"top-down", "bottom-up"}


def test_no_sandwiched_node_when_avoidable(axpy_ddg):
    # the ordering should not leave a node whose preds AND succs are both
    # already ordered unless the graph forces it (here it never does)
    order = compute_node_order(axpy_ddg)
    seen = set()
    for v in order:
        preds = {e.src for e in axpy_ddg.preds(v) if e.src != v}
        succs = {e.dst for e in axpy_ddg.succs(v) if e.dst != v}
        sandwiched = preds and succs and preds <= seen and succs <= seen
        assert not sandwiched, v
        seen.add(v)
