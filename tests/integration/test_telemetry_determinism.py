"""The headline cross-process telemetry guarantee: a same-seed batch run
under ``jobs=4`` produces byte-identical telemetry to ``jobs=1``.

Each run gets a fresh default registry / tracer / span tracer; the
parallel run's workers collect telemetry in their own processes and the
runner merges it back in submission order, so the merged metric totals
(``deterministic_totals``), the JSONL event export, and the normalized
span tree must all match the sequential run exactly.
"""

from __future__ import annotations

from repro.obs import events as events_mod
from repro.obs.events import Tracer
from repro.obs.export import events_to_jsonl
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.spans import SpanTracer, set_span_tracer, span_tree
from repro.session import Session
from repro.workloads.specfp import benchmark_by_name, generate_benchmark_loops

ITERATIONS = 60
MAX_LOOPS = 3


def _run(jobs: int) -> dict:
    """One full compile+simulate batch under fresh default telemetry."""
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(enabled=True)
    spans = SpanTracer(enabled=True, detail=True)
    prev_registry = set_registry(registry)
    prev_tracer = events_mod._TRACER
    events_mod._TRACER = tracer
    prev_spans = set_span_tracer(spans)
    try:
        loops = generate_benchmark_loops(benchmark_by_name("art"),
                                         max_loops=MAX_LOOPS)
        session = Session()
        compiled = session.compile_many(loops, jobs=jobs)
        stats = session.simulate_many([c.tms for c in compiled],
                                      iterations=ITERATIONS, jobs=jobs)
        return {
            "cycles": [s.total_cycles for s in stats],
            "totals": registry.deterministic_totals(),
            "events_jsonl": events_to_jsonl(tracer.events),
            "tree": span_tree(spans.spans),
        }
    finally:
        set_registry(prev_registry)
        events_mod._TRACER = prev_tracer
        set_span_tracer(prev_spans)


def test_jobs4_telemetry_matches_jobs1():
    seq = _run(jobs=1)
    par = _run(jobs=4)

    # the workload itself is deterministic
    assert par["cycles"] == seq["cycles"]
    # merged metric totals agree exactly (timer wall-clock excluded)
    assert par["totals"] == seq["totals"]
    # trace export is byte-identical: same events, same order, no
    # origin stamped into merged records
    assert par["events_jsonl"] == seq["events_jsonl"]
    assert len(seq["events_jsonl"].splitlines()) > 0
    # span hierarchy agrees modulo ids/wall-clock (normalized tree)
    assert par["tree"] == seq["tree"]


def test_sequential_run_is_self_consistent():
    a = _run(jobs=1)
    b = _run(jobs=1)
    assert a["totals"] == b["totals"]
    assert a["events_jsonl"] == b["events_jsonl"]
    assert a["tree"] == b["tree"]
