"""Cross-component consistency checks.

Different subsystems compute related quantities by independent means; the
reproduction is only trustworthy if they agree.
"""

import pytest

from repro.config import ArchConfig, SimConfig
from repro.costmodel import estimate_execution_time, objective_f
from repro.graph import build_ddg, compute_mii, critical_circuits
from repro.machine import LatencyModel, ResourceModel
from repro.sched import (
    allocate_registers,
    generate_thread_program,
    max_live,
    run_postpass,
    schedule_sms,
    schedule_tms,
)
from repro.spmt import simulate
from repro.workloads import generate_benchmark_loops, benchmark_by_name, kernel_by_name

ARCH = ArchConfig.paper_default()
RES = ResourceModel.default()
LAT = LatencyModel.for_arch(ARCH)


def _sample_loops():
    loops = [kernel_by_name(n) for n in ("daxpy", "seidel_1d", "complex_mac")]
    loops += generate_benchmark_loops(benchmark_by_name("swim"), max_loops=2)
    return loops


@pytest.mark.parametrize("loop", _sample_loops(), ids=lambda l: l.name)
class TestCrossChecks:
    @pytest.fixture
    def compiled(self, loop):
        ddg = build_ddg(loop, LAT)
        return ddg, schedule_tms(ddg, RES, ARCH)

    def test_cost_model_vs_simulator(self, compiled):
        # on misspeculation-free runs the simulator must stay within a
        # small factor of the model's T_nomiss/N (the model is a bound-ish
        # approximation, not an exact predictor)
        ddg, sched = compiled
        pipelined = run_postpass(sched, ARCH)
        n = 600
        stats = simulate(pipelined, ARCH, SimConfig(iterations=n))
        if stats.misspeculations:
            pytest.skip("misspeculating run; model adds T_mis_spec")
        est = estimate_execution_time(sched, ARCH, n)
        ratio = stats.cycles_per_iteration / est.per_iteration
        assert 0.3 <= ratio <= 3.0, (stats.cycles_per_iteration,
                                     est.per_iteration)

    def test_allocator_vs_maxlive(self, compiled):
        _ddg, sched = compiled
        alloc = allocate_registers(sched)
        assert alloc.n_registers >= max_live(sched)

    def test_circuits_vs_ii(self, compiled):
        ddg, sched = compiled
        circuits = critical_circuits(ddg, top=1)
        if circuits:
            assert sched.ii >= circuits[0].ii_bound
        assert sched.ii >= compute_mii(ddg, RES)

    def test_codegen_vs_comm_plan(self, compiled):
        _ddg, sched = compiled
        pipelined = run_postpass(sched, ARCH)
        program = generate_thread_program(pipelined)
        assert program.n_copies == pipelined.comm.copies
        # one SEND chain per communicating producer
        assert program.n_send == len(
            {ch.edge.src for ch in pipelined.comm.channels})

    def test_objective_consistent_with_meta(self, compiled):
        _ddg, sched = compiled
        if sched.meta.get("fallback"):
            pytest.skip("fallback schedule has no candidate objective")
        f = objective_f(sched.ii, sched.meta["c_delay_threshold"], ARCH)
        assert f == pytest.approx(sched.meta["objective_f"])
