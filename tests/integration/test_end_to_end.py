"""Whole-pipeline smoke: the public one-call API."""

import pytest

from repro import ArchConfig, compile_and_simulate
from repro.workloads import motivating_loop


def test_compile_and_simulate():
    result = compile_and_simulate(motivating_loop(),
                                  ArchConfig.paper_default(),
                                  iterations=300)
    assert result["tms"].total_cycles < result["sms"].total_cycles
    assert result["sequential"].total_cycles > 0
    compiled = result["compiled"]
    assert compiled.tms.c_delay <= compiled.sms.c_delay


def test_version():
    import repro
    assert repro.__version__
