"""End-to-end semantics: every scheduler preserves every workload's
meaning (schedule -> pipelined replay == sequential interpretation)."""

import pytest

from repro.config import ArchConfig, SchedulerConfig
from repro.graph import build_ddg
from repro.machine import LatencyModel, ResourceModel
from repro.sched import schedule_ims, schedule_sms, schedule_tms
from repro.sched.pipeline_exec import check_equivalence
from repro.workloads import DOACROSS_LOOPS, LoopShape, SyntheticLoopGenerator

ARCH = ArchConfig.paper_default()
RES = ResourceModel.default()
LAT = LatencyModel.for_arch(ARCH)


@pytest.mark.parametrize("sl", DOACROSS_LOOPS, ids=lambda sl: sl.loop.name)
def test_doacross_loops_sms(sl):
    ddg = build_ddg(sl.loop, LAT)
    sched = schedule_sms(ddg, RES)
    assert check_equivalence(sl.loop, sched, iterations=20)


@pytest.mark.parametrize("sl", DOACROSS_LOOPS[:4], ids=lambda sl: sl.loop.name)
def test_doacross_loops_tms(sl):
    ddg = build_ddg(sl.loop, LAT)
    sched = schedule_tms(ddg, RES, ARCH)
    assert check_equivalence(sl.loop, sched, iterations=20)


@pytest.mark.parametrize("seed", range(6))
def test_synthetic_loops_all_schedulers(seed):
    shape = LoopShape(n_instr=18, n_reg_recurrences=1, n_mem_recurrences=1,
                      n_spec_deps=1, spec_probability=0.01)
    loop = SyntheticLoopGenerator(shape, seed).generate(f"synth{seed}")
    ddg = build_ddg(loop, LAT)
    for schedule in (schedule_sms(ddg, RES),
                     schedule_ims(ddg, RES),
                     schedule_tms(ddg, RES, ARCH)):
        assert check_equivalence(loop, schedule, iterations=16)
