"""Every quantitative anchor recoverable from the paper's text, in one
place.  These are the reproduction's headline guarantees."""

import pytest

from repro.config import ArchConfig, SimConfig
from repro.costmodel import achieved_c_delay, sync_delay
from repro.experiments import run_fig5, run_fig6, run_table3
from repro.graph import compute_mii, rec_mii, res_mii
from repro.sched import run_postpass, schedule_sms, schedule_tms
from repro.sched.ordering import compute_node_order
from repro.spmt import simulate
from repro.workloads import motivating_ddg, motivating_machine

ARCH = ArchConfig.paper_default()


class TestMotivatingExample:
    """Section 4.1 / Figures 1-2."""

    @pytest.fixture(scope="class")
    def setup(self):
        ddg = motivating_ddg()
        rm = motivating_machine()
        return ddg, rm, schedule_sms(ddg, rm), schedule_tms(ddg, rm, ARCH)

    def test_mii(self, setup):
        ddg, rm, _sms, _tms = setup
        assert (res_mii(ddg, rm), rec_mii(ddg)) == (4, 8)
        assert compute_mii(ddg, rm) == 8

    def test_sms_order(self, setup):
        ddg = setup[0]
        assert compute_node_order(ddg)[:6] == \
            ["n5", "n4", "n2", "n1", "n0", "n3"]

    def test_sms_sync_delay_11(self, setup):
        _ddg, _rm, sms, _tms = setup
        assert sms.ii == 8
        assert achieved_c_delay(sms, ARCH) == pytest.approx(11.0)

    def test_kernel_dependences(self, setup):
        _ddg, _rm, sms, _tms = setup
        reg = {(e.src, e.dst) for e in sms.inter_iteration_register_deps()}
        mem = {(e.src, e.dst) for e in sms.inter_iteration_memory_deps()}
        assert ("n6", "n0") in reg and ("n6", "n6") in reg
        assert mem == {("n5", "n0"), ("n5", "n2"), ("n5", "n3")}

    def test_tms_collapses_sync(self, setup):
        _ddg, _rm, _sms, tms = setup
        assert tms.ii == 8
        assert achieved_c_delay(tms, ARCH) <= 5.0

    def test_tms_beats_sms_on_spmt(self, setup):
        ddg, _rm, sms, tms = setup
        cfg = SimConfig(iterations=1000)
        t_sms = simulate(run_postpass(sms, ARCH), ARCH, cfg).total_cycles
        t_tms = simulate(run_postpass(tms, ARCH), ARCH, cfg).total_cycles
        assert t_tms < t_sms


class TestSelectedLoops:
    """Tables 3, Figures 5-6, Section 5.2."""

    @pytest.fixture(scope="class")
    def table3(self):
        return run_table3()

    def test_lucas_recurrence_bound(self, table3):
        lucas = next(r for r in table3 if r.benchmark == "lucas")
        assert lucas.avg_mii == pytest.approx(62, abs=2)
        assert lucas.tms_cdelay >= lucas.avg_mii

    def test_equake_matches_paper_row(self, table3):
        eq = next(r for r in table3 if r.benchmark == "equake")
        assert eq.avg_mii == pytest.approx(20, abs=2)
        assert eq.avg_ldp == pytest.approx(26, abs=2)
        assert eq.tms_ii == pytest.approx(27, abs=3)
        assert eq.tms_cdelay == pytest.approx(6, abs=2)
        assert eq.tms_maxlive == pytest.approx(31, abs=6)

    def test_fig5_all_positive_lucas_least(self, table3):
        rows = run_fig5(iterations=400, table3_rows=table3)
        assert all(r.loop_speedup > 1.0 for r in rows)
        assert min(rows, key=lambda r: r.loop_speedup).benchmark == "lucas"
        assert max(rows, key=lambda r: r.program_speedup).benchmark == "equake"

    def test_fig6_stall_shape(self, table3):
        rows = run_fig6(iterations=400, table3_rows=table3)
        by = {r.benchmark: r for r in rows}
        for name in ("art", "equake", "fma3d"):
            assert by[name].stall_reduction > 0.5
        assert by["lucas"].stall_reduction == min(
            r.stall_reduction for r in rows)
