"""Tarjan SCC and condensation."""

from repro.graph import condensation_order, strongly_connected_components


def test_axpy_sccs_all_trivial_except_acc(axpy_ddg):
    comps = strongly_connected_components(axpy_ddg)
    sizes = sorted(len(c) for c in comps)
    assert sizes == [1] * 6  # n5's recurrence is a self-loop (still size 1)


def test_motivating_big_scc(fig1_ddg):
    comps = strongly_connected_components(fig1_ddg)
    big = max(comps, key=len)
    assert set(big) == {"n0", "n1", "n2", "n3", "n4", "n5"}


def test_condensation_is_topological(fig1_ddg):
    comps = strongly_connected_components(fig1_ddg)
    order = condensation_order(fig1_ddg, comps)
    assert sorted(order) == list(range(len(comps)))
    pos = {c: i for i, c in enumerate(order)}
    comp_of = {}
    for idx, comp in enumerate(comps):
        for name in comp:
            comp_of[name] = idx
    for e in fig1_ddg.edges:
        cu, cv = comp_of[e.src], comp_of[e.dst]
        if cu != cv:
            assert pos[cu] < pos[cv]


def test_every_node_in_exactly_one_component(recurrent_ddg):
    comps = strongly_connected_components(recurrent_ddg)
    flat = [n for c in comps for n in c]
    assert sorted(flat) == sorted(recurrent_ddg.node_names)
