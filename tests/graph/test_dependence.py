"""Dependence edge invariants."""

import pytest

from repro.errors import DDGError
from repro.graph import Dependence, DepKind, DepType


def _dep(**kw):
    base = dict(src="a", dst="b", kind=DepKind.REGISTER, dtype=DepType.FLOW,
                distance=0, delay=1)
    base.update(kw)
    return Dependence(**base)


def test_register_dep_must_be_certain():
    with pytest.raises(DDGError):
        _dep(probability=0.5)


def test_memory_dep_probability():
    d = _dep(kind=DepKind.MEMORY, probability=0.25, distance=1)
    assert d.probability == 0.25
    assert d.is_memory_flow
    assert not d.is_register_flow


def test_negative_distance_rejected():
    with pytest.raises(DDGError):
        _dep(distance=-1)


def test_self_dep_needs_distance():
    with pytest.raises(DDGError):
        _dep(src="a", dst="a", distance=0)
    assert _dep(src="a", dst="a", distance=1).is_loop_carried


def test_str():
    text = str(_dep(distance=1))
    assert "a -> b" in text and "d=1" in text
