"""DDG construction from loop IR."""

import pytest

from repro.errors import DDGError
from repro.graph import DDG, DDGNode, Dependence, DepKind, DepType, build_ddg
from repro.ir import parse_loop
from repro.ir.opcode import Opcode
from repro.machine import LatencyModel


def find(ddg, src, dst, dtype=None):
    out = [e for e in ddg.edges if e.src == src and e.dst == dst
           and (dtype is None or e.dtype == dtype)]
    return out


class TestRegisterDeps:
    def test_intra_iteration_flow(self, axpy_ddg):
        (e,) = find(axpy_ddg, "n0", "n1", DepType.FLOW)
        assert e.distance == 0
        assert e.delay == axpy_ddg.latency("n0")

    def test_accumulator_self_loop(self, axpy_ddg):
        (e,) = find(axpy_ddg, "n5", "n5")
        assert e.distance == 1 and e.kind is DepKind.REGISTER

    def test_use_before_def_distance_one(self):
        loop = parse_loop("""
loop l
livein k 0.0
n0: t = fadd k, 1.0
n1: k = fadd k, 2.0
""")
        ddg = build_ddg(loop, LatencyModel())
        (e,) = find(ddg, "n1", "n0")
        assert e.distance == 1

    def test_back_reference_distance(self):
        loop = parse_loop("""
loop l
livein k 0.0
n0: k = fadd k, 1.0
n1: t = fadd k@-2, 1.0
""")
        ddg = build_ddg(loop, LatencyModel())
        (e,) = find(ddg, "n0", "n1")
        assert e.distance == 2

    def test_live_in_has_no_edge(self, axpy_ddg):
        # 'a' is a pure live-in: no producer edge into n1 from it
        preds = [e.src for e in axpy_ddg.preds("n1")]
        assert preds == ["n0"]


class TestMemoryDeps:
    def test_exact_affine_flow(self, recurrent_ddg):
        (e,) = find(recurrent_ddg, "n2", "n0", DepType.FLOW)
        assert e.kind is DepKind.MEMORY
        assert e.distance == 2
        assert e.probability == 1.0

    def test_same_iteration_anti(self, axpy_ddg):
        (e,) = find(axpy_ddg, "n2", "n4", DepType.ANTI)
        assert e.distance == 0

    def test_irregular_uses_hint(self):
        loop = parse_loop("""
loop l
array A 8
livein p 1.0
n0: v = load A[p] !alias n2:1:0.03
n1: w = fadd v, 1.0
n2: store A[p], w
n3: p = iadd p, 3
""")
        ddg = build_ddg(loop, LatencyModel())
        (e,) = find(ddg, "n2", "n0", DepType.FLOW)
        assert e.probability == pytest.approx(0.03)

    def test_irregular_without_hint_is_conservative(self):
        loop = parse_loop("""
loop l
array A 8
livein p 1.0
n0: v = load A[p]
n1: w = fadd v, 1.0
n2: store A[p], w
n3: p = iadd p, 3
""")
        ddg = build_ddg(loop, LatencyModel())
        (e,) = find(ddg, "n2", "n0", DepType.FLOW)
        assert e.probability == 1.0

    def test_profile_probabilities_override(self):
        loop = parse_loop("""
loop l
array A 8
livein p 1.0
n0: v = load A[p]
n1: w = fadd v, 1.0
n2: store A[p], w
n3: p = iadd p, 3
""")
        ddg = build_ddg(loop, LatencyModel(),
                        probabilities={("n2", "n0", 1): 0.01})
        (e,) = find(ddg, "n2", "n0", DepType.FLOW)
        assert e.probability == pytest.approx(0.01)

    def test_lsq_suppresses_unlikely_same_iteration_aliases(self):
        loop = parse_loop("""
loop l
array A 8
livein p 1.0
livein q 2.0
n0: w = fadd p, 1.0
n1: store A[p], w
n2: v = load A[q] !alias n1:1:0.01
n3: p = iadd p, 3
n4: q = iadd q, 5
""")
        ddg = build_ddg(loop, LatencyModel(),
                        probabilities={("n1", "n2", 0): 0.01,
                                       ("n1", "n2", 1): 0.01})
        dists = {e.distance for e in find(ddg, "n1", "n2", DepType.FLOW)}
        assert 0 not in dists and 1 in dists

    def test_different_arrays_never_alias(self, axpy_ddg):
        assert not find(axpy_ddg, "n4", "n0")


class TestDDGStructure:
    def test_unknown_node_rejected(self):
        node = DDGNode("a", Opcode.FADD, 2, 0)
        bad = Dependence("a", "ghost", DepKind.REGISTER, DepType.FLOW, 0, 2)
        with pytest.raises(DDGError):
            DDG("g", [node], [bad])

    def test_duplicate_node_rejected(self):
        node = DDGNode("a", Opcode.FADD, 2, 0)
        with pytest.raises(DDGError):
            DDG("g", [node, node], [])

    def test_distance_zero_cycle_rejected(self):
        nodes = [DDGNode("a", Opcode.FADD, 2, 0), DDGNode("b", Opcode.FADD, 2, 1)]
        edges = [Dependence("a", "b", DepKind.REGISTER, DepType.FLOW, 0, 2),
                 Dependence("b", "a", DepKind.REGISTER, DepType.FLOW, 0, 2)]
        with pytest.raises(DDGError):
            DDG("g", nodes, edges)

    def test_adjacency(self, axpy_ddg):
        assert {e.dst for e in axpy_ddg.succs("n0")} == {"n1"}
        assert {e.src for e in axpy_ddg.preds("n3")} == {"n1", "n2"}

    def test_describe(self, axpy_ddg):
        text = axpy_ddg.describe()
        assert "n0" in text and "edges" in text


def test_register_anti_deps_optional(axpy_loop):
    ddg = build_ddg(axpy_loop, LatencyModel(), include_reg_anti=True)
    anti = [e for e in ddg.edges
            if e.kind is DepKind.REGISTER and e.dtype is DepType.ANTI]
    output = [e for e in ddg.edges
              if e.kind is DepKind.REGISTER and e.dtype is DepType.OUTPUT]
    assert anti and output
