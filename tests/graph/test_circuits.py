"""Elementary-circuit enumeration and recurrence diagnostics."""

import pytest

from repro.graph import (
    critical_circuits,
    elementary_circuits,
    rec_mii,
)


def test_motivating_circuits(fig1_ddg):
    circuits = elementary_circuits(fig1_ddg)
    assert circuits
    # the binding circuit is the 8-cycle recurrence (n0..n5)
    best = critical_circuits(fig1_ddg, top=1)[0]
    assert best.ii_bound == rec_mii(fig1_ddg) == 8
    assert set(best.nodes) <= {"n0", "n1", "n2", "n3", "n4", "n5"}


def test_critical_circuit_bound_matches_rec_mii(axpy_ddg, recurrent_ddg):
    for ddg in (axpy_ddg, recurrent_ddg):
        best = critical_circuits(ddg, top=1)
        assert best[0].ii_bound == rec_mii(ddg)


def test_self_loops_found(axpy_ddg):
    circuits = elementary_circuits(axpy_ddg)
    self_loops = [c for c in circuits if len(c.nodes) == 1]
    assert any(c.nodes == ("n5",) for c in self_loops)


def test_memory_carried_classification(fig1_ddg):
    circuits = elementary_circuits(fig1_ddg)
    big = max(circuits, key=lambda c: len(c.nodes))
    # the n0..n5 circuit closes through the n5->n0 memory dependence
    assert big.is_memory_carried
    counter = next(c for c in circuits if c.nodes == ("n6",))
    assert not counter.is_memory_carried


def test_budget_respected(fig1_ddg):
    limited = elementary_circuits(fig1_ddg, max_circuits=2)
    assert len(limited) <= 2


def test_circuit_str(fig1_ddg):
    c = critical_circuits(fig1_ddg, top=1)[0]
    assert "II>=" in str(c)


def test_lucas_diagnosis(latency):
    # the paper's analysis: lucas's binding recurrence is the carry chain,
    # a *register*-carried circuit (not speculatable)
    from repro.graph import build_ddg
    from repro.workloads import selected_loops
    (lucas,) = selected_loops("lucas")
    ddg = build_ddg(lucas.loop, latency)
    best = critical_circuits(ddg, top=1, max_circuits=20000)[0]
    assert best.ii_bound == 62
    assert not best.is_memory_carried
