"""ResMII / RecMII / MII."""

import pytest

from repro.graph import compute_mii, is_feasible_ii, rec_mii, res_mii
from repro.graph.mii import scc_rec_mii
from repro.graph.scc import strongly_connected_components


def test_motivating_anchors(fig1_ddg, fig1_machine):
    # the paper's Figure 1: ResII = 4, RecII = 8, MII = 8
    assert res_mii(fig1_ddg, fig1_machine) == 4
    assert rec_mii(fig1_ddg) == 8
    assert compute_mii(fig1_ddg, fig1_machine) == 8


def test_acyclic_rec_mii_is_one(axpy_ddg):
    # axpy's only recurrence is the 2-cycle accumulator self-loop
    assert rec_mii(axpy_ddg) == 2


def test_feasibility_monotone(fig1_ddg):
    assert not is_feasible_ii(fig1_ddg, 7)
    assert is_feasible_ii(fig1_ddg, 8)
    assert is_feasible_ii(fig1_ddg, 9)


def test_rec_mii_subset(fig1_ddg):
    assert rec_mii(fig1_ddg, ["n6"]) == 1  # iadd self-loop, delay 1
    assert rec_mii(fig1_ddg, ["n0", "n1", "n2", "n4", "n5"]) == 8


def test_scc_rec_mii(fig1_ddg):
    comps = strongly_connected_components(fig1_ddg)
    recs = scc_rec_mii(fig1_ddg, comps)
    by_comp = {tuple(sorted(c)): r for c, r in zip(comps, recs)}
    big = next(k for k in by_comp if len(k) == 6)
    assert by_comp[big] == 8


def test_recurrent_mem_mii(recurrent_ddg, resources):
    # the binding circuit is B's conservative indirect dependence:
    # load(3) + fadd(2) + store(1) at distance 1 = 6; the exact
    # distance-2 recurrence on A only needs (3 + 4 + 1) / 2 = 4
    assert rec_mii(recurrent_ddg) == 6
    assert rec_mii(recurrent_ddg, ["n0", "n1", "n2"]) == 4
