"""ASAP/ALAP/height/depth and LDP."""

from repro.graph import compute_metrics, longest_dependence_path


def test_depth_height_consistency(axpy_ddg):
    m = compute_metrics(axpy_ddg)
    assert m["n0"].depth == 0
    assert m["n1"].depth == 3           # after the load
    assert m["n3"].depth == 7           # load(3) + fmul(4)
    # height decreases along paths
    assert m["n0"].height > m["n1"].height > m["n3"].height


def test_mobility_nonnegative(fig1_ddg):
    for name, m in compute_metrics(fig1_ddg).items():
        assert m.mobility >= 0, name
        assert m.alap >= m.depth


def test_critical_path_zero_mobility(axpy_ddg):
    m = compute_metrics(axpy_ddg)
    # n0 -> n1 -> n3 -> n4 is the longest chain; all on it have mobility 0
    for name in ("n0", "n1", "n3", "n4"):
        assert m[name].mobility == 0


def test_ldp(axpy_ddg):
    # load(3) + fmul(4) + fadd(2) + fadd(2) = 11 through the accumulator
    # (the store path completes at 10)
    assert longest_dependence_path(axpy_ddg) == 11


def test_ldp_motivating(fig1_ddg):
    # the recurrence circuit is 8 cycles end to end
    assert longest_dependence_path(fig1_ddg) == 8
