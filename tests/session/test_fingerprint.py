"""Round-trip guarantees of the content fingerprints and artifact keys."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import ArchConfig, SchedulerConfig
from repro.graph import build_ddg
from repro.ir import parse_loop
from repro.machine import LatencyModel, ResourceModel
from repro.session import artifact_key, fingerprint
from repro.session.fingerprint import fingerprint_payload

SRC = """
loop fp
array A 64
array B 64
livein a 2.0
n0: x = load A[i]
n1: t = fmul x, a
n2: store B[i], t
"""

SRC_OTHER_OP = SRC.replace("fmul", "fadd")


def test_identical_loops_built_independently_hash_equal():
    assert fingerprint(parse_loop(SRC)) == fingerprint(parse_loop(SRC))


def test_instruction_change_changes_fingerprint():
    assert fingerprint(parse_loop(SRC)) != fingerprint(parse_loop(SRC_OTHER_OP))


def test_loop_name_participates():
    renamed = SRC.replace("loop fp", "loop fq")
    assert fingerprint(parse_loop(SRC)) != fingerprint(parse_loop(renamed))


def test_payload_is_deterministic_json():
    a = fingerprint_payload(parse_loop(SRC))
    b = fingerprint_payload(parse_loop(SRC))
    assert a == b
    assert a.startswith("{")


def test_config_fingerprint_covers_every_field():
    base = SchedulerConfig()
    assert fingerprint(base) == fingerprint(SchedulerConfig())
    for change in (dict(p_max=0.2), dict(speculation=False),
                   dict(max_ii_factor=3.0), dict(budget_ratio_ii=4),
                   dict(include_reg_anti_deps=True)):
        assert fingerprint(replace(base, **change)) != fingerprint(base), change


def test_arch_fingerprint_covers_every_field():
    base = ArchConfig.paper_default()
    for change in (dict(ncore=8), dict(reg_comm_latency=6),
                   dict(l1_miss_rate=0.1), dict(spawn_overhead=5)):
        assert fingerprint(replace(base, **change)) != fingerprint(base), change


def test_ddg_fingerprint_round_trip():
    latency = LatencyModel.for_arch(ArchConfig.paper_default())
    d1 = build_ddg(parse_loop(SRC), latency)
    d2 = build_ddg(parse_loop(SRC), latency)
    assert fingerprint(d1) == fingerprint(d2)
    d3 = build_ddg(parse_loop(SRC_OTHER_OP), latency)
    assert fingerprint(d1) != fingerprint(d3)


def _default_key(loop, arch=None, config=None):
    arch = arch or ArchConfig.paper_default()
    return artifact_key(loop, arch,
                        ResourceModel.default(arch.issue_width),
                        config or SchedulerConfig(),
                        LatencyModel.for_arch(arch))


def test_artifact_key_stable_across_builds():
    assert _default_key(parse_loop(SRC)) == _default_key(parse_loop(SRC))


def test_artifact_key_invalidated_by_any_component():
    base = _default_key(parse_loop(SRC))
    assert _default_key(parse_loop(SRC_OTHER_OP)) != base
    assert _default_key(parse_loop(SRC),
                        arch=ArchConfig.paper_default().with_cores(8)) != base
    assert _default_key(parse_loop(SRC),
                        config=SchedulerConfig(p_max=0.5)) != base


def test_artifact_key_embeds_library_version(monkeypatch):
    import repro
    base = _default_key(parse_loop(SRC))
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert _default_key(parse_loop(SRC)) != base


def test_unfingerprintable_object_raises():
    with pytest.raises(TypeError):
        fingerprint(object())
