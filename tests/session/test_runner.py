"""ParallelRunner: deterministic ordering, soft failure, jobs resolution."""

from __future__ import annotations

import os

import pytest

from repro.session import ParallelRunner, TaskResult, resolve_jobs


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def test_resolve_jobs_default_is_sequential(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2          # explicit argument wins


def test_resolve_jobs_negative_means_all_cores(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(-1) == (os.cpu_count() or 1)


def test_resolve_jobs_bad_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError):
        resolve_jobs()


def test_sequential_map_preserves_order():
    results = ParallelRunner(1).map(_square, [3, 1, 2])
    assert [r.value for r in results] == [9, 1, 4]
    assert all(r.ok for r in results)
    assert [r.index for r in results] == [0, 1, 2]


def test_parallel_map_matches_sequential():
    items = list(range(12))
    seq = ParallelRunner(1).map(_square, items)
    par = ParallelRunner(4).map(_square, items)
    assert [r.value for r in par] == [r.value for r in seq]


def test_error_captured_per_task():
    results = ParallelRunner(1).map(_fail_on_three, [1, 3, 5])
    assert [r.ok for r in results] == [True, False, True]
    assert isinstance(results[1].error, ValueError)
    assert "three is right out" in results[1].error_traceback
    with pytest.raises(RuntimeError):
        results[1].unwrap()


def test_on_error_raise():
    with pytest.raises(RuntimeError):
        ParallelRunner(1).map(_fail_on_three, [3], on_error="raise")


def test_parallel_error_capture():
    results = ParallelRunner(2).map(_fail_on_three, [1, 3, 2, 4])
    assert [r.ok for r in results] == [True, False, True, True]
    assert [r.value for r in results if r.ok] == [1, 2, 4]


def test_empty_items():
    assert ParallelRunner(4).map(_square, []) == []


def test_invalid_on_error():
    with pytest.raises(ValueError):
        ParallelRunner(1).map(_square, [1], on_error="explode")


def test_task_result_unwrap_value():
    assert TaskResult(index=0, value=42).unwrap() == 42


def _crash_on_two(x):
    if x == 2:
        os._exit(13)          # hard worker death, not an exception
    return x * 10


def _sleep_inverse(x):
    import time
    time.sleep(0.05 * (3 - x))
    return x


def test_worker_hard_crash_is_soft_failure():
    # a worker dying mid-task (os._exit) must not kill the sweep: the
    # pool failure is captured per task and map() still returns one
    # ordered TaskResult per input.
    results = ParallelRunner(2).map(_crash_on_two, [1, 2, 3, 4])
    assert len(results) == 4
    assert [r.index for r in results] == [0, 1, 2, 3]
    assert not results[1].ok
    assert results[1].error is not None
    failed = [r for r in results if not r.ok]
    assert failed                      # the crash surfaced somewhere
    # every task that did complete holds its correct value
    for r in results:
        if r.ok:
            assert r.value == (r.index + 1) * 10


def test_worker_crash_on_error_raise_reports_first_failure():
    with pytest.raises(RuntimeError, match="task "):
        ParallelRunner(2).map(_crash_on_two, [2, 1], on_error="raise")


def test_parallel_results_ordered_despite_completion_order():
    # task 0 sleeps longest, so completion order inverts input order
    results = ParallelRunner(3).map(_sleep_inverse, [0, 1, 2])
    assert [r.value for r in results] == [0, 1, 2]
    assert all(r.ok for r in results)
