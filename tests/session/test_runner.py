"""ParallelRunner: deterministic ordering, soft failure, jobs resolution."""

from __future__ import annotations

import os

import pytest

from repro.session import ParallelRunner, TaskResult, resolve_jobs


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def test_resolve_jobs_default_is_sequential(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2          # explicit argument wins


def test_resolve_jobs_negative_means_all_cores(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(-1) == (os.cpu_count() or 1)


def test_resolve_jobs_bad_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError):
        resolve_jobs()


def test_sequential_map_preserves_order():
    results = ParallelRunner(1).map(_square, [3, 1, 2])
    assert [r.value for r in results] == [9, 1, 4]
    assert all(r.ok for r in results)
    assert [r.index for r in results] == [0, 1, 2]


def test_parallel_map_matches_sequential():
    items = list(range(12))
    seq = ParallelRunner(1).map(_square, items)
    par = ParallelRunner(4).map(_square, items)
    assert [r.value for r in par] == [r.value for r in seq]


def test_error_captured_per_task():
    results = ParallelRunner(1).map(_fail_on_three, [1, 3, 5])
    assert [r.ok for r in results] == [True, False, True]
    assert isinstance(results[1].error, ValueError)
    assert "three is right out" in results[1].error_traceback
    with pytest.raises(RuntimeError):
        results[1].unwrap()


def test_on_error_raise():
    with pytest.raises(RuntimeError):
        ParallelRunner(1).map(_fail_on_three, [3], on_error="raise")


def test_parallel_error_capture():
    results = ParallelRunner(2).map(_fail_on_three, [1, 3, 2, 4])
    assert [r.ok for r in results] == [True, False, True, True]
    assert [r.value for r in results if r.ok] == [1, 2, 4]


def test_empty_items():
    assert ParallelRunner(4).map(_square, []) == []


def test_invalid_on_error():
    with pytest.raises(ValueError):
        ParallelRunner(1).map(_square, [1], on_error="explode")


def test_task_result_unwrap_value():
    assert TaskResult(index=0, value=42).unwrap() == 42


def _crash_on_two(x):
    if x == 2:
        os._exit(13)          # hard worker death, not an exception
    return x * 10


def _sleep_inverse(x):
    import time
    time.sleep(0.05 * (3 - x))
    return x


def test_worker_hard_crash_is_soft_failure():
    # a worker dying mid-task (os._exit) must not kill the sweep: the
    # pool failure is captured per task and map() still returns one
    # ordered TaskResult per input.
    results = ParallelRunner(2).map(_crash_on_two, [1, 2, 3, 4])
    assert len(results) == 4
    assert [r.index for r in results] == [0, 1, 2, 3]
    assert not results[1].ok
    assert results[1].error is not None
    failed = [r for r in results if not r.ok]
    assert failed                      # the crash surfaced somewhere
    # every task that did complete holds its correct value
    for r in results:
        if r.ok:
            assert r.value == (r.index + 1) * 10


def test_worker_crash_on_error_raise_reports_first_failure():
    with pytest.raises(RuntimeError, match="task "):
        ParallelRunner(2).map(_crash_on_two, [2, 1], on_error="raise")


def test_parallel_results_ordered_despite_completion_order():
    # task 0 sleeps longest, so completion order inverts input order
    results = ParallelRunner(3).map(_sleep_inverse, [0, 1, 2])
    assert [r.value for r in results] == [0, 1, 2]
    assert all(r.ok for r in results)


# -- per-task timeout + retries ----------------------------------------------

def _hang_on_two(x):
    if x == 2:
        import time
        time.sleep(60)
    return x * 10


_ATTEMPT_DIR = None


def _fail_until_marker(x):
    """Fails until a marker file exists (lets a retry wave succeed)."""
    import pathlib
    marker = pathlib.Path(_ATTEMPT_DIR) / f"tried-{x}"
    if not marker.exists():
        marker.touch()
        raise ValueError(f"first attempt of {x} fails")
    return x


def _timeouts_metric():
    from repro.obs import metrics
    return metrics.counter("runner.timeouts",
                           "tasks that hit the per-task timeout").value


def _retries_metric():
    from repro.obs import metrics
    return metrics.counter("runner.retries", "task retry attempts").value


def test_sequential_timeout_fails_soft():
    from repro.errors import TaskTimeout
    before = _timeouts_metric()
    results = ParallelRunner(1).map(_hang_on_two, [1, 2, 3], timeout=0.5)
    assert [r.ok for r in results] == [True, False, True]
    assert results[1].timed_out
    assert isinstance(results[1].error, TaskTimeout)
    assert [r.value for r in results if r.ok] == [10, 30]
    assert _timeouts_metric() == before + 1


def test_parallel_timeout_fails_soft_and_terminates_worker():
    from repro.errors import TaskTimeout
    before = _timeouts_metric()
    results = ParallelRunner(3).map(_hang_on_two, [1, 2, 3], timeout=2.0)
    assert len(results) == 3
    assert results[0].ok and results[0].value == 10
    assert results[2].ok and results[2].value == 30
    assert not results[1].ok and results[1].timed_out
    assert isinstance(results[1].error, TaskTimeout)
    assert _timeouts_metric() > before


def test_no_timeout_marks_nothing_timed_out():
    results = ParallelRunner(1).map(_square, [1, 2])
    assert all(not r.timed_out and r.attempts == 1 for r in results)


def test_retries_recover_flaky_task(tmp_path):
    global _ATTEMPT_DIR
    _ATTEMPT_DIR = str(tmp_path)
    before = _retries_metric()
    results = ParallelRunner(1).map(_fail_until_marker, [1, 2], retries=2)
    assert all(r.ok for r in results)
    assert [r.value for r in results] == [1, 2]
    assert all(r.attempts == 2 for r in results)
    assert _retries_metric() == before + 2


def test_retries_exhausted_keeps_last_error():
    results = ParallelRunner(1).map(_fail_on_three, [3], retries=2)
    assert not results[0].ok
    assert results[0].attempts == 3
    assert isinstance(results[0].error, ValueError)


def test_retries_do_not_rerun_successes(tmp_path):
    global _ATTEMPT_DIR
    _ATTEMPT_DIR = str(tmp_path)
    results = ParallelRunner(1).map(_fail_until_marker, [7], retries=5)
    assert results[0].ok and results[0].attempts == 2  # not 6


def test_negative_retries_rejected():
    with pytest.raises(ValueError, match="retries"):
        ParallelRunner(1).map(_square, [1], retries=-1)


def test_backoff_sleep_is_seeded(monkeypatch):
    slept = []
    import repro.session.runner as runner_mod
    monkeypatch.setattr(runner_mod.time, "sleep", slept.append)
    ParallelRunner._backoff_sleep(1, backoff=0.1, seed=42)
    ParallelRunner._backoff_sleep(1, backoff=0.1, seed=42)
    assert slept[0] == slept[1]                     # deterministic
    assert 0.05 <= slept[0] < 0.15                  # jitter in [0.5, 1.5)
    ParallelRunner._backoff_sleep(2, backoff=0.1, seed=42)
    assert slept[2] > slept[0]                      # exponential growth


def test_backoff_zero_never_sleeps(monkeypatch):
    import repro.session.runner as runner_mod

    def _boom(_s):
        raise AssertionError("slept with backoff=0")
    monkeypatch.setattr(runner_mod.time, "sleep", _boom)
    results = ParallelRunner(1).map(_fail_on_three, [3], retries=1,
                                    backoff=0.0)
    assert results[0].attempts == 2


# -- persistent warm pool ----------------------------------------------------

def _worker_pid(_x):
    return os.getpid()


def _exit_hard(x):
    if x == 2:
        os._exit(13)                    # simulate a worker crash
    return x


def _recycles_metric():
    from repro.obs import metrics
    return metrics.counter(
        "runner.worker_recycles",
        "persistent pools recycled after max_tasks_per_worker").value


def _rebuilds_metric():
    from repro.obs import metrics
    return metrics.counter(
        "runner.pool_rebuilds",
        "persistent pools replaced after a worker crash").value


def test_persistent_pool_reuses_workers_across_maps():
    with ParallelRunner(2, persistent=True) as runner:
        first = {r.value for r in runner.map(_worker_pid, range(8))}
        second = {r.value for r in runner.map(_worker_pid, range(8))}
    assert first & second               # same warm processes answered both


def test_non_persistent_runner_rebuilds_the_pool_each_map():
    runner = ParallelRunner(2)
    runner.map(_square, [1])
    assert runner._pool is None         # nothing kept warm


def test_persistent_pool_recycles_after_max_tasks():
    before = _recycles_metric()
    with ParallelRunner(2, persistent=True,
                        max_tasks_per_worker=1) as runner:
        runner.map(_square, [1, 2])     # fills the per-worker budget
        results = runner.map(_square, [3, 4])
    assert [r.value for r in results] == [9, 16]
    assert _recycles_metric() == before + 1


def test_persistent_pool_survives_worker_crash():
    before = _rebuilds_metric()
    with ParallelRunner(2, persistent=True) as runner:
        crashed = runner.map(_exit_hard, [1, 2, 3])
        assert not all(r.ok for r in crashed)          # soft failure...
        after = runner.map(_square, [5, 6])            # ...fresh pool works
    assert [r.value for r in after] == [25, 36]
    assert _rebuilds_metric() > before


def test_persistent_pool_crash_recovers_via_retries(tmp_path):
    global _ATTEMPT_DIR
    _ATTEMPT_DIR = str(tmp_path)
    with ParallelRunner(2, persistent=True) as runner:
        results = runner.map(_fail_until_marker, [1, 2], retries=2)
    assert all(r.ok for r in results)


def test_close_is_idempotent():
    runner = ParallelRunner(2, persistent=True)
    runner.map(_square, [1])
    runner.close()
    runner.close()
    results = runner.map(_square, [2])  # usable again: pool respawns
    assert results[0].value == 4
    runner.close()


def test_max_tasks_per_worker_validated():
    with pytest.raises(ValueError, match="max_tasks_per_worker"):
        ParallelRunner(2, persistent=True, max_tasks_per_worker=0)
