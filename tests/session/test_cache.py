"""The two-tier artifact cache: LRU semantics, disk tier, counters."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.session.cache import MISS, ArtifactCache


def test_miss_then_hit():
    cache = ArtifactCache(maxsize=4)
    assert cache.get("k1") is MISS
    cache.put("k1", "v1")
    assert cache.get("k1") == "v1"
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1


def test_cached_none_is_distinguished_from_miss():
    cache = ArtifactCache()
    cache.put("k", None)
    assert cache.get("k") is None
    assert cache.get("absent") is MISS


def test_lru_eviction_order():
    cache = ArtifactCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # refresh a; b is now least recent
    cache.put("c", 3)
    assert "a" in cache and "c" in cache
    assert cache.get("b") is MISS
    assert cache.stats.evictions == 1


def test_invalid_maxsize_rejected():
    with pytest.raises(ValueError):
        ArtifactCache(maxsize=0)


def test_unbounded_cache():
    cache = ArtifactCache(maxsize=None)
    for i in range(5000):
        cache.put(str(i), i)
    assert len(cache) == 5000
    assert cache.stats.evictions == 0


def test_invalidate_and_clear():
    cache = ArtifactCache()
    cache.put("k", 1)
    assert cache.invalidate("k")
    assert not cache.invalidate("k")
    assert cache.stats.invalidations == 1
    cache.put("k2", 2)
    cache.clear()
    assert cache.get("k2") is MISS


def test_disk_tier_round_trip(tmp_path):
    cache = ArtifactCache(maxsize=4, disk_dir=tmp_path)
    cache.put("ab12cd", {"x": 1})
    assert cache.stats.disk_stores == 1
    assert (tmp_path / "ab" / "ab12cd.pkl").exists()
    # a fresh cache over the same directory serves the entry from disk
    warm = ArtifactCache(maxsize=4, disk_dir=tmp_path)
    assert warm.get("ab12cd") == {"x": 1}
    assert warm.stats.disk_hits == 1
    # and promotes it to memory: the second lookup is a memory hit
    assert warm.get("ab12cd") == {"x": 1}
    assert warm.stats.hits == 1


def test_disk_corrupt_entry_discarded(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path)
    path = tmp_path / "de" / "deadbeef.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle")
    assert cache.get("deadbeef") is MISS
    assert cache.stats.disk_errors == 1
    assert not path.exists()          # removed so a rewrite can replace it


def test_disk_invalidate_removes_file(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path)
    cache.put("ab12", 7)
    assert cache.invalidate("ab12")
    assert ArtifactCache(disk_dir=tmp_path).get("ab12") is MISS


def test_disk_write_failure_is_soft(tmp_path, monkeypatch):
    cache = ArtifactCache(disk_dir=tmp_path)
    monkeypatch.setattr(pickle, "dump",
                        lambda *a, **k: (_ for _ in ()).throw(
                            pickle.PicklingError("boom")))
    cache.put("ab34", 7)              # must not raise
    assert cache.stats.disk_errors == 1
    assert cache.get("ab34") == 7     # memory tier still has it


def test_stats_summary_and_hit_rate():
    cache = ArtifactCache()
    assert cache.stats.hit_rate == 0.0
    cache.put("k", 1)
    cache.get("k")
    cache.get("gone")
    assert cache.stats.hit_rate == pytest.approx(0.5)
    assert "hit rate" in cache.stats.summary()


def test_disk_truncated_pickle_is_miss_and_deleted(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path)
    cache.put("ab99", [1, 2, 3])
    path = tmp_path / "ab" / "ab99.pkl"
    path.write_bytes(path.read_bytes()[:3])   # torn write survivor
    fresh = ArtifactCache(disk_dir=tmp_path)  # cold memory tier
    assert fresh.get("ab99") is MISS
    assert fresh.stats.disk_errors == 1
    assert not path.exists()
    # the slot is reusable: a re-put round-trips again
    fresh.put("ab99", [1, 2, 3])
    assert ArtifactCache(disk_dir=tmp_path).get("ab99") == [1, 2, 3]


def _put_sized(cache, key, n_bytes, mtime):
    cache.put(key, b"x" * n_bytes)
    path = cache._disk_path(key)
    os.utime(path, (mtime, mtime))
    return path


def test_disk_size_cap_prunes_oldest_first(tmp_path):
    # budget of 4 KiB; each entry pickles to a bit over 1 KiB
    cache = ArtifactCache(disk_dir=tmp_path,
                          max_disk_mb=4 / 1024)
    paths = [_put_sized(cache, f"{i:02d}key", 1024, mtime=1000 + i)
             for i in range(3)]
    assert all(p.exists() for p in paths)     # still under the cap
    assert cache.stats.disk_prunes == 0
    newest = _put_sized(cache, "99key", 1024, mtime=2000)
    # the write that crossed the cap pruned the oldest entry
    assert cache.stats.disk_prunes >= 1
    assert not paths[0].exists()
    assert newest.exists()


def test_disk_size_cap_never_prunes_fresh_write(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path, max_disk_mb=1 / 1024)
    path = _put_sized(cache, "ab00", 4096, mtime=1000)  # alone over budget
    assert path.exists()                      # keep= spares it
    assert cache.stats.disk_prunes == 0


def test_max_disk_mb_validation():
    with pytest.raises(ValueError, match="max_disk_mb"):
        ArtifactCache(max_disk_mb=0)
    with pytest.raises(ValueError, match="max_disk_mb"):
        ArtifactCache(max_disk_mb=-1)


def _hammer_writes(disk_dir, key, worker, n):
    """Worker: repeatedly overwrite `key` with self-identifying payloads."""
    cache = ArtifactCache(maxsize=2, disk_dir=disk_dir)
    for i in range(n):
        cache.put(key, {"worker": worker, "i": i, "pad": b"x" * 4096})


def test_concurrent_writers_never_expose_torn_entry(tmp_path):
    """Many processes racing os.replace on one key: every read taken
    during the race is a complete value from *some* writer, never a
    torn pickle."""
    import multiprocessing
    ctx = multiprocessing.get_context("spawn")
    procs = [ctx.Process(target=_hammer_writes,
                         args=(str(tmp_path), "abcd", w, 40))
             for w in range(3)]
    for p in procs:
        p.start()
    reader = ArtifactCache(maxsize=1, disk_dir=tmp_path)
    torn = 0
    seen = 0
    while any(p.is_alive() for p in procs):
        reader.clear()                     # force the disk tier
        value = reader.get("abcd")
        if value is not MISS:
            seen += 1
            assert set(value) == {"worker", "i", "pad"}
        torn = reader.stats.disk_errors
    for p in procs:
        p.join()
    assert torn == 0
    assert seen > 0
    final = ArtifactCache(disk_dir=tmp_path).get("abcd")
    assert final is not MISS and final["i"] == 39


def _write_and_die(disk_dir, key):
    """Worker killed mid-write: open the temp file, write half a pickle,
    then hard-exit before the atomic rename."""
    import pickle as _pickle
    cache = ArtifactCache(disk_dir=disk_dir)
    path = cache._disk_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = _pickle.dumps({"big": b"y" * 65536})
    (path.parent / "killed.tmp").write_bytes(payload[: len(payload) // 2])
    os._exit(9)  # simulated SIGKILL: no cleanup, no rename


def test_kill_mid_write_leaves_valid_or_miss(tmp_path):
    """A writer dying before os.replace leaves only a temp file: readers
    see MISS (not corruption), and a later write still round-trips."""
    import multiprocessing
    ctx = multiprocessing.get_context("spawn")
    p = ctx.Process(target=_write_and_die, args=(str(tmp_path), "ab77"))
    p.start()
    p.join()
    assert p.exitcode == 9
    reader = ArtifactCache(disk_dir=tmp_path)
    assert reader.get("ab77") is MISS
    assert reader.stats.disk_errors == 0       # MISS, not corruption
    reader.put("ab77", "recovered")
    assert ArtifactCache(disk_dir=tmp_path).get("ab77") == "recovered"


def test_stale_tmp_swept_on_init(tmp_path):
    (tmp_path / "ab").mkdir()
    stale = tmp_path / "ab" / "orphan.tmp"
    stale.write_bytes(b"half a pickle")
    old = os.stat(stale).st_mtime - 7200
    os.utime(stale, (old, old))
    fresh = tmp_path / "ab" / "inflight.tmp"
    fresh.write_bytes(b"live writer's temp")
    ArtifactCache(disk_dir=tmp_path)          # init sweeps
    assert not stale.exists()                 # old orphan removed
    assert fresh.exists()                     # recent temp untouched


def test_sweep_returns_removed_count(tmp_path):
    (tmp_path / "cd").mkdir(parents=True)
    for name in ("a.tmp", "b.tmp"):
        f = tmp_path / "cd" / name
        f.write_bytes(b"junk")
        os.utime(f, (1000, 1000))
    cache = ArtifactCache(disk_dir=tmp_path)  # init already swept both
    assert cache._sweep_stale_tmps() == 0
    f = tmp_path / "cd" / "c.tmp"
    f.write_bytes(b"junk")
    os.utime(f, (1000, 1000))
    assert cache._sweep_stale_tmps() == 1


def test_session_resolves_cache_max_mb_env(tmp_path, monkeypatch):
    from repro.session import Session
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "12.5")
    assert Session().cache.max_disk_mb == 12.5
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "zero")
    with pytest.raises(ValueError, match="REPRO_CACHE_MAX_MB"):
        Session()
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0")
    with pytest.raises(ValueError, match="REPRO_CACHE_MAX_MB"):
        Session()


# -- thread safety -----------------------------------------------------------

def test_concurrent_hammer_keeps_counters_exact():
    """Many threads hitting one cache: under the instance lock, the
    per-instance counters must balance exactly (no lost updates, no
    torn LRU state)."""
    import threading

    cache = ArtifactCache(maxsize=64)
    n_threads, n_ops = 8, 300

    def hammer(tid):
        for i in range(n_ops):
            key = f"k{(tid * 7 + i) % 32}"
            if i % 3 == 0:
                cache.put(key, (tid, i))
            else:
                cache.get(key)

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    puts = n_threads * len(range(0, n_ops, 3))
    gets = n_threads * n_ops - puts
    assert cache.stats.stores == puts
    assert cache.stats.hits + cache.stats.misses == gets
    assert len(cache) <= 64
    # every surviving entry is intact (no torn values)
    for key in cache.keys():
        value = cache.get(key)
        assert isinstance(value, tuple) and len(value) == 2


def test_concurrent_invalidate_is_safe():
    import threading

    cache = ArtifactCache(maxsize=128)
    for i in range(64):
        cache.put(f"k{i}", i)

    def invalidate_all():
        for i in range(64):
            cache.invalidate(f"k{i}")

    threads = [threading.Thread(target=invalidate_all) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(cache) == 0
    # each key was removed exactly once across all racing threads
    assert cache.stats.invalidations == 64


def test_keys_snapshot_tolerates_concurrent_writes():
    cache = ArtifactCache(maxsize=16)
    for i in range(8):
        cache.put(f"k{i}", i)
    for key in cache.keys():            # iterating a snapshot...
        cache.put("new-" + key, 1)      # ...while mutating is fine


# -- stats_dict --------------------------------------------------------------

def test_stats_dict_shape():
    cache = ArtifactCache(maxsize=4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("zzz")
    d = cache.stats_dict()
    assert d["hits"] == 1 and d["misses"] == 1 and d["stores"] == 1
    assert d["entries"] == 1 and d["maxsize"] == 4
    assert d["hit_rate"] == pytest.approx(0.5)
    assert d["disk_tier"] is False


def test_stats_dict_reports_disk_tier(tmp_path):
    cache = ArtifactCache(maxsize=4, disk_dir=tmp_path)
    cache.put("a", 1)
    d = cache.stats_dict()
    assert d["disk_tier"] is True
    assert d["disk_stores"] == 1
