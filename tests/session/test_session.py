"""Session behaviour: compile-once-reuse-everywhere, counters, defaults."""

from __future__ import annotations

import pytest

from repro.config import ArchConfig, SchedulerConfig, SimConfig
from repro.ir import parse_loop
from repro.session import Session, get_session, reset_session, set_session
from repro.spmt import simulate

SRC = """
loop sess
array A 64
array B 64
livein a 2.0
n0: x = load A[i]
n1: t = fmul x, a
n2: store B[i], t
"""


@pytest.fixture
def loop():
    return parse_loop(SRC)


@pytest.fixture(autouse=True)
def _fresh_default_session():
    previous = set_session(None)
    yield
    set_session(previous)


def test_second_compile_is_a_cache_hit(loop):
    session = Session()
    c1 = session.compile(loop)
    c2 = session.compile(loop)
    assert c1 is c2
    assert session.stats.compiles == 1
    assert session.stats.cache.hits == 1
    assert session.stats.cache.misses == 1


def test_equal_loop_built_independently_hits(loop):
    session = Session()
    session.compile(loop)
    session.compile(parse_loop(SRC))
    assert session.stats.compiles == 1


def test_config_change_recompiles(loop):
    session = Session()
    session.compile(loop)
    session.compile(loop, config=SchedulerConfig(p_max=0.5))
    assert session.stats.compiles == 2


def test_arch_change_recompiles(loop):
    session = Session()
    session.compile(loop)
    session.compile(loop, arch=ArchConfig.paper_default().with_cores(8))
    assert session.stats.compiles == 2


def test_explicit_defaults_share_key_with_implicit(loop):
    session = Session()
    session.compile(loop)
    session.compile(loop, arch=ArchConfig.paper_default(),
                    config=SchedulerConfig())
    assert session.stats.compiles == 1


def test_compile_many_dedups_and_preserves_order(loop):
    session = Session()
    other = parse_loop(SRC.replace("loop sess", "loop other"))
    out = session.compile_many([loop, other, loop])
    assert session.stats.compiles == 2
    assert out[0] is out[2]
    assert out[0].name == "sess" and out[1].name == "other"


def test_compile_many_on_error_skip(loop, monkeypatch):
    from repro.experiments import pipeline

    real = pipeline.compile_loop_uncached

    def flaky(source, *args, **kwargs):
        if source.name == "bad":
            raise RuntimeError("pathological loop")
        return real(source, *args, **kwargs)

    monkeypatch.setattr(pipeline, "compile_loop_uncached", flaky)
    bad = parse_loop(SRC.replace("loop sess", "loop bad"))
    session = Session()
    out = session.compile_many([loop, bad], on_error="skip")
    assert out[0] is not None and out[0].name == "sess"
    assert out[1] is None
    with pytest.raises(RuntimeError):
        session.compile_many([bad], on_error="raise")


def test_simulate_matches_direct_simulator(loop):
    session = Session()
    compiled = session.compile(loop)
    arch = ArchConfig.paper_default()
    got = session.simulate(compiled.tms, arch, iterations=200, seed=7)
    want = simulate(compiled.tms.pipelined, arch,
                    SimConfig(iterations=200, seed=7))
    assert got.total_cycles == want.total_cycles
    assert got.sync_stall_cycles == want.sync_stall_cycles


def test_template_memoised_across_simulations(loop):
    session = Session()
    compiled = session.compile(loop)
    session.simulate(compiled.tms, iterations=50)
    session.simulate(compiled.tms, iterations=100)
    assert session.stats.template_builds == 1
    assert session.stats.template_hits == 1
    assert session.stats.simulations == 2


def test_simulate_many_parallel_matches_sequential(loop):
    session = Session()
    compiled = session.compile(loop)
    kernels = [compiled.sms, compiled.tms]
    seq = session.simulate_many(kernels, iterations=100, jobs=1)
    par = session.simulate_many(kernels, iterations=100, jobs=2)
    assert [s.total_cycles for s in seq] == [s.total_cycles for s in par]


def test_simulate_rejects_junk():
    with pytest.raises(TypeError):
        Session().simulate("not a kernel")


def test_disk_tier_warm_session_compiles_nothing(loop, tmp_path):
    cold = Session(cache_dir=tmp_path)
    cold.compile(loop)
    assert cold.stats.compiles == 1
    warm = Session(cache_dir=tmp_path)
    warm.compile(loop)
    assert warm.stats.compiles == 0
    assert warm.stats.cache.disk_hits == 1


def test_cache_dir_env(loop, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    Session().compile(loop)
    warm = Session()
    warm.compile(loop)
    assert warm.stats.compiles == 0


def test_cache_size_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_SIZE", "17")
    assert Session().cache.maxsize == 17
    monkeypatch.setenv("REPRO_CACHE_SIZE", "many")
    with pytest.raises(ValueError):
        Session()


def test_default_session_is_process_wide(loop):
    assert get_session() is get_session()
    mine = Session()
    assert set_session(mine) is not mine
    assert get_session() is mine
    reset_session()
    assert get_session() is not mine


def test_compile_and_simulate_routes_through_session(loop):
    from repro import compile_and_simulate

    session = Session()
    r1 = compile_and_simulate(loop, iterations=50, session=session)
    r2 = compile_and_simulate(loop, iterations=50, session=session)
    assert session.stats.compiles == 1
    assert r1["tms"].total_cycles == r2["tms"].total_cycles
    assert {"compiled", "sms", "tms", "sequential"} <= r1.keys()


def test_report_mentions_counters(loop):
    session = Session()
    session.compile(loop)
    text = session.report()
    assert text.startswith("session:")
    assert "1 compilations" in text


# -- persistent mode and runner passthrough ----------------------------------

def test_persistent_session_reuses_one_runner(loop):
    with Session(jobs=2, persistent=True) as session:
        session.compile_many([loop])
        runner = session._runner
        assert runner is not None and runner.persistent
        session.compile_many([loop])
        assert session._runner is runner        # same warm runner
    # close() released the pool but the session stays usable
    assert session.compile_many([loop])[0] is not None


def test_persistent_session_explicit_jobs_overrides(loop):
    with Session(jobs=2, persistent=True) as session:
        session.compile_many([loop], jobs=1)    # override: throwaway runner
        assert session._runner is None


def test_non_persistent_session_never_keeps_a_runner(loop):
    session = Session(jobs=2)
    session.compile_many([loop])
    assert session._runner is None
    session.close()                             # no-op


def test_compile_many_timeout_passthrough(loop, monkeypatch):
    import repro.session.session as session_mod

    def slow(payload):
        import time
        time.sleep(2.0)

    monkeypatch.setattr(session_mod, "_compile_uncached", slow)
    session = Session(jobs=1)
    results = session.compile_many([loop], timeout=0.2, on_error="skip")
    assert results == [None]


def test_simulate_many_timeout_passthrough(loop):
    session = Session(jobs=1)
    stats = session.simulate_many(
        [session.compile(loop).tms], iterations=50, timeout=30.0)
    assert stats[0].iterations == 50
