"""Input-validation hardening: malformed loops, DDGs and configs fail
with *typed* ``repro.errors`` exceptions, never a raw ``KeyError`` /
``ZeroDivisionError`` / ``IndexError`` deep inside a scheduler or the
simulator.  Table-driven: every case is (constructor, expected error)."""

from __future__ import annotations

import pytest

from repro.config import ArchConfig, SchedulerConfig, SimConfig
from repro.errors import DDGError, IRError, MachineError, ReproError
from repro.graph.ddg import DDG, DDGNode
from repro.graph.dependence import Dependence, DepKind, DepType
from repro.ir.instruction import Instruction
from repro.ir.loop import Loop
from repro.ir.opcode import Opcode


def _node(name="a", latency=2, position=0):
    return DDGNode(name, Opcode.FADD, latency, position)


def _dep(src="a", dst="b", **kw):
    defaults = dict(kind=DepKind.REGISTER, dtype=DepType.FLOW,
                    distance=1, delay=2)
    defaults.update(kw)
    return Dependence(src, dst, **defaults)


def _inst(name="n0", dest="x"):
    return Instruction(name=name, opcode=Opcode.FADD, dest=dest)


CASES = [
    # (case id, zero-arg constructor that must raise, expected error type)
    ("empty-loop-body",
     lambda: Loop(name="l", body=()), IRError),
    ("bad-coverage",
     lambda: Loop(name="l", body=(_inst(),), coverage=1.5), IRError),
    ("duplicate-register-def",
     lambda: Loop(name="l", body=(_inst("n0", "x"),
                                  _inst("n1", "x"))).definers(), IRError),
    ("empty-ddg",
     lambda: DDG("g", [], []), DDGError),
    ("duplicate-ddg-node",
     lambda: DDG("g", [_node(), _node()], []), DDGError),
    ("edge-to-unknown-node",
     lambda: DDG("g", [_node()], [_dep("a", "ghost")]), DDGError),
    ("distance-zero-self-dep",
     lambda: _dep("a", "a", distance=0), DDGError),
    ("negative-distance",
     lambda: _dep(distance=-1), DDGError),
    ("negative-delay",
     lambda: _dep(delay=-2), DDGError),
    ("probability-above-one",
     lambda: _dep(probability=1.5), DDGError),
    ("nonpositive-node-latency",
     lambda: _node(latency=0), DDGError),
    ("zero-cores",
     lambda: ArchConfig(ncore=0), MachineError),
    ("zero-issue-width",
     lambda: ArchConfig(issue_width=0), MachineError),
    ("negative-overhead",
     lambda: ArchConfig(spawn_overhead=-1), MachineError),
    ("bad-miss-rate",
     lambda: ArchConfig(l1_miss_rate=1.5), MachineError),
    ("bad-p-max",
     lambda: SchedulerConfig(p_max=2.0), MachineError),
    ("negative-schedule-budget",
     lambda: SchedulerConfig(max_schedule_seconds=-0.5), MachineError),
    ("zero-iterations",
     lambda: SimConfig(iterations=0), MachineError),
]


@pytest.mark.parametrize("case_id,build,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_malformed_input_raises_typed_error(case_id, build, expected):
    with pytest.raises(expected):
        build()


@pytest.mark.parametrize("case_id,build,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_typed_errors_are_repro_errors(case_id, build, expected):
    """One `except ReproError` at a driver's top level catches them all."""
    assert issubclass(expected, ReproError)
    with pytest.raises(ReproError):
        build()
