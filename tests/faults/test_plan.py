"""Fault-plan data model: validation, selection, dict round-trips."""

from __future__ import annotations

import pytest

from repro.errors import FaultPlanError, ReproError
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("cosmic_ray")

    @pytest.mark.parametrize("kwargs", [
        {"probability": -0.1},
        {"probability": 1.5},
        {"magnitude": -1.0},
        {"every": 0},
        {"phase": -1},
        {"detect_frac": -0.5},
        {"max_per_thread": 0},
        {"threads": (3, -1)},
        {"channels": (-2,)},
    ])
    def test_bad_field_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultSpec("violation", **kwargs)

    def test_fault_plan_error_is_repro_error(self):
        with pytest.raises(ReproError):
            FaultSpec("violation", probability=2.0)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            spec = FaultSpec(kind)
            assert spec.kind == kind


class TestThreadSelection:
    def test_threads_allowlist(self):
        spec = FaultSpec("violation", threads=(2, 5))
        assert spec.applies_to(2) and spec.applies_to(5)
        assert not spec.applies_to(3)

    def test_every_phase(self):
        spec = FaultSpec("stall_burst", every=3, phase=1)
        assert spec.applies_to(1) and spec.applies_to(4)
        assert not spec.applies_to(0) and not spec.applies_to(3)

    def test_routing_properties(self):
        assert FaultSpec("spawn_failure").delays_start
        assert FaultSpec("stall_burst").delays_start
        assert FaultSpec("comm_jitter").delays_comm
        assert FaultSpec("comm_loss").delays_comm
        assert not FaultSpec("violation").delays_start
        assert not FaultSpec("violation").delays_comm


class TestDictRoundTrip:
    def test_spec_round_trip(self):
        spec = FaultSpec("comm_jitter", probability=0.25, magnitude=4.0,
                         threads=(1, 2), channels=(0,))
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_plan_round_trip(self):
        plan = FaultPlan(name="storm", seed=42, specs=(
            FaultSpec("violation", probability=0.3),
            FaultSpec("spawn_failure", magnitude=6.0, every=2),
        ))
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"kind": "violation", "intensity": 9})

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"name": "x", "seed": 0, "faults": [],
                                 "extra": True})

    def test_missing_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"probability": 0.5})

    def test_plan_specs_must_be_specs(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(specs=({"kind": "violation"},))

    def test_with_seed(self):
        plan = FaultPlan(name="p", seed=1,
                         specs=(FaultSpec("comm_loss", magnitude=10.0),))
        reseeded = plan.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.name == plan.name and reseeded.specs == plan.specs
