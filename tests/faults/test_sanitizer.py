"""Trace invariant sanitizer: clean runs pass, corrupted streams are
caught — one test per seeded corruption class."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SimConfig
from repro.errors import InvariantViolation
from repro.faults import FaultInjectingSimulator, FaultPlan, FaultSpec, \
    assert_trace_invariants, sanitize_events
from repro.obs import events as obs_events
from repro.sched import run_postpass, schedule_sms
from repro.spmt.sim import SpMTSimulator


@pytest.fixture
def pipelined(fig1_ddg, fig1_machine, arch):
    return run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)


def _traced(simulator):
    with obs_events.tracing() as tracer:
        stats = simulator.run()
        return stats, list(tracer.events)


@pytest.fixture
def clean_run(pipelined, arch):
    return _traced(SpMTSimulator(pipelined, arch,
                                 SimConfig(iterations=60, seed=3)))


@pytest.fixture
def faulted_run(pipelined, arch):
    plan = FaultPlan(seed=9, specs=(
        FaultSpec("violation", probability=0.5, every=3),))
    stats, evts = _traced(FaultInjectingSimulator(
        pipelined, arch, SimConfig(iterations=60, seed=3), plan=plan))
    assert any(e.name == "squash" for e in evts)
    return stats, evts


def _replace_one(evts, pred, **changes):
    """Copy of ``evts`` with the first event matching ``pred`` mutated."""
    out = list(evts)
    for i, e in enumerate(out):
        if pred(e):
            args = dict(e.args)
            args.update(changes.pop("args_update", {}))
            out[i] = dataclasses.replace(e, args=args, **changes)
            return out
    raise AssertionError("no event matched the corruption predicate")


def _invariants(findings):
    return {f.invariant for f in findings}


# -- clean behaviour ---------------------------------------------------------

def test_clean_run_sanitizes(clean_run, arch):
    stats, evts = clean_run
    assert sanitize_events(evts, arch, stats=stats) == []
    assert_trace_invariants(evts, arch, stats=stats)  # must not raise


def test_faulted_run_still_sanitizes(faulted_run, arch):
    """The injector only delays events or adds violations; every model
    invariant must survive a squash storm."""
    stats, evts = faulted_run
    assert sanitize_events(evts, arch, stats=stats) == []


# -- seeded corruptions: each must be detected -------------------------------

def test_detects_commit_order_swap(clean_run, arch):
    stats, evts = clean_run
    corrupted = _replace_one(
        evts, lambda e: e.name == "commit" and e.args["thread"] == 3,
        args_update={"thread": 5})
    findings = sanitize_events(corrupted, arch)
    assert "commit-order" in _invariants(findings)


def test_detects_negative_timestamp(clean_run, arch):
    _stats, evts = clean_run
    corrupted = _replace_one(
        evts, lambda e: e.name == "exec" and e.args["thread"] == 2,
        ts=-10.0)
    assert "clock-monotone" in _invariants(sanitize_events(corrupted, arch))


def test_detects_negative_duration(clean_run, arch):
    _stats, evts = clean_run
    corrupted = _replace_one(evts, lambda e: e.name == "commit", dur=-1.0)
    assert "clock-monotone" in _invariants(sanitize_events(corrupted, arch))


def test_detects_exec_before_core_free(clean_run, arch):
    _stats, evts = clean_run
    # a thread >= ncore claims to start at t=0, before its core's
    # previous occupant committed
    corrupted = _replace_one(
        evts,
        lambda e: e.name == "exec" and e.args["thread"] == arch.ncore + 1,
        ts=0.0)
    assert "clock-monotone" in _invariants(sanitize_events(corrupted, arch))


def test_detects_missing_send(clean_run, arch):
    _stats, evts = clean_run
    stalls = [e for e in evts if e.name == "recv_stall"
              and e.args["thread"] - e.args["hops"] >= 0]
    assert stalls, "expected at least one cross-thread recv stall"
    victim = stalls[0]
    corrupted = [e for e in evts
                 if not (e.name == "send"
                         and e.args["thread"] == victim.args["thread"]
                         - victim.args["hops"]
                         and e.args["channel"] == victim.args["channel"])]
    assert len(corrupted) < len(evts)
    assert "send-recv-order" in _invariants(sanitize_events(corrupted, arch))


def test_detects_recv_before_send(clean_run, arch):
    _stats, evts = clean_run
    stalls = [e for e in evts if e.name == "recv_stall"
              and e.args["thread"] - e.args["hops"] >= 0]
    assert stalls
    victim = stalls[0]
    corrupted = _replace_one(
        evts, lambda e: e is victim, ts=0.0, dur=0.0)
    assert "send-recv-order" in _invariants(sanitize_events(corrupted, arch))


def test_detects_oversized_squash(faulted_run, arch):
    _stats, evts = faulted_run
    corrupted = _replace_one(
        evts, lambda e: e.name == "squash",
        args_update={"squashed": arch.ncore + 3})
    assert "squash-scope" in _invariants(sanitize_events(corrupted, arch))


def test_detects_squash_without_violation(faulted_run, arch):
    _stats, evts = faulted_run
    first_violation = next(e for e in evts if e.name == "violation")
    corrupted = [e for e in evts if e is not first_violation]
    assert "squash-scope" in _invariants(sanitize_events(corrupted, arch))


def test_detects_total_cycles_tampering(clean_run, arch):
    stats, evts = clean_run
    tampered = dataclasses.replace(stats, total_cycles=stats.total_cycles + 1)
    findings = sanitize_events(evts, arch, stats=tampered)
    assert "conservation" in _invariants(findings)


def test_detects_spawn_accounting_tampering(clean_run, arch):
    stats, evts = clean_run
    tampered = dataclasses.replace(stats, spawn_cycles=stats.spawn_cycles - 1)
    assert "conservation" in _invariants(
        sanitize_events(evts, arch, stats=tampered))


def test_assert_raises_with_detail(clean_run, arch):
    stats, evts = clean_run
    tampered = dataclasses.replace(stats, total_cycles=-1.0)
    with pytest.raises(InvariantViolation, match="conservation"):
        assert_trace_invariants(evts, arch, stats=tampered)
