"""Chaos campaigns: determinism, report schema, CLI plumbing."""

from __future__ import annotations

import json

import pytest

from repro.faults import SCENARIOS, build_plan, derive_seed, run_chaos, \
    validate_chaos_report_dict, write_chaos_report_json
from repro.faults.report import ChaosReport, ChaosRow

_QUICK = dict(suites=("table3",), max_loops=1, iterations=60, seed=11,
              scenarios=("baseline", "squash-storm", "jitter"))


@pytest.fixture(scope="module")
def quick_report():
    return run_chaos(**_QUICK)


def test_campaign_runs_every_scenario(quick_report):
    assert {r.scenario for r in quick_report.rows} == set(_QUICK["scenarios"])
    assert all(r.iterations == 60 for r in quick_report.rows)


def test_campaign_sanitizer_clean(quick_report):
    assert quick_report.invariant_violations == 0
    assert all(r.ok for r in quick_report.rows)


def test_campaign_rows_record_policy(quick_report):
    # the table3 DOACROSS loops schedule with TMS proper (no degradation),
    # and the report's schema surfaces that per row
    assert all(r.policy == "tms" for r in quick_report.rows)
    for row in quick_report.to_dict()["rows"]:
        assert row["policy"] == "tms"


def test_campaign_injects_faults(quick_report):
    injected = quick_report.injected_by_kind()
    assert injected.get("violation", 0) > 0
    assert injected.get("comm_jitter", 0) > 0


def test_baseline_slowdown_is_one(quick_report):
    for row in quick_report.rows:
        if row.scenario == "baseline":
            assert row.slowdown == 1.0
            assert row.injected == {}


def test_campaign_deterministic(quick_report):
    again = run_chaos(**_QUICK)
    assert again.to_dict() == quick_report.to_dict()


def test_campaign_seed_changes_outcomes():
    a = run_chaos(**{**_QUICK, "seed": 1})
    b = run_chaos(**{**_QUICK, "seed": 2})
    assert a.to_dict() != b.to_dict()


def test_report_schema_valid(quick_report):
    validate_chaos_report_dict(quick_report.to_dict())


def test_report_json_byte_identical(quick_report, tmp_path):
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    write_chaos_report_json(quick_report, p1)
    write_chaos_report_json(run_chaos(**_QUICK), p2)
    assert p1.read_bytes() == p2.read_bytes()
    validate_chaos_report_dict(json.loads(p1.read_text()))


def test_render_mentions_outcome(quick_report):
    text = quick_report.render()
    assert "Chaos campaign" in text
    assert "All trace invariants held" in text


def test_schema_rejects_missing_key(quick_report):
    data = quick_report.to_dict()
    del data["summary"]["invariant_violations"]
    with pytest.raises(ValueError, match="invariant_violations"):
        validate_chaos_report_dict(data)


def test_schema_rejects_bad_version(quick_report):
    data = quick_report.to_dict()
    data["schema_version"] = 99
    with pytest.raises(ValueError, match="schema_version"):
        validate_chaos_report_dict(data)


def test_schema_rejects_mistyped_row(quick_report):
    data = quick_report.to_dict()
    data["rows"][0]["ok"] = 1  # bool field, int value
    with pytest.raises(ValueError, match="ok"):
        validate_chaos_report_dict(data)


def test_every_scenario_has_a_plan():
    for scenario in SCENARIOS:
        plan = build_plan(scenario, seed=3)
        if scenario == "baseline":
            assert plan is None
        else:
            assert plan is not None and len(plan) >= 1


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown chaos scenario"):
        build_plan("meteor", seed=0)
    with pytest.raises(ValueError, match="unknown chaos scenario"):
        run_chaos(scenarios=("meteor",))


def test_derive_seed_stable_and_distinct():
    assert derive_seed(7, "k", "s") == derive_seed(7, "k", "s")
    assert derive_seed(7, "k", "s") != derive_seed(7, "k", "t")
    assert derive_seed(7, "k", "s") != derive_seed(8, "k", "s")


def test_findings_surface_in_report():
    row = ChaosRow(kernel="k", benchmark="b", scenario="jitter",
                   plan="jitter", seed=1, iterations=10, total_cycles=100.0,
                   misspeculations=0, squashed_threads=0,
                   wasted_execution_cycles=0.0, sync_stall_cycles=0.0,
                   findings=("commit-order: thread 3 out of order",))
    report = ChaosReport(rows=(row,), seed=1, ncore=4, iterations=10,
                         scenarios=("jitter",))
    assert not row.ok
    assert report.invariant_violations == 1
    assert "VIOLATED" in report.render()
    validate_chaos_report_dict(report.to_dict())


def test_cli_quick_exits_zero(tmp_path):
    from repro.experiments.runner import main
    out = tmp_path / "chaos.json"
    code = main(["chaos", "--quick", "--max-loops", "1",
                 "--iterations", "40", "--seed", "5",
                 "--scenarios", "baseline,cascade",
                 "--out", str(out)])
    assert code == 0
    validate_chaos_report_dict(json.loads(out.read_text()))


def test_cli_rejects_unknown_scenario():
    from repro.experiments.runner import main
    assert main(["chaos", "--quick", "--scenarios", "meteor"]) == 2
