"""FaultInjectingSimulator: determinism and per-kind fault effects."""

from __future__ import annotations

import pytest

from repro.config import ArchConfig, SimConfig
from repro.faults import FaultInjectingSimulator, FaultPlan, FaultSpec, \
    simulate_with_faults
from repro.sched import run_postpass, schedule_sms
from repro.spmt import simulate

_FIELDS = ("total_cycles", "sync_stall_cycles", "misspeculations",
           "squashed_threads", "wasted_execution_cycles",
           "invalidation_cycles")


@pytest.fixture
def pipelined(fig1_ddg, fig1_machine, arch):
    return run_postpass(schedule_sms(fig1_ddg, fig1_machine), arch)


def _run(pipelined, arch, plan, iterations=200, seed=3):
    return simulate_with_faults(pipelined, arch, plan,
                                SimConfig(iterations=iterations, seed=seed))


def test_empty_plan_matches_clean_simulation(pipelined, arch):
    cfg = SimConfig(iterations=200, seed=3)
    clean = simulate(pipelined, arch, cfg)
    faulted, injected = _run(pipelined, arch, FaultPlan())
    assert injected == {}
    for field in _FIELDS:
        assert getattr(faulted, field) == getattr(clean, field), field


def test_same_plan_same_seed_identical(pipelined, arch):
    plan = FaultPlan(seed=7, specs=(
        FaultSpec("violation", probability=0.3, every=2),
        FaultSpec("comm_jitter", probability=0.5, magnitude=3.0),
        FaultSpec("spawn_failure", probability=0.2, magnitude=5.0),
    ))
    a, inj_a = _run(pipelined, arch, plan)
    b, inj_b = _run(pipelined, arch, plan)
    assert inj_a == inj_b
    for field in _FIELDS:
        assert getattr(a, field) == getattr(b, field), field


def test_plan_seed_changes_faults(pipelined, arch):
    spec = FaultSpec("violation", probability=0.4)
    a, _ = _run(pipelined, arch, FaultPlan(seed=1, specs=(spec,)))
    b, _ = _run(pipelined, arch, FaultPlan(seed=2, specs=(spec,)))
    assert (a.misspeculations != b.misspeculations
            or a.total_cycles != b.total_cycles)


def test_forced_violations_squash_and_slow(pipelined, arch):
    clean = simulate(pipelined, arch, SimConfig(iterations=200, seed=3))
    plan = FaultPlan(seed=5, specs=(
        FaultSpec("violation", probability=1.0, every=4),))
    stats, injected = _run(pipelined, arch, plan)
    assert injected["violation"] == 50            # every 4th of 200
    # injected faults come on top of (timing-shifted) organic violations
    assert stats.misspeculations >= 50
    assert stats.misspeculations > clean.misspeculations
    assert stats.invalidation_cycles >= \
        50 * arch.invalidation_overhead
    assert stats.total_cycles > clean.total_cycles


def test_jitter_increases_stalls(pipelined, arch):
    clean = simulate(pipelined, arch, SimConfig(iterations=200, seed=3))
    plan = FaultPlan(seed=5, specs=(
        FaultSpec("comm_jitter", probability=1.0, magnitude=10.0),))
    stats, injected = _run(pipelined, arch, plan)
    assert injected.get("comm_jitter", 0) > 0
    assert stats.sync_stall_cycles > clean.sync_stall_cycles
    assert stats.total_cycles > clean.total_cycles


def test_spawn_failure_delays_start(pipelined, arch):
    clean = simulate(pipelined, arch, SimConfig(iterations=200, seed=3))
    plan = FaultPlan(seed=5, specs=(
        FaultSpec("spawn_failure", probability=1.0, magnitude=20.0),))
    stats, injected = _run(pipelined, arch, plan)
    assert injected["spawn_failure"] == 200
    assert stats.total_cycles > clean.total_cycles


def test_channel_filter_restricts_jitter(pipelined, arch):
    all_ch = FaultPlan(seed=5, specs=(
        FaultSpec("comm_jitter", probability=1.0, magnitude=5.0),))
    one_ch = FaultPlan(seed=5, specs=(
        FaultSpec("comm_jitter", probability=1.0, magnitude=5.0,
                  channels=(0,)),))
    _, inj_all = _run(pipelined, arch, all_ch)
    _, inj_one = _run(pipelined, arch, one_ch)
    assert inj_one.get("comm_jitter", 0) <= inj_all.get("comm_jitter", 0)


def test_probability_zero_injects_nothing(pipelined, arch):
    plan = FaultPlan(seed=5, specs=(
        FaultSpec("violation", probability=0.0),
        FaultSpec("comm_loss", probability=0.0, magnitude=50.0),
    ))
    clean = simulate(pipelined, arch, SimConfig(iterations=200, seed=3))
    stats, injected = _run(pipelined, arch, plan)
    assert injected == {}
    assert stats.total_cycles == clean.total_cycles


def test_injected_tally_resets_per_simulator(pipelined, arch):
    plan = FaultPlan(seed=5, specs=(
        FaultSpec("stall_burst", every=2, magnitude=8.0),))
    sim = FaultInjectingSimulator(pipelined, arch,
                                  SimConfig(iterations=100, seed=3),
                                  plan=plan)
    sim.run()
    first = dict(sim.injected)
    assert first["stall_burst"] == 50
    again = FaultInjectingSimulator(pipelined, arch,
                                    SimConfig(iterations=100, seed=3),
                                    plan=plan)
    again.run()
    assert again.injected == first
