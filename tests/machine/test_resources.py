"""Resource model and ResMII."""

import pytest

from repro.errors import MachineError
from repro.ir.opcode import FUClass, Opcode
from repro.machine import FUSpec, ResourceModel


def test_default_has_all_classes():
    rm = ResourceModel.default()
    for fu in FUClass:
        assert rm.spec(fu).count >= 1


def test_invalid_spec():
    with pytest.raises(MachineError):
        FUSpec(count=0)
    with pytest.raises(MachineError):
        FUSpec(occupancy=0)
    with pytest.raises(MachineError):
        ResourceModel(issue_width=0)


def test_res_mii_issue_bound():
    rm = ResourceModel.default(issue_width=4)
    ops = [Opcode.FADD] * 8  # 2 FPADD units -> 4; issue bound 2
    assert rm.res_mii(ops) == 4


def test_res_mii_nonpipelined():
    rm = ResourceModel({FUClass.FPMUL: FUSpec(count=1, occupancy=4)})
    assert rm.res_mii([Opcode.FMUL]) == 4
    assert rm.res_mii([Opcode.FMUL, Opcode.FMUL]) == 8


def test_res_mii_empty():
    assert ResourceModel.default().res_mii([]) == 1


def test_res_mii_mem_ports():
    rm = ResourceModel.default(issue_width=8)
    ops = [Opcode.LOAD] * 6
    assert rm.res_mii(ops) == 3  # 2 memory ports


def test_describe_mentions_units():
    text = ResourceModel.default().describe()
    assert "mem" in text and "issue width" in text
