"""Modulo reservation table behaviour."""

import pytest

from repro.errors import MachineError
from repro.ir.opcode import FUClass, Opcode
from repro.machine import FUSpec, ModuloReservationTable, ResourceModel


@pytest.fixture
def mrt():
    rm = ResourceModel({FUClass.FPMUL: FUSpec(count=1, occupancy=4),
                        FUClass.MEM: FUSpec(count=2)}, issue_width=2)
    return ModuloReservationTable(4, rm)


def test_basic_place_and_conflict(mrt):
    mrt.place("a", Opcode.LOAD, 0)
    mrt.place("b", Opcode.LOAD, 0)
    # both memory ports of row 0 used, but issue width (2) also exhausted
    assert not mrt.fits("c", Opcode.FADD, 0)
    assert mrt.fits("c", Opcode.FADD, 1)


def test_modulo_wrapping(mrt):
    mrt.place("a", Opcode.LOAD, 1)
    mrt.place("b", Opcode.LOAD, 5)  # same row (5 % 4 == 1)
    assert not mrt.fits("c", Opcode.LOAD, 9)


def test_nonpipelined_occupancy():
    rm = ResourceModel({FUClass.FPMUL: FUSpec(count=1, occupancy=4)},
                       issue_width=4)
    mrt = ModuloReservationTable(8, rm)
    mrt.place("m1", Opcode.FMUL, 0)   # occupies rows 0-3
    assert not mrt.fits("m2", Opcode.FMUL, 2)
    assert mrt.fits("m2", Opcode.FMUL, 4)


def test_occupancy_spanning_entire_ii():
    rm = ResourceModel({FUClass.FPDIV: FUSpec(count=1, occupancy=8)},
                       issue_width=4)
    mrt = ModuloReservationTable(4, rm)  # occupancy > II
    mrt.place("d1", Opcode.FDIV, 0)
    assert not mrt.fits("d2", Opcode.FDIV, 2)


def test_remove_restores_capacity(mrt):
    mrt.place("a", Opcode.LOAD, 0)
    mrt.place("b", Opcode.LOAD, 0)
    mrt.remove("a")
    assert mrt.fits("c", Opcode.LOAD, 4)  # row 0 again
    with pytest.raises(MachineError):
        mrt.remove("a")


def test_double_place_rejected(mrt):
    mrt.place("a", Opcode.LOAD, 0)
    with pytest.raises(MachineError):
        mrt.fits("a", Opcode.LOAD, 1)


def test_utilisation(mrt):
    assert mrt.utilisation() == 0.0
    mrt.place("a", Opcode.LOAD, 0)
    assert mrt.utilisation() == pytest.approx(1 / 8)
