"""Latency model."""

import pytest

from repro.config import ArchConfig
from repro.errors import MachineError
from repro.ir.opcode import Opcode
from repro.machine import LatencyModel


def test_defaults():
    lat = LatencyModel()
    assert lat.of(Opcode.FADD) == 2


def test_l1_latency_pins_loads():
    lat = LatencyModel.for_arch(ArchConfig(l1_hit_latency=5))
    assert lat.of(Opcode.LOAD) == 5


def test_overrides():
    lat = LatencyModel({Opcode.FMUL: 7})
    assert lat.of(Opcode.FMUL) == 7
    assert lat.of(Opcode.FADD) == 2


def test_instruction_dispatch(axpy_loop):
    lat = LatencyModel()
    ins = axpy_loop.instruction("n1")
    assert lat.of(ins) == lat.of(Opcode.FMUL)


def test_invalid_latency():
    with pytest.raises(MachineError):
        LatencyModel({Opcode.FADD: 0})


def test_max_latency():
    assert LatencyModel().max_latency() >= 16  # FSQRT
