"""Probabilistic cache model."""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.machine import CacheModel


def test_no_misses_by_default():
    arch = ArchConfig.paper_default()
    cache = CacheModel(arch, np.random.default_rng(0))
    assert all(cache.load_latency() == arch.l1_hit_latency for _ in range(64))


def test_miss_rates_produce_longer_latencies():
    arch = ArchConfig(l1_miss_rate=1.0, l2_miss_rate=0.0)
    cache = CacheModel(arch, np.random.default_rng(0))
    assert cache.load_latency() == arch.l2_hit_latency
    arch2 = ArchConfig(l1_miss_rate=1.0, l2_miss_rate=1.0)
    cache2 = CacheModel(arch2, np.random.default_rng(0))
    assert cache2.load_latency() == arch2.l2_miss_latency


def test_expected_latency():
    arch = ArchConfig(l1_miss_rate=0.5, l2_miss_rate=0.5)
    cache = CacheModel(arch, np.random.default_rng(0))
    expected = 0.5 * 3 + 0.5 * (0.5 * 12 + 0.5 * 80)
    assert cache.expected_load_latency() == pytest.approx(expected)
