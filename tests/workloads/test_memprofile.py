"""Memory-dependence profiler."""

import numpy as np
import pytest

from repro.ir import parse_loop
from repro.workloads import profile_memory_dependences


def test_exact_affine_dependence():
    loop = parse_loop("""
loop exact
array A 64
n0: v = load A[i]
n1: w = fadd v, 1.0
n2: store A[i+2], w
""")
    probs = profile_memory_dependences(loop, iterations=64)
    assert probs[("n2", "n0", 2)] == pytest.approx(1.0)
    assert ("n2", "n0", 1) not in probs


def test_never_aliasing_pair_absent():
    loop = parse_loop("""
loop never
array A 64
array B 64
n0: v = load A[i]
n1: store B[i], v
""")
    probs = profile_memory_dependences(loop, iterations=64)
    assert not probs


def test_indirect_collision_rate():
    # store at stride 5, load at stride 4, both mod 60: at distance 1
    # they collide whenever j = 4 (mod 60), i.e. with probability 1/60
    loop = parse_loop("""
loop ind
array A 60
livein p 0.0
livein q 0.0
n0: v = load A[q]
n1: w = fadd v, 1.0
n2: store A[p], w
n3: p = iadd p, 5
n4: q = iadd q, 4
""")
    probs = profile_memory_dependences(loop, iterations=600,
                                       max_distance=2)
    p1 = probs.get(("n2", "n0", 1), 0.0)
    assert 0.0 < p1 < 0.2


def test_distance_zero_pairs():
    loop = parse_loop("""
loop d0
array A 8
n0: store A[i], 1.0
n1: v = load A[i]
""")
    probs = profile_memory_dependences(loop, iterations=32)
    assert probs[("n0", "n1", 0)] == pytest.approx(1.0)


def test_min_probability_filter():
    loop = parse_loop("""
loop rare
array A 512
livein p 0.0
n0: v = load A[p] !alias n2:1:0.001
n1: w = fadd v, 1.0
n2: store A[i], w
n3: p = iadd p, 1
""")
    probs = profile_memory_dependences(loop, iterations=64,
                                       min_probability=0.5)
    assert all(p >= 0.5 for p in probs.values())
