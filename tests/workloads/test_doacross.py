"""Table-3 DOACROSS loops."""

import pytest

from repro.graph import build_ddg, compute_mii, longest_dependence_path, rec_mii
from repro.ir import run_sequential, validate_loop
from repro.machine import LatencyModel, ResourceModel
from repro.workloads import DOACROSS_LOOPS, selected_loops


def test_seven_loops_four_benchmarks():
    assert len(DOACROSS_LOOPS) == 7
    assert {sl.benchmark for sl in DOACROSS_LOOPS} == \
        {"art", "equake", "lucas", "fma3d"}


def test_filtering():
    assert len(selected_loops("art")) == 4
    assert len(selected_loops("equake")) == 1
    assert len(selected_loops()) == 7


def test_coverages_sum_to_table3():
    by_bench = {}
    for sl in DOACROSS_LOOPS:
        by_bench[sl.benchmark] = by_bench.get(sl.benchmark, 0.0) + sl.coverage
    assert by_bench["art"] == pytest.approx(0.216)
    assert by_bench["equake"] == pytest.approx(0.585)
    assert by_bench["lucas"] == pytest.approx(0.334)
    assert by_bench["fma3d"] == pytest.approx(0.143)


def test_all_loops_valid_and_executable():
    for sl in DOACROSS_LOOPS:
        validate_loop(sl.loop)
        run_sequential(sl.loop, 32)


def test_structural_stats_near_table3(latency, resources):
    # MII within ~35% and LDP within ~40% of the paper's values
    for sl in DOACROSS_LOOPS:
        ddg = build_ddg(sl.loop, latency)
        mii = compute_mii(ddg, resources)
        ldp = longest_dependence_path(ddg)
        assert mii == pytest.approx(sl.paper_mii, rel=0.4), sl.loop.name
        assert ldp == pytest.approx(sl.paper_ldp, rel=0.45), sl.loop.name


def test_lucas_is_recurrence_bound(latency, resources):
    (lucas,) = selected_loops("lucas")
    ddg = build_ddg(lucas.loop, latency)
    assert rec_mii(ddg) == 62
    assert rec_mii(ddg) > resources.res_mii(ddg.opcodes())


def test_equake_is_resource_bound(latency, resources):
    (equake,) = selected_loops("equake")
    ddg = build_ddg(equake.loop, latency)
    assert resources.res_mii(ddg.opcodes()) >= rec_mii(ddg)


def test_speculated_probabilities_tiny():
    for sl in DOACROSS_LOOPS:
        for ins in sl.loop.body:
            for hint in ins.alias_hints:
                assert hint.probability <= 1e-4
