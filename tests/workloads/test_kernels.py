"""The classic-kernel library."""

import pytest

from repro.errors import WorkloadError
from repro.graph import build_ddg, rec_mii
from repro.ir import run_sequential, validate_loop
from repro.machine import LatencyModel
from repro.workloads import KERNEL_NAMES, all_kernels, kernel_by_name

LAT = LatencyModel()


def test_catalogue():
    kernels = all_kernels()
    assert len(kernels) == len(KERNEL_NAMES) == 10
    assert kernel_by_name("daxpy").name == "daxpy"
    with pytest.raises(WorkloadError):
        kernel_by_name("nope")


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_valid_and_executable(name):
    loop = kernel_by_name(name)
    validate_loop(loop)
    run_sequential(loop, 32)


def test_dot_product_semantics():
    import numpy as np
    loop = kernel_by_name("dot_product")
    x = np.arange(1.0, 257.0)
    y = np.full(256, 2.0)
    result = run_sequential(loop, 16, array_init={"X": x, "Y": y})
    assert result.registers["s"] == pytest.approx(2 * sum(range(1, 17)))


def test_prefix_sum_semantics():
    import numpy as np
    loop = kernel_by_name("prefix_sum")
    x = np.ones(256)
    p = np.zeros(256)
    result = run_sequential(loop, 10, array_init={"X": x, "P": p})
    assert result.arrays["P"][10] == pytest.approx(10.0)


def test_dependence_characters():
    # DOALL kernels carry no recurrence beyond 1; DOACROSS ones do
    doall = {"daxpy", "fir_filter", "jacobi_1d"}
    doacross = {"prefix_sum", "seidel_1d", "livermore_k5", "pointer_chase"}
    for name in doall:
        assert rec_mii(build_ddg(kernel_by_name(name), LAT)) <= 1, name
    for name in doacross:
        assert rec_mii(build_ddg(kernel_by_name(name), LAT)) >= 4, name


def test_histogram_is_speculative():
    ddg = build_ddg(kernel_by_name("histogram"), LAT)
    spec = [e for e in ddg.memory_flow_edges() if e.probability < 1.0]
    assert spec


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_all_kernels_schedule_and_stay_equivalent(name, resources, arch):
    from repro.sched import schedule_sms, schedule_tms
    from repro.sched.pipeline_exec import check_equivalence
    loop = kernel_by_name(name)
    ddg = build_ddg(loop, LatencyModel.for_arch(arch))
    for sched in (schedule_sms(ddg, resources),
                  schedule_tms(ddg, resources, arch)):
        assert check_equivalence(loop, sched, iterations=16)


def test_fir_taps_configurable():
    from repro.workloads.kernels import fir_filter
    assert len(fir_filter(taps=8)) == 8 * 2 + 7 + 1
    with pytest.raises(WorkloadError):
        fir_filter(taps=1)
