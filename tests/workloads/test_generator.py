"""Synthetic loop generator."""

import pytest

from repro.config import ArchConfig
from repro.errors import WorkloadError
from repro.graph import build_ddg, rec_mii
from repro.ir import run_sequential, validate_loop
from repro.machine import LatencyModel
from repro.workloads import LoopShape, SyntheticLoopGenerator


def gen(shape, seed=7, name="g"):
    return SyntheticLoopGenerator(shape, seed).generate(name)


def test_instruction_count_exact():
    for n in (8, 16, 31, 64):
        loop = gen(LoopShape(n_instr=n))
        assert len(loop) == n


def test_deterministic():
    shape = LoopShape(n_instr=20, n_spec_deps=1)
    a, b = gen(shape, seed=5), gen(shape, seed=5)
    assert [str(i) for i in a.body] == [str(i) for i in b.body]
    c = gen(shape, seed=6)
    assert [str(i) for i in c.body] != [str(i) for i in a.body]


def test_generated_loops_are_valid_and_executable():
    for seed in range(5):
        loop = gen(LoopShape(n_instr=24, n_reg_recurrences=2,
                             n_mem_recurrences=1, n_spec_deps=2), seed=seed)
        validate_loop(loop)
        run_sequential(loop, 16)


def test_reassociated_recurrence_cycle_is_short():
    loop = gen(LoopShape(n_instr=16, n_reg_recurrences=1,
                         reg_recurrence_len=4, n_spec_deps=0, n_counters=1))
    ddg = build_ddg(loop, LatencyModel())
    # the accumulator cycle is a single 2-cycle add
    assert rec_mii(ddg, ["n3"]) <= 2 or rec_mii(ddg) <= 8


def test_serial_recurrence_raises_rec_mii():
    flat = gen(LoopShape(n_instr=16, n_reg_recurrences=1,
                         reg_recurrence_len=4, serial_recurrence=False,
                         n_spec_deps=0, n_counters=1), seed=3)
    serial = gen(LoopShape(n_instr=16, n_reg_recurrences=1,
                           reg_recurrence_len=4, serial_recurrence=True,
                           n_spec_deps=0, n_counters=1), seed=3)
    lat = LatencyModel()
    assert rec_mii(build_ddg(serial, lat)) >= rec_mii(build_ddg(flat, lat))


def test_mem_recurrence_distance_controls_rec_mii():
    near = gen(LoopShape(n_instr=16, n_reg_recurrences=0,
                         n_mem_recurrences=1, mem_rec_ops=2,
                         mem_rec_distance=1, n_spec_deps=0, n_counters=1))
    far = gen(LoopShape(n_instr=16, n_reg_recurrences=0,
                        n_mem_recurrences=1, mem_rec_ops=2,
                        mem_rec_distance=4, n_spec_deps=0, n_counters=1))
    lat = LatencyModel()
    assert rec_mii(build_ddg(near, lat)) > rec_mii(build_ddg(far, lat))


def test_spec_deps_present():
    loop = gen(LoopShape(n_instr=20, n_spec_deps=2, spec_probability=0.01))
    hinted = [i for i in loop.body if i.alias_hints]
    assert len(hinted) == 2
    assert all(h.probability == 0.01 for i in hinted for h in i.alias_hints)


def test_invalid_shapes():
    with pytest.raises(WorkloadError):
        LoopShape(n_instr=2)
    with pytest.raises(WorkloadError):
        LoopShape(n_instr=10, spec_probability=2.0)
    with pytest.raises(WorkloadError):
        LoopShape(n_instr=10, mul_fraction=-0.1)


def test_generate_population_is_seed_deterministic():
    from repro.session.fingerprint import fingerprint
    from repro.workloads import generate_population
    shape = LoopShape(n_instr=12, n_spec_deps=1)
    a = generate_population(shape, 3, seed=11)
    b = generate_population(shape, 3, seed=11)
    assert [l.name for l in a] == ["syn0", "syn1", "syn2"]
    assert [fingerprint(l) for l in a] == [fingerprint(l) for l in b]
    c = generate_population(shape, 3, seed=12)
    assert [fingerprint(l) for l in c] != [fingerprint(l) for l in a]
    # loops within one population are distinct (derived per-loop seeds)
    assert len({fingerprint(l) for l in a}) == 3
    for loop in a:
        validate_loop(loop)


def test_generate_population_rejects_empty():
    from repro.workloads import generate_population
    with pytest.raises(WorkloadError):
        generate_population(LoopShape(n_instr=8), 0, seed=1)
