"""Anchors of the paper's Figures 1 and 2."""

import pytest

from repro.config import ArchConfig
from repro.costmodel import achieved_c_delay
from repro.graph import compute_mii, rec_mii, res_mii
from repro.ir import run_sequential, validate_loop
from repro.sched import schedule_sms, schedule_tms
from repro.sched.ordering import compute_node_order
from repro.workloads import (
    motivating_ddg,
    motivating_latency,
    motivating_loop,
    motivating_machine,
)
from repro.workloads.motivating import MEM_DEP_PROBABILITY
from repro.workloads.memprofile import profile_memory_dependences


def test_loop_is_executable():
    loop = motivating_loop()
    validate_loop(loop)
    result = run_sequential(loop, 100)
    assert result.iterations == 100


def test_mii_anchors(fig1_ddg, fig1_machine):
    assert res_mii(fig1_ddg, fig1_machine) == 4
    assert rec_mii(fig1_ddg) == 8
    assert compute_mii(fig1_ddg, fig1_machine) == 8


def test_ordering_anchor(fig1_ddg):
    assert compute_node_order(fig1_ddg)[:6] == ["n5", "n4", "n2", "n1",
                                                "n0", "n3"]


def test_sms_vs_tms_story(fig1_ddg, fig1_machine, arch):
    sms = schedule_sms(fig1_ddg, fig1_machine)
    tms = schedule_tms(fig1_ddg, fig1_machine, arch)
    assert sms.ii == 8 and tms.ii == 8
    assert achieved_c_delay(sms, arch) == pytest.approx(11.0)
    assert achieved_c_delay(tms, arch) <= 5.0


def test_profiled_probabilities_are_small():
    # the declared probabilities stand in for a profile; the actual
    # collision rates of the stride-3/2/5 pointers are ~1% per iteration
    loop = motivating_loop()
    probs = profile_memory_dependences(loop, iterations=400)
    for (prod, cons, d), p in probs.items():
        if prod == "n5" and d == 1:
            assert p < 0.06
    assert MEM_DEP_PROBABILITY < 0.06
