"""Synthetic SPECfp2000 suite calibration."""

import pytest

from repro.errors import WorkloadError
from repro.ir import validate_loop
from repro.workloads import SPECFP_BENCHMARKS, benchmark_by_name, generate_benchmark_loops
from repro.workloads.specfp import loop_weights


def test_thirteen_benchmarks_778_loops():
    assert len(SPECFP_BENCHMARKS) == 13
    assert sum(s.n_loops for s in SPECFP_BENCHMARKS) == 778


def test_lookup():
    assert benchmark_by_name("art").n_loops == 10
    with pytest.raises(WorkloadError):
        benchmark_by_name("gcc")


def test_paper_rows_recorded():
    for spec in SPECFP_BENCHMARKS:
        assert spec.paper is not None
        assert spec.paper.tms_cdelay < spec.paper.sms_cdelay


def test_population_deterministic():
    a = generate_benchmark_loops(benchmark_by_name("swim"), max_loops=3)
    b = generate_benchmark_loops(benchmark_by_name("swim"), max_loops=3)
    assert [l.name for l in a] == [l.name for l in b]
    assert [len(l) for l in a] == [len(l) for l in b]


def test_max_loops_cap():
    loops = generate_benchmark_loops(benchmark_by_name("fma3d"), max_loops=5)
    assert len(loops) == 5


def test_all_loops_valid():
    for spec in SPECFP_BENCHMARKS:
        for loop in generate_benchmark_loops(spec, max_loops=2):
            validate_loop(loop)


def test_average_instruction_counts_track_table2():
    for spec in SPECFP_BENCHMARKS:
        loops = generate_benchmark_loops(spec)
        avg = sum(len(l) for l in loops) / len(loops)
        assert avg == pytest.approx(spec.avg_inst, rel=0.35), spec.name


def test_loop_weights_normalised():
    spec = benchmark_by_name("wupwise")
    w = loop_weights(spec, 16)
    assert w.sum() == pytest.approx(1.0)
    assert w[0] > w[-1]  # early loops dominate


def test_coverages_physical():
    for spec in SPECFP_BENCHMARKS:
        assert 0.0 < spec.coverage < 1.0


def test_seed_threads_into_benchmark_population():
    from repro.session.fingerprint import fingerprint
    spec = SPECFP_BENCHMARKS[0]
    canonical = [fingerprint(l) for l in
                 generate_benchmark_loops(spec, max_loops=3)]
    # seed=None and seed=0 both keep the canonical Table-2 population
    assert [fingerprint(l) for l in
            generate_benchmark_loops(spec, max_loops=3, seed=0)] \
        == canonical
    # a nonzero seed perturbs it, reproducibly
    seeded = [fingerprint(l) for l in
              generate_benchmark_loops(spec, max_loops=3, seed=5)]
    assert seeded != canonical
    assert [fingerprint(l) for l in
            generate_benchmark_loops(spec, max_loops=3, seed=5)] == seeded
