"""The run ledger: an append-only JSONL history of CLI invocations.

When ``REPRO_LEDGER_DIR`` is set, every ``tms-experiments`` command
(``compile``, ``validate``, ``dse``, ``chaos``, ``all``, ...) and the
standalone benchmark drivers append one schema-versioned record to
``$REPRO_LEDGER_DIR/ledger.jsonl``: what ran (command, argv, package
version, a config fingerprint), how it went (exit code, wall seconds),
and what it did (the registry's deterministic metric totals plus a
per-name span roll-up).  ``tms-experiments report`` renders the ledger
and the ``benchmarks/baselines/*.json`` trajectory as markdown / an HTML
dashboard, and ``report --check`` turns it into a CI perf gate.

Design rules:

* **Appending never breaks a run.**  An unwritable directory or full
  disk degrades to a warning on stderr; the command's own exit code is
  untouched.
* **Appends are atomic and durable.**  Every record is one fsync'd
  ``O_APPEND`` write (:func:`append_jsonl_line` — shared with the serve
  request journal), so concurrent writers never interleave records and
  an acknowledged append survives a SIGKILL'd process.
* **Reading never crashes on a bad line.**  Ledgers are append-only
  files that can be truncated mid-write by a dying process;
  :func:`read_ledger` skips corrupt or schema-invalid lines (counting
  them) instead of raising.
* **Records are self-describing.**  ``schema_version`` gates every
  consumer; :func:`validate_ledger_record_dict` is the golden-schema
  gate CI pins.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "append_jsonl_line",
    "append_run_record",
    "build_run_record",
    "ledger_dir",
    "read_ledger",
    "validate_ledger_record_dict",
]

#: Schema version written into every ledger record.
SCHEMA_VERSION = 1

#: File name appended to inside the ledger directory.
LEDGER_FILENAME = "ledger.jsonl"

#: Golden schema of one ledger record: required keys and their types,
#: with ``spans[*]`` described one level deep.  ``metrics`` and ``extra``
#: are open objects (instrument names / command-specific payloads).
LEDGER_SCHEMA: dict[str, Any] = {
    "schema_version": int,
    "kind": str,
    "timestamp": str,
    "command": str,
    "argv": list,
    "version": str,
    "fingerprint": str,
    "exit_code": int,
    "duration_seconds": float,
    "metrics": dict,
    "spans": {
        "name": str,
        "count": int,
        "wall_seconds": float,
        "exclusive_seconds": float,
    },
    "extra": dict,
}


def append_jsonl_line(path: str | os.PathLike, line: str | bytes, *,
                      fsync: bool = True) -> None:
    """Append one JSONL line to ``path`` as a single ``O_APPEND`` write,
    durably (``fsync=True``).

    This is the crash-safety primitive shared by the run ledger and the
    serve request journal (:mod:`repro.serve.journal`): one ``os.write``
    on an ``O_APPEND`` descriptor keeps concurrent writers from
    interleaving records, and the fsync makes an acknowledged append
    survive a SIGKILL'd process.  A writer dying *mid*-append leaves at
    most one truncated trailing line, which the readers
    (:func:`read_ledger`, ``repro.serve.journal.read_journal``) skip.
    Raises ``OSError`` on filesystem failure — degrading is the caller's
    policy decision.
    """
    data = line.encode("utf-8") if isinstance(line, str) else bytes(line)
    if not data.endswith(b"\n"):
        data += b"\n"
    fd = os.open(os.fspath(path),
                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


def ledger_dir() -> Path | None:
    """The configured ledger directory (``REPRO_LEDGER_DIR``), or
    ``None`` when the ledger is disabled."""
    value = os.environ.get("REPRO_LEDGER_DIR", "").strip()
    return Path(value) if value else None


def _fingerprint(command: str, argv: Sequence[str], version: str) -> str:
    payload = json.dumps(
        {"command": command, "argv": list(argv), "version": version},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def build_run_record(command: str, argv: Sequence[str] | None = None, *,
                     exit_code: int = 0, duration_seconds: float = 0.0,
                     extra: dict[str, Any] | None = None,
                     timestamp: str | None = None) -> dict[str, Any]:
    """One schema-valid ledger record for the invocation that just ran.

    Metrics come from the default registry's
    :meth:`~repro.obs.metrics.MetricsRegistry.deterministic_totals`
    (workers already merged in), spans from the default span tracer's
    :meth:`~repro.obs.spans.SpanTracer.rollup`.  ``extra`` carries
    command-specific headline numbers (bench totals, MAPE, ...).
    """
    from .. import __version__
    from .metrics import get_registry
    from .spans import get_span_tracer

    argv = list(argv if argv is not None else sys.argv[1:])
    rollup = get_span_tracer().rollup()
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "run",
        "timestamp": timestamp if timestamp is not None else
            datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "command": command,
        "argv": argv,
        "version": __version__,
        "fingerprint": _fingerprint(command, argv, __version__),
        "exit_code": int(exit_code),
        "duration_seconds": float(duration_seconds),
        "metrics": get_registry().deterministic_totals(),
        "spans": [{"name": name, **{k: agg[k] for k in
                                    ("count", "wall_seconds",
                                     "exclusive_seconds")}}
                  for name, agg in rollup.items()],
        "extra": dict(extra or {}),
    }


def append_run_record(command: str, argv: Sequence[str] | None = None, *,
                      exit_code: int = 0, duration_seconds: float = 0.0,
                      extra: dict[str, Any] | None = None,
                      directory: str | os.PathLike | None = None
                      ) -> Path | None:
    """Append one record for this invocation to the ledger.

    ``directory`` defaults to :func:`ledger_dir`; when neither is set
    the ledger is disabled and this is a no-op returning ``None``.
    Filesystem failures warn on stderr instead of raising — the ledger
    must never change a command's outcome.  Returns the ledger path on
    success.
    """
    target = Path(directory) if directory is not None else ledger_dir()
    if target is None:
        return None
    record = build_run_record(command, argv, exit_code=exit_code,
                              duration_seconds=duration_seconds, extra=extra)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    path = target / LEDGER_FILENAME
    try:
        target.mkdir(parents=True, exist_ok=True)
        append_jsonl_line(path, line)
    except OSError as exc:
        print(f"warning: could not append to run ledger {path}: {exc}",
              file=sys.stderr)
        return None
    return path


def read_ledger(path: str | os.PathLike
                ) -> tuple[list[dict[str, Any]], int]:
    """Parse a ledger file into ``(records, skipped)``.

    Corrupt lines (truncated JSON from a dying writer, schema-invalid
    records, future schema versions) are skipped with one warning each —
    a damaged ledger degrades, it never crashes a report run.  A missing
    file reads as empty.
    """
    records: list[dict[str, Any]] = []
    skipped = 0
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except FileNotFoundError:
        return [], 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record must be an object")
            validate_ledger_record_dict(record)
        except (ValueError, TypeError) as exc:
            skipped += 1
            print(f"warning: skipping ledger line {lineno} "
                  f"({path}): {exc}", file=sys.stderr)
            continue
        records.append(record)
    return records, skipped


def validate_ledger_record_dict(data: dict[str, Any]) -> None:
    """Check ``data`` against :data:`LEDGER_SCHEMA`; raises ``ValueError``
    on a missing key, mistyped value or unsupported schema version (the
    golden-schema gate in CI)."""
    def check(obj: dict, schema: dict, path: str) -> None:
        for key, expected in schema.items():
            if key not in obj:
                raise ValueError(f"ledger record missing key {path}{key!r}")
            value = obj[key]
            if isinstance(expected, dict) and key == "spans":
                if not isinstance(value, list):
                    raise ValueError(f"{path}{key!r} must be a list")
                for i, row in enumerate(value):
                    if not isinstance(row, dict):
                        raise ValueError(f"{path}spans[{i}] must be an object")
                    check(row, expected, f"{path}spans[{i}].")
            elif isinstance(expected, dict):
                if not isinstance(value, dict):
                    raise ValueError(f"{path}{key!r} must be an object")
                check(value, expected, f"{path}{key}.")
            elif expected is float:
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    raise ValueError(
                        f"{path}{key!r} must be a number, got "
                        f"{type(value).__name__}")
            elif not isinstance(value, expected) or isinstance(value, bool) \
                    and expected is int:
                raise ValueError(
                    f"{path}{key!r} must be {expected.__name__}, got "
                    f"{type(value).__name__}")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {data.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})")
    check(data, LEDGER_SCHEMA, "")
