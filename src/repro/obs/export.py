"""Trace exports: JSONL event logs and Chrome trace-event files.

Two formats, both deterministic (stable key order, no wall-clock data):

* **JSONL** — one :meth:`Event.to_dict` object per line; the lossless
  machine-readable log.
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` /
  https://ui.perfetto.dev for a visual timeline.  Events with a duration
  become complete (``"X"``) slices, the rest instant (``"i"``) marks.
  Categories map to trace *processes* (named via metadata records) and
  the emitting core — ``args["tid"]`` when present — to trace threads.
  Timestamps are exported as-is: one simulated cycle (or one scheduler
  decision) renders as one microsecond.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from .events import Event

__all__ = [
    "KNOWN_CATS",
    "events_to_jsonl",
    "format_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
]

#: Categories the instrumented layers emit.  Anything else (a plugin, a
#: future layer, a hand-built event) still renders — it lands in the
#: shared ``other`` lane instead of being dropped.
KNOWN_CATS: tuple[str, ...] = ("sched", "sim", "dse")

#: Lane name unknown categories are grouped under.
OTHER_LANE = "other"


def events_to_jsonl(events: Iterable[Event]) -> str:
    """Serialise events as JSON Lines (one object per line)."""
    return "\n".join(
        json.dumps(e.to_dict(), separators=(",", ":")) for e in events)


def write_events_jsonl(events: Iterable[Event], path: str | os.PathLike) -> None:
    """Write the JSONL log to ``path`` (trailing newline included)."""
    text = events_to_jsonl(events)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        if text:
            fh.write("\n")


def to_chrome_trace(events: Sequence[Event]) -> dict:
    """Convert events to the Chrome trace-event format (JSON object form).

    Deterministic for a deterministic event sequence: pids are assigned
    by lane in order of first appearance.  Known categories
    (:data:`KNOWN_CATS`) each get their own lane; every unknown category
    shares one ``other`` lane — unknown events are rendered and counted,
    never silently dropped.  The record's ``cat`` field always keeps the
    original category.
    """
    pids: dict[str, int] = {}
    trace_events: list[dict] = []
    for e in events:
        lane = e.cat if e.cat in KNOWN_CATS else OTHER_LANE
        pid = pids.get(lane)
        if pid is None:
            pid = len(pids)
            pids[lane] = pid
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": lane},
            })
        tid = e.args.get("tid", 0)
        ts = e.ts if e.ts is not None else float(e.seq)
        record: dict = {
            "name": e.name,
            "cat": e.cat,
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "args": {k: v for k, v in e.args.items() if k != "tid"},
        }
        if e.dur is not None:
            record["ph"] = "X"
            record["dur"] = e.dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[Event], path: str | os.PathLike) -> None:
    """Write a ``chrome://tracing``-loadable JSON file to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(events), fh, separators=(",", ":"))
        fh.write("\n")


def format_trace(events: Sequence[Event]) -> str:
    """A terminal summary of an event stream: one line per lane (known
    categories in :data:`KNOWN_CATS` order, then ``other`` covering every
    unknown category) with its top event names, plus a totals line whose
    count includes **every** event — lanes and totals always agree.
    """
    by_lane: dict[str, list[Event]] = {}
    for e in events:
        lane = e.cat if e.cat in KNOWN_CATS else OTHER_LANE
        by_lane.setdefault(lane, []).append(e)
    lines = []
    lanes = [c for c in KNOWN_CATS if c in by_lane]
    if OTHER_LANE in by_lane:
        lanes.append(OTHER_LANE)
    for lane in lanes:
        lane_events = by_lane[lane]
        names: dict[str, int] = {}
        for e in lane_events:
            names[e.name] = names.get(e.name, 0) + 1
        top = sorted(names.items(), key=lambda kv: (-kv[1], kv[0]))[:4]
        detail = ", ".join(f"{name}={count}" for name, count in top)
        if len(names) > 4:
            detail += ", ..."
        suffix = ""
        if lane == OTHER_LANE:
            cats = sorted({e.cat for e in lane_events})
            suffix = f" [cats: {', '.join(cats)}]"
        lines.append(f"{lane:<8} {len(lane_events):>7} events"
                     f"  ({detail}){suffix}")
    lines.append(f"{'total':<8} {len(events):>7} events"
                 f" in {len(lanes)} lanes")
    return "\n".join(lines)
