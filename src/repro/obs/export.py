"""Trace exports: JSONL event logs and Chrome trace-event files.

Two formats, both deterministic (stable key order, no wall-clock data):

* **JSONL** — one :meth:`Event.to_dict` object per line; the lossless
  machine-readable log.
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` /
  https://ui.perfetto.dev for a visual timeline.  Events with a duration
  become complete (``"X"``) slices, the rest instant (``"i"``) marks.
  Categories map to trace *processes* (named via metadata records) and
  the emitting core — ``args["tid"]`` when present — to trace threads.
  Timestamps are exported as-is: one simulated cycle (or one scheduler
  decision) renders as one microsecond.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from .events import Event

__all__ = [
    "events_to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
]


def events_to_jsonl(events: Iterable[Event]) -> str:
    """Serialise events as JSON Lines (one object per line)."""
    return "\n".join(
        json.dumps(e.to_dict(), separators=(",", ":")) for e in events)


def write_events_jsonl(events: Iterable[Event], path: str | os.PathLike) -> None:
    """Write the JSONL log to ``path`` (trailing newline included)."""
    text = events_to_jsonl(events)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        if text:
            fh.write("\n")


def to_chrome_trace(events: Sequence[Event]) -> dict:
    """Convert events to the Chrome trace-event format (JSON object form).

    Deterministic for a deterministic event sequence: pids are assigned
    by category in order of first appearance.
    """
    pids: dict[str, int] = {}
    trace_events: list[dict] = []
    for e in events:
        pid = pids.get(e.cat)
        if pid is None:
            pid = len(pids)
            pids[e.cat] = pid
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": e.cat},
            })
        tid = e.args.get("tid", 0)
        ts = e.ts if e.ts is not None else float(e.seq)
        record: dict = {
            "name": e.name,
            "cat": e.cat,
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "args": {k: v for k, v in e.args.items() if k != "tid"},
        }
        if e.dur is not None:
            record["ph"] = "X"
            record["dur"] = e.dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[Event], path: str | os.PathLike) -> None:
    """Write a ``chrome://tracing``-loadable JSON file to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(events), fh, separators=(",", ":"))
        fh.write("\n")
