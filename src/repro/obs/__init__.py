"""Observability: metrics, structured event tracing, trace exports and
the cost-model-vs-simulator discrepancy report.

* :mod:`repro.obs.metrics` — a zero-dependency registry of counters,
  gauges, histograms and timing spans.  The schedulers, simulator,
  session cache and parallel runner all publish into the process-wide
  registry; ``tms-experiments --stats`` dumps it.
* :mod:`repro.obs.events` — the :class:`Tracer` the schedulers and
  simulator emit structured events into when tracing is enabled
  (``tms-experiments --trace`` or :func:`repro.obs.events.tracing`).
  Off by default; hot paths pay one attribute read.
* :mod:`repro.obs.export` — deterministic JSONL and Chrome
  trace-event (``chrome://tracing``) serialisation of those events.
* :mod:`repro.obs.report` — the :class:`DiscrepancyReport` comparing
  the Section 4.2 cost model's predicted ``T`` against simulated
  ``total_cycles`` per kernel (built by ``tms-experiments validate``).

See ``docs/observability.md`` for metric names, the event schema and
the trace-export workflow.
"""

from __future__ import annotations

from .events import Event, Tracer, enable_tracing, get_tracer, tracing
from .export import (
    events_to_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    set_registry,
)
from .report import (
    REPORT_SCHEMA,
    DiscrepancyReport,
    DiscrepancyRow,
    validate_report_dict,
)

__all__ = [
    "Counter",
    "DiscrepancyReport",
    "DiscrepancyRow",
    "Event",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REPORT_SCHEMA",
    "Timer",
    "Tracer",
    "enable_tracing",
    "events_to_jsonl",
    "get_registry",
    "get_tracer",
    "set_registry",
    "to_chrome_trace",
    "tracing",
    "validate_report_dict",
    "write_chrome_trace",
    "write_events_jsonl",
]
