"""Observability: metrics, structured event tracing, trace exports and
the cost-model-vs-simulator discrepancy report.

* :mod:`repro.obs.metrics` — a zero-dependency registry of counters,
  gauges, histograms and timing spans.  The schedulers, simulator,
  session cache and parallel runner all publish into the process-wide
  registry; ``tms-experiments --stats`` dumps it.
* :mod:`repro.obs.events` — the :class:`Tracer` the schedulers and
  simulator emit structured events into when tracing is enabled
  (``tms-experiments --trace`` or :func:`repro.obs.events.tracing`).
  Off by default; hot paths pay one attribute read.
* :mod:`repro.obs.export` — deterministic JSONL and Chrome
  trace-event (``chrome://tracing``) serialisation of those events,
  plus the :func:`format_trace` lane summary.
* :mod:`repro.obs.spans` — the deterministic hierarchical
  :class:`SpanTracer` (``span("compile.tms", kernel=...)`` regions with
  parent/child ids, wall + exclusive time and per-span metric deltas).
* :mod:`repro.obs.aggregate` — cross-process telemetry capture: workers
  snapshot their metrics/events/spans into each task result and the
  parent merges them back under ``worker.<task>`` origin labels, so
  ``--stats`` and ``--trace`` are complete under ``--jobs N``.
* :mod:`repro.obs.ledger` — the append-only JSONL run ledger
  (``REPRO_LEDGER_DIR``) that ``tms-experiments report`` renders and
  gates on.
* :mod:`repro.obs.report` — the :class:`DiscrepancyReport` comparing
  the Section 4.2 cost model's predicted ``T`` against simulated
  ``total_cycles`` per kernel (built by ``tms-experiments validate``).

See ``docs/observability.md`` for metric names, the event schema and
the trace-export workflow.
"""

from __future__ import annotations

from .aggregate import collecting, merge_into_process, telemetry_config
from .events import Event, Tracer, enable_tracing, get_tracer, tracing
from .export import (
    KNOWN_CATS,
    events_to_jsonl,
    format_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from .ledger import (
    LEDGER_SCHEMA,
    append_run_record,
    ledger_dir,
    read_ledger,
    validate_ledger_record_dict,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    set_registry,
)
from .report import (
    REPORT_SCHEMA,
    DiscrepancyReport,
    DiscrepancyRow,
    validate_report_dict,
)
from .spans import (
    Span,
    SpanTracer,
    enable_spans,
    get_span_tracer,
    set_span_tracer,
    span,
    span_tree,
    spans_to_dicts,
)

__all__ = [
    "Counter",
    "DiscrepancyReport",
    "DiscrepancyRow",
    "Event",
    "Gauge",
    "Histogram",
    "KNOWN_CATS",
    "LEDGER_SCHEMA",
    "MetricsRegistry",
    "REPORT_SCHEMA",
    "Span",
    "SpanTracer",
    "Timer",
    "Tracer",
    "append_run_record",
    "collecting",
    "enable_spans",
    "enable_tracing",
    "events_to_jsonl",
    "format_trace",
    "get_registry",
    "get_span_tracer",
    "get_tracer",
    "ledger_dir",
    "merge_into_process",
    "read_ledger",
    "set_registry",
    "set_span_tracer",
    "span",
    "span_tree",
    "spans_to_dicts",
    "telemetry_config",
    "to_chrome_trace",
    "tracing",
    "validate_ledger_record_dict",
    "validate_report_dict",
    "write_chrome_trace",
    "write_events_jsonl",
]
