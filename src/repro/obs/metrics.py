"""A zero-dependency metrics registry: counters, gauges, histograms and
timing spans.

Every layer of the pipeline publishes into the process-wide registry
(:func:`get_registry`): the schedulers count searches and placements, the
simulator counts threads and violations, the session cache mirrors its
hit/miss/eviction counters, and the parallel runner times its fan-outs.
Instruments are cheap — one attribute check plus an integer add — and the
whole registry can be switched off (``enabled = False``, or
``REPRO_METRICS=0`` in the environment), after which every ``inc`` /
``set`` / ``observe`` returns immediately.

Instruments are created idempotently by name::

    from repro.obs import metrics

    hits = metrics.counter("cache.hits")
    hits.inc()
    with metrics.timer("compile.seconds").time():
        ...
    print(metrics.get_registry().render())
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "set_registry",
    "timer",
]


class _Instrument:
    """Base: a named instrument bound to its registry's enable switch."""

    __slots__ = ("name", "help", "_registry")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help
        self._registry = registry

    @property
    def enabled(self) -> bool:
        return self._registry.enabled


class Counter(_Instrument):
    """Monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help, registry)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if self._registry.enabled:
            self.value += n

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def reset(self) -> None:
        self.value = 0


class Gauge(_Instrument):
    """A value that goes up and down (last write wins)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help, registry)
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Histogram(_Instrument):
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    __slots__ = ("count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help, registry)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Timer(Histogram):
    """A histogram of elapsed wall-clock seconds with a ``time()`` span."""

    __slots__ = ()

    kind = "timer"

    @contextmanager
    def time(self, clock: Callable[[], float] = time.perf_counter
             ) -> Iterator[None]:
        """Context manager observing the elapsed seconds of its body."""
        if not self._registry.enabled:
            yield
            return
        start = clock()
        try:
            yield
        finally:
            self.observe(clock() - start)


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter.

    ``enabled`` gates every mutation; reading (``snapshot`` / ``render``)
    always works.  Asking for an existing name with a different
    instrument kind raises — names are global, so a collision is a bug.

    Worker telemetry merges in via :meth:`merge_snapshot`, which files
    the contribution under an *origin* label (``worker.<task>``).  The
    local instruments are never mutated by a merge; :meth:`snapshot`
    combines local + merged origins on read, so ``--stats`` totals under
    ``--jobs N`` match a sequential run.  Merge and snapshot share one
    lock, so a snapshot taken from another thread mid-merge never sees a
    half-applied contribution.
    """

    def __init__(self, enabled: bool | None = None) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_METRICS", "").strip() != "0"
        self.enabled = enabled
        self._instruments: dict[str, _Instrument] = {}
        #: origin label -> instrument name -> accumulated snapshot dict
        self._merged: dict[str, dict[str, dict]] = {}
        self._lock = threading.Lock()

    # -- instrument factories ----------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, help, Histogram)

    def timer(self, name: str, help: str = "") -> Timer:
        return self._get_or_create(name, help, Timer)

    def _get_or_create(self, name: str, help: str, cls: type) -> "_Instrument":
        inst = self._instruments.get(name)
        if inst is not None:
            if type(inst) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {cls.__name__}")
            return inst
        inst = cls(name, help, self)
        self._instruments[name] = inst
        return inst

    # -- introspection ------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def snapshot(self, origin: str | None = None) -> dict[str, dict]:
        """Instrument values keyed by name (sorted).

        ``origin=None`` combines the local instruments with every merged
        worker contribution (the complete picture ``--stats`` renders);
        ``origin="local"`` restricts to this process's own instruments;
        any other value returns that merged origin's contribution alone
        (empty if the origin never merged).
        """
        with self._lock:
            local = {name: self._instruments[name].snapshot()
                     for name in sorted(self._instruments)}
            if origin == "local":
                return local
            if origin is not None:
                return {name: dict(snap) for name, snap
                        in sorted(self._merged.get(origin, {}).items())}
            combined = dict(local)
            for contribution in self._merged.values():
                for name, snap in contribution.items():
                    prev = combined.get(name)
                    combined[name] = _combine_snapshots(prev, snap) \
                        if prev is not None else dict(snap)
            return {name: combined[name] for name in sorted(combined)}

    def merge_snapshot(self, snap: Mapping[str, Mapping], origin: str) -> None:
        """Atomically fold a worker's ``snapshot()`` into this registry
        under ``origin`` (e.g. ``"worker.3"``).  Local instruments are
        untouched; the contribution surfaces through :meth:`snapshot`
        and :meth:`deterministic_totals`."""
        if not self.enabled or not snap:
            return
        with self._lock:
            bucket = self._merged.setdefault(origin, {})
            for name, s in snap.items():
                prev = bucket.get(name)
                bucket[name] = _combine_snapshots(prev, dict(s)) \
                    if prev is not None else dict(s)

    def origins(self) -> list[str]:
        """Origin labels that have merged contributions, sorted."""
        with self._lock:
            return sorted(self._merged)

    def deterministic_totals(self, origin: str | None = None
                             ) -> dict[str, int | float | dict]:
        """The combined snapshot reduced to its deterministic fields:
        counter/gauge values, histogram count+sum, timer counts only
        (timer sums are wall-clock noise).  Two same-seed runs —
        sequential or fanned out — agree on this map exactly."""
        out: dict[str, int | float | dict] = {}
        for name, snap in self.snapshot(origin).items():
            kind = snap.get("kind")
            if kind in ("counter", "gauge"):
                out[name] = snap["value"]
            elif kind == "timer":
                out[name] = {"count": snap["count"]}
            else:
                out[name] = {"count": snap["count"], "sum": snap["sum"]}
        return out

    def render(self) -> str:
        """Aligned one-line-per-instrument dump for terminals."""
        lines = []
        for name, snap in self.snapshot().items():
            if snap["kind"] in ("counter", "gauge"):
                lines.append(f"{name:<36} {snap['value']}")
            else:
                unit = "s" if snap["kind"] == "timer" else ""
                lines.append(
                    f"{name:<36} count={snap['count']} "
                    f"sum={snap['sum']:.3f}{unit} mean={snap['mean']:.3f}{unit} "
                    f"max={snap['max']:.3f}{unit}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every instrument (the instruments stay registered) and
        drop all merged worker contributions."""
        with self._lock:
            for inst in self._instruments.values():
                inst.reset()
            self._merged.clear()


def _combine_snapshots(a: dict, b: dict) -> dict:
    """Fold instrument snapshot ``b`` into ``a`` (same instrument name).

    Counters add; gauges take the later write (``b``); histograms and
    timers merge count/sum/min/max.  A kind mismatch keeps ``b`` — the
    merge must never raise mid-run.
    """
    kind = a.get("kind")
    if kind != b.get("kind"):
        return dict(b)
    if kind == "counter":
        return {"kind": kind, "value": a["value"] + b["value"]}
    if kind == "gauge":
        return {"kind": kind, "value": b["value"]}
    count = a["count"] + b["count"]
    total = a["sum"] + b["sum"]
    lows = [s["min"] for s in (a, b) if s["count"]]
    highs = [s["max"] for s in (a, b) if s["count"]]
    return {
        "kind": kind,
        "count": count,
        "sum": total,
        "min": min(lows) if lows else 0.0,
        "max": max(highs) if highs else 0.0,
        "mean": total / count if count else 0.0,
    }


# -- the process-wide default registry ---------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous


def counter(name: str, help: str = "") -> Counter:
    """Shortcut: a counter in the default registry."""
    return _REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Shortcut: a gauge in the default registry."""
    return _REGISTRY.gauge(name, help)


def histogram(name: str, help: str = "") -> Histogram:
    """Shortcut: a histogram in the default registry."""
    return _REGISTRY.histogram(name, help)


def timer(name: str, help: str = "") -> Timer:
    """Shortcut: a timer in the default registry."""
    return _REGISTRY.timer(name, help)
