"""Cost-model-vs-simulator discrepancy reporting.

The paper's argument rests on the Section 4.2 cost model
(``T = T_nomiss + T_mis_spec``) predicting what the SpMT simulator
measures.  A :class:`DiscrepancyReport` makes that relationship visible:
one :class:`DiscrepancyRow` per (kernel, algorithm) comparing the model's
predicted cycle count against the simulated ``total_cycles``, plus
aggregate MAPE (mean absolute percentage error), so cost-model
regressions show up as numbers instead of staying silent.

The report's dictionary form is a stable, versioned schema
(:data:`REPORT_SCHEMA`, checked by :func:`validate_report_dict`) so CI
can archive and diff it across commits.  Reports are *built* by
:mod:`repro.experiments.validate` (which owns the compile/simulate
plumbing); this module owns the pure data model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = [
    "DiscrepancyReport",
    "DiscrepancyRow",
    "REPORT_SCHEMA",
    "mape",
    "validate_report_dict",
]

#: Schema version written into every report dict.
SCHEMA_VERSION = 1

#: Golden schema of :meth:`DiscrepancyReport.to_dict`: required keys and
#: their types, with ``rows[*]`` and ``summary`` described one level deep.
REPORT_SCHEMA: dict[str, Any] = {
    "schema_version": int,
    "iterations": int,
    "seed": int,
    "ncore": int,
    "rows": {
        "kernel": str,
        "benchmark": str,
        "algorithm": str,
        "ii": int,
        "c_delay": float,
        "p_m": float,
        "predicted_cycles": float,
        "simulated_cycles": float,
        "error_cycles": float,
        "abs_pct_error": float,
    },
    "summary": {
        "n_rows": int,
        "mape": float,
        "mape_by_algorithm": dict,
        "worst_kernel": str,
        "worst_abs_pct_error": float,
    },
}


def mape(rows: Sequence["DiscrepancyRow"]) -> float:
    """Mean absolute percentage error over ``rows`` (0.0 when empty)."""
    if not rows:
        return 0.0
    return sum(r.abs_pct_error for r in rows) / len(rows)


@dataclass(frozen=True)
class DiscrepancyRow:
    """Predicted-vs-simulated cycles for one (kernel, algorithm) point."""

    kernel: str
    benchmark: str
    algorithm: str          #: "sms" or "tms"
    ii: int
    c_delay: float
    p_m: float              #: model's kernel misspeculation probability
    predicted_cycles: float
    simulated_cycles: float

    @property
    def error_cycles(self) -> float:
        """Signed error: simulated minus predicted."""
        return self.simulated_cycles - self.predicted_cycles

    @property
    def abs_pct_error(self) -> float:
        """``|error| / simulated`` as a percentage (0 when simulated=0)."""
        if self.simulated_cycles == 0:
            return 0.0
        return abs(self.error_cycles) / self.simulated_cycles * 100.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "benchmark": self.benchmark,
            "algorithm": self.algorithm,
            "ii": self.ii,
            "c_delay": self.c_delay,
            "p_m": self.p_m,
            "predicted_cycles": self.predicted_cycles,
            "simulated_cycles": self.simulated_cycles,
            "error_cycles": self.error_cycles,
            "abs_pct_error": self.abs_pct_error,
        }


@dataclass(frozen=True)
class DiscrepancyReport:
    """All rows of one validation run plus run parameters."""

    rows: tuple[DiscrepancyRow, ...]
    iterations: int
    seed: int
    ncore: int

    @property
    def mape(self) -> float:
        """Aggregate MAPE over every row."""
        return mape(self.rows)

    def mape_by_algorithm(self) -> dict[str, float]:
        by_alg: dict[str, list[DiscrepancyRow]] = {}
        for row in self.rows:
            by_alg.setdefault(row.algorithm, []).append(row)
        return {alg: mape(rows) for alg, rows in sorted(by_alg.items())}

    def worst(self) -> DiscrepancyRow | None:
        """The row with the largest absolute percentage error."""
        return max(self.rows, key=lambda r: r.abs_pct_error, default=None)

    def to_dict(self) -> dict[str, Any]:
        """The stable, versioned report form (see :data:`REPORT_SCHEMA`)."""
        worst = self.worst()
        return {
            "schema_version": SCHEMA_VERSION,
            "iterations": self.iterations,
            "seed": self.seed,
            "ncore": self.ncore,
            "rows": [row.to_dict() for row in self.rows],
            "summary": {
                "n_rows": len(self.rows),
                "mape": self.mape,
                "mape_by_algorithm": self.mape_by_algorithm(),
                "worst_kernel": worst.kernel if worst else "",
                "worst_abs_pct_error":
                    worst.abs_pct_error if worst else 0.0,
            },
        }

    def render(self) -> str:
        """Per-kernel error table plus the aggregate MAPE lines."""
        # local import: repro.experiments imports this package's siblings.
        from ..experiments.report import format_table

        table = format_table(
            ["Kernel", "Alg", "II", "C_delay", "P_M",
             "Predicted", "Simulated", "Error", "|Err|%"],
            [[r.kernel, r.algorithm.upper(), r.ii, r.c_delay,
              f"{r.p_m:.4f}", f"{r.predicted_cycles:.0f}",
              f"{r.simulated_cycles:.0f}", f"{r.error_cycles:+.0f}",
              f"{r.abs_pct_error:.1f}%"] for r in self.rows],
            title="Cost model vs simulator (Section 4.2 validation).")
        lines = [table, ""]
        for alg, value in self.mape_by_algorithm().items():
            lines.append(f"MAPE ({alg.upper()}): {value:.2f}%")
        lines.append(f"MAPE (overall, {len(self.rows)} rows): "
                     f"{self.mape:.2f}%")
        worst = self.worst()
        if worst is not None:
            lines.append(f"Worst kernel: {worst.kernel} "
                         f"({worst.algorithm.upper()}, "
                         f"{worst.abs_pct_error:.1f}%)")
        return "\n".join(lines)


def validate_report_dict(data: dict[str, Any]) -> None:
    """Check ``data`` against :data:`REPORT_SCHEMA`; raises ``ValueError``
    on a missing key or mistyped value (the golden-schema gate in CI)."""
    def check(obj: dict, schema: dict, path: str) -> None:
        for key, expected in schema.items():
            if key not in obj:
                raise ValueError(f"report missing key {path}{key!r}")
            value = obj[key]
            if isinstance(expected, dict) and key == "rows":
                if not isinstance(value, list):
                    raise ValueError(f"{path}{key!r} must be a list")
                for i, row in enumerate(value):
                    if not isinstance(row, dict):
                        raise ValueError(f"{path}rows[{i}] must be an object")
                    check(row, expected, f"{path}rows[{i}].")
            elif isinstance(expected, dict):
                if not isinstance(value, dict):
                    raise ValueError(f"{path}{key!r} must be an object")
                check(value, expected, f"{path}{key}.")
            elif expected is float:
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    raise ValueError(
                        f"{path}{key!r} must be a number, got "
                        f"{type(value).__name__}")
            elif not isinstance(value, expected) or isinstance(value, bool) \
                    and expected is int:
                raise ValueError(
                    f"{path}{key!r} must be {expected.__name__}, got "
                    f"{type(value).__name__}")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {data.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})")
    check(data, REPORT_SCHEMA, "")
