"""Deterministic hierarchical span tracing.

A :class:`SpanTracer` records one :class:`Span` per instrumented region —
``span("compile.tms", kernel=...)`` context managers wired through the
session layer, the sweep engine, the degradation ladder, the placement
engine and the simulator.  Each span carries:

* a deterministic integer ``id`` (assigned in open order) and its
  parent's id, so the spans form a tree;
* ``wall`` and ``exclusive`` seconds (wall minus the wall of direct
  children);
* the **metric deltas** observed inside the span: the change in every
  deterministic instrument of the default registry
  (:meth:`~repro.obs.metrics.MetricsRegistry.deterministic_totals`)
  between open and close, so a span answers "what work happened here"
  (compiles, placements, simulated violations, ...) — not just "how
  long".

Wall-clock fields are machine noise; everything else — ids, names,
attrs, nesting, metric deltas — is deterministic for a given seed, and
:func:`span_tree` projects a normalized (id/time-free, sorted) tree two
runs can be compared on.  The satellite determinism suite pins
``--jobs 1`` vs ``--jobs 4`` equality on exactly that projection.

Spans are **off by default** and cost one attribute read when off.  The
CLI enables them with ``--trace`` (which also turns on ``detail`` spans:
per-placement-attempt, per-thread-loop) and whenever a run ledger
directory is configured (coarse spans only, for the ledger's roll-up).

Worker processes record spans into their own tracer; the parent
re-bases them under its currently open span via :meth:`SpanTracer.ingest`
(see :mod:`repro.obs.aggregate`), tagging each with a ``worker.<task>``
origin that the normalized projection ignores.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Span",
    "SpanTracer",
    "enable_spans",
    "get_span_tracer",
    "set_span_tracer",
    "span",
    "span_tree",
    "spans_to_dicts",
]


class Span:
    """One recorded region: identity, tree position, timing, deltas."""

    __slots__ = ("id", "parent_id", "name", "origin", "attrs", "wall",
                 "exclusive", "metrics", "_t0", "_child_wall", "_before")

    def __init__(self, id: int, parent_id: int | None, name: str,
                 attrs: dict[str, Any], origin: str = "") -> None:
        self.id = id
        self.parent_id = parent_id
        self.name = name
        self.origin = origin
        self.attrs = attrs
        self.wall = 0.0
        self.exclusive = 0.0
        self.metrics: dict[str, Any] = {}
        self._t0 = 0.0
        self._child_wall = 0.0
        self._before: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"id": self.id, "parent_id": self.parent_id,
                             "name": self.name, "wall": self.wall,
                             "exclusive": self.exclusive}
        if self.origin:
            d["origin"] = self.origin
        if self.attrs:
            d["attrs"] = self.attrs
        if self.metrics:
            d["metrics"] = self.metrics
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], *, id: int,
                  parent_id: int | None, origin: str = "") -> "Span":
        s = cls(id, parent_id, str(d.get("name", "")),
                dict(d.get("attrs") or {}), origin=origin)
        s.wall = float(d.get("wall", 0.0))
        s.exclusive = float(d.get("exclusive", 0.0))
        s.metrics = dict(d.get("metrics") or {})
        return s


class SpanTracer:
    """A stack-based span recorder with a cheap on/off switch.

    ``spans`` holds every span in open order (ids ascending);
    ``detail`` additionally enables the high-volume instrumentation
    points (per placement attempt, per simulator thread loop) that a
    ledger-only run skips.
    """

    __slots__ = ("enabled", "detail", "spans", "_stack", "_next_id")

    def __init__(self, enabled: bool = False, detail: bool = False) -> None:
        self.enabled = enabled
        self.detail = detail
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, *, detail: bool = False,
             **attrs: Any) -> Iterator[Span | None]:
        """Record the body as one span (no-op yielding ``None`` when
        off, or when ``detail=True`` and detail spans are off).  The
        yielded :class:`Span` accepts extra ``attrs`` entries until the
        block exits."""
        if not self.enabled or (detail and not self.detail):
            yield None
            return
        s = self._begin(name, attrs)
        try:
            yield s
        finally:
            self._end(s)

    def _begin(self, name: str, attrs: dict[str, Any]) -> Span:
        from .metrics import get_registry

        parent = self._stack[-1] if self._stack else None
        s = Span(self._next_id, parent.id if parent else None, name, attrs)
        self._next_id += 1
        s._before = get_registry().deterministic_totals()
        s._t0 = time.perf_counter()
        self.spans.append(s)
        self._stack.append(s)
        return s

    def _end(self, s: Span) -> None:
        from .metrics import get_registry

        s.wall = time.perf_counter() - s._t0
        s.exclusive = max(0.0, s.wall - s._child_wall)
        after = get_registry().deterministic_totals()
        before = s._before or {}
        s.metrics = _totals_delta(before, after)
        s._before = None
        # unwind to (and including) s: tolerate a caller that leaked an
        # inner span rather than corrupting the whole stack.
        while self._stack:
            top = self._stack.pop()
            if top is s:
                break
        if self._stack:
            self._stack[-1]._child_wall += s.wall

    # -- cross-process merge -------------------------------------------------

    def ingest(self, span_dicts: Sequence[Mapping[str, Any]],
               origin: str = "") -> int:
        """Re-base serialized spans (a worker's :func:`spans_to_dicts`)
        under the currently open span; returns how many were added.
        Relative structure and order are preserved; ids are re-assigned
        deterministically in ingest order."""
        if not self.enabled or not span_dicts:
            return 0
        anchor = self._stack[-1].id if self._stack else None
        id_map: dict[Any, int] = {}
        for d in span_dicts:
            old_parent = d.get("parent_id")
            parent = id_map.get(old_parent, anchor) \
                if old_parent is not None else anchor
            s = Span.from_dict(d, id=self._next_id, parent_id=parent,
                               origin=origin or str(d.get("origin", "")))
            id_map[d.get("id")] = s.id
            self._next_id += 1
            self.spans.append(s)
        return len(span_dicts)

    # -- reporting -----------------------------------------------------------

    def rollup(self) -> dict[str, dict[str, float]]:
        """Aggregate spans by name: count, total wall, total exclusive."""
        out: dict[str, dict[str, float]] = {}
        for s in self.spans:
            agg = out.setdefault(s.name, {"count": 0, "wall_seconds": 0.0,
                                          "exclusive_seconds": 0.0})
            agg["count"] += 1
            agg["wall_seconds"] += s.wall
            agg["exclusive_seconds"] += s.exclusive
        return {name: out[name] for name in sorted(out)}

    def clear(self) -> None:
        """Drop all spans and restart the id counter."""
        self.spans.clear()
        self._stack.clear()
        self._next_id = 0

    def __len__(self) -> int:
        return len(self.spans)


def _totals_delta(before: Mapping[str, Any],
                  after: Mapping[str, Any]) -> dict[str, Any]:
    """Per-instrument change between two ``deterministic_totals`` maps
    (only instruments that actually changed)."""
    delta: dict[str, Any] = {}
    for name, now in after.items():
        prev = before.get(name)
        if isinstance(now, dict):
            prev = prev or {}
            d = {k: now[k] - prev.get(k, 0) for k in ("count", "sum")
                 if k in now}
            if any(d.values()):
                delta[name] = d
        else:
            diff = now - (prev or 0)
            if diff:
                delta[name] = diff
    return delta


def spans_to_dicts(spans: Sequence[Span]) -> list[dict[str, Any]]:
    """Serialise spans (ids preserved) for export / worker hand-off."""
    return [s.to_dict() for s in spans]


def span_tree(spans: Sequence[Span] | None = None, *,
              normalize: bool = True) -> list[dict[str, Any]]:
    """The spans as a nested forest.

    ``normalize=True`` (default) drops ids, origins and every wall-clock
    field, and sorts siblings by ``(name, attrs, metrics)`` — the
    deterministic projection the ``--jobs 1`` vs ``--jobs 4`` equality
    tests compare.  ``normalize=False`` keeps everything, in open order.
    """
    import json

    if spans is None:
        spans = get_span_tracer().spans
    children: dict[int | None, list[Span]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    known = {s.id for s in spans}

    def node(s: Span) -> dict[str, Any]:
        d: dict[str, Any] = {"name": s.name}
        if s.attrs:
            d["attrs"] = s.attrs
        if s.metrics:
            d["metrics"] = s.metrics
        if not normalize:
            d["id"] = s.id
            d["wall"] = s.wall
            d["exclusive"] = s.exclusive
            if s.origin:
                d["origin"] = s.origin
        kids = [node(c) for c in children.get(s.id, [])]
        if normalize:
            kids.sort(key=lambda n: json.dumps(n, sort_keys=True))
        if kids:
            d["children"] = kids
        return d

    roots = [s for s in spans
             if s.parent_id is None or s.parent_id not in known]
    out = [node(s) for s in roots]
    if normalize:
        out.sort(key=lambda n: json.dumps(n, sort_keys=True))
    return out


# -- the process-wide default span tracer ------------------------------------

_SPANS = SpanTracer()


def get_span_tracer() -> SpanTracer:
    """The process-wide default span tracer."""
    return _SPANS


def set_span_tracer(tracer: SpanTracer) -> SpanTracer:
    """Replace the default span tracer; returns the previous one."""
    global _SPANS
    previous, _SPANS = _SPANS, tracer
    return previous


def enable_spans(on: bool = True, *, detail: bool | None = None) -> SpanTracer:
    """Switch the default span tracer on/off (optionally detail spans
    too); returns it."""
    _SPANS.enabled = on
    if detail is not None:
        _SPANS.detail = detail
    return _SPANS


@contextmanager
def span(name: str, *, detail: bool = False,
         **attrs: Any) -> Iterator[Span | None]:
    """Shortcut: a span in the default tracer."""
    with _SPANS.span(name, detail=detail, **attrs) as s:
        yield s
