"""Structured event tracing.

A :class:`Tracer` collects :class:`Event` records from the schedulers
(per-``(II, C_delay)`` TMS search candidates, per-node SMS/IMS
placements) and the simulator (spawn / recv-stall / violation / squash /
commit, one timeline per thread).  Tracing is off by default; hot paths
guard every emission with ``tracer.enabled`` so the disabled cost is one
attribute read.

Events are **deterministic**: they carry a monotonically increasing
sequence number plus *domain* timestamps (scheduler decision order,
simulated cycles) — never wall-clock time — so two runs with the same
seed produce byte-identical exports (:mod:`repro.obs.export`).

Usage::

    from repro.obs import events

    with events.tracing() as tracer:
        compile_and_simulate(loop)
    print(len(tracer))
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Event", "Tracer", "enable_tracing", "get_tracer", "tracing"]


@dataclass(frozen=True)
class Event:
    """One trace record.

    ``ts``/``dur`` are in the emitting layer's own time domain (simulated
    cycles for the simulator, decision index for the schedulers); ``None``
    means "ordering only" — exporters fall back to ``seq``.
    """

    seq: int                 #: global emission order (deterministic)
    cat: str                 #: layer, e.g. "sched", "sim"
    name: str                #: event type, e.g. "tms.candidate"
    ts: float | None = None
    dur: float | None = None
    args: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"seq": self.seq, "cat": self.cat,
                             "name": self.name}
        if self.ts is not None:
            d["ts"] = self.ts
        if self.dur is not None:
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d


class Tracer:
    """An append-only event sink with a cheap on/off switch."""

    __slots__ = ("enabled", "events", "ingest_counts", "_seq")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: list[Event] = []
        #: events merged per origin label (see :meth:`ingest`)
        self.ingest_counts: dict[str, int] = {}
        self._seq = 0

    def emit(self, cat: str, name: str, ts: float | None = None,
             dur: float | None = None, **args: Any) -> Event | None:
        """Record one event (no-op returning ``None`` when disabled).

        Hot call sites should still guard with ``if tracer.enabled`` to
        avoid building the ``args`` dict at all.
        """
        if not self.enabled:
            return None
        event = Event(seq=self._seq, cat=cat, name=name, ts=ts, dur=dur,
                      args=args)
        self._seq += 1
        self.events.append(event)
        return event

    def ingest(self, events: "Iterable[Event | dict]",
               origin: str | None = None) -> int:
        """Re-emit serialized events (a worker's ``to_dict`` stream) into
        this tracer, re-assigning sequence numbers; returns how many were
        added.  Content is preserved verbatim — no origin is stamped into
        the records, so a merged ``--jobs N`` export stays byte-identical
        to a sequential run; per-origin counts are kept in
        ``ingest_counts`` instead."""
        if not self.enabled:
            return 0
        n = 0
        for e in events:
            if isinstance(e, Event):
                self.emit(e.cat, e.name, e.ts, e.dur, **e.args)
            else:
                self.emit(str(e.get("cat", "")), str(e.get("name", "")),
                          e.get("ts"), e.get("dur"),
                          **dict(e.get("args") or {}))
            n += 1
        if origin is not None and n:
            self.ingest_counts[origin] = self.ingest_counts.get(origin, 0) + n
        return n

    def select(self, cat: str | None = None,
               name: str | None = None) -> list[Event]:
        """Events filtered by category and/or name, in emission order."""
        return [e for e in self.events
                if (cat is None or e.cat == cat)
                and (name is None or e.name == name)]

    def clear(self) -> None:
        """Drop all events and restart the sequence counter."""
        self.events.clear()
        self.ingest_counts.clear()
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)


# -- the process-wide default tracer -----------------------------------------

_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer (instrumented code emits here)."""
    return _TRACER


def enable_tracing(on: bool = True) -> Tracer:
    """Switch the default tracer on/off; returns it."""
    _TRACER.enabled = on
    return _TRACER


@contextmanager
def tracing(clear: bool = True) -> Iterator[Tracer]:
    """Enable the default tracer for a block, restoring the previous
    state on exit.  ``clear`` starts the block with an empty buffer."""
    tracer = _TRACER
    previous = tracer.enabled
    if clear:
        tracer.clear()
    tracer.enabled = True
    try:
        yield tracer
    finally:
        tracer.enabled = previous
