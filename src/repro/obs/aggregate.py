"""Cross-process telemetry capture & merge.

``ParallelRunner`` workers run in separate processes, so everything they
publish into *their* default registry / tracer / span tracer would die
with the worker.  This module closes the loop:

* the **parent** captures its telemetry switches with
  :func:`telemetry_config` and ships them (a tiny picklable dict) with
  every submitted task;
* the **worker** wraps each task in :func:`collecting`, which installs a
  fresh default registry / tracer / span tracer configured from those
  switches, and on exit restores the previous defaults and snapshots
  whatever the task produced into a plain-dict payload;
* the **parent** folds each payload back into its own defaults with
  :func:`merge_into_process` under a deterministic ``worker.<task>``
  origin label — metrics via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` (atomic),
  events via :meth:`~repro.obs.events.Tracer.ingest` (content verbatim,
  fresh seq numbers), spans via
  :meth:`~repro.obs.spans.SpanTracer.ingest` (re-based under the
  currently open span).

Because the runner merges payloads in *submission* order, a same-seed
``--jobs 4`` run recovers byte-identical ``--stats`` totals and
``--trace`` exports to a sequential run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from .events import Tracer, get_tracer
from .metrics import MetricsRegistry, get_registry, set_registry
from .spans import SpanTracer, get_span_tracer, set_span_tracer, spans_to_dicts

__all__ = [
    "TelemetryCollector",
    "collecting",
    "merge_into_process",
    "telemetry_config",
]

#: payload format version (bumped on incompatible snapshot changes)
SNAPSHOT_VERSION = 1


def telemetry_config() -> dict[str, bool]:
    """The parent's telemetry switches, as a picklable dict a worker can
    recreate its collection environment from."""
    return {
        "metrics": get_registry().enabled,
        "events": get_tracer().enabled,
        "spans": get_span_tracer().enabled,
        "spans_detail": get_span_tracer().detail,
    }


class TelemetryCollector:
    """The worker-side trio of fresh default instruments for one task."""

    __slots__ = ("registry", "tracer", "span_tracer")

    def __init__(self, config: Mapping[str, Any] | None = None) -> None:
        cfg = dict(config or {})
        self.registry = MetricsRegistry(enabled=bool(cfg.get("metrics", True)))
        self.tracer = Tracer(enabled=bool(cfg.get("events", False)))
        self.span_tracer = SpanTracer(
            enabled=bool(cfg.get("spans", False)),
            detail=bool(cfg.get("spans_detail", False)))

    def snapshot(self) -> dict[str, Any] | None:
        """Everything the task produced, as plain picklable data.

        Zero-valued instruments are skipped (they exist in the parent
        too, so merging them would only add noise).  Returns ``None``
        when nothing at all was collected, so the runner can skip the
        merge entirely.
        """
        metrics = {name: snap for name, snap
                   in self.registry.snapshot(origin="local").items()
                   if not _is_zero(snap)}
        events = [e.to_dict() for e in self.tracer.events]
        spans = spans_to_dicts(self.span_tracer.spans)
        if not metrics and not events and not spans:
            return None
        return {
            "version": SNAPSHOT_VERSION,
            "metrics": metrics,
            "events": events,
            "spans": spans,
        }


def _is_zero(snap: Mapping[str, Any]) -> bool:
    if snap.get("kind") in ("counter", "gauge"):
        return not snap.get("value")
    return not snap.get("count")


@contextmanager
def collecting(config: Mapping[str, Any] | None = None
               ) -> Iterator[TelemetryCollector]:
    """Install a fresh set of default instruments for the duration of
    the block (the task body), restoring the previous defaults on exit.

    The yielded :class:`TelemetryCollector` owns the fresh instruments;
    call :meth:`~TelemetryCollector.snapshot` *inside* or after the
    block to capture what the task produced.
    """
    collector = TelemetryCollector(config)
    prev_registry = set_registry(collector.registry)
    prev_tracer = get_tracer()
    prev_tracer_state = (prev_tracer.enabled,)
    prev_spans = set_span_tracer(collector.span_tracer)
    # The default tracer is module-global without a setter that swaps the
    # object emitters hold; instrumented code looks it up per call via
    # get_tracer(), so swap it the same way the registry/span tracer are.
    from . import events as _events_mod
    _events_mod._TRACER = collector.tracer
    try:
        yield collector
    finally:
        _events_mod._TRACER = prev_tracer
        prev_tracer.enabled = prev_tracer_state[0]
        set_registry(prev_registry)
        set_span_tracer(prev_spans)


def merge_into_process(snapshot: Mapping[str, Any] | None,
                       origin: str) -> None:
    """Fold a worker's :meth:`~TelemetryCollector.snapshot` payload into
    the parent's default registry / tracer / span tracer under
    ``origin``.  ``None`` / empty payloads are a no-op; unknown payload
    versions are ignored rather than raising mid-run."""
    if not snapshot:
        return
    if snapshot.get("version") != SNAPSHOT_VERSION:
        return
    metrics = snapshot.get("metrics")
    if metrics:
        get_registry().merge_snapshot(metrics, origin)
    events = snapshot.get("events")
    if events:
        get_tracer().ingest(events, origin=origin)
    spans = snapshot.get("spans")
    if spans:
        get_span_tracer().ingest(spans, origin=origin)
