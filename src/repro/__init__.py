"""repro — a reproduction of "Thread-Sensitive Modulo Scheduling for
Multicore Processors" (Gao, Nguyen, Li, Xue, Ngai; ICPP 2008).

The package contains everything the paper's system needs, from scratch:

* a loop IR with a reference interpreter (:mod:`repro.ir`);
* per-core machine models and modulo reservation tables
  (:mod:`repro.machine`);
* data-dependence graphs with probabilistic memory dependences and MII
  analyses (:mod:`repro.graph`);
* Swing Modulo Scheduling, Rau's iterative modulo scheduling, acyclic list
  scheduling, and the paper's **Thread-sensitive Modulo Scheduling**
  (:mod:`repro.sched`);
* the SpMT execution-time cost model (:mod:`repro.costmodel`);
* a discrete-event SpMT multicore simulator (:mod:`repro.spmt`);
* workloads: the motivating example, a calibrated synthetic SPECfp2000
  suite, the Table-3 DOACROSS loops, and a memory-dependence profiler
  (:mod:`repro.workloads`);
* experiment harnesses regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import ArchConfig, compile_and_simulate
    from repro.workloads import motivating_loop

    result = compile_and_simulate(motivating_loop(),
                                  ArchConfig.paper_default())
    print(result["tms"].summary())
"""

from __future__ import annotations

from .config import ArchConfig, SchedulerConfig, SimConfig
from .errors import ReproError
from .machine import LatencyModel, ResourceModel
from .graph import build_ddg
from .sched import (
    schedule_ims,
    schedule_sms,
    schedule_tms,
    run_postpass,
)
from .spmt import simulate, simulate_sequential

__version__ = "1.5.0"

__all__ = [
    "ArchConfig",
    "LatencyModel",
    "ReproError",
    "ResourceModel",
    "SchedulerConfig",
    "Session",
    "SimConfig",
    "__version__",
    "build_ddg",
    "compile_and_simulate",
    "get_session",
    "run_postpass",
    "schedule_ims",
    "schedule_sms",
    "schedule_tms",
    "simulate",
    "simulate_sequential",
]


def __getattr__(name):
    # lazy: repro.session imports repro.experiments.pipeline on use, so
    # eager import here would make package import order fragile.
    if name in ("Session", "get_session"):
        from . import session as _session
        return getattr(_session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def compile_and_simulate(loop, arch: ArchConfig | None = None,
                         iterations: int = 1000,
                         config: SchedulerConfig | None = None,
                         session=None):
    """One-call pipeline: loop -> DDG -> SMS & TMS -> SpMT simulation.

    Routes through the (default) :class:`repro.session.Session`, so
    repeated calls on the same loop/config reuse the compiled artifact.
    Returns a dict with keys ``"compiled"`` (the
    :class:`~repro.experiments.pipeline.CompiledLoop`), ``"sms"`` / ``"tms"``
    (their :class:`~repro.spmt.stats.SimStats` on the SpMT machine) and
    ``"sequential"`` (the single-threaded baseline).
    """
    from .session import get_session
    session = session or get_session()
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    compiled = session.compile(loop, arch, resources, config)
    return {
        "compiled": compiled,
        "sms": session.simulate(compiled.sms, arch, iterations),
        "tms": session.simulate(compiled.tms, arch, iterations),
        "sequential": simulate_sequential(compiled.ddg, resources, iterations),
    }
