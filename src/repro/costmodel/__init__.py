"""The paper's cost model (Section 4.2) and definitions 2-4.

* :mod:`repro.costmodel.sync` — synchronisation delay of a register
  dependence (Definition 2, generalised to kernel distances > 1), the
  skew a memory dependence needs in order to be *preserved*, and the
  preserved-by test (Definition 3).
* :mod:`repro.costmodel.misspec` — kernel misspeculation probability
  ``P_M`` (Equation 3).
* :mod:`repro.costmodel.exectime` — ``T_lb``, the objective
  ``F(II, C_delay)``, ``T_nomiss`` (Equation 2), the misspeculation
  penalty and ``T_mis_spec``, and the end-to-end execution-time estimate
  for a schedule.
"""

from .sync import (
    ScheduleView,
    sync_delay,
    required_skew,
    is_preserved,
    non_preserved_memory_deps,
)
from .misspec import misspec_probability
from .exectime import (
    CostEstimate,
    achieved_c_delay,
    estimate_execution_time,
    kernel_misspec_probability,
    misspec_penalty,
    objective_f,
    t_lower_bound,
)

__all__ = [
    "CostEstimate",
    "ScheduleView",
    "achieved_c_delay",
    "estimate_execution_time",
    "is_preserved",
    "kernel_misspec_probability",
    "misspec_penalty",
    "misspec_probability",
    "non_preserved_memory_deps",
    "objective_f",
    "required_skew",
    "sync_delay",
    "t_lower_bound",
]
