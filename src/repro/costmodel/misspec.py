"""Equation 3: kernel misspeculation probability."""

from __future__ import annotations

from typing import Iterable

from ..graph.dependence import Dependence

__all__ = ["misspec_probability"]


def misspec_probability(deps: Iterable[Dependence | float]) -> float:
    """``P_M = 1 - prod(1 - p_e)`` over the given memory dependences.

    Accepts either dependence edges (their ``probability`` field is used) or
    raw probabilities.  The paper's conservative reading: for every ``X``
    producer writes, ``p_e * X`` consumer reads may hit the same location
    and hence misspeculate, so per kernel iteration the chance that *some*
    non-preserved dependence fires is the complement of none firing.
    """
    prod = 1.0
    for dep in deps:
        p = dep.probability if isinstance(dep, Dependence) else float(dep)
        prod *= (1.0 - p)
    return 1.0 - prod
