"""Section 4.2: execution-time estimation for a modulo-scheduled loop on an
SpMT machine.

With ``N`` iterations on ``ncore`` cores, spawn overhead ``C_spn``, commit
overhead ``C_ci``, invalidation overhead ``C_inv`` and maximum per-thread
synchronisation delay ``C_delay``:

* ``T_lb = II + C_ci + max(C_spn, C_delay)`` — lower bound on one thread's
  busy time on its core;
* ``T_nomiss = max(C_spn, C_ci, C_delay, T_lb / ncore) * N`` (Equation 2):
  spawns, commits and synchronisation waits serialise pairwise, and when
  cores saturate the per-iteration cost cannot drop below ``T_lb / ncore``;
* one misspeculation wastes ``II + C_inv - max(0, C_delay - C_spn)`` cycles
  (the squashed execution plus invalidation, minus what re-execution gains
  because its inputs already arrived);
* ``T_mis_spec = penalty * P_M * N`` where ``P_M`` is Equation 3 over the
  *non-preserved* inter-iteration memory dependences.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig
from .misspec import misspec_probability
from .sync import ScheduleView, non_preserved_memory_deps, sync_delay

__all__ = [
    "t_lower_bound",
    "objective_f",
    "achieved_c_delay",
    "misspec_penalty",
    "kernel_misspec_probability",
    "CostEstimate",
    "estimate_execution_time",
]


def t_lower_bound(ii: int, c_delay: float, arch: ArchConfig) -> float:
    """``T_lb``: lower bound on a thread's execution time."""
    return ii + arch.commit_overhead + max(arch.spawn_overhead, c_delay)


def objective_f(ii: int, c_delay: float, arch: ArchConfig) -> float:
    """``F(II, C_delay) = T_nomiss / N`` — the quantity TMS minimises."""
    return max(
        arch.spawn_overhead,
        arch.commit_overhead,
        c_delay,
        t_lower_bound(ii, c_delay, arch) / arch.ncore,
    )


def achieved_c_delay(schedule: ScheduleView, arch: ArchConfig,
                     *, include_memory: bool = False) -> float:
    """The maximum sync delay any synchronised dependence imposes in
    ``schedule`` (0.0 when the kernel has no inter-iteration register
    dependences).

    With ``include_memory=True``, inter-iteration memory flow dependences
    are counted as synchronised too — the no-speculation ablation of
    Section 5.2.
    """
    deps = list(schedule.inter_iteration_register_deps())
    if include_memory:
        deps += list(schedule.inter_iteration_memory_deps())
    if not deps:
        return 0.0
    # a negative sync delay means the value arrives before it is needed —
    # the thread never waits, so the incurred delay is zero.
    return max(0.0, max(sync_delay(schedule, e, arch.reg_comm_latency)
                        for e in deps))


def misspec_penalty(ii: int, c_delay: float, arch: ArchConfig) -> float:
    """Cycles lost to one misspeculation."""
    return ii + arch.invalidation_overhead - max(0.0, c_delay - arch.spawn_overhead)


def kernel_misspec_probability(schedule: ScheduleView, arch: ArchConfig) -> float:
    """``P_M`` for a complete schedule: Equation 3 over the non-preserved
    inter-iteration memory dependences (Definition 3)."""
    mem = schedule.inter_iteration_memory_deps()
    reg = schedule.inter_iteration_register_deps()
    live = non_preserved_memory_deps(schedule, mem, reg, arch.reg_comm_latency)
    return misspec_probability(live)


@dataclass(frozen=True)
class CostEstimate:
    """Model-predicted execution profile of a scheduled loop."""

    ii: int
    c_delay: float
    p_m: float
    t_nomiss: float
    t_mis_spec: float
    iterations: int

    @property
    def total(self) -> float:
        return self.t_nomiss + self.t_mis_spec

    @property
    def per_iteration(self) -> float:
        return self.total / self.iterations if self.iterations else 0.0


def estimate_execution_time(schedule, arch: ArchConfig, iterations: int,
                            *, synchronize_memory: bool = False) -> CostEstimate:
    """End-to-end model estimate ``T = T_nomiss + T_mis_spec`` for a
    complete schedule.

    ``synchronize_memory`` models the no-speculation mode: memory
    dependences contribute to ``C_delay`` and never misspeculate.
    """
    c_delay = achieved_c_delay(schedule, arch, include_memory=synchronize_memory)
    p_m = 0.0 if synchronize_memory else kernel_misspec_probability(schedule, arch)
    t_nomiss = objective_f(schedule.ii, c_delay, arch) * iterations
    penalty = misspec_penalty(schedule.ii, c_delay, arch)
    return CostEstimate(
        ii=schedule.ii,
        c_delay=c_delay,
        p_m=p_m,
        t_nomiss=t_nomiss,
        t_mis_spec=penalty * p_m * iterations,
        iterations=iterations,
    )
