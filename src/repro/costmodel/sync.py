"""Definitions 2 and 3: synchronisation delay and preserved dependences.

**Definition 2 (sync delay).**  For an inter-iteration register dependence
``x -> y`` with kernel distance 1::

    sync(x, y) = issue_slot(x)%II - issue_slot(y)%II + lat(x) + C_reg_com

This is the minimum skew between consecutive threads that lets thread
``i+1``'s ``y`` receive the value produced by thread ``i``'s ``x`` over the
operand network.

**Generalisation to kernel distance k > 1.**  The post-pass turns a
distance-``k`` dependence into ``k`` neighbouring hops through register
copies, so the *per-thread* skew it demands is::

    sync_k(x, y) = (row(x) - row(y) + lat(x)) / k + C_reg_com

(each hop pays the full communication latency, while the issue-cycle
difference is amortised over ``k`` threads).  For ``k = 1`` this reduces to
Definition 2 exactly.

**Definition 3 (preserved memory dependence).**  An inter-iteration memory
dependence ``x -> y`` is *preserved* by a set ``D`` of synchronised register
dependences if some ``u -> v`` in ``D`` with ``row(u) < row(x)`` imposes a
skew at least::

    required_skew(x, y) = (row(x) + lat(x) - row(y)) / d_ker(x, y)

so that, by the time ``y`` executes in the consuming thread, ``x`` has
already completed in the producing thread — the dependence cannot
misspeculate.  (The paper's formula is garbled in the available text; this
reconstruction matches the visible ``sync(u,v) >= (...)/d_ker(x,y)``
fragment and the motivating example, where SMS's 11-cycle sync delay
"accidentally preserves" ``n5 -> n0/n2/n3``.  See DESIGN.md.)
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol

from ..errors import DDGError
from ..graph.ddg import DDG
from ..graph.dependence import Dependence

__all__ = [
    "ScheduleView",
    "sync_delay",
    "required_skew",
    "is_preserved",
    "non_preserved_memory_deps",
]


class ScheduleView(Protocol):
    """Anything that can answer row/stage queries — a complete
    :class:`~repro.sched.schedule.Schedule` or a scheduler's partial view."""

    ii: int
    ddg: DDG

    def row(self, name: str) -> int: ...
    def stage(self, name: str) -> int: ...
    def d_ker(self, edge: Dependence) -> int: ...


def sync_delay(view: ScheduleView, edge: Dependence, c_reg_com: int) -> float:
    """Per-thread skew demanded by synchronising register dependence
    ``edge`` (Definition 2 / its multi-hop generalisation)."""
    k = view.d_ker(edge)
    if k < 1:
        raise DDGError(
            f"sync delay is defined for inter-iteration dependences; "
            f"{edge.src}->{edge.dst} has d_ker={k}")
    lat = view.ddg.latency(edge.src)
    return (view.row(edge.src) - view.row(edge.dst) + lat) / k + c_reg_com


def required_skew(view: ScheduleView, edge: Dependence) -> float:
    """Per-thread skew above which memory dependence ``edge`` cannot be
    violated (Definition 3's threshold)."""
    k = view.d_ker(edge)
    if k < 1:
        raise DDGError(
            f"required skew is defined for inter-iteration dependences; "
            f"{edge.src}->{edge.dst} has d_ker={k}")
    lat = view.ddg.latency(edge.src)
    return (view.row(edge.src) + lat - view.row(edge.dst)) / k


def is_preserved(view: ScheduleView, mem_edge: Dependence,
                 reg_deps: Iterable[Dependence], c_reg_com: int,
                 *, sync_cache: Mapping[Dependence, float] | None = None) -> bool:
    """Definition 3: is ``mem_edge`` preserved by the synchronised
    dependences in ``reg_deps``?

    ``sync_cache`` optionally maps register dependences to their
    pre-computed sync delays (the schedulers maintain one incrementally).
    """
    threshold = required_skew(view, mem_edge)
    if threshold <= 0:
        # the producer completes no later than the consumer issues even with
        # zero skew: preserved unconditionally.
        return True
    x_row = view.row(mem_edge.src)
    for dep in reg_deps:
        if view.row(dep.src) >= x_row:
            continue  # the synchronisation happens after x; no help
        delay = (sync_cache[dep] if sync_cache is not None and dep in sync_cache
                 else sync_delay(view, dep, c_reg_com))
        if delay >= threshold:
            return True
    return False


def non_preserved_memory_deps(view: ScheduleView,
                              mem_deps: Iterable[Dependence],
                              reg_deps: Iterable[Dependence],
                              c_reg_com: int) -> list[Dependence]:
    """The subset of ``mem_deps`` not preserved by ``reg_deps`` — the
    dependences that can actually misspeculate (the set ``M`` feeding
    Equation 3)."""
    reg_list = list(reg_deps)
    cache = {dep: sync_delay(view, dep, c_reg_com) for dep in reg_list}
    return [e for e in mem_deps
            if not is_preserved(view, e, reg_list, c_reg_com, sync_cache=cache)]
