"""The compile→simulate session layer.

Every experiment driver in this repository runs the same per-loop flow —
IR → DDG → {SMS, TMS} → post-pass → :class:`~repro.spmt.channels.
KernelTimingTemplate` → simulation — and before this subsystem existed,
each driver re-ran it from scratch.  :class:`Session` makes the flow
*compile-once-reuse-everywhere*:

* **Artifact layer** (:mod:`repro.session.cache`,
  :mod:`repro.session.fingerprint`) — a content-addressed cache keyed by
  ``(loop fingerprint, ArchConfig, ResourceModel, SchedulerConfig,
  LatencyModel)``, with an in-memory LRU tier and an optional on-disk
  tier (``REPRO_CACHE_DIR`` or ``~/.cache/repro``), storing
  :class:`~repro.experiments.pipeline.CompiledLoop` artifacts.  Hit /
  miss / eviction counters are surfaced through
  :meth:`Session.report`.
* **Execution layer** (:mod:`repro.session.runner`) — a
  :class:`ParallelRunner` (``concurrent.futures``-based,
  ``REPRO_JOBS`` / ``--jobs`` controlled) with deterministic result
  ordering and per-task error capture, so one pathological loop fails
  soft instead of killing a sweep.
* **Driver layer** — :func:`repro.compile_and_simulate`,
  :mod:`repro.experiments.pipeline` and every table/figure harness
  route through the process-wide default session
  (:func:`get_session`).

Quickstart::

    from repro.session import Session

    session = Session()                      # in-memory cache only
    compiled = session.compile(loop)         # miss: compiles
    compiled = session.compile(loop)         # hit: returns the artifact
    stats = session.simulate(compiled.tms, iterations=500)
    print(session.report())
"""

from __future__ import annotations

from .cache import ArtifactCache, CacheStats
from .fingerprint import artifact_key, fingerprint, trial_key
from .runner import ParallelRunner, TaskResult, resolve_jobs
from .session import Session, SessionStats, get_session, reset_session, set_session

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "ParallelRunner",
    "Session",
    "SessionStats",
    "TaskResult",
    "artifact_key",
    "fingerprint",
    "get_session",
    "reset_session",
    "resolve_jobs",
    "set_session",
    "trial_key",
]
