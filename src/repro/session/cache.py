"""Content-addressed artifact cache: in-memory LRU plus optional disk tier.

The in-memory tier is a plain LRU over fingerprint keys.  The disk tier
(enabled by passing ``disk_dir`` — the session layer resolves
``REPRO_CACHE_DIR`` / ``~/.cache/repro``) persists artifacts as pickles
under two-level fan-out directories (``ab/ab12….pkl``), written
atomically (temp file + rename) so concurrent writers — e.g. the
:class:`~repro.session.runner.ParallelRunner`'s worker processes — never
expose a torn file.  Disk entries are self-invalidating across library
versions because the fingerprint key embeds ``repro.__version__``.

Within one process the cache is thread-safe: every public operation
(lookup, store, invalidate, stats read) runs under a single re-entrant
lock, so the serve broker (:mod:`repro.serve.broker`) can hit one
:class:`~repro.session.session.Session` from many request threads
without torn LRU state or lost counter updates.  The lock is held across
disk-tier I/O too — correctness over concurrency; the disk tier is an
optimisation, and artifact pickles are small.

Every operation feeds :class:`CacheStats`, the counters surfaced through
``Session.report()`` / ``tms-experiments --cache-stats``-style output.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..obs import metrics

__all__ = ["MISS", "ArtifactCache", "CacheStats"]

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters of one :class:`ArtifactCache`."""

    hits: int = 0            #: in-memory tier hits
    misses: int = 0          #: lookups answered by neither tier
    stores: int = 0          #: values inserted into the memory tier
    evictions: int = 0       #: LRU evictions from the memory tier
    invalidations: int = 0   #: explicit invalidate() removals
    disk_hits: int = 0       #: misses in memory answered by the disk tier
    disk_stores: int = 0     #: values persisted to the disk tier
    disk_errors: int = 0     #: unreadable/corrupt disk entries discarded
    disk_prunes: int = 0     #: entries removed by the size-cap pruner

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered by either tier."""
        n = self.lookups
        return (self.hits + self.disk_hits) / n if n else 0.0

    def summary(self) -> str:
        return (f"{self.hits} memory hits, {self.disk_hits} disk hits, "
                f"{self.misses} misses ({100 * self.hit_rate:.1f}% hit rate), "
                f"{self.evictions} evictions, {self.invalidations} "
                f"invalidations, {self.disk_errors} disk errors, "
                f"{self.disk_prunes} disk prunes")


class ArtifactCache:
    """Two-tier content-addressed store for compiled artifacts.

    Parameters
    ----------
    maxsize:
        In-memory entry cap; least recently used entries are evicted
        beyond it.  ``None`` means unbounded.
    disk_dir:
        Root of the on-disk tier; ``None`` disables persistence.
    max_disk_mb:
        Size cap (in MiB) for the disk tier; when a write pushes the
        tier past the cap, the oldest entries (by modification time) are
        pruned until it fits again.  ``None`` means unbounded.  The
        session layer resolves ``REPRO_CACHE_MAX_MB`` into this.
    """

    def __init__(self, maxsize: int | None = 2048,
                 disk_dir: str | os.PathLike | None = None,
                 max_disk_mb: float | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        if max_disk_mb is not None and max_disk_mb <= 0:
            raise ValueError(
                f"max_disk_mb must be > 0 or None, got {max_disk_mb}")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.max_disk_mb = max_disk_mb
        self.stats = CacheStats()
        self._mem: OrderedDict[str, Any] = OrderedDict()
        # one lock for both tiers and the counters: get/put from many
        # broker threads must never tear the LRU order or drop updates.
        self._lock = threading.RLock()
        # aggregate counters in the process metrics registry (shared by
        # every cache instance; the per-instance view stays in `stats`).
        self._m = {
            name: metrics.counter(f"cache.{name}",
                                  f"artifact-cache {name} (all instances)")
            for name in ("hits", "misses", "stores", "evictions",
                         "invalidations", "disk_hits", "disk_stores",
                         "disk_errors", "disk_prunes")
        }
        if self.disk_dir is not None:
            self._sweep_stale_tmps()

    # -- lookup / store -----------------------------------------------------

    def get(self, key: str) -> Any:
        """Return the cached value for ``key`` or the :data:`MISS`
        sentinel.  Disk hits are promoted into the memory tier."""
        with self._lock:
            if key in self._mem:
                self._mem.move_to_end(key)
                self.stats.hits += 1
                self._m["hits"].inc()
                return self._mem[key]
            if self.disk_dir is not None:
                value = self._disk_read(key)
                if value is not MISS:
                    self.stats.disk_hits += 1
                    self._m["disk_hits"].inc()
                    self._mem_put(key, value)
                    return value
            self.stats.misses += 1
            self._m["misses"].inc()
            return MISS

    def put(self, key: str, value: Any) -> None:
        """Insert ``value`` under ``key`` in both tiers."""
        with self._lock:
            self._mem_put(key, value)
            self.stats.stores += 1
            self._m["stores"].inc()
            if self.disk_dir is not None:
                self._disk_write(key, value)

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` from both tiers; True if anything was removed."""
        with self._lock:
            removed = self._mem.pop(key, MISS) is not MISS
            path = self._disk_path(key)
            if path is not None and path.exists():
                try:
                    path.unlink()
                    removed = True
                except OSError:
                    self.stats.disk_errors += 1
                    self._m["disk_errors"].inc()
            if removed:
                self.stats.invalidations += 1
                self._m["invalidations"].inc()
            return removed

    def clear(self) -> None:
        """Empty the memory tier (disk entries are left in place)."""
        with self._lock:
            self._mem.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._mem or (
                self.disk_dir is not None
                and (p := self._disk_path(key)) is not None and p.exists())

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._mem.keys()))

    def stats_dict(self) -> dict[str, Any]:
        """The cache's counters and shape as one JSON-able dict — the
        payload behind the serve daemon's ``/stats`` endpoint."""
        with self._lock:
            s = self.stats
            return {
                "hits": s.hits,
                "misses": s.misses,
                "stores": s.stores,
                "evictions": s.evictions,
                "invalidations": s.invalidations,
                "disk_hits": s.disk_hits,
                "disk_stores": s.disk_stores,
                "disk_errors": s.disk_errors,
                "disk_prunes": s.disk_prunes,
                "hit_rate": s.hit_rate,
                "entries": len(self._mem),
                "maxsize": self.maxsize,
                "disk_tier": self.disk_dir is not None,
            }

    # -- memory tier --------------------------------------------------------

    def _mem_put(self, key: str, value: Any) -> None:
        self._mem[key] = value
        self._mem.move_to_end(key)
        if self.maxsize is not None:
            while len(self._mem) > self.maxsize:
                self._mem.popitem(last=False)
                self.stats.evictions += 1
                self._m["evictions"].inc()

    # -- disk tier ----------------------------------------------------------

    def _disk_path(self, key: str) -> Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / key[:2] / f"{key}.pkl"

    def _disk_read(self, key: str) -> Any:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return MISS
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            # corrupt / truncated / version-incompatible entry: discard so
            # the recompiled artifact can replace it.
            self.stats.disk_errors += 1
            self._m["disk_errors"].inc()
            try:
                path.unlink()
            except OSError:
                pass
            return MISS

    def _disk_write(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        assert path is not None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.disk_stores += 1
            self._m["disk_stores"].inc()
            if self.max_disk_mb is not None:
                self._disk_prune(keep=path)
        except (OSError, pickle.PicklingError):
            # persistence is an optimisation; never fail a compile on it.
            self.stats.disk_errors += 1
            self._m["disk_errors"].inc()

    def _sweep_stale_tmps(self, max_age_s: float = 3600.0) -> int:
        """Remove orphaned ``*.tmp`` files left by writers killed
        mid-write.  Atomic rename means such orphans are never *read* as
        entries, but they would otherwise accumulate forever; only files
        older than ``max_age_s`` are removed so a live concurrent
        writer's in-flight temp file is untouched.  Returns the number
        of files removed.
        """
        assert self.disk_dir is not None
        if not self.disk_dir.is_dir():
            return 0
        removed = 0
        cutoff = time.time() - max_age_s
        for tmp in self.disk_dir.glob("??/*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def _disk_prune(self, keep: Path | None = None) -> None:
        """Evict oldest disk entries until the tier fits ``max_disk_mb``.

        ``keep`` (the entry just written) is never pruned, so a single
        oversized artifact does not evict itself and thrash.
        """
        assert self.disk_dir is not None and self.max_disk_mb is not None
        budget = int(self.max_disk_mb * 1024 * 1024)
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.disk_dir.glob("??/*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            total += st.st_size
            entries.append((st.st_mtime, st.st_size, path))
        if total <= budget:
            return
        entries.sort(key=lambda e: (e[0], str(e[2])))  # oldest first
        for _mtime, size, path in entries:
            if total <= budget:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats.disk_prunes += 1
            self._m["disk_prunes"].inc()
