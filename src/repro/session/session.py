"""The :class:`Session`: compile-once-reuse-everywhere orchestration.

A session owns one :class:`~repro.session.cache.ArtifactCache` and hands
out compiled artifacts (:class:`~repro.experiments.pipeline.
CompiledLoop`) by content fingerprint, so every driver that routes
through it — ``repro.compile_and_simulate``, the table/figure harnesses,
the benches — shares one compilation of each ``(loop, arch, resources,
scheduler config)`` point.  It also memoises the per-kernel
:class:`~repro.spmt.channels.KernelTimingTemplate` so repeated
simulations of the same pipelined loop skip the template rebuild.

Most callers use the process-wide default session (:func:`get_session`):
its cache size honours ``REPRO_CACHE_SIZE``, and its disk tier turns on
when ``REPRO_CACHE_DIR`` is set (making warm reruns of whole experiment
suites recompile nothing).  Pass ``cache_dir=DEFAULT_CACHE_DIR`` to opt
into the conventional ``~/.cache/repro`` location explicitly.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..config import ArchConfig, SchedulerConfig, SimConfig
from ..graph.ddg import DDG
from ..ir.loop import Loop
from ..machine.latency import LatencyModel
from ..machine.resources import ResourceModel
from ..obs import metrics
from ..obs.spans import span
from .cache import MISS, ArtifactCache, CacheStats
from .fingerprint import artifact_key
from .runner import ParallelRunner, TaskResult

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.pipeline import AlgResult, CompiledLoop
    from ..sched.postpass import PipelinedLoop
    from ..spmt.channels import KernelTimingTemplate
    from ..spmt.stats import SimStats

__all__ = ["DEFAULT_CACHE_DIR", "Session", "SessionStats", "get_session",
           "reset_session", "set_session"]

#: Conventional on-disk cache location when none is configured.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro"

#: Bound on the per-session KernelTimingTemplate memo.
_TEMPLATE_CACHE_SIZE = 512


@dataclass
class SessionStats:
    """Counters of one session, reported ``SimStats``-style."""

    #: compilations actually performed (cache misses that ran the pipeline)
    compiles: int = 0
    #: simulations dispatched through the session
    simulations: int = 0
    #: KernelTimingTemplate constructions / memo hits
    template_builds: int = 0
    template_hits: int = 0
    #: the artifact cache's counters (shared with ArtifactCache.stats)
    cache: CacheStats = field(default_factory=CacheStats)

    def summary(self) -> str:
        return (f"{self.compiles} compilations, {self.simulations} "
                f"simulations, templates {self.template_hits} reused / "
                f"{self.template_builds} built; cache: "
                f"{self.cache.summary()}")


def _resolve_cache_dir(cache_dir: str | os.PathLike | None) -> Path | None:
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(env) if env else None


def _resolve_cache_size() -> int:
    env = os.environ.get("REPRO_CACHE_SIZE", "").strip()
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            raise ValueError(
                f"REPRO_CACHE_SIZE must be an integer, got {env!r}") from None
    return 2048


def _resolve_max_disk_mb() -> float | None:
    env = os.environ.get("REPRO_CACHE_MAX_MB", "").strip()
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        raise ValueError(
            f"REPRO_CACHE_MAX_MB must be a number, got {env!r}") from None
    if value <= 0:
        raise ValueError(
            f"REPRO_CACHE_MAX_MB must be > 0, got {env!r}")
    return value


class Session:
    """A reusable compile→simulate context.

    Parameters
    ----------
    arch / config:
        Defaults applied when a call site passes ``None`` (falling back
        to ``ArchConfig.paper_default()`` / ``SchedulerConfig()``).
    cache_size:
        In-memory LRU capacity (default: ``REPRO_CACHE_SIZE`` or 2048).
    cache_dir:
        On-disk tier root; ``None`` consults ``REPRO_CACHE_DIR`` and
        stays memory-only when unset.
    jobs:
        Default parallelism for the ``*_many`` fan-out calls
        (default: ``REPRO_JOBS`` or sequential).
    persistent:
        Keep one warm :class:`~repro.session.runner.ParallelRunner`
        process pool alive across ``*_many`` calls instead of rebuilding
        it per call (the serve daemon's mode).  Release it with
        :meth:`close` or a ``with`` block.
    max_tasks_per_worker:
        Recycle the persistent pool's workers after this many tasks
        each (``None`` = never).
    """

    def __init__(self, arch: ArchConfig | None = None,
                 config: SchedulerConfig | None = None, *,
                 cache_size: int | None = None,
                 cache_dir: str | os.PathLike | None = None,
                 jobs: int | None = None,
                 persistent: bool = False,
                 max_tasks_per_worker: int | None = None) -> None:
        self.arch = arch
        self.config = config
        self.jobs = jobs
        self.persistent = persistent
        self.max_tasks_per_worker = max_tasks_per_worker
        self._runner: ParallelRunner | None = None
        self.cache = ArtifactCache(
            maxsize=cache_size if cache_size is not None
            else _resolve_cache_size(),
            disk_dir=_resolve_cache_dir(cache_dir),
            max_disk_mb=_resolve_max_disk_mb())
        self.stats = SessionStats(cache=self.cache.stats)
        # (id(pipelined), reg_comm_latency) -> (pipelined, template); the
        # pipelined object is pinned so its id cannot be recycled while
        # the entry lives.
        self._templates: OrderedDict[tuple[int, int], tuple[Any, Any]] = \
            OrderedDict()

    # -- execution ----------------------------------------------------------

    def _runner_for(self, jobs: int | None) -> ParallelRunner:
        """The runner one ``*_many`` call fans out on: the shared warm
        runner in persistent mode (when the call doesn't override
        ``jobs``), a throwaway one otherwise."""
        if self.persistent and jobs is None:
            if self._runner is None:
                self._runner = ParallelRunner(
                    self.jobs, persistent=True,
                    max_tasks_per_worker=self.max_tasks_per_worker)
            return self._runner
        return ParallelRunner(jobs if jobs is not None else self.jobs)

    def close(self) -> None:
        """Release the persistent worker pool (no-op otherwise).  The
        session stays usable; the next fan-out respawns the pool."""
        if self._runner is not None:
            self._runner.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- default resolution -------------------------------------------------

    def _resolve(self, source: Loop | DDG, arch: ArchConfig | None,
                 resources: ResourceModel | None,
                 config: SchedulerConfig | None,
                 latency: LatencyModel | None):
        arch = arch or self.arch or ArchConfig.paper_default()
        resources = resources or ResourceModel.default(arch.issue_width)
        config = config or self.config or SchedulerConfig()
        # latency only shapes the DDG build, so it is irrelevant (and
        # normalised away) when the caller hands us a prebuilt DDG.
        if isinstance(source, DDG):
            latency = None
        else:
            latency = latency or LatencyModel.for_arch(arch)
        return arch, resources, config, latency

    # -- compilation --------------------------------------------------------

    def compile(self, source: Loop | DDG, arch: ArchConfig | None = None,
                resources: ResourceModel | None = None,
                config: SchedulerConfig | None = None,
                latency: LatencyModel | None = None) -> "CompiledLoop":
        """Compile ``source`` with SMS and TMS, via the cache."""
        arch, resources, config, latency = self._resolve(
            source, arch, resources, config, latency)
        key = artifact_key(source, arch, resources, config, latency)
        cached = self.cache.get(key)
        if cached is not MISS:
            return cached
        with span("session.compile", kernel=getattr(source, "name", "")), \
                metrics.timer("session.compile_seconds",
                              "wall time of uncached compiles").time():
            compiled = _compile_uncached(
                (source, arch, resources, config, latency))
        self.stats.compiles += 1
        metrics.counter("session.compiles",
                        "compilations performed (cache misses)").inc()
        self.cache.put(key, compiled)
        return compiled

    def compile_many(self, sources: Sequence[Loop | DDG],
                     arch: ArchConfig | None = None,
                     resources: ResourceModel | None = None,
                     config: SchedulerConfig | None = None,
                     latency: LatencyModel | None = None, *,
                     jobs: int | None = None,
                     on_error: str = "raise",
                     timeout: float | None = None,
                     retries: int = 0
                     ) -> list["CompiledLoop | None"]:
        """Compile a batch, fanning cache misses out across processes.

        Results come back in input order.  ``on_error="raise"``
        (default) re-raises the first failure; ``"skip"`` replaces
        failed entries with ``None`` so a sweep survives one
        pathological loop.  ``timeout`` / ``retries`` bound and retry
        each uncached compile via the runner's per-task machinery (a
        timed-out compile surfaces as a
        :class:`~repro.errors.TaskTimeout` failure).
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}")
        sources = list(sources)
        out: list[Any] = [None] * len(sources)
        pending: dict[str, list[int]] = {}  # key -> input indices
        payloads: dict[str, tuple] = {}
        for i, source in enumerate(sources):
            r_arch, r_res, r_cfg, r_lat = self._resolve(
                source, arch, resources, config, latency)
            key = artifact_key(source, r_arch, r_res, r_cfg, r_lat)
            cached = self.cache.get(key)
            if cached is not MISS:
                out[i] = cached
            else:
                pending.setdefault(key, []).append(i)
                payloads.setdefault(
                    key, (source, r_arch, r_res, r_cfg, r_lat))
        if pending:
            keys = list(pending)
            runner = self._runner_for(jobs)
            with span("session.compile_many", tasks=len(keys)):
                results = runner.map(_compile_uncached,
                                     [payloads[k] for k in keys],
                                     timeout=timeout, retries=retries)
            for key, result in zip(keys, results):
                if result.ok:
                    self.stats.compiles += 1
                    metrics.counter(
                        "session.compiles",
                        "compilations performed (cache misses)").inc()
                    self.cache.put(key, result.value)
                    for i in pending[key]:
                        out[i] = result.value
                elif on_error == "raise":
                    result.unwrap()
                # on_error == "skip": leave the None placeholders
        return out

    # -- simulation ---------------------------------------------------------

    def simulate(self, target: "AlgResult | PipelinedLoop",
                 arch: ArchConfig | None = None, iterations: int = 500,
                 seed: int = 0xACE5, *,
                 sim: SimConfig | None = None) -> "SimStats":
        """Run one compiled kernel on the SpMT machine, reusing its
        timing template across calls."""
        from ..spmt.sim import SpMTSimulator

        pipelined = _as_pipelined(target)
        arch = arch or self.arch or ArchConfig.paper_default()
        sim = sim or SimConfig(iterations=iterations, seed=seed)
        template = self._template_for(pipelined, arch)
        self.stats.simulations += 1
        metrics.counter("session.simulations",
                        "simulations dispatched through sessions").inc()
        with span("session.simulate",
                  kernel=pipelined.schedule.ddg.name), \
                metrics.timer("session.simulate_seconds",
                              "wall time of session simulations").time():
            return SpMTSimulator(pipelined, arch, sim, template=template).run()

    def simulate_many(self, targets: Sequence["AlgResult | PipelinedLoop"],
                      arch: ArchConfig | None = None, iterations: int = 500,
                      seed: int = 0xACE5, *,
                      sim: SimConfig | None = None,
                      jobs: int | None = None,
                      on_error: str = "raise",
                      timeout: float | None = None,
                      retries: int = 0) -> list["SimStats | None"]:
        """Simulate a batch of kernels; parallel when ``jobs > 1``,
        deterministic result order always.  ``timeout`` / ``retries``
        bound and retry each simulation via the runner's per-task
        machinery.  ``sim`` overrides ``iterations``/``seed`` wholesale
        (same contract as :meth:`simulate`) — e.g. ``SimConfig(...,
        exact=True)`` runs the whole batch through the reference event
        loop, worker processes included."""
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}")
        arch = arch or self.arch or ArchConfig.paper_default()
        pipelined = [_as_pipelined(t) for t in targets]
        runner = self._runner_for(jobs)
        sim = sim or SimConfig(iterations=iterations, seed=seed)
        payloads = [(p, arch, sim) for p in pipelined]
        with span("session.simulate_many", tasks=len(payloads)):
            if runner.resolved_jobs <= 1:
                # Inline path: same runner bookkeeping and instruments as
                # the fan-out (so --jobs 1 and --jobs N telemetry agree),
                # but through a closure that keeps the template memo warm
                # and honours on_error="skip" instead of raising mid-batch.
                def _inline(payload: tuple) -> "SimStats":
                    from ..spmt.sim import SpMTSimulator
                    p, a, s = payload
                    template = self._template_for(p, a)
                    return SpMTSimulator(p, a, s, template=template).run()

                results = runner.map(_inline, payloads,
                                     timeout=timeout, retries=retries)
            else:
                results = runner.map(_simulate_task, payloads,
                                     timeout=timeout, retries=retries)
        ok = sum(1 for r in results if r.ok)
        self.stats.simulations += ok
        metrics.counter("session.simulations",
                        "simulations dispatched through sessions").inc(ok)
        if on_error == "raise":
            for r in results:
                if not r.ok:
                    r.unwrap()
        return [r.value if r.ok else None for r in results]

    def _template_for(self, pipelined: "PipelinedLoop",
                      arch: ArchConfig) -> "KernelTimingTemplate":
        from ..spmt.channels import KernelTimingTemplate

        key = (id(pipelined), arch.reg_comm_latency)
        entry = self._templates.get(key)
        if entry is not None and entry[0] is pipelined:
            self._templates.move_to_end(key)
            self.stats.template_hits += 1
            return entry[1]
        template = KernelTimingTemplate(pipelined, arch.reg_comm_latency)
        self.stats.template_builds += 1
        self._templates[key] = (pipelined, template)
        self._templates.move_to_end(key)
        while len(self._templates) > _TEMPLATE_CACHE_SIZE:
            self._templates.popitem(last=False)
        return template

    # -- reporting ----------------------------------------------------------

    def report(self) -> str:
        """One-line session summary (compiles, simulations, cache)."""
        return f"session: {self.stats.summary()}"


# -- module-level workers (picklable; run in ParallelRunner children) -------

def _compile_uncached(payload: tuple) -> "CompiledLoop":
    source, arch, resources, config, latency = payload
    from ..experiments.pipeline import compile_loop_uncached
    return compile_loop_uncached(source, arch, resources, config, latency)


def _simulate_task(payload: tuple) -> "SimStats":
    pipelined, arch, sim = payload
    from ..spmt.sim import simulate
    return simulate(pipelined, arch, sim)


def _as_pipelined(target: Any) -> "PipelinedLoop":
    pipelined = getattr(target, "pipelined", target)
    if not hasattr(pipelined, "schedule"):
        raise TypeError(
            f"expected an AlgResult or PipelinedLoop, got {type(target).__name__}")
    return pipelined


# -- the process-wide default session ---------------------------------------

_DEFAULT: Session | None = None


def get_session() -> Session:
    """The process-wide default session (created lazily from the
    ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_SIZE`` / ``REPRO_JOBS``
    environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Session()
    return _DEFAULT


def set_session(session: Session | None) -> Session | None:
    """Replace the default session; returns the previous one."""
    global _DEFAULT
    previous, _DEFAULT = _DEFAULT, session
    return previous


def reset_session() -> None:
    """Drop the default session (a fresh one is created on next use)."""
    set_session(None)
