"""Stable content fingerprints for loops, DDGs and configurations.

A fingerprint is the SHA-256 of a canonical JSON rendering, so two
structurally identical objects built independently — the same DSL parsed
twice, the same loop assembled by hand — hash equal, while any change to
an instruction, an operand, a dependence or a config field produces a
different key.  Loops reuse :func:`repro.ir.serialize.loop_to_dict`
(the library's stable on-disk format); configs enumerate their dataclass
fields; DDGs serialise their node/edge structure (covering graphs built
without concrete IR, e.g. the motivating example's hand-built DDG).

:func:`artifact_key` combines the pieces that determine a
:class:`~repro.experiments.pipeline.CompiledLoop` into one cache key and
includes the library version, so artifacts persisted to disk by an older
build are never served by a newer one.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from ..config import ArchConfig, SchedulerConfig
from ..graph.ddg import DDG
from ..ir.loop import Loop
from ..ir.serialize import loop_to_dict
from ..machine.latency import LatencyModel
from ..machine.resources import ResourceModel

__all__ = ["artifact_key", "fingerprint", "fingerprint_payload", "trial_key"]


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-able structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, Loop):
        return {"__loop__": loop_to_dict(obj)}
    if isinstance(obj, DDG):
        return {"__ddg__": _ddg_payload(obj)}
    if isinstance(obj, ResourceModel):
        return {
            "__resources__": {
                "issue_width": obj.issue_width,
                "units": {fu.value: [spec.count, spec.occupancy]
                          for fu, spec in sorted(obj.units.items(),
                                                 key=lambda kv: kv[0].value)},
            }
        }
    if isinstance(obj, LatencyModel):
        return {
            "__latency__": {op.value: lat
                            for op, lat in sorted(obj._lat.items(),
                                                  key=lambda kv: kv[0].value)}
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {name: _canonical(getattr(obj, name))
                       for name in sorted(obj.__dataclass_fields__)},
        }
    if isinstance(obj, dict):
        return {str(k): _canonical(v)
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(json.dumps(_canonical(v), sort_keys=True) for v in obj)
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}")


def _ddg_payload(ddg: DDG) -> dict:
    """Structural identity of a DDG: nodes with assumed latencies plus
    every dependence edge.  The embedded loop (when present) is included
    so a DDG carries the same information a (loop, latency) pair does."""
    return {
        "name": ddg.name,
        "nodes": [[n.name, n.opcode.value, n.latency, n.position]
                  for n in ddg.nodes],
        "edges": sorted(
            [e.src, e.dst, e.kind.value, e.dtype.value, e.distance,
             e.delay, e.probability]
            for e in ddg.edges),
        "loop": loop_to_dict(ddg.loop) if ddg.loop is not None else None,
    }


def fingerprint_payload(obj: Any) -> str:
    """Canonical JSON text of ``obj`` (the pre-image of its fingerprint)."""
    return json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical serialisation."""
    return hashlib.sha256(fingerprint_payload(obj).encode("utf-8")).hexdigest()


def artifact_key(source: Loop | DDG,
                 arch: ArchConfig,
                 resources: ResourceModel | None = None,
                 config: SchedulerConfig | None = None,
                 latency: LatencyModel | None = None) -> str:
    """Cache key of the compile artifact ``compile_loop(source, arch,
    resources, config, latency)`` would produce.

    Callers should resolve ``None`` components to their concrete
    defaults first (``Session.compile`` does), so an implicit default
    and an explicitly constructed equal default map to the same key.
    """
    from .. import __version__

    return fingerprint({
        "version": __version__,
        "source": source,
        "arch": arch,
        "resources": resources,
        "config": config,
        "latency": latency,
    })


def trial_key(spec: Any) -> str:
    """Cache key of one design-space-exploration trial evaluation.

    ``spec`` is a :class:`repro.dse.trial.TrialSpec` (or any dataclass
    capturing everything that determines a trial's result: configs,
    workload recipe, trip count, seed).  Like :func:`artifact_key`, the
    key embeds the library version so persisted trial results are never
    served across builds, and a ``kind`` tag so trial entries can never
    collide with compile artifacts.
    """
    from .. import __version__

    return fingerprint({
        "version": __version__,
        "kind": "dse-trial",
        "trial": spec,
    })
