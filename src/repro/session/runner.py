"""Process-parallel task execution with deterministic result ordering.

:class:`ParallelRunner` fans a list of independent tasks out across a
``concurrent.futures.ProcessPoolExecutor`` and returns one
:class:`TaskResult` per input, *in input order*, regardless of
completion order — so a ``--jobs 4`` run produces byte-identical tables
to a sequential one.  Failures are captured per task (exception plus
formatted traceback) instead of propagating, so one pathological loop
fails soft instead of killing a whole sweep; callers opt back into
fail-fast semantics with :meth:`ParallelRunner.map`'s
``on_error="raise"``.

The worker count resolves as: explicit argument, else the
``REPRO_JOBS`` environment variable, else 1 (sequential).  ``jobs <= 1``
runs everything inline in the calling process — same code path, no
pickling, exceptions still captured — which keeps the cache counters of
the calling :class:`~repro.session.session.Session` exact.
"""

from __future__ import annotations

import concurrent.futures
import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs import metrics

__all__ = ["ParallelRunner", "TaskResult", "resolve_jobs"]


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count: argument > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}") from None
    if jobs is None:
        return 1
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(jobs, 1)


@dataclass
class TaskResult:
    """Outcome of one task: either a value or a captured error."""

    index: int
    value: Any = None
    error: BaseException | None = None
    error_traceback: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """Return the value, re-raising the captured error if any."""
        if self.error is not None:
            raise RuntimeError(
                f"task {self.index} failed: {self.error}\n"
                f"{self.error_traceback}") from self.error
        return self.value


def _call(fn: Callable[[Any], Any], index: int, item: Any) -> TaskResult:
    try:
        return TaskResult(index=index, value=fn(item))
    except BaseException as exc:  # noqa: BLE001 — captured, surfaced per task
        return TaskResult(index=index, error=exc,
                          error_traceback=traceback.format_exc())


@dataclass
class ParallelRunner:
    """Maps a callable over items, in parallel when ``jobs > 1``."""

    jobs: int | None = None
    #: resolved worker count (populated on first use)
    resolved_jobs: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.resolved_jobs = resolve_jobs(self.jobs)

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            *, on_error: str = "capture") -> list[TaskResult]:
        """Run ``fn(item)`` for every item; results come back in input
        order.

        ``on_error="capture"`` (default) returns failed tasks as
        :class:`TaskResult`\\ s with ``ok == False``;
        ``on_error="raise"`` re-raises the first failure (by input
        order) after all tasks have been given the chance to run.
        """
        if on_error not in ("capture", "raise"):
            raise ValueError(f"on_error must be 'capture' or 'raise', "
                             f"got {on_error!r}")
        items = list(items)
        workers = min(self.resolved_jobs, len(items)) if items else 0
        metrics.counter("runner.tasks", "tasks dispatched").inc(len(items))
        with metrics.timer("runner.map_seconds",
                           "wall time of ParallelRunner.map calls").time():
            if workers <= 1:
                results = [_call(fn, i, item) for i, item in enumerate(items)]
            else:
                results = [TaskResult(index=i) for i in range(len(items))]
                with concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers) as pool:
                    futures = {
                        pool.submit(_call, fn, i, item): i
                        for i, item in enumerate(items)
                    }
                    for fut in concurrent.futures.as_completed(futures):
                        i = futures[fut]
                        try:
                            results[i] = fut.result()
                        except BaseException as exc:  # pool/pickling failure
                            results[i] = TaskResult(
                                index=i, error=exc,
                                error_traceback=traceback.format_exc())
        metrics.counter("runner.failures", "tasks that raised").inc(
            sum(1 for r in results if not r.ok))
        if on_error == "raise":
            for res in results:
                if not res.ok:
                    res.unwrap()
        return results
