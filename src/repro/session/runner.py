"""Process-parallel task execution with deterministic result ordering.

:class:`ParallelRunner` fans a list of independent tasks out across a
``concurrent.futures.ProcessPoolExecutor`` and returns one
:class:`TaskResult` per input, *in input order*, regardless of
completion order — so a ``--jobs 4`` run produces byte-identical tables
to a sequential one.  Failures are captured per task (exception plus
formatted traceback) instead of propagating, so one pathological loop
fails soft instead of killing a whole sweep; callers opt back into
fail-fast semantics with :meth:`ParallelRunner.map`'s
``on_error="raise"``.

The worker count resolves as: explicit argument, else the
``REPRO_JOBS`` environment variable, else 1 (sequential).  ``jobs <= 1``
runs everything inline in the calling process — same code path, no
pickling, exceptions still captured — which keeps the cache counters of
the calling :class:`~repro.session.session.Session` exact.

``persistent=True`` keeps one warm ``ProcessPoolExecutor`` alive across
``map`` calls instead of rebuilding it per call — the worker pool behind
the serve daemon (:mod:`repro.serve`) and batch users that map many
small waves.  A persistent runner recycles its workers after
``max_tasks_per_worker`` tasks each (bounding interpreter bloat from
long-lived children), replaces the pool when a worker hard-crashes
(``BrokenProcessPool`` fails the wave's tasks soft, and the next wave —
a retry wave included — gets a fresh pool), and must be released with
:meth:`ParallelRunner.close` or a ``with`` block.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import math
import os
import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import TaskTimeout
from ..obs import metrics
from ..obs.aggregate import collecting, merge_into_process, telemetry_config

__all__ = ["ParallelRunner", "TaskResult", "resolve_jobs"]


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count: argument > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}") from None
    if jobs is None:
        return 1
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(jobs, 1)


@dataclass
class TaskResult:
    """Outcome of one task: either a value or a captured error."""

    index: int
    value: Any = None
    error: BaseException | None = None
    error_traceback: str = ""
    attempts: int = 1        #: total attempts made (1 = no retries needed)
    timed_out: bool = False  #: last failure was a per-task timeout
    #: worker telemetry snapshot (metrics/events/spans) awaiting merge;
    #: the runner folds it into the parent's registries and clears it.
    telemetry: Any = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """Return the value, re-raising the captured error if any."""
        if self.error is not None:
            raise RuntimeError(
                f"task {self.index} failed: {self.error}\n"
                f"{self.error_traceback}") from self.error
        return self.value


def _call(fn: Callable[[Any], Any], index: int, item: Any) -> TaskResult:
    try:
        return TaskResult(index=index, value=fn(item))
    except BaseException as exc:  # noqa: BLE001 — captured, surfaced per task
        return TaskResult(index=index, error=exc,
                          error_traceback=traceback.format_exc())


def _traced_call(fn: Callable[[Any], Any], index: int, item: Any,
                 telemetry_cfg: dict) -> TaskResult:
    """Worker entry point: run the task inside a fresh telemetry scope
    and ship everything it produced (metrics / events / spans) back in
    ``TaskResult.telemetry`` — captured even when the task failed, so
    partial work is attributed the same way the inline path attributes
    it."""
    with collecting(telemetry_cfg) as collector:
        result = _call(fn, index, item)
        result.telemetry = collector.snapshot()
    return result


@dataclass
class ParallelRunner:
    """Maps a callable over items, in parallel when ``jobs > 1``."""

    jobs: int | None = None
    #: keep one warm process pool across ``map`` calls (see module doc);
    #: release it with :meth:`close` / a ``with`` block.
    persistent: bool = False
    #: recycle the persistent pool after this many tasks per worker
    #: (``None`` = never recycle).
    max_tasks_per_worker: int | None = None
    #: resolved worker count (populated on first use)
    resolved_jobs: int = field(init=False, default=0)
    _pool: Any = field(init=False, default=None, repr=False)
    #: tasks dispatched to the current persistent pool since it spawned
    _pool_tasks: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        self.resolved_jobs = resolve_jobs(self.jobs)
        if self.max_tasks_per_worker is not None \
                and self.max_tasks_per_worker < 1:
            raise ValueError(f"max_tasks_per_worker must be >= 1 or None, "
                             f"got {self.max_tasks_per_worker}")

    # -- persistent-pool lifecycle -----------------------------------------------

    def close(self) -> None:
        """Shut down the persistent pool (if any).  Idempotent; the
        runner stays usable — the next parallel ``map`` spawns a fresh
        pool."""
        self._dispose_pool()

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _dispose_pool(self) -> None:
        pool, self._pool = self._pool, None
        self._pool_tasks = 0
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _acquire_pool(self, workers: int):
        """The pool for one wave: fresh per wave normally, the shared
        warm pool under ``persistent=True`` (sized ``resolved_jobs`` so
        differently-sized maps reuse it, recycled after
        ``max_tasks_per_worker`` tasks per worker)."""
        if not self.persistent:
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=workers)
        size = self.resolved_jobs
        if (self._pool is not None and self.max_tasks_per_worker is not None
                and self._pool_tasks >= self.max_tasks_per_worker * size):
            self._dispose_pool()
            metrics.counter(
                "runner.worker_recycles",
                "persistent pools recycled after max_tasks_per_worker"
            ).inc()
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=size)
        return self._pool

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            *, on_error: str = "capture", timeout: float | None = None,
            retries: int = 0, backoff: float = 0.0,
            backoff_seed: int = 0) -> list[TaskResult]:
        """Run ``fn(item)`` for every item; results come back in input
        order.

        ``on_error="capture"`` (default) returns failed tasks as
        :class:`TaskResult`\\ s with ``ok == False``;
        ``on_error="raise"`` re-raises the first failure (by input
        order) after all tasks have been given the chance to run.

        ``timeout`` bounds each task's wall time: a task that overruns
        fails soft with a :class:`~repro.errors.TaskTimeout` error and
        ``timed_out=True`` (in the parallel path the wedged worker
        process is terminated so the pool cannot hang).  ``retries``
        re-runs failed (including timed-out) tasks up to that many extra
        times, sleeping a seeded exponential backoff
        (``backoff * 2**attempt``, jittered by ``backoff_seed``) between
        waves; ``attempts`` on each result records the total tries.
        """
        if on_error not in ("capture", "raise"):
            raise ValueError(f"on_error must be 'capture' or 'raise', "
                             f"got {on_error!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        items = list(items)
        workers = min(self.resolved_jobs, len(items)) if items else 0
        metrics.counter("runner.tasks", "tasks dispatched").inc(len(items))
        results: list[TaskResult] = [
            TaskResult(index=i) for i in range(len(items))]
        pending = list(range(len(items)))
        with metrics.timer("runner.map_seconds",
                           "wall time of ParallelRunner.map calls").time():
            for attempt in range(retries + 1):
                if not pending:
                    break
                if attempt > 0:
                    metrics.counter(
                        "runner.retries", "task retry attempts").inc(
                        len(pending))
                    self._backoff_sleep(attempt, backoff, backoff_seed)
                if workers <= 1:
                    wave = self._run_sequential(fn, items, pending, timeout)
                else:
                    wave = self._run_parallel(fn, items, pending, timeout,
                                              workers)
                still_failed = []
                for i, res in zip(pending, wave):
                    res.attempts = attempt + 1
                    if res.telemetry is not None:
                        # merged in input order (pending is sorted), so a
                        # --jobs N trace replays byte-identical to --jobs 1;
                        # the origin is the *task* index — worker process
                        # identity is scheduling noise.
                        merge_into_process(res.telemetry, f"worker.{i}")
                        res.telemetry = None
                    results[i] = res
                    if not res.ok:
                        still_failed.append(i)
                    if res.timed_out:
                        metrics.counter(
                            "runner.timeouts", "tasks that hit the "
                            "per-task timeout").inc()
                pending = still_failed
        metrics.counter("runner.failures", "tasks that raised").inc(
            sum(1 for r in results if not r.ok))
        if on_error == "raise":
            for res in results:
                if not res.ok:
                    res.unwrap()
        return results

    # -- execution waves --------------------------------------------------------

    @staticmethod
    def _backoff_sleep(attempt: int, backoff: float, seed: int) -> None:
        if backoff <= 0:
            return
        # seeded jitter in [0.5, 1.5): deterministic per (seed, attempt)
        jitter = 0.5 + random.Random(seed * 1000003 + attempt).random()
        time.sleep(backoff * (2 ** (attempt - 1)) * jitter)

    @staticmethod
    def _timeout_result(index: int, timeout: float) -> TaskResult:
        err = TaskTimeout(f"task {index} exceeded timeout={timeout}s")
        return TaskResult(index=index, error=err,
                          error_traceback=f"{type(err).__name__}: {err}\n",
                          timed_out=True)

    def _run_sequential(self, fn, items, pending: list[int],
                        timeout: float | None) -> list[TaskResult]:
        """One inline wave.  With a timeout, each task runs on a helper
        thread so an overrun fails soft; the abandoned thread finishes
        in the background (Python threads cannot be killed) but its
        result is discarded."""
        if timeout is None:
            return [_call(fn, i, items[i]) for i in pending]
        out = []
        for i in pending:
            pool = concurrent.futures.ThreadPoolExecutor(max_workers=1)
            fut = pool.submit(_call, fn, i, items[i])
            try:
                out.append(fut.result(timeout=timeout))
            except concurrent.futures.TimeoutError:
                out.append(self._timeout_result(i, timeout))
            finally:
                pool.shutdown(wait=False)
        return out

    def _run_parallel(self, fn, items, pending: list[int],
                      timeout: float | None,
                      workers: int) -> list[TaskResult]:
        """One process-pool wave.  The wave deadline budgets ``timeout``
        per queued batch (tasks can wait for a worker without being
        penalised); on expiry the wedged workers are terminated so the
        pool shutdown cannot hang."""
        workers = min(workers, len(pending))
        results: dict[int, TaskResult] = {}
        cfg = telemetry_config()
        pool = self._acquire_pool(workers)
        keep_pool = self.persistent
        try:
            futures = {pool.submit(_traced_call, fn, i, items[i], cfg): i
                       for i in pending}
        except concurrent.futures.process.BrokenProcessPool as exc:
            # a previous wave's crash poisoned the warm pool between
            # maps: fail this wave soft (a retry wave re-runs it on a
            # fresh pool) and replace the pool.
            self._replace_broken_pool()
            return [TaskResult(index=i, error=exc,
                               error_traceback=traceback.format_exc())
                    for i in pending]
        self._pool_tasks += len(pending)
        deadline = None if timeout is None else (
            time.monotonic() + timeout * math.ceil(len(pending) / workers))
        broken = False
        killed = False
        try:
            not_done = set(futures)
            while not_done:
                remaining = None if deadline is None \
                    else max(0.0, deadline - time.monotonic())
                done, not_done = concurrent.futures.wait(
                    not_done, timeout=remaining)
                for fut in done:
                    i = futures[fut]
                    try:
                        results[i] = fut.result()
                    except BaseException as exc:  # pool/pickling failure
                        if isinstance(
                                exc,
                                concurrent.futures.process.BrokenProcessPool):
                            broken = True
                        results[i] = TaskResult(
                            index=i, error=exc,
                            error_traceback=traceback.format_exc())
                if deadline is not None and not done and not_done:
                    # wave deadline expired: everything unfinished is a
                    # timeout; kill the workers so shutdown can't hang.
                    for fut in not_done:
                        fut.cancel()
                        results[futures[fut]] = self._timeout_result(
                            futures[fut], timeout)
                    self._terminate_workers(pool)
                    killed = True
                    break
        finally:
            if not keep_pool:
                pool.shutdown(wait=False, cancel_futures=True)
            elif broken or killed:
                # crash replacement: drop the poisoned/killed pool; the
                # next wave (retry waves included) spawns a fresh one.
                self._replace_broken_pool()
        return [results[i] for i in pending]

    def _replace_broken_pool(self) -> None:
        self._dispose_pool()
        metrics.counter(
            "runner.pool_rebuilds",
            "persistent pools replaced after a worker crash or "
            "timeout kill").inc()

    @staticmethod
    def _terminate_workers(pool) -> None:
        """Best-effort kill of a pool's worker processes (private API;
        tolerated to fail on future CPython layouts)."""
        try:
            procs = list((pool._processes or {}).values())
        except AttributeError:  # pragma: no cover - layout changed
            return
        for proc in procs:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
