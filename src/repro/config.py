"""Architecture, scheduler and simulation configuration.

:class:`ArchConfig` captures every parameter of Table 1 of the paper
("Architecture simulated") plus the execution-model constants described in
Section 3 (Voltron-style queue model: 3-cycle SEND/RECV scalar communication,
3-cycle spawn, 2-cycle commit, 15-cycle invalidation).

The default values are the paper's quad-core SpMT machine.  All experiment
harnesses take an ``ArchConfig`` so the ablation benches can vary the core
count, operand-network latency, and cache behaviour.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .errors import MachineError

__all__ = ["ArchConfig", "KNOWN_POLICIES", "SchedulerConfig", "SimConfig",
           "coerce_field_value", "config_field_types", "replace_config"]

#: scheduling policies selectable via ``SchedulerConfig.policy`` (and the
#: ``--policy`` CLI flag / ``sched.policy`` DSE dimension).  Each names the
#: first rung of the degradation chain in
#: :func:`repro.sched.degrade.schedule_with_degradation`.
KNOWN_POLICIES: tuple[str, ...] = ("tms", "sms", "ims", "seq")


@dataclass(frozen=True)
class ArchConfig:
    """SpMT multicore machine description (paper Table 1 + Section 3).

    Attributes
    ----------
    ncore:
        Number of cores on the uni-directional ring.  The paper evaluates a
        quad-core machine.
    issue_width:
        Fetch/issue/commit bandwidth of each core (instructions per cycle).
    l1_hit_latency:
        L1 D-cache hit latency in cycles (paper: 3).
    l2_hit_latency:
        Shared L2 hit latency in cycles (paper: 12).
    l2_miss_latency:
        Memory latency on an L2 miss in cycles (paper: 80).
    l1_miss_rate / l2_miss_rate:
        Probabilities used by the probabilistic cache substitute for the
        paper's detailed hierarchy (see DESIGN.md).  The *scheduler* always
        assumes an L1 hit (the compile-time latency); the *simulator* draws
        misses from these rates.
    reg_comm_latency:
        ``C_reg_com`` — producer-to-adjacent-consumer scalar communication
        latency: 1 cycle for SEND + 1 per hop + 1 for RECV = 3.
    spawn_overhead:
        ``C_spn`` — cycles to spawn the next iteration's thread (paper: 3).
        May be fractional (or zero): the DSE ``paper-overheads`` sweep
        explores sub-cycle spawn costs.
    commit_overhead:
        ``C_ci`` — head-thread commit overhead (paper: 2, thanks to the
        double-buffered speculative write buffer).
    invalidation_overhead:
        ``C_inv`` — cycles to squash a misspeculated thread: gang-clear MDT
        and L1 bits, flush send/receive queues and the write buffer
        (paper: 15).
    write_buffer_entries:
        Speculative write buffer capacity per core (paper: 64, Hydra-style).
    mdt_entries:
        Memory disambiguation table capacity (entries tracked between L1 and
        L2).  0 means unbounded.
    """

    ncore: int = 4
    issue_width: int = 4
    l1_hit_latency: int = 3
    l2_hit_latency: int = 12
    l2_miss_latency: int = 80
    l1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    reg_comm_latency: int = 3
    spawn_overhead: float = 3
    commit_overhead: int = 2
    invalidation_overhead: int = 15
    write_buffer_entries: int = 64
    mdt_entries: int = 0

    def __post_init__(self) -> None:
        if self.ncore < 1:
            raise MachineError(f"ncore must be >= 1, got {self.ncore}")
        if self.issue_width < 1:
            raise MachineError(f"issue_width must be >= 1, got {self.issue_width}")
        for name in ("l1_hit_latency", "l2_hit_latency", "l2_miss_latency",
                     "reg_comm_latency", "spawn_overhead", "commit_overhead",
                     "invalidation_overhead"):
            if getattr(self, name) < 0:
                raise MachineError(f"{name} must be non-negative")
        for name in ("l1_miss_rate", "l2_miss_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise MachineError(f"{name} must be in [0, 1], got {rate}")

    @classmethod
    def paper_default(cls) -> "ArchConfig":
        """The quad-core machine of Table 1."""
        return cls()

    @classmethod
    def single_core(cls) -> "ArchConfig":
        """A single-core machine for the single-threaded baselines."""
        return cls(ncore=1, spawn_overhead=0, commit_overhead=0,
                   invalidation_overhead=0)

    def with_cores(self, ncore: int) -> "ArchConfig":
        return replace(self, ncore=ncore)

    def with_reg_comm_latency(self, latency: int) -> "ArchConfig":
        return replace(self, reg_comm_latency=latency)

    def as_table(self) -> list[tuple[str, str]]:
        """Render this configuration as (parameter, value) rows (Table 1)."""
        return [
            ("Fetch, Issue, Commit", f"bandwidth {self.issue_width}, out-of-order issue"),
            ("L1 I-Cache", "16KB, 4-way, 1 cycle (hit)"),
            ("L1 D-Cache", f"16KB, 4-way, {self.l1_hit_latency} cycle (hit)"),
            ("L2 Cache (shared)",
             f"1MB, 4-way, {self.l2_hit_latency} cycles (hit), "
             f"{self.l2_miss_latency} cycles (miss)"),
            ("Local Register File", "1 cycle"),
            ("SEND/RECV Latency", f"{self.reg_comm_latency} cycles"),
            ("Spawn Overhead", f"{self.spawn_overhead} cycles"),
            ("Commit Overhead", f"{self.commit_overhead} cycles"),
            ("Invalidation Overhead", f"{self.invalidation_overhead} cycles"),
            ("Cores", str(self.ncore)),
        ]


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs shared by the SMS/TMS/IMS schedulers.

    Attributes
    ----------
    p_max:
        TMS's ``P_max`` — upper bound on the misspeculation frequency of the
        non-preserved inter-iteration memory dependences in a partial
        schedule (Fig. 3, condition C2).  The paper treats it as a tunable
        in [0, 1]; our experiments default to 0.05 and the ablation bench
        sweeps it.
    p_max_candidates:
        When ``try_p_max_values`` is True the TMS driver schedules the loop
        once per value here and keeps the schedule with the best modelled
        execution time (the paper: "several values for P_max can be tried so
        that the best schedule for a loop can be picked").
    max_ii_factor:
        Hard bound on II as a multiple of the longest dependence path, used
        as a search safety net.
    max_candidates:
        Upper bound on the number of (II, C_delay) pairs TMS will attempt
        before giving up (safety net; never hit by the paper workloads).
    budget_ratio_ii:
        IMS backtracking budget per II as a multiple of the node count.
    speculation:
        When False, TMS synchronises *all* inter-iteration memory
        dependences instead of speculating them (the Section 5.2 ablation:
        every memory dependence must be preserved, i.e. treated like a
        register dependence for C1 purposes).
    include_reg_anti_deps:
        Include register anti/output dependences in the DDG.  Off by
        default: the schedulers assume virtual registers are renamed by the
        post-pass (modulo variable expansion), matching GCC's SMS.
    max_schedule_seconds:
        Wall-clock watchdog on one TMS ``(II, C_delay)`` search.  ``None``
        (the default) disables the watchdog; when set, a search that
        exceeds the budget raises
        :class:`~repro.errors.SchedulingBudgetExceeded`, which
        :func:`repro.sched.degrade.schedule_with_degradation` turns into a
        TMS -> SMS -> sequential fallback instead of a hang.
    policy:
        First rung of the degradation chain (one of
        :data:`KNOWN_POLICIES`): ``"tms"`` (the default) runs the full
        TMS -> SMS -> IMS -> SEQ ladder; ``"sms"``/``"ims"``/``"seq"``
        start further down, scheduling with the named baseline instead of
        TMS (useful for ablations and the ``sched.policy`` DSE
        dimension).
    """

    p_max: float = 0.05
    try_p_max_values: bool = False
    p_max_candidates: tuple[float, ...] = (0.0, 0.01, 0.05, 0.2, 1.0)
    max_ii_factor: float = 2.0
    max_candidates: int = 200_000
    budget_ratio_ii: int = 3
    speculation: bool = True
    include_reg_anti_deps: bool = False
    max_schedule_seconds: float | None = None
    policy: str = "tms"

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_max <= 1.0:
            raise MachineError(f"p_max must be in [0, 1], got {self.p_max}")
        if self.policy not in KNOWN_POLICIES:
            raise MachineError(
                f"policy must be one of {KNOWN_POLICIES}, got "
                f"{self.policy!r}")
        if self.max_ii_factor < 1.0:
            raise MachineError("max_ii_factor must be >= 1.0")
        if self.max_candidates < 1:
            raise MachineError("max_candidates must be >= 1")
        if self.max_schedule_seconds is not None \
                and self.max_schedule_seconds < 0:
            raise MachineError("max_schedule_seconds must be >= 0 or None")


@dataclass(frozen=True)
class SimConfig:
    """Simulation run parameters.

    Attributes
    ----------
    iterations:
        Trip count ``N`` of the simulated loop.  The cost model assumes
        ``N >> ncore``.
    seed:
        RNG seed for memory-dependence realisation and cache-miss draws.
        Experiments use a different seed from the profiling run, mirroring
        the paper's train-input/large-input split.
    trace:
        Record a per-thread event trace (slower; used by tests/examples).
    max_events:
        Safety bound on simulator events to guarantee termination.
    exact:
        Force the reference per-thread event loop, disabling the
        steady-state fast path (see docs/simulator.md).  The
        ``REPRO_SIM_EXACT=1`` environment variable forces the same mode
        process-wide; results are byte-identical either way — this is the
        differential oracle's escape hatch, not a different model.
    """

    iterations: int = 1000
    seed: int = 0xACE5
    trace: bool = False
    max_events: int = 50_000_000
    exact: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise MachineError("iterations must be >= 1")

    def with_iterations(self, n: int) -> "SimConfig":
        return replace(self, iterations=n)

    def with_seed(self, seed: int) -> "SimConfig":
        return replace(self, seed=seed)


# -- field introspection (used by the repro.dse space spec) ------------------

def config_field_types(cls: type) -> dict[str, type]:
    """Concrete python type of every dataclass field of a config class.

    Resolves the postponed (string) annotations this module uses, so
    ``config_field_types(ArchConfig)["ncore"] is int``.  Parameterised
    generics (e.g. ``tuple[float, ...]``) are reduced to their origin
    (``tuple``).
    """
    hints = typing.get_type_hints(cls)
    out: dict[str, type] = {}
    for name in cls.__dataclass_fields__:  # type: ignore[attr-defined]
        hint = hints.get(name, Any)
        origin = typing.get_origin(hint)
        out[name] = origin if origin is not None else hint
    return out


def coerce_field_value(cls: type, name: str, value: Any) -> Any:
    """Coerce ``value`` to the declared type of field ``name`` of ``cls``.

    Integral floats become ints for int fields, ints widen to floats for
    float fields; anything else that mismatches raises ``MachineError``.
    The (field missing) case also raises, which is how the DSE space spec
    rejects typoed dimension names early instead of at trial time.
    """
    types = config_field_types(cls)
    if name not in types:
        raise MachineError(
            f"{cls.__name__} has no field {name!r}; known fields: "
            f"{sorted(types)}")
    expected = types[name]
    if expected is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MachineError(
                f"{cls.__name__}.{name} expects a number, got {value!r}")
        return float(value)
    if expected is int:
        if isinstance(value, bool):
            raise MachineError(
                f"{cls.__name__}.{name} expects an int, got {value!r}")
        if isinstance(value, float):
            if not value.is_integer():
                raise MachineError(
                    f"{cls.__name__}.{name} expects an int, got {value!r}")
            return int(value)
        if not isinstance(value, int):
            raise MachineError(
                f"{cls.__name__}.{name} expects an int, got {value!r}")
        return value
    if expected is bool and not isinstance(value, bool):
        raise MachineError(
            f"{cls.__name__}.{name} expects a bool, got {value!r}")
    if expected is str and not isinstance(value, str):
        raise MachineError(
            f"{cls.__name__}.{name} expects a string, got {value!r}")
    return value


def replace_config(cfg: Any, updates: Mapping[str, Any]) -> Any:
    """``dataclasses.replace`` with per-field coercion and validation."""
    coerced = {name: coerce_field_value(type(cfg), name, value)
               for name, value in updates.items()}
    return replace(cfg, **coerced) if coerced else cfg


def summarize_config(cfg: Any) -> str:
    """One-line human-readable summary of any config dataclass."""
    fields_str = ", ".join(
        f"{name}={getattr(cfg, name)!r}" for name in cfg.__dataclass_fields__
    )
    return f"{type(cfg).__name__}({fields_str})"
