"""Trial specs and results: one evaluated point of a parameter space.

A :class:`TrialSpec` is fully concrete — the resolved
:class:`~repro.config.ArchConfig` / :class:`~repro.config.
SchedulerConfig`, the workload recipe and the simulation fidelity
(trip count + seed) — so its content fingerprint
(:func:`repro.session.fingerprint.trial_key`) identifies the trial's
*result*: the sweep engine stores evaluated :class:`TrialResult`\\ s in
the session :class:`~repro.session.cache.ArtifactCache` under that key,
which is what makes overlapping or repeated sweeps free.

Workloads come in three suites:

* ``table3`` — the paper's seven selected DOACROSS loops;
* ``table2`` — the calibrated synthetic SPECfp populations;
* ``synthetic`` — a fresh seeded population from one
  :class:`~repro.workloads.generator.LoopShape`, whose fields (notably
  ``spec_probability``, the misspeculation-probability knob ``P_M``)
  are exactly the ``workload.*`` dimensions of a space.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..config import ArchConfig, SchedulerConfig, replace_config
from ..errors import MachineError
from ..ir.loop import Loop
from ..workloads.generator import LoopShape, generate_population

__all__ = ["KernelOutcome", "TrialResult", "TrialSpec", "WorkloadSpec",
           "build_trial", "build_workload_loops"]

#: workload suites a trial can evaluate against
SUITES = ("table3", "table2", "synthetic")

#: LoopShape used when a synthetic sweep overrides nothing: a small
#: DOACROSS-ish body with one accumulator recurrence and one speculated
#: dependence, cheap enough for adaptive low-fidelity rungs.
DEFAULT_SHAPE = LoopShape(n_instr=12, n_counters=1, n_reg_recurrences=1,
                          reg_recurrence_len=2, n_spec_deps=1,
                          spec_probability=0.02)


@dataclass(frozen=True)
class WorkloadSpec:
    """Deterministic recipe for a trial's kernel list.

    ``seed`` offsets every synthetic population (both the ``synthetic``
    suite and the perturbed ``table2`` populations), threading the CLI's
    ``--seed`` end to end; ``max_kernels`` caps the kernel count for
    quick runs (the cap keeps the head of the deterministic order).
    """

    suite: str = "table3"
    max_kernels: int | None = None
    benchmarks: tuple[str, ...] | None = None
    n_loops: int = 4
    seed: int = 0
    shape: LoopShape = DEFAULT_SHAPE

    def __post_init__(self) -> None:
        if self.suite not in SUITES:
            raise MachineError(
                f"unknown workload suite {self.suite!r}; choose from "
                f"{SUITES}")
        if self.n_loops < 1:
            raise MachineError(f"n_loops must be >= 1, got {self.n_loops}")


def build_workload_loops(spec: WorkloadSpec) -> list[tuple[str, Loop]]:
    """The (kernel-name, loop) list of one workload spec (deterministic)."""
    pairs: list[tuple[str, Loop]] = []
    if spec.suite == "table3":
        from ..workloads.doacross import DOACROSS_LOOPS
        pairs = [(sl.loop.name, sl.loop) for sl in DOACROSS_LOOPS]
    elif spec.suite == "table2":
        from ..workloads.specfp import SPECFP_BENCHMARKS, generate_benchmark_loops
        for bspec in SPECFP_BENCHMARKS:
            if spec.benchmarks is not None \
                    and bspec.name not in spec.benchmarks:
                continue
            for loop in generate_benchmark_loops(
                    bspec, max_loops=spec.max_kernels, seed=spec.seed):
                pairs.append((loop.name, loop))
    else:  # synthetic
        loops = generate_population(spec.shape, spec.n_loops,
                                    seed=spec.seed, prefix="syn")
        pairs = [(loop.name, loop) for loop in loops]
    if spec.max_kernels is not None:
        pairs = pairs[:spec.max_kernels]
    return pairs


@dataclass(frozen=True)
class TrialSpec:
    """One fully concrete design point (what :func:`~repro.session.
    fingerprint.trial_key` fingerprints)."""

    params: tuple[tuple[str, Any], ...]  #: the space assignment, ordered
    arch: ArchConfig
    sched: SchedulerConfig
    workload: WorkloadSpec
    iterations: int
    seed: int

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def with_iterations(self, iterations: int) -> "TrialSpec":
        """The same design point at a different simulation fidelity."""
        return replace(self, iterations=iterations)


def build_trial(params: Mapping[str, Any], *,
                base_arch: ArchConfig | None = None,
                base_sched: SchedulerConfig | None = None,
                base_workload: WorkloadSpec | None = None,
                iterations: int = 300, seed: int = 0xACE5) -> TrialSpec:
    """Apply one space assignment to the base configs -> a concrete trial.

    ``arch.*`` / ``sched.*`` params go through
    :func:`repro.config.replace_config` (typed, validated);
    ``workload.*`` params override the synthetic
    :class:`~repro.workloads.generator.LoopShape` (or ``n_loops``).
    """
    arch = base_arch or ArchConfig.paper_default()
    sched = base_sched or SchedulerConfig()
    workload = base_workload or WorkloadSpec()
    arch_updates: dict[str, Any] = {}
    sched_updates: dict[str, Any] = {}
    shape_updates: dict[str, Any] = {}
    n_loops: int | None = None
    for name, value in params.items():
        namespace, _, fieldname = name.partition(".")
        if namespace == "arch":
            arch_updates[fieldname] = value
        elif namespace == "sched":
            sched_updates[fieldname] = value
        elif namespace == "workload":
            if fieldname == "n_loops":
                n_loops = int(value)
            else:
                shape_updates[fieldname] = value
        else:
            raise MachineError(f"unknown parameter namespace in {name!r}")
    if (shape_updates or n_loops is not None) \
            and workload.suite != "synthetic":
        raise MachineError(
            "workload.* dimensions require the 'synthetic' suite, not "
            f"{workload.suite!r}")
    if shape_updates:
        workload = replace(workload,
                           shape=replace_config(workload.shape,
                                                shape_updates))
    if n_loops is not None:
        workload = replace(workload, n_loops=n_loops)
    return TrialSpec(
        params=tuple(sorted(params.items())),
        arch=replace_config(arch, arch_updates),
        sched=replace_config(sched, sched_updates),
        workload=workload,
        iterations=iterations,
        seed=seed,
    )


@dataclass(frozen=True)
class KernelOutcome:
    """SMS-vs-TMS simulated outcome of one kernel under one trial."""

    kernel: str
    sms_cycles: float
    tms_cycles: float
    tms_misspec_frequency: float

    @property
    def speedup(self) -> float:
        """TMS speedup over SMS on the same machine (>1 = TMS wins)."""
        return self.sms_cycles / self.tms_cycles if self.tms_cycles else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "sms_cycles": self.sms_cycles,
            "tms_cycles": self.tms_cycles,
            "tms_misspec_frequency": self.tms_misspec_frequency,
            "speedup": self.speedup,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "KernelOutcome":
        return cls(kernel=data["kernel"],
                   sms_cycles=data["sms_cycles"],
                   tms_cycles=data["tms_cycles"],
                   tms_misspec_frequency=data["tms_misspec_frequency"])


@dataclass(frozen=True)
class TrialResult:
    """Everything the analysis layer needs about one evaluated trial."""

    key: str                             #: trial_key(spec)
    params: tuple[tuple[str, Any], ...]  #: the space assignment
    fidelity: int                        #: simulated trip count
    seed: int
    kernels: tuple[KernelOutcome, ...]
    failed_kernels: tuple[str, ...] = field(default=())

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def mean_speedup(self) -> float:
        """Arithmetic mean of per-kernel TMS-over-SMS speedups."""
        if not self.kernels:
            return 0.0
        return sum(k.speedup for k in self.kernels) / len(self.kernels)

    @property
    def min_speedup(self) -> float:
        return min((k.speedup for k in self.kernels), default=0.0)

    @property
    def mean_misspec_frequency(self) -> float:
        if not self.kernels:
            return 0.0
        return sum(k.tms_misspec_frequency for k in self.kernels) \
            / len(self.kernels)

    def metric(self, name: str) -> float:
        """Numeric objective by name: an aggregate metric or a swept
        parameter (used by strategies and the Pareto frontier)."""
        if name in ("mean_speedup", "min_speedup",
                    "mean_misspec_frequency"):
            return float(getattr(self, name))
        params = self.params_dict
        if name in params:
            value = params[name]
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise MachineError(
                    f"parameter {name!r} is not numeric: {value!r}")
            return float(value)
        raise MachineError(f"unknown objective {name!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "params": dict(self.params),
            "fidelity": self.fidelity,
            "seed": self.seed,
            "kernels": [k.to_dict() for k in self.kernels],
            "failed_kernels": list(self.failed_kernels),
            "metrics": {
                "mean_speedup": self.mean_speedup,
                "min_speedup": self.min_speedup,
                "mean_misspec_frequency": self.mean_misspec_frequency,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        return cls(
            key=data["key"],
            params=tuple(sorted(data["params"].items())),
            fidelity=data["fidelity"],
            seed=data["seed"],
            kernels=tuple(KernelOutcome.from_dict(k)
                          for k in data["kernels"]),
            failed_kernels=tuple(data.get("failed_kernels", ())),
        )
