"""Design-space exploration & autotuning (``repro.dse``).

The paper's evaluation is itself a design-space walk — TMS vs SMS
across core counts, scalar-network latencies, spawn/commit/squash
overheads and misspeculation probabilities.  This subsystem makes that
walk a first-class, resumable artifact instead of a pile of one-off
scripts:

* :mod:`repro.dse.space` — declarative parameter spaces over
  ``arch.*`` / ``sched.*`` / ``workload.*`` fields (TOML/JSON files or
  dicts; validated against the config dataclasses);
* :mod:`repro.dse.strategies` — exhaustive grid, seeded random
  sampling, and adaptive successive halving (cheap low-fidelity rungs
  promote configs by simulated TMS speedup);
* :mod:`repro.dse.engine` — the sweep engine: every trial resolves
  through checkpoint → content-addressed artifact cache → evaluation,
  fans compiles/simulations out through the session layer, publishes
  ``dse.*`` metrics, and checkpoints JSONL after every batch so
  ``--resume`` continues an interrupted sweep exactly;
* :mod:`repro.dse.analysis` — per-kernel best configs, the speedup
  Pareto frontier, per-parameter sensitivity; versioned JSON +
  markdown reports (byte-identical across cold/warm/resumed runs);
* :mod:`repro.dse.presets` — named sweeps reproducing the paper's
  2/4/8-core and latency/overhead walks;
* :mod:`repro.dse.cli` — the ``tms-experiments dse`` subcommand.

See ``docs/dse.md`` for the space-file format and a walkthrough.
"""

from __future__ import annotations

from ..session import trial_key  # the trial cache key lives in session
from .analysis import (
    DSE_REPORT_SCHEMA,
    SweepReport,
    pareto_frontier,
    validate_dse_report_dict,
    write_report_json,
)
from .engine import SweepEngine, SweepInterrupted, SweepOutcome, evaluate_trial
from .presets import PRESETS, get_preset
from .space import Dimension, ParameterSpace, space_from_dict, space_from_file
from .strategies import (
    GridSearch,
    RandomSearch,
    SearchStrategy,
    SuccessiveHalving,
    make_strategy,
)
from .trial import (
    KernelOutcome,
    TrialResult,
    TrialSpec,
    WorkloadSpec,
    build_trial,
    build_workload_loops,
)

__all__ = [
    "DSE_REPORT_SCHEMA",
    "Dimension",
    "GridSearch",
    "KernelOutcome",
    "PRESETS",
    "ParameterSpace",
    "RandomSearch",
    "SearchStrategy",
    "SuccessiveHalving",
    "SweepEngine",
    "SweepInterrupted",
    "SweepOutcome",
    "SweepReport",
    "TrialResult",
    "TrialSpec",
    "WorkloadSpec",
    "build_trial",
    "build_workload_loops",
    "evaluate_trial",
    "get_preset",
    "make_strategy",
    "pareto_frontier",
    "space_from_dict",
    "space_from_file",
    "trial_key",
    "validate_dse_report_dict",
    "write_report_json",
]
