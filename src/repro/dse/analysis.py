"""Sweep analysis: best configs, Pareto frontier, sensitivity, reports.

Consumes the deterministic trial list a :class:`~repro.dse.engine.
SweepEngine` run produces and derives the three views the paper's own
evaluation walks through:

* the **best configuration per kernel** (which design point made each
  DOACROSS loop fastest under TMS, and by how much over SMS);
* the **TMS-vs-SMS speedup Pareto frontier** over configurable
  objectives — by default maximising mean speedup while minimising the
  swept hardware-cost axes (cores, scalar-network latency), the
  cores × comm-latency trade-off of the paper's Section 5 sweeps;
* per-dimension **sensitivity**: how much the mean speedup moves across
  each swept parameter's values, holding the trial population fixed.

``SweepReport.to_dict()`` is a stable, versioned schema
(:data:`DSE_REPORT_SCHEMA`, checked by :func:`validate_dse_report_dict`)
that CI archives and diffs; ``render_markdown()`` is the human form.
No wall-clock, hostnames or other run-local noise goes into either, so
cold, warm-cache and resumed runs of one sweep serialise to identical
bytes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import MachineError
from ..obs import metrics
from .space import ParameterSpace
from .trial import TrialResult

__all__ = ["DSE_REPORT_SCHEMA", "SweepReport", "pareto_frontier",
           "validate_dse_report_dict", "write_report_json"]

#: schema version written into every report dict
REPORT_VERSION = 1

#: arch dimensions treated as hardware cost (minimised) by default
_COST_DIMENSIONS = ("arch.ncore", "arch.reg_comm_latency",
                    "arch.issue_width")

#: Golden schema of :meth:`SweepReport.to_dict` (one level deep for the
#: repeated elements, mirroring ``repro.obs.report.REPORT_SCHEMA``).
DSE_REPORT_SCHEMA: dict[str, Any] = {
    "schema_version": int,
    "strategy": str,
    "seed": int,
    "space": dict,
    "objectives": list,
    "n_trials": int,
    "trials": {
        "key": str,
        "params": dict,
        "fidelity": int,
        "seed": int,
        "kernels": list,
        "failed_kernels": list,
        "metrics": dict,
    },
    "best_configs": dict,
    "pareto": {
        "params": dict,
        "objectives": dict,
    },
    "sensitivity": dict,
}


def pareto_frontier(results: Sequence[TrialResult],
                    objectives: Sequence[tuple[str, str]]
                    ) -> list[TrialResult]:
    """The non-dominated subset of ``results`` under ``objectives``.

    Each objective is ``(metric-or-parameter name, "max" | "min")``;
    a trial dominates another when it is at least as good on every
    objective and strictly better on one.  Input order is preserved,
    and duplicate objective vectors keep only their first trial (so the
    frontier, like everything else in the report, is deterministic).
    """
    for _name, direction in objectives:
        if direction not in ("max", "min"):
            raise MachineError(
                f"objective direction must be 'max' or 'min', got "
                f"{direction!r}")
    vectors = []
    for r in results:
        vec = tuple(r.metric(name) if d == "max" else -r.metric(name)
                    for name, d in objectives)
        vectors.append(vec)
    frontier: list[TrialResult] = []
    seen_vectors: set[tuple[float, ...]] = set()
    for i, vec in enumerate(vectors):
        if vec in seen_vectors:
            continue
        dominated = any(
            all(o >= v for o, v in zip(other, vec)) and other != vec
            for other in vectors)
        if not dominated:
            frontier.append(results[i])
            seen_vectors.add(vec)
    return frontier


@dataclass(frozen=True)
class SweepReport:
    """The analysed form of one sweep (pure data; no I/O)."""

    space: ParameterSpace
    strategy: str
    seed: int
    results: tuple[TrialResult, ...]
    objectives: tuple[tuple[str, str], ...] = ()

    @classmethod
    def build(cls, space: ParameterSpace, strategy: str, seed: int,
              results: Sequence[TrialResult],
              objectives: Sequence[tuple[str, str]] | None = None
              ) -> "SweepReport":
        """Assemble a report, defaulting the Pareto objectives to
        (maximise mean speedup) × (minimise each swept cost axis)."""
        if objectives is None:
            swept = {d.name for d in space.dimensions if len(d) > 1}
            objectives = [("mean_speedup", "max")] + [
                (name, "min") for name in _COST_DIMENSIONS
                if name in swept]
        report = cls(space=space, strategy=strategy, seed=seed,
                     results=tuple(results),
                     objectives=tuple(objectives))
        metrics.gauge("dse.pareto_points",
                      "size of the last computed Pareto frontier").set(
            len(report.pareto()))
        return report

    # -- views ---------------------------------------------------------------

    def final_results(self) -> list[TrialResult]:
        """One result per design point: the highest-fidelity evaluation
        of each assignment (adaptive strategies revisit points)."""
        best: dict[tuple, TrialResult] = {}
        for r in self.results:
            prev = best.get(r.params)
            if prev is None or r.fidelity > prev.fidelity:
                best[r.params] = r
        return list(best.values())

    def pareto(self) -> list[TrialResult]:
        """Non-dominated design points under :attr:`objectives`."""
        return pareto_frontier(self.final_results(), self.objectives)

    def best_configs(self) -> dict[str, dict[str, Any]]:
        """Per kernel: the design point with the best TMS speedup."""
        best: dict[str, tuple[float, dict[str, Any]]] = {}
        for r in self.final_results():
            for k in r.kernels:
                entry = best.get(k.kernel)
                if entry is None or k.speedup > entry[0]:
                    best[k.kernel] = (k.speedup, {
                        "params": r.params_dict,
                        "speedup": k.speedup,
                        "tms_cycles": k.tms_cycles,
                        "sms_cycles": k.sms_cycles,
                    })
        return {kernel: info
                for kernel, (_s, info) in sorted(best.items())}

    def sensitivity(self) -> dict[str, dict[str, Any]]:
        """Mean-speedup response per swept dimension value, plus the
        max-minus-min delta (the crude per-parameter sensitivity)."""
        finals = self.final_results()
        out: dict[str, dict[str, Any]] = {}
        for dim in self.space.dimensions:
            if len(dim) < 2:
                continue
            by_value: dict[str, list[float]] = {}
            for r in finals:
                value = r.params_dict.get(dim.name)
                if value is None:
                    continue
                by_value.setdefault(json.dumps(value), []).append(
                    r.mean_speedup)
            means = {v: sum(s) / len(s)
                     for v, s in sorted(by_value.items()) if s}
            if not means:
                continue
            out[dim.name] = {
                "mean_speedup_by_value": means,
                "delta": max(means.values()) - min(means.values()),
            }
        return out

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The stable, versioned report form (:data:`DSE_REPORT_SCHEMA`)."""
        return {
            "schema_version": REPORT_VERSION,
            "strategy": self.strategy,
            "seed": self.seed,
            "space": self.space.to_dict(),
            "objectives": [list(o) for o in self.objectives],
            "n_trials": len(self.results),
            "trials": [r.to_dict() for r in self.results],
            "best_configs": self.best_configs(),
            "pareto": [
                {"params": r.params_dict,
                 "objectives": {name: r.metric(name)
                                for name, _d in self.objectives}}
                for r in self.pareto()
            ],
            "sensitivity": self.sensitivity(),
        }

    def render_markdown(self) -> str:
        """Markdown report: frontier, best configs, sensitivity."""
        lines = ["# Design-space exploration report", ""]
        lines.append(f"- strategy: `{self.strategy}`  ·  seed: "
                     f"`{self.seed}`  ·  trials: {len(self.results)} "
                     f"({len(self.final_results())} design points)")
        lines.append(f"- space: `{json.dumps(self.space.to_dict())}`")
        lines.append(f"- objectives: "
                     f"{', '.join(f'{d} {n}' for n, d in self.objectives)}")
        lines += ["", "## Pareto frontier", ""]
        obj_names = [name for name, _d in self.objectives]
        lines.append("| " + " | ".join(["params"] + obj_names) + " |")
        lines.append("|" + "---|" * (1 + len(obj_names)))
        for r in self.pareto():
            cells = [f"`{json.dumps(r.params_dict)}`"] + [
                f"{r.metric(n):.4g}" for n in obj_names]
            lines.append("| " + " | ".join(cells) + " |")
        lines += ["", "## Best configuration per kernel", ""]
        lines.append("| kernel | speedup (TMS/SMS) | params |")
        lines.append("|---|---|---|")
        for kernel, info in self.best_configs().items():
            lines.append(f"| {kernel} | {info['speedup']:.3f} | "
                         f"`{json.dumps(info['params'])}` |")
        sens = self.sensitivity()
        if sens:
            lines += ["", "## Sensitivity (mean speedup vs parameter)", ""]
            lines.append("| dimension | delta | mean speedup by value |")
            lines.append("|---|---|---|")
            for name, info in sens.items():
                by_value = ", ".join(
                    f"{v}: {m:.3f}"
                    for v, m in info["mean_speedup_by_value"].items())
                lines.append(f"| {name} | {info['delta']:.3f} | "
                             f"{by_value} |")
        return "\n".join(lines) + "\n"


def write_report_json(report: SweepReport, path: str | os.PathLike) -> None:
    """Persist the versioned report dict as canonical pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def validate_dse_report_dict(data: dict[str, Any]) -> None:
    """Check a report dict against :data:`DSE_REPORT_SCHEMA`; raises
    ``ValueError`` on a missing key or mistyped value."""
    if data.get("schema_version") != REPORT_VERSION:
        raise ValueError(
            f"unsupported schema_version {data.get('schema_version')!r} "
            f"(expected {REPORT_VERSION})")

    def check(obj: dict, schema: dict, path: str) -> None:
        for key, expected in schema.items():
            if key not in obj:
                raise ValueError(f"report missing key {path}{key!r}")
            value = obj[key]
            if isinstance(expected, dict) and key in ("trials", "pareto"):
                if not isinstance(value, list):
                    raise ValueError(f"{path}{key!r} must be a list")
                for i, row in enumerate(value):
                    if not isinstance(row, dict):
                        raise ValueError(
                            f"{path}{key}[{i}] must be an object")
                    check(row, expected, f"{path}{key}[{i}].")
            elif isinstance(expected, dict) and expected:
                if not isinstance(value, dict):
                    raise ValueError(f"{path}{key!r} must be an object")
            elif not isinstance(value, expected if expected is not dict
                                else dict):
                raise ValueError(
                    f"{path}{key!r} must be {expected.__name__}, got "
                    f"{type(value).__name__}")
    check(data, DSE_REPORT_SCHEMA, "")
