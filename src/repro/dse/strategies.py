"""Search strategies: how a sweep walks a :class:`ParameterSpace`.

Strategies speak an *ask/tell* protocol the engine drives::

    while (batch := strategy.ask()) is not None:   # [(params, fidelity)]
        results = engine.evaluate(batch)
        strategy.tell(results)

Each asked batch is a checkpoint boundary: the engine persists every
result before asking again, so an interrupted sweep resumes at the last
completed batch.  Everything a strategy does is deterministic in its
constructor arguments (seeded ``random.Random``, stable sorts, ties
broken by ask order), which is what makes resumed and warm-cache reruns
byte-identical.

* :class:`GridSearch` — exhaustive lexicographic enumeration.
* :class:`RandomSearch` — seeded sampling without replacement (by grid
  index, so huge spaces need no materialisation).
* :class:`SuccessiveHalving` — the adaptive strategy: evaluate a wide
  rung of configs at cheap fidelity (few simulated iterations — the
  ``--quick`` trick), promote the top ``1/eta`` by simulated TMS
  speedup to ``eta``× the fidelity, repeat until the survivors run at
  full fidelity.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from ..errors import MachineError
from .space import ParameterSpace
from .trial import TrialResult

__all__ = ["GridSearch", "RandomSearch", "SearchStrategy",
           "SuccessiveHalving", "make_strategy"]

#: (space assignment, simulation fidelity) — what the engine evaluates
Trial = tuple[dict[str, Any], int]


class SearchStrategy:
    """Base ask/tell strategy over one space."""

    name = "base"

    def __init__(self, space: ParameterSpace, *, fidelity: int,
                 batch_size: int = 8) -> None:
        if fidelity < 1:
            raise MachineError(f"fidelity must be >= 1, got {fidelity}")
        if batch_size < 1:
            raise MachineError(f"batch_size must be >= 1, got {batch_size}")
        self.space = space
        self.fidelity = fidelity
        self.batch_size = batch_size

    def ask(self) -> list[Trial] | None:
        """The next batch of trials, or ``None`` when the search is done."""
        raise NotImplementedError

    def tell(self, results: Sequence[TrialResult]) -> None:
        """Feed back the results of the last asked batch (in ask order)."""


class _QueueStrategy(SearchStrategy):
    """Feedback-free strategies: a precomputed queue served in batches."""

    def __init__(self, space: ParameterSpace, *, fidelity: int,
                 batch_size: int = 8) -> None:
        super().__init__(space, fidelity=fidelity, batch_size=batch_size)
        self._queue: list[dict[str, Any]] = self._enumerate()
        self._cursor = 0

    def _enumerate(self) -> list[dict[str, Any]]:
        raise NotImplementedError

    def ask(self) -> list[Trial] | None:
        if self._cursor >= len(self._queue):
            return None
        chunk = self._queue[self._cursor:self._cursor + self.batch_size]
        self._cursor += len(chunk)
        return [(params, self.fidelity) for params in chunk]


class GridSearch(_QueueStrategy):
    """Every point of the space, in enumeration order."""

    name = "grid"

    def _enumerate(self) -> list[dict[str, Any]]:
        return list(self.space.points())


class RandomSearch(_QueueStrategy):
    """``n_trials`` distinct points sampled by seeded grid index."""

    name = "random"

    def __init__(self, space: ParameterSpace, *, n_trials: int, seed: int,
                 fidelity: int, batch_size: int = 8) -> None:
        if n_trials < 1:
            raise MachineError(f"n_trials must be >= 1, got {n_trials}")
        self.n_trials = n_trials
        self.seed = seed
        super().__init__(space, fidelity=fidelity, batch_size=batch_size)

    def _enumerate(self) -> list[dict[str, Any]]:
        rng = random.Random(self.seed)
        size = self.space.size
        n = min(self.n_trials, size)
        if size <= 4 * n:
            # small space: exact sample without replacement
            indices = rng.sample(range(size), n)
        else:
            # huge space: draw-and-dedupe, never materialising the grid
            seen: set[int] = set()
            indices = []
            while len(indices) < n:
                i = rng.randrange(size)
                if i not in seen:
                    seen.add(i)
                    indices.append(i)
        return [self.space.point_at(i) for i in indices]


class SuccessiveHalving(SearchStrategy):
    """Adaptive rung-based search (successive halving).

    Rung 0 holds ``n_initial`` seeded-random configs (the whole grid if
    the space is smaller) at ``min_fidelity``; after each rung the top
    ``ceil(n / eta)`` configs by ``metric`` move up at ``eta``× the
    fidelity, capped at ``max_fidelity`` — where the final rung runs.
    """

    name = "halving"

    def __init__(self, space: ParameterSpace, *, n_initial: int,
                 min_fidelity: int, max_fidelity: int, seed: int,
                 eta: int = 2, metric: str = "mean_speedup",
                 batch_size: int = 8) -> None:
        super().__init__(space, fidelity=max_fidelity,
                         batch_size=batch_size)
        if eta < 2:
            raise MachineError(f"eta must be >= 2, got {eta}")
        if not 1 <= min_fidelity <= max_fidelity:
            raise MachineError(
                f"need 1 <= min_fidelity <= max_fidelity, got "
                f"{min_fidelity}..{max_fidelity}")
        self.eta = eta
        self.metric = metric
        self.min_fidelity = min_fidelity
        self.max_fidelity = max_fidelity
        sampler = RandomSearch(space, n_trials=n_initial, seed=seed,
                               fidelity=min_fidelity)
        self._rung: list[dict[str, Any]] = list(sampler._queue)
        self._rung_fidelity = min_fidelity
        self._rung_results: list[TrialResult] = []
        self._cursor = 0
        self._done = False

    def ask(self) -> list[Trial] | None:
        if self._done:
            return None
        chunk = self._rung[self._cursor:self._cursor + self.batch_size]
        self._cursor += len(chunk)
        if not chunk:
            return None
        return [(params, self._rung_fidelity) for params in chunk]

    def tell(self, results: Sequence[TrialResult]) -> None:
        self._rung_results.extend(results)
        if self._cursor < len(self._rung):
            return  # rung still in flight
        if self._rung_fidelity >= self.max_fidelity \
                or len(self._rung) <= 1:
            self._done = True
            return
        # promote the top 1/eta (stable: ties keep ask order) to eta×
        # the fidelity, capped at max_fidelity.
        ranked = sorted(
            range(len(self._rung_results)),
            key=lambda i: (-self._rung_results[i].metric(self.metric), i))
        n_keep = max(1, -(-len(ranked) // self.eta))  # ceil
        keep = sorted(ranked[:n_keep])
        self._rung = [dict(self._rung_results[i].params) for i in keep]
        self._rung_fidelity = min(self._rung_fidelity * self.eta,
                                  self.max_fidelity)
        self._rung_results = []
        self._cursor = 0


def make_strategy(name: str, space: ParameterSpace, *, fidelity: int,
                  n_trials: int | None = None, seed: int = 0,
                  min_fidelity: int | None = None,
                  batch_size: int = 8) -> SearchStrategy:
    """Construct a strategy by CLI name (``grid``/``random``/``halving``)."""
    if name == "grid":
        return GridSearch(space, fidelity=fidelity, batch_size=batch_size)
    if name == "random":
        return RandomSearch(space, n_trials=n_trials or space.size,
                            seed=seed, fidelity=fidelity,
                            batch_size=batch_size)
    if name == "halving":
        return SuccessiveHalving(
            space, n_initial=n_trials or space.size,
            min_fidelity=min_fidelity or max(1, fidelity // 8),
            max_fidelity=fidelity, seed=seed, batch_size=batch_size)
    raise MachineError(
        f"unknown strategy {name!r}; choose grid, random or halving")
