"""Named sweep presets reproducing (and extending) the paper's walks.

A preset is exactly the dict a space/config file would parse to:
a ``space`` table plus base-settings defaults the CLI can still
override.  ``paper-cores`` is the paper's 2/4/8-core scaling sweep over
the Table-3 DOACROSS loops; ``paper-comm`` sweeps the scalar operand
network's SEND/RECV latency (Section 5's sensitivity axis);
``paper-overheads`` walks the spawn/commit/squash cost space;
``policies`` sweeps the scheduling policy itself (IMS/SMS/TMS via
``sched.policy``); ``pmax`` replays the Section 5.2 ``P_max`` ablation
as a sweep; ``synthetic-pm``
explores the misspeculation probability ``P_M`` of a synthetic DOACROSS
population jointly with the core count, using the adaptive strategy.
"""

from __future__ import annotations

from typing import Any

from ..errors import MachineError

__all__ = ["PRESETS", "get_preset"]

PRESETS: dict[str, dict[str, Any]] = {
    "paper-cores": {
        "description": "TMS vs SMS across 2/4/8 cores (Table-3 loops)",
        "space": {"arch.ncore": [2, 4, 8]},
        "suite": "table3",
        "strategy": "grid",
    },
    "paper-comm": {
        "description": "scalar-network latency sensitivity (C_reg_com)",
        "space": {"arch.reg_comm_latency": {"min": 1, "max": 7,
                                            "step": 2}},
        "suite": "table3",
        "strategy": "grid",
    },
    "paper-overheads": {
        "description": "spawn/commit/invalidation overhead space",
        "space": {
            "arch.spawn_overhead": [0, 1, 1.5, 3, 6],
            "arch.commit_overhead": [1, 2, 4],
            "arch.invalidation_overhead": [5, 15, 30],
        },
        "suite": "table3",
        "strategy": "random",
        "trials": 10,
    },
    "policies": {
        "description": "scheduling-policy ablation: IMS vs SMS vs TMS "
                       "placement on the Table-3 loops",
        "space": {"sched.policy": ["ims", "sms", "tms"]},
        "suite": "table3",
        "strategy": "grid",
    },
    "pmax": {
        "description": "TMS P_max pruning-bound sweep (Section 5.2)",
        "space": {"sched.p_max": [0.0, 0.01, 0.05, 0.2, 1.0]},
        "suite": "table3",
        "strategy": "grid",
    },
    "synthetic-pm": {
        "description": "misspeculation probability P_M x cores, "
                       "adaptive search on a synthetic population",
        "space": {
            "workload.spec_probability": {"min": 0.0, "max": 0.2,
                                          "steps": 5},
            "arch.ncore": [2, 4, 8],
        },
        "suite": "synthetic",
        "strategy": "halving",
        "trials": 8,
    },
}


def get_preset(name: str) -> dict[str, Any]:
    """The preset dict for ``name`` (a copy; callers may mutate)."""
    try:
        preset = PRESETS[name]
    except KeyError:
        raise MachineError(
            f"unknown preset {name!r}; choose from "
            f"{sorted(PRESETS)}") from None
    return {k: (dict(v) if isinstance(v, dict) else v)
            for k, v in preset.items()}
