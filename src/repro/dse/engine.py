"""The sweep engine: strategy-driven, cached, checkpointed, resumable.

One :class:`SweepEngine` drives a :class:`~repro.dse.strategies.
SearchStrategy` over a :class:`~repro.dse.space.ParameterSpace`.  Every
trial resolves through three layers, cheapest first:

1. the **checkpoint** — a JSONL file the engine appends to after every
   batch, so ``--resume`` continues an interrupted sweep exactly where
   it stopped (the file also doubles as the sweep's raw-result log);
2. the session :class:`~repro.session.cache.ArtifactCache`, under the
   trial's content key (:func:`~repro.session.fingerprint.trial_key`) —
   with ``REPRO_CACHE_DIR`` set, a repeated or overlapping sweep
   re-evaluates (and recompiles) nothing;
3. actual evaluation: compile the trial's kernels (SMS + TMS) and
   simulate both through :class:`~repro.session.session.Session`
   fan-out (``--jobs`` / ``REPRO_JOBS``).

Progress is published as ``dse.*`` metrics (and ``dse.trial`` trace
events when tracing is on).  All ordering is deterministic — ask order
decides result order — so cold, warm, parallel and resumed runs of the
same sweep produce byte-identical reports.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..config import ArchConfig, SchedulerConfig
from ..errors import MachineError
from ..machine.resources import ResourceModel
from ..obs import get_tracer, metrics
from ..obs.spans import span
from ..session import get_session, trial_key
from ..session.fingerprint import fingerprint
from .space import ParameterSpace
from .strategies import SearchStrategy
from .trial import (KernelOutcome, TrialResult, TrialSpec, WorkloadSpec,
                    build_trial, build_workload_loops)

__all__ = ["SweepEngine", "SweepInterrupted", "SweepOutcome",
           "evaluate_trial"]

#: checkpoint file schema version
CHECKPOINT_VERSION = 1


class SweepInterrupted(RuntimeError):
    """Raised when a sweep stops early (``stop_after``); the checkpoint
    holds everything completed so far, ready for ``--resume``."""


def evaluate_trial(spec: TrialSpec, session=None,
                   jobs: int | None = None) -> TrialResult:
    """Compile + simulate one trial (SMS and TMS over its kernels).

    Kernels whose compilation or simulation fails are recorded in
    ``failed_kernels`` and skipped (soft-fail, like the suite drivers),
    so one pathological configuration cannot kill a sweep.
    """
    session = session or get_session()
    key = trial_key(spec)
    pairs = build_workload_loops(spec.workload)
    resources = ResourceModel.default(spec.arch.issue_width)
    compiled = session.compile_many(
        [loop for _name, loop in pairs], spec.arch, resources, spec.sched,
        jobs=jobs, on_error="skip")
    failed = [name for (name, _l), comp in zip(pairs, compiled)
              if comp is None]
    points = [(name, comp) for (name, _l), comp in zip(pairs, compiled)
              if comp is not None]
    targets: list[Any] = []
    for _name, comp in points:
        targets.append(comp.sms)
        targets.append(comp.tms)
    stats = session.simulate_many(targets, spec.arch, spec.iterations,
                                  spec.seed, jobs=jobs, on_error="skip")
    kernels: list[KernelOutcome] = []
    for i, (name, _comp) in enumerate(points):
        sms, tms = stats[2 * i], stats[2 * i + 1]
        if sms is None or tms is None:
            failed.append(name)
            continue
        kernels.append(KernelOutcome(
            kernel=name,
            sms_cycles=float(sms.total_cycles),
            tms_cycles=float(tms.total_cycles),
            tms_misspec_frequency=float(tms.misspec_frequency)))
    return TrialResult(key=key, params=spec.params,
                       fidelity=spec.iterations, seed=spec.seed,
                       kernels=tuple(kernels),
                       failed_kernels=tuple(failed))


@dataclass
class SweepOutcome:
    """Everything one engine run produced, in deterministic ask order."""

    results: list[TrialResult]
    evaluated: int = 0            #: trials actually compiled+simulated
    from_checkpoint: int = 0      #: trials served by the resume file
    from_cache: int = 0           #: trials served by the artifact cache
    batches: int = 0

    def summary(self) -> str:
        return (f"{len(self.results)} trials ({self.evaluated} evaluated, "
                f"{self.from_checkpoint} from checkpoint, "
                f"{self.from_cache} from cache) in {self.batches} batches")


class SweepEngine:
    """Drives one strategy over one space, with caching + checkpoints.

    Parameters
    ----------
    space / strategy:
        What to explore and how to walk it.
    base_arch / base_sched / workload:
        The configuration every trial starts from before its space
        assignment is applied.
    seed:
        Simulation seed for every trial (also recorded in the header).
    checkpoint:
        JSONL path.  ``resume=True`` requires the file's header to match
        this sweep's identity (space + strategy + seed + workload) and
        reuses its completed trials; ``resume=False`` truncates it.
    stop_after:
        Abort (with :class:`SweepInterrupted`) after this many *newly
        evaluated* trials have been checkpointed — the hook the
        interruption tests use.
    """

    def __init__(self, space: ParameterSpace, strategy: SearchStrategy, *,
                 base_arch: ArchConfig | None = None,
                 base_sched: SchedulerConfig | None = None,
                 workload: WorkloadSpec | None = None,
                 seed: int = 0xACE5,
                 session=None, jobs: int | None = None,
                 checkpoint: str | os.PathLike | None = None,
                 resume: bool = False,
                 stop_after: int | None = None) -> None:
        self.space = space
        self.strategy = strategy
        self.base_arch = base_arch or ArchConfig.paper_default()
        self.base_sched = base_sched or SchedulerConfig()
        self.workload = workload or WorkloadSpec()
        self.seed = seed
        self.session = session or get_session()
        self.jobs = jobs
        self.checkpoint = Path(checkpoint) if checkpoint else None
        self.resume = resume
        self.stop_after = stop_after
        self._completed: dict[str, TrialResult] = {}

    # -- sweep identity ------------------------------------------------------

    def sweep_fingerprint(self) -> str:
        """Content identity of this sweep: what a checkpoint must match."""
        return fingerprint({
            "space": self.space.to_dict(),
            "strategy": self.strategy.name,
            "seed": self.seed,
            "base_arch": self.base_arch,
            "base_sched": self.base_sched,
            "workload": self.workload,
        })

    # -- checkpoint I/O ------------------------------------------------------

    def _load_checkpoint(self) -> None:
        assert self.checkpoint is not None
        with self.checkpoint.open("r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        if not lines:
            raise MachineError(
                f"checkpoint {self.checkpoint} is empty; rerun without "
                f"--resume")
        header = json.loads(lines[0])
        if header.get("kind") != "header" \
                or header.get("schema_version") != CHECKPOINT_VERSION:
            raise MachineError(
                f"checkpoint {self.checkpoint} has an unrecognised header")
        if header.get("sweep") != self.sweep_fingerprint():
            raise MachineError(
                f"checkpoint {self.checkpoint} belongs to a different "
                f"sweep (space/strategy/seed/workload changed); rerun "
                f"without --resume")
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from the interruption: drop it
            if record.get("kind") != "trial":
                continue
            result = TrialResult.from_dict(record["trial"])
            self._completed[result.key] = result

    def _open_checkpoint(self) -> Any:
        assert self.checkpoint is not None
        self.checkpoint.parent.mkdir(parents=True, exist_ok=True)
        preload = len(self._completed)
        if self.resume and self.checkpoint.exists() and preload:
            return self.checkpoint.open("a", encoding="utf-8")
        fh = self.checkpoint.open("w", encoding="utf-8")
        fh.write(json.dumps({
            "kind": "header",
            "schema_version": CHECKPOINT_VERSION,
            "sweep": self.sweep_fingerprint(),
            "strategy": self.strategy.name,
            "seed": self.seed,
            "space": self.space.to_dict(),
        }, sort_keys=True) + "\n")
        fh.flush()
        return fh

    # -- the main loop -------------------------------------------------------

    def run(self) -> SweepOutcome:
        """Walk the strategy to exhaustion; return results in ask order."""
        with span("dse.sweep", strategy=self.strategy.name,
                  space_size=self.space.size):
            return self._run()

    def _run(self) -> SweepOutcome:
        outcome = SweepOutcome(results=[])
        tracer = get_tracer()
        metrics.gauge("dse.space_size",
                      "points in the current sweep's space").set(
            self.space.size)
        if self.checkpoint is not None and self.resume \
                and self.checkpoint.exists():
            self._load_checkpoint()
        ck = self._open_checkpoint() if self.checkpoint is not None else None
        seen: set[str] = set()
        newly_evaluated = 0
        try:
            while (batch := self.strategy.ask()) is not None:
                outcome.batches += 1
                metrics.counter("dse.batches", "sweep batches run").inc()
                batch_results: list[TrialResult] = []
                for params, fidelity in batch:
                    spec = build_trial(
                        params, base_arch=self.base_arch,
                        base_sched=self.base_sched,
                        base_workload=self.workload,
                        iterations=fidelity, seed=self.seed)
                    with span("dse.trial", fidelity=fidelity) as sp:
                        result, source = self._resolve_trial(spec)
                        if sp is not None:
                            sp.attrs["source"] = source
                    metrics.counter("dse.trials",
                                    "trials resolved (any source)").inc()
                    if source == "evaluated":
                        outcome.evaluated += 1
                        newly_evaluated += 1
                        if ck is not None:
                            ck.write(json.dumps(
                                {"kind": "trial",
                                 "trial": result.to_dict()},
                                sort_keys=True) + "\n")
                    elif source == "checkpoint":
                        outcome.from_checkpoint += 1
                    else:
                        outcome.from_cache += 1
                    if tracer.enabled:
                        tracer.emit("dse", "trial", source=source,
                                    params=dict(result.params),
                                    fidelity=result.fidelity,
                                    mean_speedup=result.mean_speedup)
                    batch_results.append(result)
                    if result.key not in seen:
                        seen.add(result.key)
                        outcome.results.append(result)
                if ck is not None:
                    ck.flush()
                self.strategy.tell(batch_results)
                if self.stop_after is not None \
                        and newly_evaluated >= self.stop_after:
                    raise SweepInterrupted(
                        f"stopped after {newly_evaluated} newly evaluated "
                        f"trials ({len(outcome.results)} checkpointed)")
        finally:
            if ck is not None:
                ck.close()
        return outcome

    def _resolve_trial(self, spec: TrialSpec) -> tuple[TrialResult, str]:
        """Checkpoint -> artifact cache -> evaluate; returns the source."""
        from ..session.cache import MISS

        key = trial_key(spec)
        hit = self._completed.get(key)
        if hit is not None:
            metrics.counter("dse.checkpoint_hits",
                            "trials served by the resume file").inc()
            return hit, "checkpoint"
        cached = self.session.cache.get(key)
        if cached is not MISS:
            metrics.counter("dse.trial_cache_hits",
                            "trials served by the artifact cache").inc()
            return cached, "cache"
        with metrics.timer("dse.trial_seconds",
                           "wall time of evaluated trials").time():
            result = evaluate_trial(spec, session=self.session,
                                    jobs=self.jobs)
        metrics.counter("dse.evaluations",
                        "trials actually compiled+simulated").inc()
        self.session.cache.put(key, result)
        self._completed[key] = result
        return result, "evaluated"
