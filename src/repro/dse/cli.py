"""``tms-experiments dse``: the sweep subcommand.

Resolves a sweep definition (``--preset`` or ``--space FILE``, with CLI
overrides for strategy, trial budget, seed, suite and fidelity), runs
the :class:`~repro.dse.engine.SweepEngine`, and writes the output
directory::

    <out>/trials.jsonl   checkpoint / raw result log (--resume reads it)
    <out>/report.json    versioned report (schema-checked in CI)
    <out>/report.md      the same report as markdown

``--quick`` shrinks fidelity and kernel counts the same way the other
subcommands do; ``--resume`` continues an interrupted sweep from the
checkpoint.  Warm reruns with ``REPRO_CACHE_DIR`` set evaluate nothing
(every trial is served by the artifact cache) and still produce
byte-identical reports.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..config import ArchConfig, SchedulerConfig
from ..errors import MachineError
from .analysis import SweepReport, write_report_json
from .engine import SweepEngine, SweepInterrupted
from .presets import get_preset
from .space import space_from_dict, space_from_file
from .strategies import make_strategy
from .trial import WorkloadSpec

__all__ = ["add_dse_arguments", "run_dse_command"]


def add_dse_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", default=None,
                        help="named sweep (e.g. paper-cores, paper-comm, "
                             "paper-overheads, pmax, synthetic-pm)")
    parser.add_argument("--space", default=None, metavar="FILE",
                        help="TOML/JSON parameter-space file (see "
                             "docs/dse.md)")
    parser.add_argument("--strategy", default=None,
                        choices=("grid", "random", "halving"))
    parser.add_argument("--trials", type=int, default=None,
                        help="trial budget for random/halving searches")
    parser.add_argument("--suite", default=None,
                        choices=("table3", "table2", "synthetic"),
                        help="workload suite each trial evaluates")
    parser.add_argument("--kernels", type=int, default=None,
                        help="cap the kernel count per trial")
    parser.add_argument("--iterations", type=int, default=None,
                        help="simulated trip count at full fidelity")
    parser.add_argument("--seed", type=int, default=0xACE5,
                        help="seed for sampling, simulation and "
                             "synthetic workload generation")
    parser.add_argument("--quick", action="store_true",
                        help="tiny kernels/fidelity for smoke runs")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--out", default="dse-out",
                        help="output directory (default: dse-out)")
    parser.add_argument("--resume", action="store_true",
                        help="continue from <out>/trials.jsonl")
    parser.add_argument("--markdown", action="store_true",
                        help="also print the markdown report to stdout")


def run_dse_command(ns: argparse.Namespace) -> int:
    if bool(ns.preset) == bool(ns.space):
        print("dse: exactly one of --preset or --space is required",
              file=sys.stderr)
        return 2
    try:
        if ns.preset:
            preset = get_preset(ns.preset)
            space = space_from_dict(preset["space"])
        else:
            preset = {}
            space = space_from_file(ns.space)
    except (MachineError, OSError) as exc:
        print(f"dse: {exc}", file=sys.stderr)
        return 2

    suite = ns.suite or preset.get("suite", "table3")
    strategy_name = ns.strategy or preset.get("strategy", "grid")
    trials = ns.trials if ns.trials is not None else preset.get("trials")
    iterations = ns.iterations if ns.iterations is not None \
        else (60 if ns.quick else 300)
    max_kernels = ns.kernels if ns.kernels is not None \
        else (2 if ns.quick else None)
    workload = WorkloadSpec(suite=suite, max_kernels=max_kernels,
                            n_loops=(2 if ns.quick else 4), seed=ns.seed)

    strategy = make_strategy(strategy_name, space, fidelity=iterations,
                             n_trials=trials, seed=ns.seed)
    out = Path(ns.out)
    out.mkdir(parents=True, exist_ok=True)
    engine = SweepEngine(
        space, strategy,
        base_arch=ArchConfig.paper_default(),
        base_sched=SchedulerConfig(),
        workload=workload, seed=ns.seed, jobs=ns.jobs,
        checkpoint=out / "trials.jsonl", resume=ns.resume)

    start = time.time()
    try:
        outcome = engine.run()
    except (MachineError, SweepInterrupted) as exc:
        print(f"dse: {exc}", file=sys.stderr)
        return 1
    report = SweepReport.build(space, strategy_name, ns.seed,
                               outcome.results)
    write_report_json(report, out / "report.json")
    (out / "report.md").write_text(report.render_markdown(),
                                   encoding="utf-8")

    frontier = report.pareto()
    print(f"dse: {outcome.summary()}")
    print(f"dse: space size {space.size}, objectives "
          f"{', '.join(f'{d} {n}' for n, d in report.objectives)}")
    print(f"dse: Pareto frontier ({len(frontier)} points):")
    for r in frontier:
        print(f"  {json.dumps(r.params_dict)}  "
              f"mean_speedup={r.mean_speedup:.3f}  "
              f"fidelity={r.fidelity}")
    best = report.best_configs()
    if best:
        print(f"dse: best config per kernel:")
        for kernel, info in best.items():
            print(f"  {kernel}: speedup {info['speedup']:.3f} at "
                  f"{json.dumps(info['params'])}")
    if ns.markdown:
        print()
        print(report.render_markdown(), end="")
    print(f"[dse: {time.time() - start:.1f}s -> {out}/report.json]",
          file=sys.stderr)
    return 0
