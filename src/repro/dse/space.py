"""Declarative parameter spaces for design-space exploration.

A :class:`ParameterSpace` is an ordered tuple of :class:`Dimension`\\ s,
each naming one tunable in a dotted namespace and the values it may
take:

* ``arch.<field>``     — any :class:`~repro.config.ArchConfig` field
  (``ncore``, ``reg_comm_latency``, ``spawn_overhead``, …);
* ``sched.<field>``    — any :class:`~repro.config.SchedulerConfig`
  field (``p_max``, the TMS ``(II, C_delay)`` pruning bounds
  ``max_ii_factor`` / ``max_candidates``, ``speculation``, …);
* ``workload.<field>`` — any :class:`~repro.workloads.generator.
  LoopShape` field of the synthetic suite (``spec_probability`` — the
  knob behind the paper's misspeculation probability ``P_M`` —
  ``n_instr``, ``n_mem_recurrences``, …) plus ``workload.n_loops``.

Dimension names are validated against the target dataclasses at
construction (via :func:`repro.config.coerce_field_value`), so a typo
fails when the space is built, not after an hour of sweeping.  Spaces
parse from plain dicts — and therefore from TOML or JSON files (see
:func:`space_from_file`) — where each value is either an explicit
choice list, ``{"min", "max", "steps"}`` (inclusive linspace) or
``{"min", "max", "step"}`` (inclusive integer range)::

    [space]
    "arch.ncore" = [2, 4, 8]
    "arch.reg_comm_latency" = {min = 1, max = 7, step = 2}
    "sched.p_max" = {min = 0.0, max = 0.2, steps = 5}

Point enumeration (:meth:`ParameterSpace.points`) is lexicographic over
the dimensions in declaration order, and :meth:`ParameterSpace.point_at`
decodes a single mixed-radix index without materialising the grid, so
random strategies can sample spaces far too large to enumerate.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from ..config import ArchConfig, SchedulerConfig, coerce_field_value
from ..errors import MachineError
from ..workloads.generator import LoopShape

__all__ = ["Dimension", "ParameterSpace", "space_from_dict",
           "space_from_file"]

#: dimension namespace -> dataclass its fields are validated against
_NAMESPACES: dict[str, type] = {
    "arch": ArchConfig,
    "sched": SchedulerConfig,
    "workload": LoopShape,
}

#: workload dimensions that are population-level, not LoopShape fields
_WORKLOAD_EXTRA = ("n_loops",)


def _validate_value(name: str, value: Any) -> Any:
    """Coerce one dimension value against its namespace dataclass."""
    namespace, _, field = name.partition(".")
    if namespace not in _NAMESPACES or not field:
        raise MachineError(
            f"dimension {name!r} must be '<namespace>.<field>' with "
            f"namespace in {sorted(_NAMESPACES)}")
    if namespace == "workload" and field in _WORKLOAD_EXTRA:
        return coerce_field_value(_PopulationKnobs, field, value)
    return coerce_field_value(_NAMESPACES[namespace], field, value)


@dataclass(frozen=True)
class _PopulationKnobs:
    """Typed home for workload dimensions that sit outside LoopShape."""

    n_loops: int = 4


@dataclass(frozen=True)
class Dimension:
    """One tunable: a dotted name and the ordered values it may take."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise MachineError(f"dimension {self.name!r} has no values")
        coerced = tuple(_validate_value(self.name, v) for v in self.values)
        if len(set(map(repr, coerced))) != len(coerced):
            raise MachineError(
                f"dimension {self.name!r} has duplicate values: "
                f"{self.values}")
        object.__setattr__(self, "values", coerced)

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class ParameterSpace:
    """An ordered, finite cartesian product of :class:`Dimension`\\ s."""

    dimensions: tuple[Dimension, ...]

    def __post_init__(self) -> None:
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise MachineError(f"duplicate dimension names in {names}")

    @property
    def size(self) -> int:
        """Number of points in the full grid."""
        return math.prod(len(d) for d in self.dimensions) \
            if self.dimensions else 1

    def point_at(self, index: int) -> dict[str, Any]:
        """Decode grid point ``index`` (mixed radix, last dimension
        fastest — the same order :meth:`points` enumerates)."""
        if not 0 <= index < self.size:
            raise IndexError(
                f"point index {index} out of range [0, {self.size})")
        assignment: dict[str, Any] = {}
        for dim in reversed(self.dimensions):
            index, digit = divmod(index, len(dim))
            assignment[dim.name] = dim.values[digit]
        return {d.name: assignment[d.name] for d in self.dimensions}

    def points(self) -> Iterator[dict[str, Any]]:
        """Every grid point, in deterministic lexicographic order."""
        for index in range(self.size):
            yield self.point_at(index)

    def to_dict(self) -> dict[str, list[Any]]:
        """Plain-dict form (choice lists only; ranges are pre-expanded)."""
        return {d.name: list(d.values) for d in self.dimensions}


def _expand_values(name: str, spec: Any) -> tuple[Any, ...]:
    """One dimension's value spec -> explicit tuple of choices."""
    if isinstance(spec, (list, tuple)):
        return tuple(spec)
    if isinstance(spec, Mapping):
        keys = set(spec)
        if keys == {"min", "max", "steps"}:
            lo, hi, steps = spec["min"], spec["max"], spec["steps"]
            if steps < 2:
                raise MachineError(
                    f"dimension {name!r}: steps must be >= 2, got {steps}")
            return tuple(
                round(lo + (hi - lo) * i / (steps - 1), 12)
                for i in range(steps))
        if keys == {"min", "max", "step"}:
            lo, hi, step = spec["min"], spec["max"], spec["step"]
            if step < 1 or int(step) != step:
                raise MachineError(
                    f"dimension {name!r}: step must be a positive int, "
                    f"got {step}")
            return tuple(range(int(lo), int(hi) + 1, int(step)))
        if keys == {"choices"}:
            return tuple(spec["choices"])
        raise MachineError(
            f"dimension {name!r}: expected a list, "
            f"{{min,max,steps}}, {{min,max,step}} or {{choices}}, "
            f"got keys {sorted(keys)}")
    raise MachineError(
        f"dimension {name!r}: expected a list or mapping, got "
        f"{type(spec).__name__}")


def space_from_dict(spec: Mapping[str, Any]) -> ParameterSpace:
    """Build a space from ``{dotted-name: value-spec}`` (see module doc)."""
    return ParameterSpace(tuple(
        Dimension(name, _expand_values(name, values))
        for name, values in spec.items()))


def space_from_file(path: str | os.PathLike) -> ParameterSpace:
    """Load a space from a TOML or JSON file.

    The file holds either a top-level ``[space]`` table (TOML) / a
    ``"space"`` object (JSON), or the dimension mapping directly.
    """
    text = open(path, "rb").read()
    if str(path).endswith(".toml"):
        import tomllib
        data = tomllib.loads(text.decode("utf-8"))
    else:
        data = json.loads(text.decode("utf-8"))
    if not isinstance(data, Mapping):
        raise MachineError(f"space file {path} must hold a mapping")
    return space_from_dict(data.get("space", data))
