"""Loop intermediate representation.

A :class:`~repro.ir.loop.Loop` is a straight-line innermost loop body over a
small register machine with arrays — the shape GCC's modulo scheduler accepts
(single basic block, if-converted).  Instructions read *operands* (virtual
registers, possibly from earlier iterations, or immediates) and optionally
access memory through affine or indirect array references.

The package also contains a reference sequential interpreter
(:mod:`repro.ir.interp`) used to check that modulo-scheduled execution
preserves the loop's semantics, and a small textual DSL
(:mod:`repro.ir.dsl`) used by the examples and the hand-built DOACROSS
workloads.
"""

from .opcode import FUClass, Opcode
from .operand import AffineIndex, Imm, IndirectIndex, MemRef, Operand, Reg
from .instruction import AliasHint, Instruction
from .loop import Loop
from .builder import LoopBuilder
from .dsl import parse_loop
from .validate import validate_loop
from .interp import ExecutionResult, SequentialInterpreter, run_sequential
from .unroll import check_unroll_equivalence, unroll_loop
from .serialize import dumps_loop, loads_loop, loop_from_dict, loop_to_dict

__all__ = [
    "AffineIndex",
    "AliasHint",
    "ExecutionResult",
    "FUClass",
    "Imm",
    "IndirectIndex",
    "Instruction",
    "Loop",
    "LoopBuilder",
    "MemRef",
    "Opcode",
    "Operand",
    "Reg",
    "SequentialInterpreter",
    "check_unroll_equivalence",
    "dumps_loop",
    "loads_loop",
    "loop_from_dict",
    "loop_to_dict",
    "parse_loop",
    "run_sequential",
    "unroll_loop",
    "validate_loop",
]
