"""JSON (de)serialisation for loops and schedules.

Lets users persist compiled artefacts — a loop written with the builder, a
schedule that took a long search to find — and reload them in another
session.  The format is a plain JSON document, stable across versions of
this library (``"format"`` is bumped on breaking changes).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import IRError
from .instruction import AliasHint, Instruction
from .loop import Loop
from .opcode import Opcode
from .operand import AffineIndex, Imm, IndirectIndex, MemRef, Reg

__all__ = ["loop_to_dict", "loop_from_dict", "dumps_loop", "loads_loop",
           "schedule_to_dict", "schedule_from_dict"]

_FORMAT = 1


def _operand_to_dict(op) -> dict:
    if isinstance(op, Reg):
        return {"reg": op.name, "back": op.back}
    return {"imm": op.value}


def _operand_from_dict(d: dict):
    if "reg" in d:
        return Reg(d["reg"], back=d.get("back", 0))
    return Imm(d["imm"])


def _memref_to_dict(mem: MemRef) -> dict:
    if mem.is_affine:
        return {"array": mem.array, "coeff": mem.index.coeff,
                "offset": mem.index.offset}
    return {"array": mem.array, "index_reg": _operand_to_dict(mem.index.reg)}


def _memref_from_dict(d: dict) -> MemRef:
    if "index_reg" in d:
        return MemRef(d["array"], IndirectIndex(_operand_from_dict(d["index_reg"])))
    return MemRef(d["array"], AffineIndex(d.get("coeff", 1), d.get("offset", 0)))


def loop_to_dict(loop: Loop) -> dict:
    """Serialise ``loop`` to a JSON-able dict."""
    return {
        "format": _FORMAT,
        "name": loop.name,
        "coverage": loop.coverage,
        "live_ins": dict(loop.live_ins),
        "arrays": dict(loop.arrays),
        "body": [
            {
                "name": ins.name,
                "opcode": ins.opcode.value,
                "dest": ins.dest,
                "srcs": [_operand_to_dict(s) for s in ins.srcs],
                "mem": _memref_to_dict(ins.mem) if ins.mem else None,
                "alias_hints": [
                    {"producer": h.producer, "distance": h.distance,
                     "probability": h.probability}
                    for h in ins.alias_hints
                ],
            }
            for ins in loop.body
        ],
    }


def loop_from_dict(data: dict) -> Loop:
    """Rebuild a loop from :func:`loop_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise IRError(f"unsupported loop format {data.get('format')!r}")
    body = []
    for entry in data["body"]:
        body.append(Instruction(
            name=entry["name"],
            opcode=Opcode(entry["opcode"]),
            dest=entry.get("dest"),
            srcs=tuple(_operand_from_dict(s) for s in entry.get("srcs", [])),
            mem=_memref_from_dict(entry["mem"]) if entry.get("mem") else None,
            alias_hints=tuple(
                AliasHint(h["producer"], h["distance"], h["probability"])
                for h in entry.get("alias_hints", [])),
        ))
    return Loop(
        name=data["name"],
        body=tuple(body),
        live_ins=data.get("live_ins", {}),
        arrays=data.get("arrays", {}),
        coverage=data.get("coverage"),
    )


def dumps_loop(loop: Loop, **json_kwargs: Any) -> str:
    return json.dumps(loop_to_dict(loop), **json_kwargs)


def loads_loop(text: str) -> Loop:
    return loop_from_dict(json.loads(text))


def schedule_to_dict(schedule) -> dict:
    """Serialise a schedule (slots + metadata; the DDG is reconstructed
    from the loop on load)."""
    return {
        "format": _FORMAT,
        "loop": loop_to_dict(schedule.ddg.loop) if schedule.ddg.loop else None,
        "ddg_name": schedule.ddg.name,
        "ii": schedule.ii,
        "algorithm": schedule.algorithm,
        "slots": dict(schedule.slots),
        "meta": {k: v for k, v in schedule.meta.items()
                 if isinstance(v, (int, float, str, bool, type(None)))},
    }


def schedule_from_dict(data: dict, *, latency=None):
    """Rebuild a schedule.  Requires the loop to have been embedded (i.e.
    the schedule was built from concrete IR, not a synthetic DDG)."""
    from ..graph.ddg import build_ddg
    from ..machine.latency import LatencyModel
    from ..sched.schedule import Schedule

    if data.get("format") != _FORMAT:
        raise IRError(f"unsupported schedule format {data.get('format')!r}")
    if not data.get("loop"):
        raise IRError(
            "schedule was serialised without its loop; cannot reconstruct "
            "the DDG")
    loop = loop_from_dict(data["loop"])
    ddg = build_ddg(loop, latency or LatencyModel())
    return Schedule(ddg, data["ii"], data["slots"],
                    algorithm=data.get("algorithm", "unknown"),
                    meta=dict(data.get("meta", {})))
