"""Static checks on loop IR.

The schedulers and the interpreter both assume a well-formed loop:

* instruction names are unique;
* each register is defined at most once per iteration (SSA-per-iteration);
* every register read is reachable — it has a definition in the body or a
  live-in value (the induction variable ``i`` is implicitly available);
* memory references name declared arrays, affine subscripts stay in bounds
  for a probe iteration range;
* alias hints refer to existing store instructions.
"""

from __future__ import annotations

from ..errors import IRError
from .loop import INDUCTION_VAR, Loop
from .opcode import Opcode

__all__ = ["validate_loop"]


def validate_loop(loop: Loop, *, probe_iterations: int = 4) -> None:
    """Raise :class:`~repro.errors.IRError` if ``loop`` is malformed."""
    seen: set[str] = set()
    for ins in loop.body:
        if ins.name in seen:
            raise IRError(f"loop {loop.name!r}: duplicate instruction name {ins.name!r}")
        seen.add(ins.name)

    definers = loop.definers()  # raises on double definition

    if INDUCTION_VAR in definers:
        raise IRError(
            f"loop {loop.name!r}: the induction variable {INDUCTION_VAR!r} "
            f"cannot be redefined in the body")
    if INDUCTION_VAR in loop.live_ins:
        raise IRError(
            f"loop {loop.name!r}: the induction variable {INDUCTION_VAR!r} "
            f"cannot be a live-in")

    available = set(definers) | set(loop.live_ins) | {INDUCTION_VAR}
    store_names = {ins.name for ins in loop.stores}

    for ins in loop.body:
        for reg in ins.reg_reads:
            if reg.name not in available:
                raise IRError(
                    f"loop {loop.name!r}: instruction {ins.name!r} reads undefined "
                    f"register {reg.name!r} (no definition and no live-in)")
            if reg.back > 0 and reg.name not in definers:
                raise IRError(
                    f"loop {loop.name!r}: {ins.name!r} reads {reg} but "
                    f"{reg.name!r} is never redefined in the loop, so a "
                    f"back-reference is meaningless")
            if reg.name == INDUCTION_VAR and reg.back > 0:
                raise IRError(
                    f"loop {loop.name!r}: {ins.name!r} uses a back-reference on "
                    f"the induction variable")
        if ins.mem is not None:
            _check_memref(loop, ins, probe_iterations)
        for hint in ins.alias_hints:
            if hint.producer not in store_names:
                raise IRError(
                    f"loop {loop.name!r}: {ins.name!r} alias hint names "
                    f"{hint.producer!r}, which is not a store in this loop")
        if ins.opcode in (Opcode.SEND, Opcode.RECV, Opcode.SPAWN):
            raise IRError(
                f"loop {loop.name!r}: {ins.name!r} uses the post-pass pseudo-op "
                f"{ins.opcode.name}; these are inserted by the compiler, not "
                f"written in source loops")


def _check_memref(loop: Loop, ins, probe_iterations: int) -> None:
    mem = ins.mem
    if mem.array not in loop.arrays:
        raise IRError(
            f"loop {loop.name!r}: {ins.name!r} references undeclared array "
            f"{mem.array!r}")
    if mem.is_affine:
        size = loop.arrays[mem.array]
        for i in range(probe_iterations):
            idx = mem.index.at(i)
            if idx < 0:
                raise IRError(
                    f"loop {loop.name!r}: {ins.name!r} index {mem.index} is "
                    f"negative at iteration {i}")
        # the interpreter wraps indices modulo the array size, so large
        # subscripts are legal; a zero-size array is not.
        if size <= 0:
            raise IRError(
                f"loop {loop.name!r}: array {mem.array!r} has non-positive "
                f"size {size}")
