"""Fluent builder for constructing loops programmatically.

Example
-------
>>> from repro.ir import LoopBuilder, Reg, Imm
>>> b = LoopBuilder("axpy", arrays={"X": 64, "Y": 64}, live_ins={"a": 2.0})
>>> b.load("n0", "x", "X", coeff=1)
>>> b.op("n1", "fmul", "t", Reg("x"), Reg("a"))
>>> b.load("n2", "y", "Y")
>>> b.op("n3", "fadd", "r", Reg("t"), Reg("y"))
>>> b.store("n4", "Y", Reg("r"))
>>> loop = b.build()
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

from ..errors import IRError
from .instruction import AliasHint, Instruction
from .loop import Loop
from .opcode import Opcode
from .operand import AffineIndex, Imm, IndirectIndex, MemRef, Operand, Reg
from .validate import validate_loop

__all__ = ["LoopBuilder"]

OperandLike = Union[Operand, str, int, float]


def _coerce(op: OperandLike) -> Operand:
    """Accept ``Reg``/``Imm`` objects, register-name strings (optionally with
    an ``@-k`` back-reference suffix) and bare numbers."""
    if isinstance(op, (Reg, Imm)):
        return op
    if isinstance(op, str):
        if "@-" in op:
            name, _, back = op.partition("@-")
            return Reg(name, back=int(back))
        return Reg(op)
    if isinstance(op, (int, float)):
        return Imm(float(op))
    raise IRError(f"cannot interpret {op!r} as an operand")


class LoopBuilder:
    """Incrementally assemble a :class:`~repro.ir.loop.Loop`."""

    def __init__(
        self,
        name: str,
        *,
        arrays: Mapping[str, int] | None = None,
        live_ins: Mapping[str, float] | None = None,
        coverage: float | None = None,
    ) -> None:
        self.name = name
        self.arrays: dict[str, int] = dict(arrays or {})
        self.live_ins: dict[str, float] = dict(live_ins or {})
        self.coverage = coverage
        self._body: list[Instruction] = []
        self._auto = 0

    # -- low-level -------------------------------------------------------

    def add(self, instruction: Instruction) -> Instruction:
        self._body.append(instruction)
        return instruction

    def _next_name(self) -> str:
        name = f"n{self._auto}"
        self._auto += 1
        return name

    # -- instruction helpers ----------------------------------------------

    def op(
        self,
        name: str | None,
        opcode: Union[Opcode, str],
        dest: str,
        *srcs: OperandLike,
    ) -> Instruction:
        """Append an arithmetic/logic/move instruction."""
        if isinstance(opcode, str):
            opcode = Opcode(opcode)
        return self.add(Instruction(
            name=name or self._next_name(),
            opcode=opcode,
            dest=dest,
            srcs=tuple(_coerce(s) for s in srcs),
        ))

    def load(
        self,
        name: str | None,
        dest: str,
        array: str,
        *,
        coeff: int = 1,
        offset: int = 0,
        index_reg: OperandLike | None = None,
        alias_hints: Iterable[AliasHint] = (),
    ) -> Instruction:
        """Append a load of ``array`` at an affine or indirect index."""
        index = (IndirectIndex(_coerce_reg(index_reg)) if index_reg is not None
                 else AffineIndex(coeff, offset))
        return self.add(Instruction(
            name=name or self._next_name(),
            opcode=Opcode.LOAD,
            dest=dest,
            mem=MemRef(array, index),
            alias_hints=tuple(alias_hints),
        ))

    def store(
        self,
        name: str | None,
        array: str,
        value: OperandLike,
        *,
        coeff: int = 1,
        offset: int = 0,
        index_reg: OperandLike | None = None,
        alias_hints: Iterable[AliasHint] = (),
    ) -> Instruction:
        """Append a store of ``value`` to ``array``."""
        index = (IndirectIndex(_coerce_reg(index_reg)) if index_reg is not None
                 else AffineIndex(coeff, offset))
        return self.add(Instruction(
            name=name or self._next_name(),
            opcode=Opcode.STORE,
            mem=MemRef(array, index),
            srcs=(_coerce(value),),
            alias_hints=tuple(alias_hints),
        ))

    # -- finish ------------------------------------------------------------

    def build(self, *, validate: bool = True) -> Loop:
        loop = Loop(
            name=self.name,
            body=tuple(self._body),
            live_ins=self.live_ins,
            arrays=self.arrays,
            coverage=self.coverage,
        )
        if validate:
            validate_loop(loop)
        return loop


def _coerce_reg(op: OperandLike) -> Reg:
    coerced = _coerce(op)
    if not isinstance(coerced, Reg):
        raise IRError(f"index register must be a register, got {op!r}")
    return coerced
