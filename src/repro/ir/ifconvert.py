"""If-conversion: lowering guarded regions to straight-line IR.

The paper (Section 5): "In GCC 4.1.1, loops with single basic blocks and
those whose branches can be converted by compare and move instructions are
considered as candidates for modulo scheduling."  This module provides the
conversion: loops written with *guarded regions* — hammocks whose body
executes only when a condition register is non-zero — are lowered to the
single-basic-block IR the schedulers require:

* a guarded **definition** ``d = op(...)`` becomes the unconditional
  computation into a shadow register followed by
  ``d = select(cond, shadow, d_old)`` where ``d_old`` is the value ``d``
  would otherwise keep (its previous definition, or its own value from
  the last iteration);
* a guarded **store** ``A[idx] = v`` becomes the read-modify-write
  ``old = A[idx]; m = select(cond, v, old); A[idx] = m`` — the classic
  conversion for machines without predicated stores.

``GuardedLoopBuilder`` is the front end; ``reference_run`` executes the
*branchy* semantics directly so tests can prove the lowering equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..errors import IRError
from .builder import LoopBuilder, OperandLike, _coerce
from .instruction import Instruction
from .interp import SequentialInterpreter, _BINOPS, _UNOPS, _default_array
from .loop import INDUCTION_VAR, Loop
from .opcode import Opcode
from .operand import AffineIndex, Imm, IndirectIndex, Reg

__all__ = ["GuardedLoopBuilder", "GuardedOp", "GuardedStore"]


@dataclass(frozen=True)
class GuardedOp:
    """An arithmetic definition guarded by ``cond``."""

    cond: str | None
    name: str
    opcode: Opcode
    dest: str
    srcs: tuple


@dataclass(frozen=True)
class GuardedStore:
    """A store guarded by ``cond`` (affine index only, for clarity)."""

    cond: str | None
    name: str
    array: str
    value: object
    coeff: int
    offset: int


Region = Union[GuardedOp, GuardedStore]


class GuardedLoopBuilder:
    """Front end for loops with conditional hammocks."""

    def __init__(self, name: str, *, arrays=None, live_ins=None) -> None:
        self.name = name
        self.arrays = dict(arrays or {})
        self.live_ins = dict(live_ins or {})
        self._items: list[Region] = []
        self._guard: str | None = None
        self._auto = 0

    # -- region control ---------------------------------------------------

    class _Guard:
        def __init__(self, outer: "GuardedLoopBuilder", cond: str) -> None:
            self.outer = outer
            self.cond = cond

        def __enter__(self):
            if self.outer._guard is not None:
                raise IRError("nested guards are not supported")
            self.outer._guard = self.cond
            return self.outer

        def __exit__(self, *exc):
            self.outer._guard = None
            return False

    def when(self, cond_reg: str) -> "GuardedLoopBuilder._Guard":
        """Open a guarded region: the body executes iff ``cond_reg != 0``."""
        return self._Guard(self, cond_reg)

    # -- statements ---------------------------------------------------------

    def _label(self, name: str | None) -> str:
        if name is not None:
            return name
        self._auto += 1
        return f"g{self._auto}"

    def op(self, name: str | None, opcode: Union[Opcode, str], dest: str,
           *srcs: OperandLike) -> None:
        if isinstance(opcode, str):
            opcode = Opcode(opcode)
        self._items.append(GuardedOp(
            cond=self._guard, name=self._label(name), opcode=opcode,
            dest=dest, srcs=tuple(_coerce(s) for s in srcs)))

    def store(self, name: str | None, array: str, value: OperandLike,
              *, coeff: int = 1, offset: int = 0) -> None:
        self._items.append(GuardedStore(
            cond=self._guard, name=self._label(name), array=array,
            value=_coerce(value), coeff=coeff, offset=offset))

    def load(self, name: str | None, dest: str, array: str,
             *, coeff: int = 1, offset: int = 0) -> None:
        if self._guard is not None:
            raise IRError(
                "guarded loads are unsupported (hoist them: a load is "
                "side-effect free, so execute it unconditionally)")
        # represent as an unguarded op via a pseudo opcode path: use the
        # plain builder at lowering time.
        self._items.append(GuardedOp(
            cond=None, name=self._label(name), opcode=Opcode.LOAD,
            dest=dest, srcs=(AffineIndex(coeff, offset), array)))

    # -- lowering ------------------------------------------------------------

    def lower(self) -> Loop:
        """Emit the if-converted single-basic-block loop."""
        b = LoopBuilder(self.name, arrays=self.arrays, live_ins=self.live_ins)
        defined: set[str] = set()
        for item in self._items:
            if isinstance(item, GuardedOp) and item.opcode is Opcode.LOAD:
                index, array = item.srcs
                b.load(item.name, item.dest, array,
                       coeff=index.coeff, offset=index.offset)
                defined.add(item.dest)
            elif isinstance(item, GuardedOp):
                if item.cond is None:
                    b.op(item.name, item.opcode, item.dest, *item.srcs)
                else:
                    shadow = f"{item.dest}__sh_{item.name}"
                    b.op(f"{item.name}_c", item.opcode, shadow, *item.srcs)
                    # d_old: the previous definition this iteration, or the
                    # loop-carried value (which the select's else arm reads
                    # naturally as d's prior value)
                    b.op(item.name, Opcode.SELECT, item.dest,
                         Reg(item.cond), Reg(shadow), Reg(item.dest))
                    if item.dest not in defined and \
                            item.dest not in self.live_ins:
                        self.live_ins.setdefault(item.dest, 0.0)
                        b.live_ins.setdefault(item.dest, 0.0)
                defined.add(item.dest)
            else:  # GuardedStore
                if item.cond is None:
                    b.store(item.name, item.array, item.value,
                            coeff=item.coeff, offset=item.offset)
                else:
                    old = f"__old_{item.name}"
                    merged = f"__m_{item.name}"
                    b.load(f"{item.name}_l", old, item.array,
                           coeff=item.coeff, offset=item.offset)
                    b.op(f"{item.name}_s", Opcode.SELECT, merged,
                         Reg(item.cond), item.value, Reg(old))
                    b.store(item.name, item.array, Reg(merged),
                            coeff=item.coeff, offset=item.offset)
        return b.build()

    # -- branchy reference semantics ---------------------------------------

    def reference_run(self, iterations: int,
                      array_init: dict[str, np.ndarray] | None = None
                      ) -> tuple[dict[str, float], dict[str, np.ndarray]]:
        """Execute the guarded (branchy) semantics directly."""
        regs: dict[str, float] = dict(self.live_ins)
        arrays = {}
        for name, size in self.arrays.items():
            if array_init is not None and name in array_init:
                arrays[name] = np.asarray(array_init[name],
                                          dtype=np.float64).copy()
            else:
                arrays[name] = _default_array(name, size)

        def read(op, i):
            if isinstance(op, Imm):
                return float(op.value)
            if op.name == INDUCTION_VAR:
                return float(i)
            return regs.get(op.name, 0.0)

        for i in range(iterations):
            for item in self._items:
                if isinstance(item, GuardedOp) and item.opcode is Opcode.LOAD:
                    index, array = item.srcs
                    size = arrays[array].shape[0]
                    regs[item.dest] = float(
                        arrays[array][index.at(i) % size])
                    continue
                taken = item.cond is None or regs.get(item.cond, 0.0) != 0.0
                if not taken:
                    continue
                if isinstance(item, GuardedOp):
                    op = item.opcode
                    vals = [read(s, i) for s in item.srcs]
                    if op in _BINOPS:
                        regs[item.dest] = _BINOPS[op](*vals)
                    elif op in _UNOPS:
                        regs[item.dest] = _UNOPS[op](vals[0])
                    elif op is Opcode.SELECT:
                        regs[item.dest] = vals[1] if vals[0] != 0.0 else vals[2]
                    else:
                        raise IRError(f"reference_run cannot execute {op}")
                else:
                    size = arrays[item.array].shape[0]
                    addr = (item.coeff * i + item.offset) % size
                    arrays[item.array][addr] = read(item.value, i)
        return regs, arrays
