"""Reference sequential interpreter for loop IR.

Executes a loop exactly as written, one iteration after another.  It is the
semantic ground truth for the library: the software-pipelining execution
checker (:mod:`repro.sched.pipeline_exec`) replays a modulo schedule and must
produce the same final register/array state, and the profiler
(:mod:`repro.workloads.memprofile`) uses the interpreter's address traces to
measure memory-dependence probabilities the way the paper profiles with the
train inputs.

Array subscripts wrap modulo the array size so synthetic loops with long trip
counts remain in bounds.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import IRError, SimulationError
from .instruction import Instruction
from .loop import INDUCTION_VAR, Loop
from .opcode import Opcode
from .operand import Imm, Reg

__all__ = ["SequentialInterpreter", "ExecutionResult", "run_sequential"]


@dataclass
class ExecutionResult:
    """Final machine state plus optional traces after ``iterations`` runs."""

    iterations: int
    registers: dict[str, float]
    arrays: dict[str, np.ndarray]
    #: per-instruction list of (iteration, address) for memory operations —
    #: populated only when tracing is enabled.
    address_trace: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    #: per-instruction list of computed values (tracing only).
    value_trace: dict[str, list[float]] = field(default_factory=dict)

    def state_fingerprint(self) -> tuple:
        """Hashable summary of the final state, for equivalence checks."""
        regs = tuple(sorted((k, round(v, 9)) for k, v in self.registers.items()))
        arrays = tuple(
            (name, tuple(np.round(arr, 9).tolist()))
            for name, arr in sorted(self.arrays.items())
        )
        return (regs, arrays)


_BINOPS: dict[Opcode, Callable[[float, float], float]] = {
    Opcode.IADD: lambda a, b: float(int(a) + int(b)),
    Opcode.ISUB: lambda a, b: float(int(a) - int(b)),
    Opcode.IMUL: lambda a, b: float(int(a) * int(b)),
    Opcode.IDIV: lambda a, b: float(int(a) // int(b)) if int(b) != 0 else 0.0,
    Opcode.AND: lambda a, b: float(int(a) & int(b)),
    Opcode.OR: lambda a, b: float(int(a) | int(b)),
    Opcode.XOR: lambda a, b: float(int(a) ^ int(b)),
    Opcode.SHL: lambda a, b: float(int(a) << (int(b) & 63)),
    Opcode.SHR: lambda a, b: float(int(a) >> (int(b) & 63)),
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b if b != 0.0 else 0.0,
    Opcode.FMIN: min,
    Opcode.FMAX: max,
    Opcode.CMPLT: lambda a, b: 1.0 if a < b else 0.0,
    Opcode.CMPLE: lambda a, b: 1.0 if a <= b else 0.0,
    Opcode.CMPEQ: lambda a, b: 1.0 if a == b else 0.0,
    Opcode.CMPNE: lambda a, b: 1.0 if a != b else 0.0,
}

_UNOPS: dict[Opcode, Callable[[float], float]] = {
    Opcode.FNEG: lambda a: -a,
    Opcode.FABS: abs,
    Opcode.FSQRT: lambda a: math.sqrt(a) if a >= 0.0 else 0.0,
    Opcode.MOV: lambda a: a,
    Opcode.COPY: lambda a: a,
}


class SequentialInterpreter:
    """Stateful interpreter over a :class:`~repro.ir.loop.Loop`.

    Register semantics: each register keeps a history of definitions;
    ``Reg(name, back=k)`` reads the value ``k`` definitions before the most
    recent one.  Registers read before any definition yield their live-in
    value (default 0.0).
    """

    #: maximum history depth retained per register.
    HISTORY_DEPTH = 64

    def __init__(self, loop: Loop, *, trace: bool = False,
                 array_init: dict[str, np.ndarray] | None = None) -> None:
        self.loop = loop
        self.trace = trace
        self._hist: dict[str, list[float]] = {}
        for reg, value in loop.live_ins.items():
            self._hist[reg] = [float(value)]
        self.arrays: dict[str, np.ndarray] = {}
        for name, size in loop.arrays.items():
            if array_init is not None and name in array_init:
                arr = np.asarray(array_init[name], dtype=np.float64).copy()
                if arr.shape != (size,):
                    raise IRError(
                        f"array initialiser for {name!r} has shape {arr.shape}, "
                        f"expected ({size},)")
            else:
                # deterministic, loop-independent pseudo-data
                arr = _default_array(name, size)
            self.arrays[name] = arr
        self.address_trace: dict[str, list[tuple[int, int]]] = {}
        self.value_trace: dict[str, list[float]] = {}
        self.iteration = 0

    # -- operand / register access ---------------------------------------

    def _read(self, reg: Reg, iteration: int) -> float:
        if reg.name == INDUCTION_VAR:
            if reg.back:
                raise IRError("induction variable cannot be back-referenced")
            return float(iteration)
        hist = self._hist.get(reg.name)
        if not hist:
            return 0.0
        idx = len(hist) - 1 - reg.back
        if idx < 0:
            # before the first definition: oldest known value (the live-in)
            return hist[0]
        return hist[idx]

    def _write(self, reg_name: str, value: float) -> None:
        hist = self._hist.setdefault(reg_name, [])
        hist.append(float(value))
        if len(hist) > self.HISTORY_DEPTH:
            del hist[0]

    def _operand(self, op, iteration: int) -> float:
        if isinstance(op, Imm):
            return float(op.value)
        return self._read(op, iteration)

    def _address(self, ins: Instruction, iteration: int) -> int:
        mem = ins.mem
        assert mem is not None
        size = self.arrays[mem.array].shape[0]
        if mem.is_affine:
            raw = mem.index.at(iteration)
        else:
            raw = int(self._read(mem.index.reg, iteration))
        return raw % size

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Execute one full iteration of the loop body."""
        i = self.iteration
        for ins in self.loop.body:
            value = self._execute(ins, i)
            if self.trace and value is not None:
                self.value_trace.setdefault(ins.name, []).append(value)
        self.iteration += 1

    def _execute(self, ins: Instruction, i: int) -> float | None:
        op = ins.opcode
        if op.is_load:
            addr = self._address(ins, i)
            if self.trace:
                self.address_trace.setdefault(ins.name, []).append((i, addr))
            value = float(self.arrays[ins.mem.array][addr])
            self._write(ins.dest, value)
            return value
        if op.is_store:
            addr = self._address(ins, i)
            if self.trace:
                self.address_trace.setdefault(ins.name, []).append((i, addr))
            value = self._operand(ins.srcs[0], i)
            self.arrays[ins.mem.array][addr] = value
            return value
        if op in _BINOPS:
            a = self._operand(ins.srcs[0], i)
            b = self._operand(ins.srcs[1], i)
            value = _BINOPS[op](a, b)
        elif op in _UNOPS:
            value = _UNOPS[op](self._operand(ins.srcs[0], i))
        elif op is Opcode.SELECT:
            cond = self._operand(ins.srcs[0], i)
            value = (self._operand(ins.srcs[1], i) if cond != 0.0
                     else self._operand(ins.srcs[2], i))
        elif op is Opcode.FMA:
            value = (self._operand(ins.srcs[0], i) * self._operand(ins.srcs[1], i)
                     + self._operand(ins.srcs[2], i))
        elif op is Opcode.NOP:
            return None
        else:
            raise SimulationError(f"interpreter cannot execute {op.name}")
        if ins.dest is not None:
            self._write(ins.dest, value)
        return value

    def run(self, iterations: int) -> ExecutionResult:
        """Execute ``iterations`` iterations and return the final state."""
        if iterations < 0:
            raise SimulationError("iterations must be non-negative")
        for _ in range(iterations):
            self.step()
        registers = {name: hist[-1] for name, hist in self._hist.items() if hist}
        return ExecutionResult(
            iterations=self.iteration,
            registers=registers,
            arrays={k: v.copy() for k, v in self.arrays.items()},
            address_trace=dict(self.address_trace),
            value_trace=dict(self.value_trace),
        )


def run_sequential(loop: Loop, iterations: int, *, trace: bool = False,
                   array_init: dict[str, np.ndarray] | None = None
                   ) -> ExecutionResult:
    """Convenience wrapper: interpret ``loop`` for ``iterations`` iterations."""
    return SequentialInterpreter(loop, trace=trace, array_init=array_init).run(iterations)


def _default_array(name: str, size: int) -> np.ndarray:
    """Deterministic array contents derived from the array's name.

    Uses CRC32 rather than ``hash`` so contents are stable across processes
    (Python string hashing is salted).
    """
    seed = (zlib.crc32(name.encode("utf-8")) % (2**31)) or 1
    rng = np.random.default_rng(seed)
    return rng.uniform(0.5, 1.5, size=size)
