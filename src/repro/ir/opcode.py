"""Instruction set: opcodes, functional-unit classes and default latencies.

The ISA is a small RISC-like register machine sufficient to express the
SPECfp2000-style floating-point loop kernels the paper schedules: integer and
floating arithmetic, loads/stores, copies, compares/selects (for if-converted
bodies) and the SpMT communication pseudo-ops (``SEND``/``RECV``/``SPAWN``)
that the post-pass inserts.

Default latencies are chosen so the machine resembles the paper's cores
(4-wide out-of-order, 3-cycle L1 hits); any latency can be overridden
per-machine via :class:`repro.machine.latency.LatencyModel` — the motivating
example does so to reproduce the paper's exact numbers.
"""

from __future__ import annotations

import enum

__all__ = ["FUClass", "Opcode", "DEFAULT_LATENCY", "OPCODE_FU"]


class FUClass(enum.Enum):
    """Functional-unit classes instructions are issued to."""

    ALU = "alu"          # integer/logic, copies, compares, selects
    FPADD = "fpadd"      # FP add/sub/convert
    FPMUL = "fpmul"      # FP multiply
    FPDIV = "fpdiv"      # FP divide / sqrt (typically non-pipelined)
    MEM = "mem"          # loads and stores
    COMM = "comm"        # SEND/RECV/SPAWN (scalar operand network port)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FUClass.{self.name}"


class Opcode(enum.Enum):
    """All operations the IR supports."""

    # integer / logic
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IDIV = "idiv"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    # floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FNEG = "fneg"
    FABS = "fabs"
    FMIN = "fmin"
    FMAX = "fmax"
    FMA = "fma"
    # data movement
    MOV = "mov"          # reg <- operand (imm or reg)
    COPY = "copy"        # register copy inserted by the post-pass
    # memory
    LOAD = "load"
    STORE = "store"
    # predication support (if-converted branches)
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    SELECT = "select"    # dest = src0 != 0 ? src1 : src2
    # SpMT pseudo-ops (inserted by the post-pass, not user-visible)
    SEND = "send"
    RECV = "recv"
    SPAWN = "spawn"
    NOP = "nop"

    @property
    def fu_class(self) -> FUClass:
        return OPCODE_FU[self]

    @property
    def is_load(self) -> bool:
        return self is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self is Opcode.STORE

    @property
    def is_mem(self) -> bool:
        return self in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_comm(self) -> bool:
        return self in (Opcode.SEND, Opcode.RECV, Opcode.SPAWN)

    @property
    def has_dest(self) -> bool:
        """Whether the opcode writes a register."""
        return self not in (Opcode.STORE, Opcode.SEND, Opcode.SPAWN, Opcode.NOP)

    @property
    def num_srcs(self) -> int | None:
        """Expected operand count, or None when variable."""
        return _NUM_SRCS.get(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


OPCODE_FU: dict[Opcode, FUClass] = {
    Opcode.IADD: FUClass.ALU,
    Opcode.ISUB: FUClass.ALU,
    Opcode.IMUL: FUClass.ALU,
    Opcode.IDIV: FUClass.ALU,
    Opcode.AND: FUClass.ALU,
    Opcode.OR: FUClass.ALU,
    Opcode.XOR: FUClass.ALU,
    Opcode.SHL: FUClass.ALU,
    Opcode.SHR: FUClass.ALU,
    Opcode.FADD: FUClass.FPADD,
    Opcode.FSUB: FUClass.FPADD,
    Opcode.FNEG: FUClass.FPADD,
    Opcode.FABS: FUClass.FPADD,
    Opcode.FMIN: FUClass.FPADD,
    Opcode.FMAX: FUClass.FPADD,
    Opcode.FMUL: FUClass.FPMUL,
    Opcode.FMA: FUClass.FPMUL,
    Opcode.FDIV: FUClass.FPDIV,
    Opcode.FSQRT: FUClass.FPDIV,
    Opcode.MOV: FUClass.ALU,
    Opcode.COPY: FUClass.ALU,
    Opcode.LOAD: FUClass.MEM,
    Opcode.STORE: FUClass.MEM,
    Opcode.CMPLT: FUClass.ALU,
    Opcode.CMPLE: FUClass.ALU,
    Opcode.CMPEQ: FUClass.ALU,
    Opcode.CMPNE: FUClass.ALU,
    Opcode.SELECT: FUClass.ALU,
    Opcode.SEND: FUClass.COMM,
    Opcode.RECV: FUClass.COMM,
    Opcode.SPAWN: FUClass.COMM,
    Opcode.NOP: FUClass.ALU,
}

#: Compile-time default latencies (cycles).  LOAD assumes an L1 hit; the
#: simulator may lengthen individual loads probabilistically.
DEFAULT_LATENCY: dict[Opcode, int] = {
    Opcode.IADD: 1,
    Opcode.ISUB: 1,
    Opcode.IMUL: 3,
    Opcode.IDIV: 8,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.SHL: 1,
    Opcode.SHR: 1,
    Opcode.FADD: 2,
    Opcode.FSUB: 2,
    Opcode.FNEG: 1,
    Opcode.FABS: 1,
    Opcode.FMIN: 2,
    Opcode.FMAX: 2,
    Opcode.FMUL: 4,
    Opcode.FMA: 4,
    Opcode.FDIV: 12,
    Opcode.FSQRT: 16,
    Opcode.MOV: 1,
    Opcode.COPY: 1,
    Opcode.LOAD: 3,
    Opcode.STORE: 1,
    Opcode.CMPLT: 1,
    Opcode.CMPLE: 1,
    Opcode.CMPEQ: 1,
    Opcode.CMPNE: 1,
    Opcode.SELECT: 1,
    Opcode.SEND: 1,
    Opcode.RECV: 1,
    Opcode.SPAWN: 1,
    Opcode.NOP: 1,
}

_NUM_SRCS: dict[Opcode, int] = {
    Opcode.IADD: 2, Opcode.ISUB: 2, Opcode.IMUL: 2, Opcode.IDIV: 2,
    Opcode.AND: 2, Opcode.OR: 2, Opcode.XOR: 2, Opcode.SHL: 2, Opcode.SHR: 2,
    Opcode.FADD: 2, Opcode.FSUB: 2, Opcode.FMUL: 2, Opcode.FDIV: 2,
    Opcode.FMIN: 2, Opcode.FMAX: 2,
    Opcode.FNEG: 1, Opcode.FABS: 1, Opcode.FSQRT: 1,
    Opcode.FMA: 3,
    Opcode.MOV: 1, Opcode.COPY: 1,
    Opcode.LOAD: 0, Opcode.STORE: 1,
    Opcode.CMPLT: 2, Opcode.CMPLE: 2, Opcode.CMPEQ: 2, Opcode.CMPNE: 2,
    Opcode.SELECT: 3,
    Opcode.SEND: 1, Opcode.RECV: 0, Opcode.SPAWN: 0, Opcode.NOP: 0,
}
