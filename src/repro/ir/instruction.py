"""The :class:`Instruction` node of the loop IR."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IRError
from .opcode import Opcode
from .operand import Imm, MemRef, Operand, Reg

__all__ = ["Instruction", "AliasHint"]


@dataclass(frozen=True)
class AliasHint:
    """A declared probabilistic memory dependence.

    ``producer`` names an earlier store instruction whose written location the
    annotated instruction may touch ``distance`` iterations later, with
    probability ``probability`` per iteration.  Hints stand in for the
    profile information the paper gathers with the train inputs; the
    profiler in :mod:`repro.workloads.memprofile` produces the same data by
    measurement.
    """

    producer: str
    distance: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise IRError(f"alias-hint distance must be >= 0, got {self.distance}")
        if not 0.0 <= self.probability <= 1.0:
            raise IRError(
                f"alias-hint probability must be in [0,1], got {self.probability}")


@dataclass(frozen=True)
class Instruction:
    """One operation of a loop body.

    Attributes
    ----------
    name:
        Unique label within the loop (``n0``, ``n1``, ... by convention).
    opcode:
        The operation.
    dest:
        Destination virtual register, or ``None`` for stores and other
        dest-less opcodes.
    srcs:
        Source operands.  For ``STORE`` the single source is the stored
        value; the address lives in ``mem``.
    mem:
        Memory reference for ``LOAD``/``STORE``.
    alias_hints:
        Declared probabilistic memory dependences (see :class:`AliasHint`).
    """

    name: str
    opcode: Opcode
    dest: str | None = None
    srcs: tuple[Operand, ...] = ()
    mem: MemRef | None = None
    alias_hints: tuple[AliasHint, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("instruction name must be non-empty")
        if self.opcode.has_dest and self.dest is None:
            raise IRError(f"{self.name}: {self.opcode.name} requires a destination")
        if not self.opcode.has_dest and self.dest is not None:
            raise IRError(f"{self.name}: {self.opcode.name} cannot have a destination")
        if self.opcode.is_mem and self.mem is None:
            raise IRError(f"{self.name}: {self.opcode.name} requires a memory reference")
        if not self.opcode.is_mem and self.mem is not None:
            raise IRError(f"{self.name}: {self.opcode.name} cannot reference memory")
        expected = self.opcode.num_srcs
        if expected is not None and len(self.srcs) != expected:
            raise IRError(
                f"{self.name}: {self.opcode.name} expects {expected} operand(s), "
                f"got {len(self.srcs)}")
        for s in self.srcs:
            if not isinstance(s, (Reg, Imm)):
                raise IRError(f"{self.name}: bad operand {s!r}")

    @property
    def reg_reads(self) -> tuple[Reg, ...]:
        """Register operands read by this instruction, including indirect
        address registers."""
        regs = [s for s in self.srcs if isinstance(s, Reg)]
        if self.mem is not None and not self.mem.is_affine:
            regs.append(self.mem.index.reg)  # type: ignore[union-attr]
        return tuple(regs)

    def __str__(self) -> str:
        parts: list[str] = []
        if self.dest is not None:
            parts.append(f"{self.dest} =")
        parts.append(self.opcode.value)
        operands = [str(s) for s in self.srcs]
        if self.mem is not None:
            if self.opcode.is_load:
                operands.insert(0, str(self.mem))
            else:
                operands.insert(0, str(self.mem))
        if operands:
            parts.append(", ".join(operands))
        return f"{self.name}: " + " ".join(parts)
