"""The :class:`Loop` container: a single-basic-block innermost loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..errors import IRError
from .instruction import Instruction
from .opcode import Opcode

__all__ = ["Loop"]

#: Name of the implicit normalised induction variable.  Reads of this
#: register yield the current iteration index; it carries no scheduling
#: dependence (address generation is folded into the memory units, as GCC
#: does for induction variables handled by doloop/IV elimination).
INDUCTION_VAR = "i"


@dataclass(frozen=True)
class Loop:
    """A normalised innermost loop: ``for i in range(N): body``.

    Attributes
    ----------
    name:
        Loop identifier (used in reports).
    body:
        The instructions, in sequential program order.
    live_ins:
        Initial values of registers that are live into the first iteration
        (loop-carried scalars and invariants).
    arrays:
        Sizes of the arrays the loop touches.
    coverage:
        Fraction of whole-program execution time this loop accounts for
        (``LC`` in the paper's Table 3); used for Amdahl composition of
        program speedups.  ``None`` when unknown.
    """

    name: str
    body: tuple[Instruction, ...]
    live_ins: Mapping[str, float] = field(default_factory=dict)
    arrays: Mapping[str, int] = field(default_factory=dict)
    coverage: float | None = None

    def __post_init__(self) -> None:
        if not self.body:
            raise IRError(f"loop {self.name!r} has an empty body")
        object.__setattr__(self, "live_ins", dict(self.live_ins))
        object.__setattr__(self, "arrays", dict(self.arrays))
        if self.coverage is not None and not 0.0 < self.coverage <= 1.0:
            raise IRError(f"loop coverage must be in (0, 1], got {self.coverage}")

    # -- lookups ---------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.body)

    def __len__(self) -> int:
        return len(self.body)

    @property
    def instruction_names(self) -> tuple[str, ...]:
        return tuple(ins.name for ins in self.body)

    def instruction(self, name: str) -> Instruction:
        for ins in self.body:
            if ins.name == name:
                return ins
        raise IRError(f"loop {self.name!r} has no instruction {name!r}")

    def position(self, name: str) -> int:
        """Index of instruction ``name`` in sequential program order."""
        for idx, ins in enumerate(self.body):
            if ins.name == name:
                return idx
        raise IRError(f"loop {self.name!r} has no instruction {name!r}")

    def definers(self) -> dict[str, Instruction]:
        """Map register name -> the (unique) instruction defining it."""
        out: dict[str, Instruction] = {}
        for ins in self.body:
            if ins.dest is not None:
                if ins.dest in out:
                    raise IRError(
                        f"loop {self.name!r}: register {ins.dest!r} defined by both "
                        f"{out[ins.dest].name!r} and {ins.name!r} (one def per "
                        f"register per iteration required)")
                out[ins.dest] = ins
        return out

    @property
    def stores(self) -> tuple[Instruction, ...]:
        return tuple(ins for ins in self.body if ins.opcode.is_store)

    @property
    def loads(self) -> tuple[Instruction, ...]:
        return tuple(ins for ins in self.body if ins.opcode.is_load)

    def listing(self) -> str:
        """Human-readable multi-line listing of the loop body."""
        lines = [f"loop {self.name} ({len(self.body)} instructions)"]
        if self.live_ins:
            ins_str = ", ".join(f"{k}={v}" for k, v in sorted(self.live_ins.items()))
            lines.append(f"  live-in: {ins_str}")
        if self.arrays:
            arr_str = ", ".join(f"{k}[{v}]" for k, v in sorted(self.arrays.items()))
            lines.append(f"  arrays: {arr_str}")
        for ins in self.body:
            lines.append(f"  {ins}")
        return "\n".join(lines)
