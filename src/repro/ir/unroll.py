"""Loop unrolling — the paper's stated future work.

    "We are working on incorporating loop unrolling into TMS to allow us
    to tradeoff between communication and parallelism by varying thread
    granularities."  (Section 6)

Unrolling by ``factor`` makes each SpMT thread execute ``factor`` original
iterations: synchronised values cross the ring ``factor`` times less often
(amortising ``C_spn``/``C_ci``/``C_reg_com``), at the cost of a larger II
and coarser speculation granularity.  Table 3's two small art loops are
"unrolled four times" with exactly this motivation.

The transform is a pure IR-to-IR rewrite:

* copy ``k`` of instruction ``n`` is named ``n__uk``; registers defined in
  the loop are renamed per copy (``r`` -> ``r__uk``);
* a register use referencing definition instance ``b_eff`` steps back (in
  original-iteration space) is rewired to the producing copy, with the
  back-reference count recomputed in unrolled-iteration space;
* affine subscripts ``c*i + o`` become ``(c*factor)*i + (c*k + o)``;
* alias hints are re-targeted at each producing copy with the unrolled
  distance.

``check_unroll_equivalence`` verifies the rewrite: running the unrolled
loop ``N`` times must leave the same array state as running the original
``N * factor`` times.
"""

from __future__ import annotations

import numpy as np

from ..errors import IRError
from .instruction import AliasHint, Instruction
from .interp import run_sequential
from .loop import INDUCTION_VAR, Loop
from .operand import AffineIndex, Imm, IndirectIndex, MemRef, Reg
from .validate import validate_loop

__all__ = ["unroll_loop", "check_unroll_equivalence"]


def _copy_name(name: str, k: int) -> str:
    return f"{name}__u{k}"


def unroll_loop(loop: Loop, factor: int) -> Loop:
    """Return ``loop`` unrolled by ``factor`` (factor 1 returns a copy)."""
    if factor < 1:
        raise IRError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return loop

    definers = loop.definers()
    positions = {ins.name: idx for idx, ins in enumerate(loop.body)}

    def rewritten_reg(reg: Reg, k: int, use_pos: int) -> Reg:
        """Rewire one register read from copy ``k``."""
        if reg.name == INDUCTION_VAR:
            # handled by the caller (affine rewrite or the per-copy
            # materialised index temporaries)
            return reg
        producer = definers.get(reg.name)
        if producer is None:
            return reg  # pure live-in / loop invariant
        def_pos = positions[producer.name]
        b_eff = reg.back + (0 if def_pos < use_pos else 1)
        q = k - b_eff                      # producing copy, original space
        m = q % factor
        iters_back = (m - q) // factor     # full unrolled iterations back
        new_name = _copy_name(reg.name, m)
        if iters_back == 0:
            return Reg(new_name, back=0)
        # copy m's definition textually precedes the use iff m < k, or
        # m == k with the definition before the use.
        textually_before = m < k or (m == k and def_pos < use_pos)
        back = iters_back if textually_before else iters_back - 1
        return Reg(new_name, back=back)

    def rewritten_hint(hint: AliasHint, k: int) -> list[AliasHint]:
        q = k - hint.distance
        m = q % factor
        new_distance = (m - q) // factor
        return [AliasHint(_copy_name(hint.producer, m), new_distance,
                          hint.probability)]

    body: list[Instruction] = []
    iv_temps: dict[int, str] = {}

    for k in range(factor):
        # copies that read the induction variable arithmetically (as an
        # operand or as an indirect subscript) need the original index
        # value factor*I + k; materialise it once per copy.
        needs_iv = any(
            (isinstance(s, Reg) and s.name == INDUCTION_VAR)
            for ins in loop.body for s in ins.srcs
        ) or any(
            ins.mem is not None and not ins.mem.is_affine
            and ins.mem.index.reg.name == INDUCTION_VAR
            for ins in loop.body
        )
        if needs_iv and k not in iv_temps:
            from .opcode import Opcode
            tmp = f"__iv{k}"
            body.append(Instruction(
                name=f"__ivdef{k}", opcode=Opcode.IMUL, dest=tmp,
                srcs=(Reg(INDUCTION_VAR), Imm(float(factor)))))
            body.append(Instruction(
                name=f"__ivadd{k}", opcode=Opcode.IADD, dest=f"{tmp}k",
                srcs=(Reg(tmp), Imm(float(k)))))
            iv_temps[k] = f"{tmp}k"
        for ins in loop.body:
            use_pos = positions[ins.name]
            srcs = []
            for s in ins.srcs:
                if isinstance(s, Imm):
                    srcs.append(s)
                elif s.name == INDUCTION_VAR:
                    srcs.append(Reg(iv_temps[k]))
                else:
                    srcs.append(rewritten_reg(s, k, use_pos))
            mem: MemRef | None = None
            if ins.mem is not None:
                idx = ins.mem.index
                if isinstance(idx, AffineIndex):
                    mem = MemRef(ins.mem.array,
                                 AffineIndex(idx.coeff * factor,
                                             idx.coeff * k + idx.offset))
                elif idx.reg.name == INDUCTION_VAR:
                    mem = MemRef(ins.mem.array,
                                 IndirectIndex(Reg(iv_temps[k])))
                else:
                    mem = MemRef(ins.mem.array, IndirectIndex(
                        rewritten_reg(idx.reg, k, use_pos)))
            hints: list[AliasHint] = []
            for h in ins.alias_hints:
                hints.extend(rewritten_hint(h, k))
            body.append(Instruction(
                name=_copy_name(ins.name, k),
                opcode=ins.opcode,
                dest=_copy_name(ins.dest, k) if ins.dest is not None else None,
                srcs=tuple(srcs),
                mem=mem,
                alias_hints=tuple(hints),
            ))

    live_ins: dict[str, float] = {}
    for reg, value in loop.live_ins.items():
        if reg in definers:  # defined in the loop (loop-carried scalar)
            for k in range(factor):
                live_ins[_copy_name(reg, k)] = value
        else:
            live_ins[reg] = value
    unrolled = Loop(
        name=f"{loop.name}_u{factor}",
        body=tuple(body),
        live_ins=live_ins,
        arrays=dict(loop.arrays),
        coverage=loop.coverage,
    )
    validate_loop(unrolled)
    return unrolled


def check_unroll_equivalence(loop: Loop, factor: int, iterations: int = 24,
                             *, array_init: dict[str, np.ndarray] | None = None
                             ) -> bool:
    """Array state after ``iterations`` unrolled iterations must equal the
    original loop's after ``iterations * factor``.  Raises on divergence."""
    unrolled = unroll_loop(loop, factor)
    ref = run_sequential(loop, iterations * factor, array_init=array_init)
    got = run_sequential(unrolled, iterations, array_init=array_init)
    for name, arr in ref.arrays.items():
        if not np.allclose(arr, got.arrays[name], rtol=1e-9, atol=1e-9):
            idx = int(np.argmax(~np.isclose(arr, got.arrays[name])))
            raise IRError(
                f"unroll({loop.name}, {factor}) diverges in array "
                f"{name!r} at index {idx}: {arr[idx]} vs "
                f"{got.arrays[name][idx]}")
    # loop-carried scalars: copy factor-1 holds the final value
    definers = loop.definers()
    for reg in definers:
        ref_v = ref.registers.get(reg)
        got_v = got.registers.get(_copy_name(reg, factor - 1))
        if ref_v is not None and got_v is not None and \
                not np.isclose(ref_v, got_v, rtol=1e-9, atol=1e-9):
            raise IRError(
                f"unroll({loop.name}, {factor}) diverges in register "
                f"{reg!r}: {ref_v} vs {got_v}")
    return True
