"""A small textual language for writing loop kernels.

Used by the examples and the hand-built DOACROSS workloads so that loop
bodies read like the paper's examples rather than builder-call chains.

Grammar (line oriented, ``#`` starts a comment)::

    loop <name> [coverage=<float>]
    array <name> <size>
    livein <reg> <value>
    <label>: <dest> = <opcode> <operand> [, <operand> ...]
    <label>: <dest> = load <array>[<index>] [!alias <store>:<dist>:<prob> ...]
    <label>: store <array>[<index>], <operand> [!alias <store>:<dist>:<prob> ...]

Operands are immediates (``1.5``), registers (``t3``) or back-references to
older iterations (``s@-2``).  Indexes are affine in the induction variable
(``i``, ``i+3``, ``2*i-1``, ``7``) or a register name for indirect accesses.

Example::

    loop axpy
    array X 64
    array Y 64
    livein a 2.0
    n0: x = load X[i]
    n1: t = fmul x, a
    n2: y = load Y[i]
    n3: r = fadd t, y
    n4: store Y[i], r
"""

from __future__ import annotations

import re

from ..errors import DSLParseError
from .builder import LoopBuilder
from .instruction import AliasHint, Instruction
from .loop import Loop
from .opcode import Opcode
from .operand import AffineIndex, Imm, IndirectIndex, MemRef, Operand, Reg

__all__ = ["parse_loop"]

_LOOP_RE = re.compile(r"^loop\s+(\w+)(?:\s+coverage=([\d.]+))?\s*$")
_ARRAY_RE = re.compile(r"^array\s+(\w+)\s+(\d+)\s*$")
_LIVEIN_RE = re.compile(r"^livein\s+(\w+)\s+(-?[\d.eE+]+)\s*$")
_INSTR_RE = re.compile(r"^(\w+)\s*:\s*(.+)$")
_AFFINE_RE = re.compile(
    r"^(?:(?P<coeff>-?\d+)\s*\*\s*)?i(?:\s*(?P<sign>[+-])\s*(?P<off>\d+))?$")
_CONST_RE = re.compile(r"^-?\d+$")
_ALIAS_RE = re.compile(r"!alias\s+(\w+):(\d+):([\d.eE+-]+)")
_NUM_RE = re.compile(r"^-?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")


def parse_loop(text: str) -> Loop:
    """Parse DSL ``text`` into a validated :class:`~repro.ir.loop.Loop`."""
    builder: LoopBuilder | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if (m := _LOOP_RE.match(line)):
            if builder is not None:
                raise DSLParseError("multiple 'loop' directives", line_no, raw)
            coverage = float(m.group(2)) if m.group(2) else None
            builder = LoopBuilder(m.group(1), coverage=coverage)
            continue
        if builder is None:
            raise DSLParseError("first directive must be 'loop <name>'", line_no, raw)
        if (m := _ARRAY_RE.match(line)):
            builder.arrays[m.group(1)] = int(m.group(2))
            continue
        if (m := _LIVEIN_RE.match(line)):
            builder.live_ins[m.group(1)] = float(m.group(2))
            continue
        if (m := _INSTR_RE.match(line)):
            builder.add(_parse_instruction(m.group(1), m.group(2), line_no, raw))
            continue
        raise DSLParseError("unrecognised line", line_no, raw)
    if builder is None:
        raise DSLParseError("no 'loop' directive found")
    return builder.build()


def _parse_instruction(label: str, body: str, line_no: int, raw: str) -> Instruction:
    body, hints = _split_alias_hints(body, line_no, raw)
    if body.startswith("store"):
        return _parse_store(label, body, hints, line_no, raw)
    if "=" not in body:
        raise DSLParseError("expected '<dest> = <opcode> ...' or 'store ...'",
                            line_no, raw)
    dest, _, rhs = body.partition("=")
    dest = dest.strip()
    rhs = rhs.strip()
    if not re.fullmatch(r"\w+", dest):
        raise DSLParseError(f"bad destination register {dest!r}", line_no, raw)
    parts = rhs.split(None, 1)
    opname = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    if opname == "load":
        array, index = _parse_memref(rest.strip(), line_no, raw)
        return Instruction(name=label, opcode=Opcode.LOAD, dest=dest,
                           mem=MemRef(array, index), alias_hints=hints)
    try:
        opcode = Opcode(opname)
    except ValueError:
        raise DSLParseError(f"unknown opcode {opname!r}", line_no, raw) from None
    operands = tuple(_parse_operand(tok.strip(), line_no, raw)
                     for tok in rest.split(",")) if rest.strip() else ()
    if hints:
        raise DSLParseError("alias hints are only valid on loads/stores",
                            line_no, raw)
    return Instruction(name=label, opcode=opcode, dest=dest, srcs=operands)


def _parse_store(label: str, body: str, hints: tuple[AliasHint, ...],
                 line_no: int, raw: str) -> Instruction:
    m = re.match(r"^store\s+(\w+)\s*\[([^\]]+)\]\s*,\s*(.+)$", body)
    if not m:
        raise DSLParseError("expected 'store ARRAY[index], value'", line_no, raw)
    array, index_str, value_str = m.group(1), m.group(2).strip(), m.group(3).strip()
    index = _parse_index(index_str, line_no, raw)
    value = _parse_operand(value_str, line_no, raw)
    return Instruction(name=label, opcode=Opcode.STORE,
                       mem=MemRef(array, index), srcs=(value,), alias_hints=hints)


def _split_alias_hints(body: str, line_no: int, raw: str
                       ) -> tuple[str, tuple[AliasHint, ...]]:
    hints = []
    for m in _ALIAS_RE.finditer(body):
        try:
            hints.append(AliasHint(m.group(1), int(m.group(2)), float(m.group(3))))
        except Exception as exc:
            raise DSLParseError(f"bad alias hint: {exc}", line_no, raw) from None
    body = _ALIAS_RE.sub("", body).strip()
    return body, tuple(hints)


def _parse_memref(text: str, line_no: int, raw: str):
    m = re.match(r"^(\w+)\s*\[([^\]]+)\]$", text)
    if not m:
        raise DSLParseError(f"expected 'ARRAY[index]', got {text!r}", line_no, raw)
    return m.group(1), _parse_index(m.group(2).strip(), line_no, raw)


def _parse_index(text: str, line_no: int, raw: str):
    if (m := _AFFINE_RE.match(text)):
        coeff = int(m.group("coeff")) if m.group("coeff") else 1
        off = int(m.group("off") or 0)
        if m.group("sign") == "-":
            off = -off
        return AffineIndex(coeff, off)
    if _CONST_RE.match(text):
        return AffineIndex(0, int(text))
    op = _parse_operand(text, line_no, raw)
    if isinstance(op, Reg):
        return IndirectIndex(op)
    raise DSLParseError(f"cannot parse index {text!r}", line_no, raw)


def _parse_operand(text: str, line_no: int, raw: str) -> Operand:
    if _NUM_RE.match(text):
        return Imm(float(text))
    m = re.fullmatch(r"(\w+)(?:@-(\d+))?", text)
    if not m:
        raise DSLParseError(f"cannot parse operand {text!r}", line_no, raw)
    return Reg(m.group(1), back=int(m.group(2) or 0))
