"""Instruction operands and memory references.

Register operands can read values from earlier iterations: ``Reg("s", back=1)``
denotes the value the register ``s`` held one definition *before* the most
recent one at the point of use.  Because each register is defined at most once
per iteration (enforced by :mod:`repro.ir.validate`), ``back`` translates
directly into a loop-carried dependence distance (see
:func:`repro.graph.ddg.build_ddg`).

Memory references index 1-D arrays either affinely in the normalised
induction variable (``A[2*i + 3]``) or indirectly through a register
(``A[idx]``) — the latter is what makes a loop DOACROSS-with-unknown-deps and
is where the paper's speculation support earns its keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import IRError

__all__ = ["Reg", "Imm", "Operand", "AffineIndex", "IndirectIndex", "MemRef"]


@dataclass(frozen=True)
class Reg:
    """A read of virtual register ``name`` from ``back`` definitions ago.

    ``back=0`` reads the most recent definition in sequential program order
    (which is the *previous* iteration's value when the use textually
    precedes the definition).
    """

    name: str
    back: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("register name must be non-empty")
        if self.back < 0:
            raise IRError(f"register back-reference must be >= 0, got {self.back}")

    def __str__(self) -> str:
        return self.name if self.back == 0 else f"{self.name}@-{self.back}"


@dataclass(frozen=True)
class Imm:
    """An immediate (constant) operand."""

    value: float

    def __str__(self) -> str:
        v = self.value
        if isinstance(v, float) and v.is_integer():
            return str(int(v))
        return str(v)


Operand = Union[Reg, Imm]


@dataclass(frozen=True)
class AffineIndex:
    """Array subscript ``coeff * i + offset`` in the induction variable."""

    coeff: int = 1
    offset: int = 0

    def __str__(self) -> str:
        if self.coeff == 0:
            return str(self.offset)
        base = "i" if self.coeff == 1 else f"{self.coeff}*i"
        if self.offset == 0:
            return base
        sign = "+" if self.offset > 0 else "-"
        return f"{base}{sign}{abs(self.offset)}"

    def at(self, i: int) -> int:
        return self.coeff * i + self.offset


@dataclass(frozen=True)
class IndirectIndex:
    """Array subscript taken from a register value (``A[idx]``)."""

    reg: Reg

    def __str__(self) -> str:
        return str(self.reg)


@dataclass(frozen=True)
class MemRef:
    """A reference to element ``index`` of array ``array``."""

    array: str
    index: Union[AffineIndex, IndirectIndex]

    def __post_init__(self) -> None:
        if not self.array:
            raise IRError("array name must be non-empty")

    @property
    def is_affine(self) -> bool:
        return isinstance(self.index, AffineIndex)

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"
