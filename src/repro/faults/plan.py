"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a named list of :class:`FaultSpec` perturbations
plus a seed; the :mod:`repro.faults.injector` interprets it against one
simulation run.  Plans are plain data — buildable in code, loadable from
JSON dicts (``FaultPlan.from_dict``) — and fully deterministic: every
probabilistic draw is keyed by ``(plan seed, spec index, thread index)``,
so a plan replays identically regardless of evaluation order or restart
counts.

Fault kinds
-----------
``violation``
    Force an extra memory-dependence violation on matching threads: the
    thread is squashed (paying ``C_inv``) and re-executed on the same
    core, exactly like an organic misspeculation.  ``magnitude`` is
    unused; ``detect_frac`` places the detection point as a fraction of
    the thread's execution span (``> 1`` models detection during the
    commit window); ``max_per_thread`` bounds back-to-back injections.
``comm_jitter``
    Delay matching SEND->RECV channel arrivals by ``magnitude`` cycles
    (stressing the 3-cycle Voltron operand-network assumption).
``comm_loss``
    Model a lost operand-network packet: the value only arrives after a
    retransmit, i.e. a (typically much larger) ``magnitude`` delay.
``spawn_failure``
    The spawn of a matching thread fails and is retried: the thread's
    start is pushed back ``magnitude`` cycles.
``stall_burst``
    The core a matching thread runs on is unavailable for ``magnitude``
    extra cycles before the thread may start.

Thread selection composes ``threads`` (an explicit allow-list), ``every``
/``phase`` (fire when ``thread % every == phase``) and ``probability``
(an independent per-thread Bernoulli draw).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence

from ..errors import FaultPlanError

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec"]

#: The fault kinds the injector understands.
FAULT_KINDS = ("violation", "comm_jitter", "comm_loss", "spawn_failure",
               "stall_burst")

#: Kinds that delay a thread's start (interpreted by ``_start_delay``).
_START_KINDS = frozenset({"spawn_failure", "stall_burst"})
#: Kinds that delay channel arrivals (interpreted by ``_perturb_arrivals``).
_COMM_KINDS = frozenset({"comm_jitter", "comm_loss"})


@dataclass(frozen=True)
class FaultSpec:
    """One declarative perturbation (see the module docstring)."""

    kind: str
    probability: float = 1.0
    magnitude: float = 0.0
    threads: tuple[int, ...] | None = None
    every: int | None = None
    phase: int = 0
    channels: tuple[int, ...] | None = None
    detect_frac: float = 0.5
    max_per_thread: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"{self.kind}: probability must be in [0, 1], got "
                f"{self.probability}")
        if self.magnitude < 0:
            raise FaultPlanError(
                f"{self.kind}: magnitude must be >= 0, got {self.magnitude}")
        if self.every is not None and self.every < 1:
            raise FaultPlanError(
                f"{self.kind}: every must be >= 1, got {self.every}")
        if self.phase < 0:
            raise FaultPlanError(
                f"{self.kind}: phase must be >= 0, got {self.phase}")
        if self.detect_frac < 0:
            raise FaultPlanError(
                f"{self.kind}: detect_frac must be >= 0, got "
                f"{self.detect_frac}")
        if self.max_per_thread < 1:
            raise FaultPlanError(
                f"{self.kind}: max_per_thread must be >= 1, got "
                f"{self.max_per_thread}")
        if self.threads is not None:
            object.__setattr__(self, "threads",
                               tuple(int(t) for t in self.threads))
            if any(t < 0 for t in self.threads):
                raise FaultPlanError(
                    f"{self.kind}: thread indices must be >= 0")
        if self.channels is not None:
            object.__setattr__(self, "channels",
                               tuple(int(c) for c in self.channels))
            if any(c < 0 for c in self.channels):
                raise FaultPlanError(
                    f"{self.kind}: channel indices must be >= 0")

    @property
    def delays_start(self) -> bool:
        return self.kind in _START_KINDS

    @property
    def delays_comm(self) -> bool:
        return self.kind in _COMM_KINDS

    def applies_to(self, thread: int) -> bool:
        """Structural thread match (the Bernoulli draw comes on top)."""
        if self.threads is not None and thread not in self.threads:
            return False
        if self.every is not None and thread % self.every != self.phase:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["threads"] = list(self.threads) if self.threads is not None else None
        d["channels"] = list(self.channels) \
            if self.channels is not None else None
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = set(cls.__dataclass_fields__)
        extra = set(data) - known
        if extra:
            raise FaultPlanError(
                f"unknown fault-spec keys {sorted(extra)}; known keys: "
                f"{sorted(known)}")
        if "kind" not in data:
            raise FaultPlanError("fault spec missing required key 'kind'")
        kwargs = dict(data)
        for key in ("threads", "channels"):
            if kwargs.get(key) is not None:
                kwargs[key] = tuple(kwargs[key])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise FaultPlanError(f"bad fault spec: {exc}") from None


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs."""

    name: str = "plan"
    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultPlanError(
                    f"plan {self.name!r}: specs must be FaultSpec instances, "
                    f"got {type(spec).__name__}")

    def __len__(self) -> int:
        return len(self.specs)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "seed": self.seed,
                "faults": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        extra = set(data) - {"name", "seed", "faults"}
        if extra:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(extra)}; expected "
                f"name/seed/faults")
        faults: Sequence[Mapping[str, Any]] = data.get("faults", ())
        if not isinstance(faults, (list, tuple)):
            raise FaultPlanError("fault-plan 'faults' must be a list")
        return cls(name=str(data.get("name", "plan")),
                   seed=int(data.get("seed", 0)),
                   specs=tuple(FaultSpec.from_dict(f) for f in faults))

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(name=self.name, seed=seed, specs=self.specs)
