"""Seeded chaos campaigns over the kernel suites.

``run_chaos`` compiles a kernel suite (through the process session, so
warm caches make reruns cheap), then runs each kernel's TMS schedule
under a battery of fault scenarios — squash storms, violation cascades,
operand-network jitter and loss, flaky spawns, core stall bursts — with
the trace sanitizer checking every run's event stream against the SpMT
model invariants.  The output is a versioned
:class:`~repro.faults.report.ChaosReport`.

Determinism: every run's fault draws are keyed by
``(campaign seed, kernel, scenario)`` via :func:`derive_seed`, so a
campaign is byte-identical across reruns of the same seed regardless of
which kernels compile, what order scenarios execute in, or how often a
thread restarts.
"""

from __future__ import annotations

import zlib
from typing import Sequence

from ..config import ArchConfig, SchedulerConfig, SimConfig
from ..machine.resources import ResourceModel
from ..obs.events import get_tracer
from ..spmt.sim import SpMTSimulator
from .injector import FaultInjectingSimulator
from .plan import FaultPlan, FaultSpec
from .report import ChaosReport, ChaosRow
from .sanitizer import sanitize_events

__all__ = ["SCENARIOS", "build_plan", "derive_seed", "run_chaos"]

#: Campaign scenarios, in execution order.  "baseline" is the clean run
#: the others' slowdowns are measured against.
SCENARIOS = ("baseline", "squash-storm", "cascade", "jitter", "loss",
             "spawn-flaky", "stall-burst", "combined")

#: default campaign seed
DEFAULT_SEED = 0xC4A05


def build_plan(scenario: str, seed: int) -> FaultPlan | None:
    """The fault plan for ``scenario`` (None for the clean baseline)."""
    if scenario == "baseline":
        return None
    if scenario == "squash-storm":
        specs = (FaultSpec("violation", probability=0.35, every=2,
                           detect_frac=0.6),)
    elif scenario == "cascade":
        # late detection maximises the more-speculative squash radius;
        # max_per_thread=2 forces back-to-back violations on hot threads.
        specs = (FaultSpec("violation", probability=0.8, every=5,
                           detect_frac=0.9, max_per_thread=2),)
    elif scenario == "jitter":
        specs = (FaultSpec("comm_jitter", probability=0.5, magnitude=4.0),)
    elif scenario == "loss":
        # a lost operand-network packet only arrives after a retransmit
        specs = (FaultSpec("comm_loss", probability=0.1, magnitude=30.0),)
    elif scenario == "spawn-flaky":
        specs = (FaultSpec("spawn_failure", probability=0.2, magnitude=6.0),)
    elif scenario == "stall-burst":
        specs = (FaultSpec("stall_burst", every=7, magnitude=25.0),)
    elif scenario == "combined":
        specs = (
            FaultSpec("violation", probability=0.15, every=3,
                      detect_frac=0.7),
            FaultSpec("comm_jitter", probability=0.25, magnitude=3.0),
            FaultSpec("spawn_failure", probability=0.1, magnitude=5.0),
        )
    else:
        raise ValueError(
            f"unknown chaos scenario {scenario!r}; expected one of "
            f"{SCENARIOS}")
    return FaultPlan(name=scenario, seed=seed, specs=specs)


def derive_seed(base: int, kernel: str, scenario: str) -> int:
    """A stable per-(kernel, scenario) seed, independent of run order."""
    return (base ^ zlib.crc32(f"{kernel}:{scenario}".encode())) & 0x7FFFFFFF


def _traced_run(simulator: SpMTSimulator):
    """Run ``simulator`` with the global tracer on, returning
    ``(stats, events)`` where events are just this run's slice.  Restores
    the tracer's previous enabled state (so a surrounding ``--trace``
    export keeps working and plain campaigns don't leak tracing on)."""
    tracer = get_tracer()
    previous = tracer.enabled
    tracer.enabled = True
    mark = len(tracer.events)
    try:
        stats = simulator.run()
    finally:
        tracer.enabled = previous
    return stats, tracer.events[mark:]


def run_chaos(arch: ArchConfig | None = None,
              config: SchedulerConfig | None = None, *,
              suites: Sequence[str] = ("table3",),
              scenarios: Sequence[str] = SCENARIOS,
              max_loops: int | None = None,
              iterations: int = 300,
              seed: int = DEFAULT_SEED,
              jobs: int | None = None,
              session=None) -> ChaosReport:
    """Run a seeded fault campaign over the requested kernel suites.

    Every kernel gets a clean baseline simulation (the slowdown
    reference; reported as a row only when ``"baseline"`` is among
    ``scenarios``) plus one faulted run per remaining scenario, each
    sanitized against the trace invariants.  Kernels whose compilation
    fails are skipped (soft-fail, like the suite drivers).
    """
    from ..experiments.validate import suite_loops
    from ..session import get_session
    arch = arch or ArchConfig.paper_default()
    config = config or SchedulerConfig()
    resources = ResourceModel.default(arch.issue_width)
    session = session or get_session()

    for s in scenarios:
        if s not in SCENARIOS:
            raise ValueError(
                f"unknown chaos scenario {s!r}; expected one of {SCENARIOS}")

    pairs = suite_loops(suites, max_loops)
    if max_loops is not None:
        # max_loops also caps the campaign's total kernel count (table3
        # has no per-benchmark generator for suite_loops to cap).
        pairs = pairs[:max_loops]
    compiled = session.compile_many(
        [loop for _b, loop in pairs], arch, resources, config,
        jobs=jobs, on_error="skip")

    rows: list[ChaosRow] = []
    for (benchmark, _loop), comp in zip(pairs, compiled):
        if comp is None:
            continue
        kernel = comp.name
        pipelined = comp.tms.pipelined
        # which rung of the degradation chain produced the schedule the
        # campaign actually stresses ("tms" unless the loop degraded)
        policy = comp.tms.schedule.meta.get("policy", "tms")

        # clean baseline: the slowdown reference for this kernel
        base_seed = derive_seed(seed, kernel, "baseline")
        base_sim = SpMTSimulator(
            pipelined, arch, SimConfig(iterations=iterations, seed=base_seed))
        base_stats, base_events = _traced_run(base_sim)
        base_findings = sanitize_events(base_events, arch, stats=base_stats)

        for scenario in scenarios:
            if scenario == "baseline":
                stats, findings, injected, run_seed = (
                    base_stats, base_findings, {}, base_seed)
            else:
                run_seed = derive_seed(seed, kernel, scenario)
                plan = build_plan(scenario, run_seed)
                sim = FaultInjectingSimulator(
                    pipelined, arch,
                    SimConfig(iterations=iterations, seed=run_seed),
                    plan=plan)
                stats, events = _traced_run(sim)
                findings = sanitize_events(events, arch, stats=stats)
                injected = dict(sim.injected)
            slowdown = (stats.total_cycles / base_stats.total_cycles
                        if base_stats.total_cycles else 1.0)
            rows.append(ChaosRow(
                kernel=kernel,
                benchmark=benchmark,
                scenario=scenario,
                plan="" if scenario == "baseline" else scenario,
                policy=policy,
                seed=run_seed,
                iterations=iterations,
                total_cycles=stats.total_cycles,
                misspeculations=stats.misspeculations,
                squashed_threads=stats.squashed_threads,
                wasted_execution_cycles=stats.wasted_execution_cycles,
                sync_stall_cycles=stats.sync_stall_cycles,
                injected=injected,
                # seq-free rendering keeps reports byte-identical across
                # reruns even when findings exist
                findings=tuple(f"{f.invariant}: {f.message}"
                               for f in findings),
                slowdown=slowdown,
            ))
    return ChaosReport(rows=tuple(rows), seed=seed, ncore=arch.ncore,
                       iterations=iterations, scenarios=tuple(scenarios))
