"""Chaos-campaign robustness reporting.

A :class:`ChaosReport` is the output of one ``tms-experiments chaos``
campaign: one :class:`ChaosRow` per (kernel, scenario) run, recording the
faults injected, the simulator's survival statistics, the trace
sanitizer's findings, and the slowdown against the same kernel's clean
baseline run.  Like :mod:`repro.obs.report`, the dictionary form is a
stable versioned schema (:data:`CHAOS_REPORT_SCHEMA`, checked by
:func:`validate_chaos_report_dict`) so CI can archive it, diff it across
commits, and assert byte-identity across same-seed reruns.

Campaigns are *built* by :mod:`repro.faults.campaign`; this module owns
the pure data model.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CHAOS_REPORT_SCHEMA",
    "ChaosReport",
    "ChaosRow",
    "validate_chaos_report_dict",
    "write_chaos_report_json",
]

#: Schema version written into every chaos report dict.
#: v2: rows gained "policy" (the scheduling policy that produced the
#: kernel's final schedule, from the degradation chain's meta).
SCHEMA_VERSION = 2

#: Golden schema of :meth:`ChaosReport.to_dict`: required keys and their
#: types, with ``rows[*]`` and ``summary`` described one level deep.
CHAOS_REPORT_SCHEMA: dict[str, Any] = {
    "schema_version": int,
    "seed": int,
    "ncore": int,
    "iterations": int,
    "scenarios": list,
    "rows": {
        "kernel": str,
        "benchmark": str,
        "scenario": str,
        "plan": str,
        "policy": str,
        "seed": int,
        "iterations": int,
        "total_cycles": float,
        "misspeculations": int,
        "squashed_threads": int,
        "wasted_execution_cycles": float,
        "sync_stall_cycles": float,
        "injected": dict,
        "findings": list,
        "ok": bool,
        "slowdown": float,
    },
    "summary": {
        "n_runs": int,
        "n_kernels": int,
        "n_scenarios": int,
        "runs_ok": int,
        "invariant_violations": int,
        "injected_by_kind": dict,
        "max_slowdown": float,
        "max_slowdown_kernel": str,
    },
}


@dataclass(frozen=True)
class ChaosRow:
    """One (kernel, scenario) faulted run's outcome."""

    kernel: str
    benchmark: str
    scenario: str           #: campaign scenario name ("baseline", ...)
    plan: str               #: fault-plan name ("" for baseline)
    seed: int               #: the run's derived seed
    iterations: int
    total_cycles: float
    misspeculations: int
    squashed_threads: int
    wasted_execution_cycles: float
    sync_stall_cycles: float
    policy: str = "tms"       #: policy that produced the final schedule
    injected: dict[str, int] = field(default_factory=dict)
    findings: tuple[str, ...] = ()   #: sanitizer findings, rendered
    slowdown: float = 1.0            #: total_cycles / baseline total_cycles

    @property
    def ok(self) -> bool:
        """True when the run survived with zero invariant violations."""
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "benchmark": self.benchmark,
            "scenario": self.scenario,
            "plan": self.plan,
            "policy": self.policy,
            "seed": self.seed,
            "iterations": self.iterations,
            "total_cycles": self.total_cycles,
            "misspeculations": self.misspeculations,
            "squashed_threads": self.squashed_threads,
            "wasted_execution_cycles": self.wasted_execution_cycles,
            "sync_stall_cycles": self.sync_stall_cycles,
            "injected": dict(sorted(self.injected.items())),
            "findings": list(self.findings),
            "ok": self.ok,
            "slowdown": self.slowdown,
        }


@dataclass(frozen=True)
class ChaosReport:
    """All rows of one chaos campaign plus campaign parameters."""

    rows: tuple[ChaosRow, ...]
    seed: int
    ncore: int
    iterations: int
    scenarios: tuple[str, ...]

    @property
    def invariant_violations(self) -> int:
        return sum(len(r.findings) for r in self.rows)

    def injected_by_kind(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for row in self.rows:
            for kind, n in row.injected.items():
                totals[kind] = totals.get(kind, 0) + n
        return dict(sorted(totals.items()))

    def worst_slowdown(self) -> ChaosRow | None:
        return max(self.rows, key=lambda r: r.slowdown, default=None)

    def to_dict(self) -> dict[str, Any]:
        """The stable, versioned report form
        (see :data:`CHAOS_REPORT_SCHEMA`)."""
        worst = self.worst_slowdown()
        return {
            "schema_version": SCHEMA_VERSION,
            "seed": self.seed,
            "ncore": self.ncore,
            "iterations": self.iterations,
            "scenarios": list(self.scenarios),
            "rows": [row.to_dict() for row in self.rows],
            "summary": {
                "n_runs": len(self.rows),
                "n_kernels": len({r.kernel for r in self.rows}),
                "n_scenarios": len({r.scenario for r in self.rows}),
                "runs_ok": sum(1 for r in self.rows if r.ok),
                "invariant_violations": self.invariant_violations,
                "injected_by_kind": self.injected_by_kind(),
                "max_slowdown": worst.slowdown if worst else 0.0,
                "max_slowdown_kernel": worst.kernel if worst else "",
            },
        }

    def render(self) -> str:
        """Per-run robustness table plus the campaign summary lines."""
        # local import: repro.experiments imports this package's siblings.
        from ..experiments.report import format_table

        table = format_table(
            ["Kernel", "Scenario", "Cycles", "Missp", "Squashed",
             "Injected", "Slowdown", "Invariants"],
            [[r.kernel, r.scenario, f"{r.total_cycles:.0f}",
              r.misspeculations, r.squashed_threads,
              sum(r.injected.values()), f"{r.slowdown:.2f}x",
              "ok" if r.ok else f"{len(r.findings)} VIOLATED"]
             for r in self.rows],
            title="Chaos campaign: seeded fault injection + trace sanitizer.")
        lines = [table, ""]
        lines.append(f"Runs: {len(self.rows)} "
                     f"({sum(1 for r in self.rows if r.ok)} ok)")
        injected = self.injected_by_kind()
        if injected:
            lines.append("Injected: " + ", ".join(
                f"{kind}={n}" for kind, n in injected.items()))
        worst = self.worst_slowdown()
        if worst is not None:
            lines.append(f"Max slowdown: {worst.slowdown:.2f}x "
                         f"({worst.kernel}, {worst.scenario})")
        if self.invariant_violations:
            lines.append(f"INVARIANT VIOLATIONS: "
                         f"{self.invariant_violations}")
            for row in self.rows:
                for finding in row.findings:
                    lines.append(f"  {row.kernel}/{row.scenario}: {finding}")
        else:
            lines.append("All trace invariants held under fault injection.")
        return "\n".join(lines)


def validate_chaos_report_dict(data: dict[str, Any]) -> None:
    """Check ``data`` against :data:`CHAOS_REPORT_SCHEMA`; raises
    ``ValueError`` on a missing key or mistyped value (the golden-schema
    gate in CI)."""
    def check(obj: dict, schema: dict, path: str) -> None:
        for key, expected in schema.items():
            if key not in obj:
                raise ValueError(f"report missing key {path}{key!r}")
            value = obj[key]
            if isinstance(expected, dict) and key == "rows":
                if not isinstance(value, list):
                    raise ValueError(f"{path}{key!r} must be a list")
                for i, row in enumerate(value):
                    if not isinstance(row, dict):
                        raise ValueError(f"{path}rows[{i}] must be an object")
                    check(row, expected, f"{path}rows[{i}].")
            elif isinstance(expected, dict):
                if not isinstance(value, dict):
                    raise ValueError(f"{path}{key!r} must be an object")
                check(value, expected, f"{path}{key}.")
            elif expected is float:
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    raise ValueError(
                        f"{path}{key!r} must be a number, got "
                        f"{type(value).__name__}")
            elif expected is bool:
                if not isinstance(value, bool):
                    raise ValueError(
                        f"{path}{key!r} must be bool, got "
                        f"{type(value).__name__}")
            elif not isinstance(value, expected) or isinstance(value, bool) \
                    and expected is int:
                raise ValueError(
                    f"{path}{key!r} must be {expected.__name__}, got "
                    f"{type(value).__name__}")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {data.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})")
    check(data, CHAOS_REPORT_SCHEMA, "")


def write_chaos_report_json(report: ChaosReport,
                            path: str | os.PathLike) -> None:
    """Persist the report's versioned dict form as pretty JSON.

    ``sort_keys`` plus the campaign's deterministic seeding make the
    file byte-identical across same-seed reruns — CI diffs it.
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
