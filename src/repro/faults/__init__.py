"""repro.faults: deterministic fault injection, trace invariant
sanitizing, and chaos campaigns for the SpMT stack.

Three pieces (see docs/robustness.md):

* :mod:`repro.faults.plan` / :mod:`repro.faults.injector` — declarative,
  seeded fault plans interpreted by a :class:`FaultInjectingSimulator`
  (squash storms, operand-network jitter/loss, flaky spawns, core stall
  bursts), byte-identical per seed;
* :mod:`repro.faults.sanitizer` — replays ``repro.obs`` event streams
  and checks the execution model's hard invariants (commit order,
  send-before-recv, squash scope, clock monotonicity, cycle-accounting
  conservation);
* :mod:`repro.faults.campaign` / :mod:`repro.faults.report` — the
  ``tms-experiments chaos`` campaign driver and its versioned report.
"""

from .campaign import SCENARIOS, build_plan, derive_seed, run_chaos
from .injector import FaultInjectingSimulator, simulate_with_faults
from .plan import FAULT_KINDS, FaultPlan, FaultSpec
from .report import (CHAOS_REPORT_SCHEMA, ChaosReport, ChaosRow,
                     validate_chaos_report_dict, write_chaos_report_json)
from .sanitizer import (INVARIANTS, SanitizerFinding, TraceSanitizer,
                        assert_trace_invariants, sanitize_events)

__all__ = [
    "CHAOS_REPORT_SCHEMA",
    "ChaosReport",
    "ChaosRow",
    "FAULT_KINDS",
    "FaultInjectingSimulator",
    "FaultPlan",
    "FaultSpec",
    "INVARIANTS",
    "SCENARIOS",
    "SanitizerFinding",
    "TraceSanitizer",
    "assert_trace_invariants",
    "build_plan",
    "derive_seed",
    "run_chaos",
    "sanitize_events",
    "simulate_with_faults",
    "validate_chaos_report_dict",
    "write_chaos_report_json",
]
