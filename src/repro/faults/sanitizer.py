"""Trace invariant sanitizer: replay ``repro.obs`` event streams and
check the SpMT execution model's hard invariants.

The simulator emits a deterministic event stream (``sim.spawn`` /
``sim.exec`` / ``sim.recv_stall`` / ``sim.send`` / ``sim.violation`` /
``sim.squash`` / ``sim.commit`` — see docs/observability.md).  The
sanitizer checks that a stream (plus, optionally, the run's
:class:`~repro.spmt.stats.SimStats`) obeys:

``commit-order``
    Threads commit in iteration order, one commit per iteration, with
    non-decreasing commit timestamps (the in-order commit behind the head
    thread, paper Section 3).
``clock-monotone``
    Per core, time never runs backwards: a thread's execution cannot
    start before the previous thread on that core finished committing,
    and no event has a negative timestamp or duration.
``send-recv-order``
    No RECV completes before its matching SEND: every recv stall's
    resolution time is at least the producing thread's SEND time plus the
    ring latency for its hop count.
``squash-scope``
    A squash invalidates exactly the offender plus more-speculative
    in-flight threads: every squash pairs with a violation at the same
    detection time on the same thread, and its squash count stays within
    ``[1, ncore]``.
``conservation``
    Cycle accounting conserves: spawn/commit/invalidation totals equal
    their per-event unit costs times the event counts, the stall total
    equals the sum of per-thread stalls, and ``total_cycles`` equals the
    last commit's completion time.

Use :func:`sanitize_events` as a post-run gate (returns findings) or
:func:`assert_trace_invariants` as a library assertion inside tests
(raises :class:`~repro.errors.InvariantViolation`).  Faulted runs under
:mod:`repro.faults.injector` must pass too — injection only delays events
or adds violations, never breaks the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..config import ArchConfig
from ..errors import InvariantViolation
from ..obs.events import Event
from ..spmt.stats import SimStats

__all__ = ["INVARIANTS", "SanitizerFinding", "TraceSanitizer",
           "assert_trace_invariants", "sanitize_events"]

#: Names of the invariant families the sanitizer checks.
INVARIANTS = ("commit-order", "clock-monotone", "send-recv-order",
              "squash-scope", "conservation")

#: float comparisons over simulated cycles
_EPS = 1e-6


@dataclass(frozen=True)
class SanitizerFinding:
    """One invariant violation found in a trace."""

    invariant: str
    message: str
    seq: int | None = None      #: sequence number of the offending event

    def __str__(self) -> str:
        where = f" (event seq {self.seq})" if self.seq is not None else ""
        return f"[{self.invariant}] {self.message}{where}"


class TraceSanitizer:
    """Checks one run's ``sim.*`` events against the model invariants."""

    def __init__(self, arch: ArchConfig, *,
                 stats: SimStats | None = None) -> None:
        self.arch = arch
        self.stats = stats

    # -- entry point --------------------------------------------------------

    def check(self, events: Iterable[Event]) -> list[SanitizerFinding]:
        sim_events = [e for e in events if e.cat == "sim"]
        findings: list[SanitizerFinding] = []
        findings += self._check_nonnegative(sim_events)
        findings += self._check_commit_order(sim_events)
        findings += self._check_clock_monotone(sim_events)
        findings += self._check_send_recv(sim_events)
        findings += self._check_squash_scope(sim_events)
        if self.stats is not None:
            findings += self._check_conservation(sim_events, self.stats)
        return findings

    # -- individual invariants ----------------------------------------------

    def _check_nonnegative(self, events: Sequence[Event]
                           ) -> list[SanitizerFinding]:
        out = []
        for e in events:
            if e.ts is not None and e.ts < -_EPS:
                out.append(SanitizerFinding(
                    "clock-monotone",
                    f"{e.name} has negative timestamp {e.ts}", e.seq))
            if e.dur is not None and e.dur < -_EPS:
                out.append(SanitizerFinding(
                    "clock-monotone",
                    f"{e.name} has negative duration {e.dur}", e.seq))
        return out

    def _check_commit_order(self, events: Sequence[Event]
                            ) -> list[SanitizerFinding]:
        out = []
        commits = [e for e in events if e.name == "commit"]
        expected = 0
        last_ts = float("-inf")
        for e in commits:
            thread = e.args.get("thread")
            if thread != expected:
                out.append(SanitizerFinding(
                    "commit-order",
                    f"commit of thread {thread} out of iteration order "
                    f"(expected thread {expected})", e.seq))
                # resynchronise so one swap yields one finding, not many
                expected = (thread + 1) if isinstance(thread, int) \
                    else expected + 1
            else:
                expected += 1
            if e.ts is not None:
                if e.ts < last_ts - _EPS:
                    out.append(SanitizerFinding(
                        "commit-order",
                        f"commit of thread {thread} at {e.ts} precedes an "
                        f"earlier thread's commit at {last_ts}", e.seq))
                last_ts = max(last_ts, e.ts)
        return out

    def _check_clock_monotone(self, events: Sequence[Event]
                              ) -> list[SanitizerFinding]:
        """Per core: execution may not begin before the previous thread on
        that core released it (commit end)."""
        out = []
        core_free: dict[int, float] = {}
        for e in events:
            tid = e.args.get("tid")
            if tid is None or e.ts is None:
                continue
            if e.name == "exec":
                free = core_free.get(tid, 0.0)
                if e.ts < free - _EPS:
                    out.append(SanitizerFinding(
                        "clock-monotone",
                        f"thread {e.args.get('thread')} starts at {e.ts} on "
                        f"core {tid}, before the core is free at {free}",
                        e.seq))
            elif e.name == "commit":
                end = e.ts + (e.dur or 0.0)
                core_free[tid] = max(core_free.get(tid, 0.0), end)
        return out

    def _check_send_recv(self, events: Sequence[Event]
                         ) -> list[SanitizerFinding]:
        out = []
        lat = self.arch.reg_comm_latency
        sends: dict[tuple[int, int], float] = {}
        for e in events:
            if e.name == "send" and e.ts is not None:
                key = (e.args.get("thread"), e.args.get("channel"))
                sends[key] = e.ts
        for e in events:
            if e.name != "recv_stall" or e.ts is None:
                continue
            thread = e.args.get("thread")
            channel = e.args.get("channel")
            hops = e.args.get("hops", 1)
            producer_thread = thread - hops
            if producer_thread < 0:
                continue  # live-in broadcast: no SEND exists
            send_ts = sends.get((producer_thread, channel))
            if send_ts is None:
                out.append(SanitizerFinding(
                    "send-recv-order",
                    f"thread {thread} stalled on channel {channel} but "
                    f"thread {producer_thread} never SENT on it", e.seq))
                continue
            resolved = e.ts + (e.dur or 0.0)
            if resolved < send_ts + hops * lat - _EPS:
                out.append(SanitizerFinding(
                    "send-recv-order",
                    f"thread {thread} RECV on channel {channel} completed "
                    f"at {resolved}, before SEND at {send_ts} + "
                    f"{hops}x{lat} ring hops", e.seq))
        return out

    def _check_squash_scope(self, events: Sequence[Event]
                            ) -> list[SanitizerFinding]:
        out = []
        violations = {(e.args.get("thread"), round(e.ts or 0.0, 6))
                      for e in events if e.name == "violation"}
        n_violations = sum(1 for e in events if e.name == "violation")
        n_squashes = 0
        for e in events:
            if e.name != "squash":
                continue
            n_squashes += 1
            squashed = e.args.get("squashed", 0)
            if not 1 <= squashed <= self.arch.ncore:
                out.append(SanitizerFinding(
                    "squash-scope",
                    f"squash on thread {e.args.get('thread')} claims "
                    f"{squashed} threads; must be in [1, ncore="
                    f"{self.arch.ncore}]", e.seq))
            key = (e.args.get("thread"), round(e.ts or 0.0, 6))
            if key not in violations:
                out.append(SanitizerFinding(
                    "squash-scope",
                    f"squash on thread {e.args.get('thread')} at "
                    f"{e.ts} has no matching violation", e.seq))
        if n_squashes != n_violations:
            out.append(SanitizerFinding(
                "squash-scope",
                f"{n_violations} violations but {n_squashes} squashes "
                f"(must pair 1:1)"))
        return out

    def _check_conservation(self, events: Sequence[Event], stats: SimStats
                            ) -> list[SanitizerFinding]:
        out = []
        arch = self.arch
        n = stats.iterations

        def expect(name: str, actual: float, wanted: float) -> None:
            if abs(actual - wanted) > max(_EPS, 1e-9 * abs(wanted)):
                out.append(SanitizerFinding(
                    "conservation",
                    f"{name}: recorded {actual}, expected {wanted}"))

        expect("spawn_cycles", stats.spawn_cycles, n * arch.spawn_overhead)
        expect("commit_cycles", stats.commit_cycles, n * arch.commit_overhead)
        expect("invalidation_cycles", stats.invalidation_cycles,
               stats.misspeculations * arch.invalidation_overhead)
        if stats.wasted_execution_cycles < -_EPS:
            out.append(SanitizerFinding(
                "conservation",
                f"wasted_execution_cycles is negative: "
                f"{stats.wasted_execution_cycles}"))
        commits = [e for e in events if e.name == "commit" and e.ts is not None]
        if commits:
            expect("commit count", float(len(commits)), float(n))
            last_end = max(e.ts + (e.dur or 0.0) for e in commits)
            expect("total_cycles", stats.total_cycles, last_end)
        execs = [e for e in events if e.name == "exec"]
        if execs:
            stall_sum = sum(e.args.get("stall", 0.0) for e in execs)
            expect("sync_stall_cycles", stats.sync_stall_cycles, stall_sum)
        n_violations = sum(1 for e in events if e.name == "violation")
        if execs:  # only meaningful when the stream covers the run
            expect("misspeculations", float(stats.misspeculations),
                   float(n_violations))
            squashed = sum(e.args.get("squashed", 0)
                           for e in events if e.name == "squash")
            expect("squashed_threads", float(stats.squashed_threads),
                   float(squashed))
        return out


def sanitize_events(events: Iterable[Event], arch: ArchConfig, *,
                    stats: SimStats | None = None) -> list[SanitizerFinding]:
    """Check ``events`` (and optionally ``stats``); returns all findings."""
    return TraceSanitizer(arch, stats=stats).check(events)


def assert_trace_invariants(events: Iterable[Event], arch: ArchConfig, *,
                            stats: SimStats | None = None) -> None:
    """Raise :class:`InvariantViolation` if any invariant fails."""
    findings = sanitize_events(events, arch, stats=stats)
    if findings:
        detail = "\n".join(f"  {f}" for f in findings)
        raise InvariantViolation(
            f"{len(findings)} trace invariant violation(s):\n{detail}")
