"""Deterministic fault injection for the SpMT simulator.

:class:`FaultInjectingSimulator` subclasses
:class:`~repro.spmt.sim.SpMTSimulator` and overrides its three
fault-injection hooks to interpret a :class:`~repro.faults.plan.FaultPlan`:

* ``_start_delay`` — spawn failures and per-core stall bursts push a
  thread's start back;
* ``_perturb_arrivals`` — operand-network jitter/loss delays SEND->RECV
  value arrivals (live-in broadcasts, which have no SEND, are exempt);
* ``_inject_violation`` — forced extra memory-dependence violations
  squash the thread (and, via the base loop's estimate, every
  more-speculative in-flight thread) exactly like organic
  misspeculations.

All randomness is drawn from ``np.random.default_rng((seed, spec, thread))``
so a plan replays byte-identically: the same thread sees the same faults
on every attempt (re-executions converge, mirroring the paper's sticky
dependence realisations) and runs are independent of evaluation order.

The injector only ever *delays* events or *adds* violations — it cannot
reorder commits or corrupt accounting — so every invariant checked by
:mod:`repro.faults.sanitizer` must still hold on a faulted run.  That is
the point: squash/recovery is proven to preserve the execution model
under adversarial conditions, not just on happy paths.
"""

from __future__ import annotations

import numpy as np

from ..config import ArchConfig, SimConfig
from ..obs import metrics
from ..sched.postpass import PipelinedLoop
from ..spmt.channels import KernelTimingTemplate, ThreadTiming
from ..spmt.sim import SpMTSimulator
from ..spmt.stats import SimStats
from .plan import FaultPlan, FaultSpec

__all__ = ["FaultInjectingSimulator", "simulate_with_faults"]


class FaultInjectingSimulator(SpMTSimulator):
    """An :class:`SpMTSimulator` that perturbs execution per a fault plan."""

    def __init__(self, pipelined: PipelinedLoop, arch: ArchConfig,
                 sim: SimConfig | None = None, *, plan: FaultPlan,
                 template: KernelTimingTemplate | None = None) -> None:
        super().__init__(pipelined, arch, sim, template=template)
        self.plan = plan
        #: injected-fault tally per kind (filled during run()).
        self.injected: dict[str, int] = {}
        self._start_specs = [
            (i, s) for i, s in enumerate(plan.specs) if s.delays_start]
        self._comm_specs = [
            (i, s) for i, s in enumerate(plan.specs) if s.delays_comm]
        self._violation_specs = [
            (i, s) for i, s in enumerate(plan.specs) if s.kind == "violation"]

    # -- deterministic draws ----------------------------------------------------

    def _fires(self, spec_index: int, spec: FaultSpec, thread: int,
               n_draws: int = 1) -> np.ndarray:
        """Bernoulli fire decisions for ``(spec, thread)``: keyed seeding
        makes the draw independent of evaluation order and attempt count."""
        rng = np.random.default_rng((self.plan.seed, spec_index, thread))
        return rng.random(n_draws) < spec.probability

    def _count(self, kind: str, n: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + n
        metrics.counter("faults.injected",
                        "faults injected by FaultInjectingSimulator").inc(n)

    # -- hook overrides ---------------------------------------------------------

    def _start_delay(self, j: int, core: int) -> float:
        delay = 0.0
        for si, spec in self._start_specs:
            if not spec.applies_to(j):
                continue
            if self._fires(si, spec, j)[0]:
                delay += spec.magnitude
                self._count(spec.kind)
        return delay

    def _perturb_arrivals(self, j: int, arrivals: list[float]) -> list[float]:
        if not self._comm_specs:
            return arrivals
        for si, spec in self._comm_specs:
            if not spec.applies_to(j):
                continue
            channels = range(len(arrivals)) if spec.channels is None \
                else [c for c in spec.channels if c < len(arrivals)]
            channels = list(channels)
            if not channels:
                continue
            fires = self._fires(si, spec, j, n_draws=len(channels))
            for ci, fired in zip(channels, fires):
                # live-in broadcasts (-inf) have no SEND to delay
                if fired and arrivals[ci] != float("-inf"):
                    arrivals[ci] += spec.magnitude
                    self._count(spec.kind)
        return arrivals

    def _inject_violation(self, j: int, core: int, attempt: int,
                          timing: ThreadTiming) -> float | None:
        for si, spec in self._violation_specs:
            if attempt >= spec.max_per_thread or not spec.applies_to(j):
                continue
            if self._fires(si, spec, j, n_draws=spec.max_per_thread)[attempt]:
                self._count(spec.kind)
                span = max(1.0, timing.finish - timing.start)
                return timing.start + spec.detect_frac * span
        return None


def simulate_with_faults(pipelined: PipelinedLoop, arch: ArchConfig,
                         plan: FaultPlan, sim: SimConfig | None = None, *,
                         template: KernelTimingTemplate | None = None
                         ) -> tuple[SimStats, dict[str, int]]:
    """Run one faulted simulation; returns ``(stats, injected_counts)``."""
    injector = FaultInjectingSimulator(pipelined, arch, sim, plan=plan,
                                       template=template)
    stats = injector.run()
    return stats, dict(injector.injected)
