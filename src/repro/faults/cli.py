"""``tms-experiments chaos``: the robustness-campaign subcommand.

Runs :func:`~repro.faults.campaign.run_chaos` over a kernel suite,
prints the per-run robustness table, optionally writes the versioned
JSON report (``--out``; byte-identical across same-seed reruns, the CI
smoke job diffs it), and exits non-zero if any trace invariant was
violated — a faulted run that breaks the SpMT execution model is a bug,
not an experiment outcome.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..config import ArchConfig, SchedulerConfig
from .campaign import DEFAULT_SEED, SCENARIOS, run_chaos
from .report import write_chaos_report_json

__all__ = ["add_chaos_arguments", "run_chaos_command"]


def add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--suite", choices=("table2", "table3", "both"),
                        default="table3",
                        help="kernel suite(s) to stress (default: table3)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated scenario list (default: all: "
                             + ",".join(SCENARIOS) + ")")
    parser.add_argument("--max-loops", type=int, default=None,
                        help="cap the campaign's kernel count")
    parser.add_argument("--iterations", type=int, default=None,
                        help="simulated trip count per run")
    parser.add_argument("--quick", action="store_true",
                        help="2 kernels, short runs (the CI smoke shape)")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="campaign seed; per-run fault seeds derive "
                             "from (seed, kernel, scenario)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the compile phase")
    parser.add_argument("--out", default=None,
                        help="also write the report as JSON (stable "
                             "schema, byte-identical per seed)")


def run_chaos_command(ns: argparse.Namespace) -> int:
    suites = ("table2", "table3") if ns.suite == "both" else (ns.suite,)
    if ns.scenarios:
        scenarios = tuple(s.strip() for s in ns.scenarios.split(",")
                          if s.strip())
    else:
        scenarios = SCENARIOS
    max_loops = ns.max_loops if ns.max_loops is not None \
        else (2 if ns.quick else None)
    iterations = ns.iterations if ns.iterations is not None \
        else (120 if ns.quick else 300)
    arch = ArchConfig.paper_default().with_cores(ns.cores)

    start = time.time()
    try:
        report = run_chaos(arch, SchedulerConfig(), suites=suites,
                           scenarios=scenarios, max_loops=max_loops,
                           iterations=iterations, seed=ns.seed,
                           jobs=ns.jobs)
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if ns.out:
        write_chaos_report_json(report, ns.out)
        print(f"[report -> {ns.out}]", file=sys.stderr)
    print(f"[chaos: {len(report.rows)} runs, {time.time() - start:.1f}s]",
          file=sys.stderr)
    return 1 if report.invariant_violations else 0
