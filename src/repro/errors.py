"""Exception hierarchy for the TMS reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed loop IR (bad operands, undefined registers, ...)."""


class DSLParseError(IRError):
    """Syntax or semantic error while parsing the textual loop DSL."""

    def __init__(self, message: str, line_no: int | None = None, line: str | None = None):
        self.line_no = line_no
        self.line = line
        if line_no is not None:
            message = f"line {line_no}: {message}"
            if line is not None:
                message = f"{message}\n    {line.strip()}"
        super().__init__(message)


class DDGError(ReproError):
    """Inconsistent data-dependence graph (negative-latency cycles, ...)."""


class MachineError(ReproError):
    """Invalid machine/resource model configuration or usage."""


class SchedulingError(ReproError):
    """A modulo scheduler could not produce a valid schedule."""


class ScheduleValidationError(SchedulingError):
    """A produced schedule violates a dependence or resource constraint."""


class SchedulingBudgetExceeded(SchedulingError):
    """A scheduler watchdog fired: the (II, C_delay) search exceeded its
    wall-clock or candidate budget before finding a schedule.  Callers that
    route through :func:`repro.sched.degrade.schedule_with_degradation`
    recover by falling back to a cheaper algorithm."""


class SimulationError(ReproError):
    """The SpMT simulator reached an inconsistent state."""


class InvariantViolation(ReproError):
    """A trace invariant sanitizer check failed: the recorded event stream
    (or its :class:`~repro.spmt.stats.SimStats`) contradicts the SpMT
    execution model (see :mod:`repro.faults.sanitizer`)."""


class FaultPlanError(ReproError):
    """A declarative fault plan (:mod:`repro.faults.plan`) is malformed."""


class TaskTimeout(ReproError):
    """A :class:`~repro.session.runner.ParallelRunner` task exceeded its
    per-task timeout budget."""


class WorkloadError(ReproError):
    """A workload generator was given unsatisfiable parameters."""


class ExperimentError(ReproError):
    """An experiment harness failed to assemble its inputs."""


class ServeError(ReproError):
    """Base class for :mod:`repro.serve` failures (daemon, broker,
    client, protocol)."""


class ProtocolError(ServeError):
    """A serve request or response violates the JSON protocol
    (:mod:`repro.serve.protocol`): unknown kind, missing field, or a
    mistyped value."""


class AdmissionRejected(ServeError):
    """The serve broker refused a request before (or instead of)
    executing it.  ``reason`` is one of the
    :data:`repro.serve.protocol.REJECT_REASONS`: ``queue_full`` (bounded
    queue depth exceeded), ``deadline`` (the per-request deadline
    expired), or ``draining`` (the daemon is shutting down)."""

    def __init__(self, reason: str, message: str | None = None):
        self.reason = reason
        super().__init__(message or f"request rejected: {reason}")


class ServerUnavailable(ServeError):
    """The serve client could not reach (or lost) the daemon."""


class CircuitOpen(ServeError):
    """A client-side circuit breaker is open for the endpoint: recent
    calls failed repeatedly, so further calls are refused locally (fast)
    until the breaker's reset timeout admits a half-open probe.
    ``endpoint`` names the guarded path; ``retry_after`` is the seconds
    until the next probe is allowed."""

    def __init__(self, endpoint: str, retry_after: float):
        self.endpoint = endpoint
        self.retry_after = retry_after
        super().__init__(
            f"circuit open for {endpoint}: retry in {retry_after:.2f}s")


class PerfRegressionError(ReproError):
    """``tms-experiments report --check`` found a tracked metric that
    regressed beyond the configured threshold versus its baseline.  The
    CLI maps this to the typed exit code
    :data:`repro.experiments.report_cli.EXIT_REGRESSION`."""
