"""Speculated-dependence realisation and violation detection (the MDT).

The memory disambiguation table sits between L1 and L2 and records
speculative loads; when a less speculative thread's store hits a recorded
address, the reader thread (and everything more speculative) is squashed.

We model realisation per (dependence, consumer-thread) pair: an
inter-thread memory flow dependence ``x -> y`` with kernel distance ``k``
and probability ``p`` *manifests* for thread ``j`` with probability ``p``
(independent Bernoulli draws, seeded separately from the profiling run).
A manifested dependence is violated iff the consumer issued before the
producer completed:

    issue_j(y) < completion_{j-k}(x)

and the violation is *detected* when the producer's store completes (its
MDT lookup).
"""

from __future__ import annotations

import numpy as np

from .channels import KernelTimingTemplate, ThreadTiming

__all__ = ["RealisationTable", "detect_violation"]


class RealisationTable:
    """Pre-drawn Bernoulli realisations for every (dependence, thread).

    Drawing lazily per thread keeps memory bounded for long runs while
    staying deterministic for a given seed.
    """

    def __init__(self, template: KernelTimingTemplate, seed: int) -> None:
        self.template = template
        self._rng = np.random.default_rng(seed)
        self._cache: dict[int, tuple[bool, ...]] = {}

    def realised(self, thread: int) -> tuple[bool, ...]:
        """Which speculated dependences manifest for consumer ``thread``.

        Draws are made in thread order; querying out of order is supported
        through the cache.
        """
        got = self._cache.get(thread)
        if got is None:
            draws = self._rng.random(len(self.template.speculated)) \
                if self.template.speculated else np.empty(0)
            got = tuple(bool(d < p) for d, (_x, _y, _k, p)
                        in zip(draws, self.template.speculated))
            self._cache[thread] = got
        return got

    def forget(self, thread: int) -> None:
        """Drop cached draws for threads being re-executed?  No — the
        paper's model re-executes the *same* dynamic iteration, so the same
        dependences manifest; realisations are sticky by design."""
        # intentionally a no-op; documented for clarity.


def detect_violation(template: KernelTimingTemplate,
                     timings: dict[int, ThreadTiming],
                     realised: tuple[bool, ...],
                     thread: int) -> tuple[int, float] | None:
    """First violated speculated dependence for ``thread``, if any.

    Returns ``(dependence_index, detection_time)`` for the violation with
    the earliest detection time, or None.  Producers in threads that do not
    exist (j - k < 0) cannot be violated — their values are committed
    memory state.
    """
    worst: tuple[int, float] | None = None
    for idx, (x, y, k, _p) in enumerate(template.speculated):
        if not realised[idx]:
            continue
        producer_thread = thread - k
        if producer_thread < 0:
            continue
        prod = timings.get(producer_thread)
        if prod is None:
            continue
        cons = timings[thread]
        produced = prod.completion_time(template, x)
        consumed = cons.issue_time(template, y)
        if consumed < produced:
            if worst is None or produced < worst[1]:
                worst = (idx, produced)
    return worst
