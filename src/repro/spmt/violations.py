"""Speculated-dependence realisation and violation detection (the MDT).

The memory disambiguation table sits between L1 and L2 and records
speculative loads; when a less speculative thread's store hits a recorded
address, the reader thread (and everything more speculative) is squashed.

We model realisation per (dependence, consumer-thread) pair: an
inter-thread memory flow dependence ``x -> y`` with kernel distance ``k``
and probability ``p`` *manifests* for thread ``j`` with probability ``p``
(independent Bernoulli draws, seeded separately from the profiling run).
A manifested dependence is violated iff the consumer issued before the
producer completed:

    issue_j(y) < completion_{j-k}(x)

and the violation is *detected* when the producer's store completes (its
MDT lookup).
"""

from __future__ import annotations

import numpy as np

from .channels import KernelTimingTemplate, ThreadTiming

__all__ = ["RealisationTable", "detect_violation", "manifest_violations"]


class RealisationTable:
    """Pre-drawn Bernoulli realisations for every (dependence, thread).

    Drawing lazily per thread keeps memory bounded for long runs while
    staying deterministic for a given seed.
    """

    def __init__(self, template: KernelTimingTemplate, seed: int) -> None:
        self.template = template
        self._rng = np.random.default_rng(seed)
        self._cache: dict[int, tuple[bool, ...]] = {}
        self._probs = np.array(
            [p for (_x, _y, _k, p) in template.speculated], dtype=np.float64)
        # most recent batch draw (fast-path skip scans): first thread
        # index plus the boolean realisation matrix for its thread range.
        self._block_first = 0
        self._block: np.ndarray | None = None

    def realised(self, thread: int) -> tuple[bool, ...]:
        """Which speculated dependences manifest for consumer ``thread``.

        Draws are made in thread order; querying out of order is supported
        through the cache.
        """
        got = self._cache.get(thread)
        if got is None:
            block = self._block
            if block is not None and \
                    self._block_first <= thread < self._block_first + len(block):
                got = tuple(bool(x) for x in block[thread - self._block_first])
            else:
                draws = self._rng.random(len(self.template.speculated)) \
                    if self.template.speculated else np.empty(0)
                got = tuple(bool(d < p) for d, (_x, _y, _k, p)
                            in zip(draws, self.template.speculated))
            self._cache[thread] = got
        return got

    def block(self, first: int, count: int) -> np.ndarray:
        """Realisation matrix (``count`` x n_deps, bool) for threads
        ``[first, first + count)``, drawn in one batch.

        Batched draws consume the underlying stream exactly as ``count``
        sequential :meth:`realised` calls would, so per-thread and batched
        access interleave without diverging from the reference simulator.
        An overlap with the previous block is served from that block
        (those threads' draws were already consumed); only threads beyond
        it draw fresh values.  The caller must request threads in
        simulation order, which is how the event loop proceeds.
        """
        nspec = len(self.template.speculated)
        if nspec == 0:
            return np.zeros((count, 0), dtype=bool)
        parts: list[np.ndarray] = []
        draw_from = first
        prev, prev_first = self._block, self._block_first
        if prev is not None and prev_first <= first < prev_first + len(prev):
            overlap = prev[first - prev_first:first - prev_first + count]
            parts.append(overlap)
            draw_from = first + len(overlap)
        missing = first + count - draw_from
        if missing > 0:
            draws = self._rng.random((missing, nspec))
            parts.append(draws < self._probs)
        mat = parts[0] if len(parts) == 1 else np.concatenate(parts)
        self._block_first = first
        self._block = mat
        return mat

    def forget(self, thread: int) -> None:
        """Drop cached draws for threads being re-executed?  No — the
        paper's model re-executes the *same* dynamic iteration, so the same
        dependences manifest; realisations are sticky by design."""
        # intentionally a no-op; documented for clarity.


def detect_violation(template: KernelTimingTemplate,
                     timings: dict[int, ThreadTiming],
                     realised: tuple[bool, ...],
                     thread: int) -> tuple[int, float] | None:
    """First violated speculated dependence for ``thread``, if any.

    Returns ``(dependence_index, detection_time)`` for the violation with
    the earliest detection time, or None.  Producers in threads that do not
    exist (j - k < 0) cannot be violated — their values are committed
    memory state.
    """
    worst: tuple[int, float] | None = None
    for idx, (x, y, k, _p) in enumerate(template.speculated):
        if not realised[idx]:
            continue
        producer_thread = thread - k
        if producer_thread < 0:
            continue
        prod = timings.get(producer_thread)
        if prod is None:
            continue
        cons = timings[thread]
        produced = prod.completion_time(template, x)
        consumed = cons.issue_time(template, y)
        if consumed < produced:
            if worst is None or produced < worst[1]:
                worst = (idx, produced)
    return worst


def manifest_violations(template: KernelTimingTemplate,
                        timings: dict[int, ThreadTiming],
                        thread: int) -> list[int]:
    """Dependence indices that WOULD violate for ``thread`` if they
    manifested — :func:`detect_violation`'s timing condition evaluated
    under an all-manifest realisation.

    The steady-state fast path uses this to classify each dependence at
    each period offset: an empty list at every offset proves no
    realisation can produce a violation, and a non-empty one marks the
    dependences whose Bernoulli draws must be scanned before skipping.
    """
    out: list[int] = []
    cons = timings[thread]
    for idx, (x, y, k, _p) in enumerate(template.speculated):
        producer_thread = thread - k
        if producer_thread < 0:
            continue
        prod = timings.get(producer_thread)
        if prod is None:
            continue
        if cons.issue_time(template, y) < prod.completion_time(template, x):
            out.append(idx)
    return out
