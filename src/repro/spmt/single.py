"""Single-core baselines.

Two references the experiments compare against:

* :func:`simulate_sequential` — the paper's "single-threaded code"
  (Figure 5 baseline): the original, non-software-pipelined loop running on
  one core, modelled by acyclic list scheduling of one iteration plus
  ideal out-of-order overlap of successive iterations (see
  :mod:`repro.sched.listsched`; deliberately generous to the baseline);

* :func:`simulate_modulo_single_core` — a modulo-scheduled kernel executed
  conventionally on a single core: iterations initiate every II cycles and
  the pipeline drains over the epilogue, ``T = (N - 1) * II + span``.
"""

from __future__ import annotations

import math

from ..graph.ddg import DDG
from ..machine.resources import ResourceModel
from ..sched.listsched import list_schedule
from ..sched.schedule import Schedule
from .stats import SimStats

__all__ = ["simulate_sequential", "simulate_modulo_single_core"]


#: reorder-buffer capacity of the baseline core (ROB-class window of the
#: paper's era).  Bodies larger than the window cannot overlap successive
#: iterations at all; smaller bodies overlap up to ``window / n`` deep.
DEFAULT_REORDER_WINDOW = 112


def simulate_sequential(ddg: DDG, resources: ResourceModel,
                        iterations: int,
                        window: int = DEFAULT_REORDER_WINDOW) -> SimStats:
    """Single-threaded execution time of the original loop.

    The out-of-order core overlaps successive iterations only as far as its
    reorder window allows: with ``n`` instructions per iteration at most
    ``window / n`` iterations are in flight, bounding the initiation rate
    by ``span / (window / n)`` on top of the resource and recurrence
    bounds.  This is what makes software pipelining profitable on large
    recurrence-bound bodies (lucas) even single-threaded.
    """
    ls = list_schedule(ddg, resources)
    in_flight = max(1.0, window / max(1, len(ddg)))
    delta = max(ls.delta, math.ceil(ls.span / in_flight))
    stats = SimStats(iterations=iterations, ncore=1)
    if iterations:
        stats.total_cycles = float(ls.span + (iterations - 1) * delta)
    return stats


def simulate_modulo_single_core(schedule: Schedule, iterations: int) -> SimStats:
    """A software-pipelined kernel on one conventional core."""
    stats = SimStats(iterations=iterations, ncore=1)
    if iterations:
        stats.total_cycles = float((iterations - 1) * schedule.ii + schedule.span)
    return stats
