"""The SpMT multicore simulator's thread-level event loop.

Thread lifecycle (paper Section 3):

* thread ``j`` executes kernel iteration ``j`` on core ``j % ncore``;
* its first instruction is the spawn of thread ``j+1``, so
  ``start(j+1) >= start(j) + C_spn`` — spawns are sequential and never
  overlap;
* the thread may also wait for its core: the core is free once the thread
  ``ncore`` iterations earlier has committed (the double-buffered write
  buffer drains in the background, covered by ``C_ci``);
* RECVs stall until the producing thread's SEND value crosses the ring
  (:mod:`repro.spmt.channels`);
* when a manifested speculated dependence is violated, the consuming
  thread is squashed (``C_inv``) and re-executed on the same core; its
  synchronised inputs have typically already arrived, so the re-execution
  stalls less — the cost model's ``max(0, C_delay - C_spn)`` re-execution
  gain emerges on its own;
* threads commit in order behind the head thread, each paying ``C_ci``.

Approximations vs. the paper's SimpleScalar machine are per-thread (the
out-of-order dataflow stall model of :mod:`repro.spmt.channels`, the
more-speculative-squash count estimate) and documented where they live;
they do not affect the ordering or magnitude relationships the experiments
measure.

Two execution strategies produce byte-identical :class:`SimStats`:

* the **reference event loop** iterates every thread with the scalar
  resolver — forced by ``SimConfig.exact`` or ``REPRO_SIM_EXACT=1``;
* the default path vectorises per-thread arrival resolution over the
  kernel template and, once :class:`~repro.spmt.fastpath.
  SteadyStateDetector` proves the periodic steady state, fast-forwards
  the remaining iterations analytically.  Tracing, cache-miss draws and
  fault hooks all disengage the parts of the fast path they would
  perturb (see docs/simulator.md).
"""

from __future__ import annotations

import os

import numpy as np

from ..config import ArchConfig, SimConfig
from ..errors import SimulationError
from ..obs import metrics
from ..obs.events import get_tracer
from ..obs.spans import get_span_tracer
from ..sched.postpass import PipelinedLoop
from .channels import KernelTimingTemplate, ThreadTiming
from .fastpath import SteadyStateDetector
from .stats import SimStats
from .trace import ThreadRecord
from .violations import RealisationTable, detect_violation

__all__ = ["SpMTSimulator", "simulate"]

#: restart attempts per thread before declaring the simulation wedged.
_MAX_RESTARTS = 64

#: distinct relative-arrival vectors memoised per run by the vectorised
#: executor (steady and violation-periodic regimes cycle through a
#: handful; the cap only guards pathological non-repeating kernels).
_RESOLVE_CACHE_MAX = 4096


def _env_exact() -> bool:
    """``REPRO_SIM_EXACT=1`` forces the reference event loop everywhere
    (including session worker processes, which inherit the environment)."""
    return os.environ.get("REPRO_SIM_EXACT", "").strip() not in ("", "0")


class SpMTSimulator:
    """Simulates one pipelined loop on the SpMT machine."""

    def __init__(self, pipelined: PipelinedLoop, arch: ArchConfig,
                 sim: SimConfig | None = None, *,
                 template: KernelTimingTemplate | None = None,
                 exact: bool | None = None) -> None:
        self.pipelined = pipelined
        self.arch = arch
        self.sim = sim or SimConfig()
        # a session may hand us its memoised template; it is derived
        # solely from (pipelined, reg_comm_latency), so reuse is exact.
        self.template = template if template is not None else \
            KernelTimingTemplate(pipelined, arch.reg_comm_latency)
        if exact is None:
            exact = self.sim.exact
        self._exact = bool(exact) or _env_exact()
        # cache-perturbation state (miss rng + load indices) is derived
        # lazily inside the run so a reused simulator never replays a
        # previous run's rng position or a stale template's load set.
        self._cache_rng: np.random.Generator | None = None
        self._load_indices: list[int] | None = None
        #: no-stall shortcut hit diagnostics (reset per run)
        self._fast_calls = 0
        self._fast_hits = 0
        #: relative-arrival memo of the vectorised executor (reset per run)
        self._resolve_cache: dict[bytes, tuple[list[float], float, float]] = {}

    def run(self) -> SimStats:
        """Simulate all iterations; one ``sim.run`` span per call, with
        a ``sim.threads`` detail span around the per-thread event loop
        when ``--trace``-level spans are on."""
        spans = get_span_tracer()
        if not spans.enabled:
            return self._run()
        sched = self.pipelined.schedule
        with spans.span("sim.run", kernel=sched.ddg.name,
                        algorithm=sched.algorithm,
                        iterations=self.sim.iterations,
                        ncore=self.arch.ncore):
            with spans.span("sim.threads", detail=True,
                            threads=self.sim.iterations):
                return self._run()

    def _run(self) -> SimStats:
        arch = self.arch
        n = self.sim.iterations
        template = self.template
        realisations = RealisationTable(template, self.sim.seed)
        # re-derive perturbation state per run (satellite fix: a reused
        # simulator must not see a previous run's rng position)
        self._cache_rng = None
        self._load_indices = None
        self._fast_calls = 0
        self._fast_hits = 0
        self._resolve_cache = {}

        stats = SimStats(iterations=n, ncore=arch.ncore,
                         reg_comm_latency=arch.reg_comm_latency)
        timings: dict[int, ThreadTiming] = {}
        core_free = [0.0] * arch.ncore
        prev_start = -float(arch.spawn_overhead)
        prev_commit = 0.0
        events = 0

        trace = self.sim.trace
        tracer = get_tracer()

        # kernel distances are immutable for the run, so the retention
        # horizon is a loop constant (previously re-scanned every
        # iteration)
        max_hops = max(
            max((ch.hops for ch in template.channels), default=1),
            max((k for (_x, _y, k, _p) in template.speculated), default=1),
        )
        retention = max_hops + arch.ncore + 1

        # the vectorised resolver replaces the scalar one whenever nothing
        # needs the scalar loop's side channels (per-RECV stall logs, cache
        # draws, arrival perturbation)
        cls = type(self)
        vectorise = (not self._exact and not tracer.enabled
                     and arch.l1_miss_rate <= 0.0
                     and cls._perturb_arrivals is SpMTSimulator._perturb_arrivals)
        # the steady-state fast-forward additionally needs every thread to
        # be deterministic and unrecorded: no per-thread records, no fault
        # hooks of any kind
        detector = None
        if vectorise and not trace \
                and cls._start_delay is SpMTSimulator._start_delay \
                and cls._inject_violation is SpMTSimulator._inject_violation:
            candidate = SteadyStateDetector(template, arch, n)
            if candidate.viable:
                detector = candidate
                retention = max(retention, detector.retention)
        fastforwards = 0
        fastforwarded_threads = 0

        j = 0
        while j < n:
            if detector is not None:
                ff = detector.attempt(j, timings, realisations)
                if ff is not None:
                    stats.sync_stall_cycles += ff.stall_cycles
                    stats.misspeculations += ff.misspeculations
                    stats.squashed_threads += ff.squashed_threads
                    stats.wasted_execution_cycles += ff.wasted_cycles
                    stats.invalidation_cycles += ff.invalidation_cycles
                    timings = ff.timings
                    prev_start = ff.prev_start
                    prev_commit = ff.prev_commit
                    core_free = ff.core_free
                    fastforwards += 1
                    fastforwarded_threads += ff.skipped
                    j = ff.target
                    continue
            core = j % arch.ncore
            start = max(prev_start + arch.spawn_overhead, core_free[core])
            start += self._start_delay(j, core)
            restarts = 0
            thread_wasted = 0.0
            thread_squashed = 0
            stall_log: list[tuple[int, float, float]] | None = None
            while True:
                events += 1
                if events > self.sim.max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={self.sim.max_events}")
                if tracer.enabled:
                    stall_log = []
                    timing = self._execute(j, start, timings,
                                           stall_log=stall_log)
                elif vectorise:
                    timing = self._execute_fast(j, start, timings)
                else:
                    timing = self._execute(j, start, timings)
                timings[j] = timing
                violation = detect_violation(
                    template, timings, realisations.realised(j), j)
                injected = False
                if violation is None:
                    forced = self._inject_violation(j, core, restarts, timing)
                    if forced is not None:
                        violation = (-1, max(forced, start))
                        injected = True
                if violation is None:
                    break
                restarts += 1
                if restarts > _MAX_RESTARTS:
                    raise SimulationError(
                        f"thread {j} restarted more than {_MAX_RESTARTS} "
                        f"times; violation cannot clear")
                _idx, detected = violation
                stats.misspeculations += 1
                thread_wasted += max(0.0, detected - start)
                stats.invalidation_cycles += arch.invalidation_overhead
                # the violated thread plus all more speculative started
                # threads are squashed; more speculative threads have not
                # been computed yet (we process in order), so estimate how
                # many had started by detection time from the spawn chain —
                # capped by the threads that exist at all (n - 1 - j): a
                # violation on the most speculative thread squashes only
                # itself.  Thread j+i has started by detection time iff
                # i * C_spn <= gap; a free spawn means the whole window was
                # already running.
                gap = max(0.0, detected - start)
                spawn = float(arch.spawn_overhead)
                chain = int(gap // spawn) if spawn > 0.0 else arch.ncore - 1
                started_after = min(arch.ncore - 1, n - 1 - j, chain)
                thread_squashed += 1 + started_after
                # those threads' partial executions are wasted too: thread
                # start+i spawned ~i*C_spn after this one, so it ran for
                # detected - (start + i*C_spn) cycles before the squash.
                for i in range(1, started_after + 1):
                    thread_wasted += max(
                        0.0, detected - (start + i * arch.spawn_overhead))
                if tracer.enabled:
                    if injected:
                        tracer.emit("sim", "violation", ts=detected,
                                    thread=j, attempt=restarts, tid=core,
                                    injected=True)
                    else:
                        tracer.emit("sim", "violation", ts=detected,
                                    thread=j, attempt=restarts, tid=core)
                    tracer.emit("sim", "squash", ts=detected,
                                dur=float(arch.invalidation_overhead),
                                thread=j, squashed=1 + started_after,
                                tid=core)
                # re-execute on the same core after invalidation
                start = detected + arch.invalidation_overhead
            # committed execution: account its stalls and squash costs
            stats.sync_stall_cycles += timings[j].total_stall
            stats.wasted_execution_cycles += thread_wasted
            stats.squashed_threads += thread_squashed
            # in-order commit behind the head thread
            commit = max(timings[j].finish, prev_commit) + arch.commit_overhead
            core_free[core] = commit
            prev_commit = commit
            prev_start = timings[j].start
            if trace:
                stats.thread_records.append(ThreadRecord(
                    index=j, core=core, start=timings[j].start,
                    finish=timings[j].finish, commit=commit,
                    stall_cycles=timings[j].total_stall,
                    restarts=restarts))
            if tracer.enabled:
                self._emit_thread_events(tracer, j, core, timings[j],
                                         commit, restarts, stall_log)
            if detector is not None:
                detector.observe(j, timings[j], commit, restarts,
                                 thread_wasted, thread_squashed)
            # bound memory: drop state no longer reachable by any kernel
            # distance (communication hops or speculated distances)
            horizon = j - retention
            if horizon in timings:
                del timings[horizon]
            j += 1

        stats.total_cycles = prev_commit
        stats.send_recv_pairs = self.pipelined.comm.pairs_per_iteration * n
        stats.spawn_cycles = arch.spawn_overhead * n
        stats.commit_cycles = arch.commit_overhead * n
        if fastforwards:
            metrics.counter(
                "sim.fastforwards",
                "steady-state fast-forwards taken").inc(fastforwards)
            metrics.counter(
                "sim.fastforward_threads",
                "threads skipped analytically").inc(fastforwarded_threads)
        metrics.counter("sim.runs", "simulations completed").inc()
        metrics.counter("sim.threads", "threads committed").inc(n)
        metrics.counter("sim.violations", "misspeculations detected").inc(
            stats.misspeculations)
        metrics.counter("sim.squashed_threads", "threads squashed").inc(
            stats.squashed_threads)
        metrics.histogram(
            "sim.total_cycles", "total cycles per run").observe(
            stats.total_cycles)
        metrics.histogram(
            "sim.stall_cycles", "sync stall cycles per run").observe(
            stats.sync_stall_cycles)
        return stats

    # -- fault-injection hooks --------------------------------------------------
    #
    # No-op in the production simulator; repro.faults.injector overrides
    # them to perturb execution deterministically (spawn failures and core
    # stall bursts, operand-network jitter/loss, forced extra violations).
    # The hooks see only committed-model state, so the base event loop's
    # squash/recovery accounting — and every trace invariant — applies to
    # faulted runs unchanged.

    def _start_delay(self, j: int, core: int) -> float:
        """Extra cycles before thread ``j`` may start on ``core``."""
        return 0.0

    def _perturb_arrivals(self, j: int, arrivals: list[float]) -> list[float]:
        """Adjust per-channel value-arrival times for thread ``j``."""
        return arrivals

    def _inject_violation(self, j: int, core: int, attempt: int,
                          timing: ThreadTiming) -> float | None:
        """Detection time of a forced violation for thread ``j`` on this
        attempt, or ``None``.  Only consulted when no organic violation
        fired."""
        return None

    # -- event emission ---------------------------------------------------------

    def _emit_thread_events(self, tracer, j: int, core: int,
                            timing: ThreadTiming, commit: float,
                            restarts: int,
                            stall_log: list[tuple[int, float, float]] | None
                            ) -> None:
        """Per-thread trace events for the *committed* execution: the
        spawn of the successor, the execution span, each stalled RECV,
        every produced SEND, and the in-order commit."""
        arch = self.arch
        template = self.template
        start = timing.start
        tracer.emit("sim", "spawn", ts=start,
                    dur=float(arch.spawn_overhead),
                    thread=j, spawns=j + 1, tid=core)
        tracer.emit("sim", "exec", ts=start, dur=timing.finish - start,
                    thread=j, restarts=restarts,
                    stall=timing.total_stall, tid=core)
        if stall_log:
            for ci, ready_rel, wait in stall_log:
                ch = template.channels[ci]
                tracer.emit("sim", "recv_stall", ts=start + ready_rel,
                            dur=wait, thread=j, channel=ci,
                            producer=ch.producer, consumer=ch.consumer,
                            hops=ch.hops, tid=core)
        for ci, ch in enumerate(template.channels):
            tracer.emit("sim", "send",
                        ts=timing.completion_time(template, ch.producer),
                        thread=j, channel=ci, producer=ch.producer,
                        consumer=ch.consumer, hops=ch.hops, tid=core)
        tracer.emit("sim", "commit", ts=commit - arch.commit_overhead,
                    dur=float(arch.commit_overhead), thread=j, tid=core)

    # -- one thread execution ---------------------------------------------------

    def _execute(self, j: int, start: float,
                 timings: dict[int, ThreadTiming], *,
                 stall_log: list[tuple[int, float, float]] | None = None
                 ) -> ThreadTiming:
        """Resolve thread ``j``'s timing given all earlier threads."""
        template = self.template
        arrivals: list[float] = []
        for idx, ch in enumerate(template.channels):
            producer_thread = j - ch.hops
            if producer_thread < 0 or producer_thread not in timings:
                # live-in values were broadcast to every core before the
                # loop started (Section 3): available immediately.
                arrivals.append(float("-inf"))
            else:
                arrivals.append(
                    timings[producer_thread].value_arrival(template, idx))
        arrivals = self._perturb_arrivals(j, arrivals)
        return ThreadTiming.resolve(template, start, arrivals,
                                    extra_latency=self._draw_cache_extra(),
                                    stall_log=stall_log)

    def _execute_fast(self, j: int, start: float,
                      timings: dict[int, ThreadTiming]) -> ThreadTiming:
        """Vectorised :meth:`_execute`: one gather per distinct hop count
        resolves all arrivals, and a thread none of whose arrivals exceeds
        its consumer's dataflow-ready time reuses the template's shared
        no-stall timing.  Values are byte-identical to the scalar path:
        the gather performs the same float operations in the same
        association order, and any thread that might stall falls back to
        the scalar resolver.
        """
        template = self.template
        self._fast_calls += 1
        if template.n_channels == 0:
            self._fast_hits += 1
            return ThreadTiming.no_stall(template, start)
        arrivals = np.empty(template.n_channels, dtype=np.float64)
        for hops, cis, prod_idx in template.hop_groups:
            prod = timings.get(j - hops)
            if prod is None:
                # live-ins: broadcast before the loop started
                arrivals[cis] = -np.inf
            else:
                # ((start + issue) + lat) + hops * C_reg_com, term for
                # term as ThreadTiming.value_arrival associates it
                produced = ((prod.start + prod.issue_array()[prod_idx])
                            + template.latency_f[prod_idx])
                arrivals[cis] = produced + (hops * template.reg_comm_latency)
        rel = arrivals - start
        exceed = rel > template.base_cons_issue
        if not exceed.any():
            self._fast_hits += 1
            return ThreadTiming.no_stall(template, start)
        # the resolver is shift-invariant: the relative-arrival vector is
        # its complete input, and steady/violation-periodic regimes (and
        # even post-squash transients) cycle through a handful of
        # distinct vectors — memoise the relaxation per vector
        key = rel.tobytes()
        cached = self._resolve_cache.get(key)
        if cached is None:
            # only the stalled consumers' cone can deviate from the base
            # pattern: re-relax just that cone instead of the whole kernel
            seeds = template.chan_consumer_idx[exceed]
            t0 = ThreadTiming.resolve_partial(template, 0.0, rel.tolist(),
                                              seeds)
            cached = (t0.issue_rel, t0.total_stall, t0.finish)
            if len(self._resolve_cache) < _RESOLVE_CACHE_MAX:
                self._resolve_cache[key] = cached
        issue_rel, stall, finish_rel = cached
        return ThreadTiming(start=start, issue_rel=issue_rel,
                            total_stall=stall, finish=start + finish_rel)

    def _draw_cache_extra(self) -> list[int] | None:
        """Per-load latency perturbation from the probabilistic cache
        (None when miss rates are zero — the deterministic default).

        The rng and the template's load indices are derived on first use
        within a run (seed mix ``sim.seed ^ 0xCAC4E``), so every run of a
        simulator starts the miss stream from the same position and sees
        the current template.
        """
        arch = self.arch
        if arch.l1_miss_rate <= 0.0:
            return None
        if self._cache_rng is None:
            self._cache_rng = np.random.default_rng(self.sim.seed ^ 0xCAC4E)
            self._load_indices = [
                i for i, name in enumerate(self.template.names)
                if self.pipelined.schedule.ddg.node(name).opcode.is_load
            ]
        extra = [0] * len(self.template.names)
        for i in self._load_indices:
            if self._cache_rng.random() < arch.l1_miss_rate:
                if arch.l2_miss_rate > 0.0 and \
                        self._cache_rng.random() < arch.l2_miss_rate:
                    extra[i] = arch.l2_miss_latency - arch.l1_hit_latency
                else:
                    extra[i] = arch.l2_hit_latency - arch.l1_hit_latency
        return extra


def simulate(pipelined: PipelinedLoop, arch: ArchConfig,
             sim: SimConfig | None = None, *,
             template: KernelTimingTemplate | None = None) -> SimStats:
    """Convenience wrapper: simulate ``pipelined`` on ``arch``."""
    return SpMTSimulator(pipelined, arch, sim, template=template).run()
