"""The SpMT multicore simulator's thread-level event loop.

Thread lifecycle (paper Section 3):

* thread ``j`` executes kernel iteration ``j`` on core ``j % ncore``;
* its first instruction is the spawn of thread ``j+1``, so
  ``start(j+1) >= start(j) + C_spn`` — spawns are sequential and never
  overlap;
* the thread may also wait for its core: the core is free once the thread
  ``ncore`` iterations earlier has committed (the double-buffered write
  buffer drains in the background, covered by ``C_ci``);
* RECVs stall until the producing thread's SEND value crosses the ring
  (:mod:`repro.spmt.channels`);
* when a manifested speculated dependence is violated, the consuming
  thread is squashed (``C_inv``) and re-executed on the same core; its
  synchronised inputs have typically already arrived, so the re-execution
  stalls less — the cost model's ``max(0, C_delay - C_spn)`` re-execution
  gain emerges on its own;
* threads commit in order behind the head thread, each paying ``C_ci``.

Approximations vs. the paper's SimpleScalar machine are per-thread (the
out-of-order dataflow stall model of :mod:`repro.spmt.channels`, the
more-speculative-squash count estimate) and documented where they live;
they do not affect the ordering or magnitude relationships the experiments
measure.
"""

from __future__ import annotations

import numpy as np

from ..config import ArchConfig, SimConfig
from ..errors import SimulationError
from ..obs import metrics
from ..obs.events import get_tracer
from ..obs.spans import get_span_tracer
from ..sched.postpass import PipelinedLoop
from .channels import KernelTimingTemplate, ThreadTiming
from .stats import SimStats
from .trace import ThreadRecord
from .violations import RealisationTable, detect_violation

__all__ = ["SpMTSimulator", "simulate"]

#: restart attempts per thread before declaring the simulation wedged.
_MAX_RESTARTS = 64


class SpMTSimulator:
    """Simulates one pipelined loop on the SpMT machine."""

    def __init__(self, pipelined: PipelinedLoop, arch: ArchConfig,
                 sim: SimConfig | None = None, *,
                 template: KernelTimingTemplate | None = None) -> None:
        self.pipelined = pipelined
        self.arch = arch
        self.sim = sim or SimConfig()
        # a session may hand us its memoised template; it is derived
        # solely from (pipelined, reg_comm_latency), so reuse is exact.
        self.template = template if template is not None else \
            KernelTimingTemplate(pipelined, arch.reg_comm_latency)
        # per-thread cache perturbation: indices of the kernel's loads, for
        # drawing miss latencies when the architecture's miss rates are on.
        self._load_indices = [
            i for i, name in enumerate(self.template.names)
            if pipelined.schedule.ddg.node(name).opcode.is_load
        ]
        self._cache_rng = (np.random.default_rng(self.sim.seed ^ 0xCAC4E)
                          if arch.l1_miss_rate > 0.0 else None)

    def run(self) -> SimStats:
        """Simulate all iterations; one ``sim.run`` span per call, with
        a ``sim.threads`` detail span around the per-thread event loop
        when ``--trace``-level spans are on."""
        spans = get_span_tracer()
        if not spans.enabled:
            return self._run()
        sched = self.pipelined.schedule
        with spans.span("sim.run", kernel=sched.ddg.name,
                        algorithm=sched.algorithm,
                        iterations=self.sim.iterations,
                        ncore=self.arch.ncore):
            with spans.span("sim.threads", detail=True,
                            threads=self.sim.iterations):
                return self._run()

    def _run(self) -> SimStats:
        arch = self.arch
        n = self.sim.iterations
        template = self.template
        realisations = RealisationTable(template, self.sim.seed)

        stats = SimStats(iterations=n, ncore=arch.ncore,
                         reg_comm_latency=arch.reg_comm_latency)
        timings: dict[int, ThreadTiming] = {}
        commit_done: dict[int, float] = {}
        core_free = [0.0] * arch.ncore
        prev_start = -float(arch.spawn_overhead)
        prev_commit = 0.0
        events = 0

        trace = self.sim.trace
        tracer = get_tracer()
        for j in range(n):
            core = j % arch.ncore
            start = max(prev_start + arch.spawn_overhead, core_free[core])
            start += self._start_delay(j, core)
            restarts = 0
            stall_log: list[tuple[int, float, float]] | None = None
            while True:
                events += 1
                if events > self.sim.max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={self.sim.max_events}")
                if tracer.enabled:
                    stall_log = []
                timing = self._execute(j, start, timings, stall_log=stall_log)
                timings[j] = timing
                violation = detect_violation(
                    template, timings, realisations.realised(j), j)
                injected = False
                if violation is None:
                    forced = self._inject_violation(j, core, restarts, timing)
                    if forced is not None:
                        violation = (-1, max(forced, start))
                        injected = True
                if violation is None:
                    break
                restarts += 1
                if restarts > _MAX_RESTARTS:
                    raise SimulationError(
                        f"thread {j} restarted more than {_MAX_RESTARTS} "
                        f"times; violation cannot clear")
                _idx, detected = violation
                stats.misspeculations += 1
                stats.wasted_execution_cycles += max(0.0, detected - start)
                stats.invalidation_cycles += arch.invalidation_overhead
                # the violated thread plus all more speculative started
                # threads are squashed; more speculative threads have not
                # been computed yet (we process in order), so estimate how
                # many had started by detection time from the spawn chain —
                # capped by the threads that exist at all (n - 1 - j): a
                # violation on the most speculative thread squashes only
                # itself.
                started_after = min(
                    arch.ncore - 1, n - 1 - j,
                    int(max(0.0, detected - start)
                        // max(arch.spawn_overhead, 1)))
                stats.squashed_threads += 1 + started_after
                # those threads' partial executions are wasted too: thread
                # start+i spawned ~i*C_spn after this one, so it ran for
                # detected - (start + i*C_spn) cycles before the squash.
                for i in range(1, started_after + 1):
                    stats.wasted_execution_cycles += max(
                        0.0, detected - (start + i * arch.spawn_overhead))
                if tracer.enabled:
                    if injected:
                        tracer.emit("sim", "violation", ts=detected,
                                    thread=j, attempt=restarts, tid=core,
                                    injected=True)
                    else:
                        tracer.emit("sim", "violation", ts=detected,
                                    thread=j, attempt=restarts, tid=core)
                    tracer.emit("sim", "squash", ts=detected,
                                dur=float(arch.invalidation_overhead),
                                thread=j, squashed=1 + started_after,
                                tid=core)
                # re-execute on the same core after invalidation
                start = detected + arch.invalidation_overhead
            # committed execution: account its stalls
            stats.sync_stall_cycles += timings[j].total_stall
            # in-order commit behind the head thread
            commit = max(timings[j].finish, prev_commit) + arch.commit_overhead
            commit_done[j] = commit
            core_free[core] = commit
            prev_commit = commit
            prev_start = timings[j].start
            if trace:
                stats.thread_records.append(ThreadRecord(
                    index=j, core=core, start=timings[j].start,
                    finish=timings[j].finish, commit=commit,
                    stall_cycles=timings[j].total_stall,
                    restarts=restarts))
            if tracer.enabled:
                self._emit_thread_events(tracer, j, core, timings[j],
                                         commit, restarts, stall_log)
            # bound memory: drop state no longer reachable by any kernel
            # distance (communication hops or speculated distances)
            max_hops = max(
                max((ch.hops for ch in template.channels), default=1),
                max((k for (_x, _y, k, _p) in template.speculated), default=1),
            )
            horizon = j - max_hops - arch.ncore - 1
            if horizon in timings:
                del timings[horizon]

        stats.total_cycles = prev_commit
        stats.send_recv_pairs = self.pipelined.comm.pairs_per_iteration * n
        stats.spawn_cycles = arch.spawn_overhead * n
        stats.commit_cycles = arch.commit_overhead * n
        metrics.counter("sim.runs", "simulations completed").inc()
        metrics.counter("sim.threads", "threads committed").inc(n)
        metrics.counter("sim.violations", "misspeculations detected").inc(
            stats.misspeculations)
        metrics.counter("sim.squashed_threads", "threads squashed").inc(
            stats.squashed_threads)
        metrics.histogram(
            "sim.total_cycles", "total cycles per run").observe(
            stats.total_cycles)
        metrics.histogram(
            "sim.stall_cycles", "sync stall cycles per run").observe(
            stats.sync_stall_cycles)
        return stats

    # -- fault-injection hooks --------------------------------------------------
    #
    # No-op in the production simulator; repro.faults.injector overrides
    # them to perturb execution deterministically (spawn failures and core
    # stall bursts, operand-network jitter/loss, forced extra violations).
    # The hooks see only committed-model state, so the base event loop's
    # squash/recovery accounting — and every trace invariant — applies to
    # faulted runs unchanged.

    def _start_delay(self, j: int, core: int) -> float:
        """Extra cycles before thread ``j`` may start on ``core``."""
        return 0.0

    def _perturb_arrivals(self, j: int, arrivals: list[float]) -> list[float]:
        """Adjust per-channel value-arrival times for thread ``j``."""
        return arrivals

    def _inject_violation(self, j: int, core: int, attempt: int,
                          timing: ThreadTiming) -> float | None:
        """Detection time of a forced violation for thread ``j`` on this
        attempt, or ``None``.  Only consulted when no organic violation
        fired."""
        return None

    # -- event emission ---------------------------------------------------------

    def _emit_thread_events(self, tracer, j: int, core: int,
                            timing: ThreadTiming, commit: float,
                            restarts: int,
                            stall_log: list[tuple[int, float, float]] | None
                            ) -> None:
        """Per-thread trace events for the *committed* execution: the
        spawn of the successor, the execution span, each stalled RECV,
        every produced SEND, and the in-order commit."""
        arch = self.arch
        template = self.template
        start = timing.start
        tracer.emit("sim", "spawn", ts=start,
                    dur=float(arch.spawn_overhead),
                    thread=j, spawns=j + 1, tid=core)
        tracer.emit("sim", "exec", ts=start, dur=timing.finish - start,
                    thread=j, restarts=restarts,
                    stall=timing.total_stall, tid=core)
        if stall_log:
            for ci, ready_rel, wait in stall_log:
                ch = template.channels[ci]
                tracer.emit("sim", "recv_stall", ts=start + ready_rel,
                            dur=wait, thread=j, channel=ci,
                            producer=ch.producer, consumer=ch.consumer,
                            hops=ch.hops, tid=core)
        for ci, ch in enumerate(template.channels):
            tracer.emit("sim", "send",
                        ts=timing.completion_time(template, ch.producer),
                        thread=j, channel=ci, producer=ch.producer,
                        consumer=ch.consumer, hops=ch.hops, tid=core)
        tracer.emit("sim", "commit", ts=commit - arch.commit_overhead,
                    dur=float(arch.commit_overhead), thread=j, tid=core)

    # -- one thread execution ---------------------------------------------------

    def _execute(self, j: int, start: float,
                 timings: dict[int, ThreadTiming], *,
                 stall_log: list[tuple[int, float, float]] | None = None
                 ) -> ThreadTiming:
        """Resolve thread ``j``'s timing given all earlier threads."""
        template = self.template
        arrivals: list[float] = []
        for idx, ch in enumerate(template.channels):
            producer_thread = j - ch.hops
            if producer_thread < 0 or producer_thread not in timings:
                # live-in values were broadcast to every core before the
                # loop started (Section 3): available immediately.
                arrivals.append(float("-inf"))
            else:
                arrivals.append(
                    timings[producer_thread].value_arrival(template, idx))
        arrivals = self._perturb_arrivals(j, arrivals)
        return ThreadTiming.resolve(template, start, arrivals,
                                    extra_latency=self._draw_cache_extra(),
                                    stall_log=stall_log)

    def _draw_cache_extra(self) -> list[int] | None:
        """Per-load latency perturbation from the probabilistic cache
        (None when miss rates are zero — the deterministic default)."""
        if self._cache_rng is None:
            return None
        arch = self.arch
        extra = [0] * len(self.template.names)
        for i in self._load_indices:
            if self._cache_rng.random() < arch.l1_miss_rate:
                if arch.l2_miss_rate > 0.0 and \
                        self._cache_rng.random() < arch.l2_miss_rate:
                    extra[i] = arch.l2_miss_latency - arch.l1_hit_latency
                else:
                    extra[i] = arch.l2_hit_latency - arch.l1_hit_latency
        return extra


def simulate(pipelined: PipelinedLoop, arch: ArchConfig,
             sim: SimConfig | None = None, *,
             template: KernelTimingTemplate | None = None) -> SimStats:
    """Convenience wrapper: simulate ``pipelined`` on ``arch``."""
    return SpMTSimulator(pipelined, arch, sim, template=template).run()
