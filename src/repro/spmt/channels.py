"""Per-thread kernel timing with RECV stalls (out-of-order dataflow model).

One thread executes one kernel iteration on its (4-wide, out-of-order)
core.  Instruction issue is modelled as dataflow over the kernel's
*intra-thread* dependences:

    issue(v) = max( start + row(v),                       # issue schedule
                    max over intra preds u: issue(u) + lat(u),
                    max over incoming channels: value arrival )

A RECV waiting on an empty queue therefore delays the consumer and its
intra-thread *dependents* — but not independent instructions, and crucially
the wait does **not** accumulate across threads unless the dependence chain
itself crosses threads (this is what an out-of-order core does, and what
distinguishes "each thread stalls C_delay" from "threads are fully
serialised"; the paper's Figure 6(a) stall counts are exactly these waits).

The thread occupies its core from ``start`` to ``finish = max issue+lat``;
stalls extend occupancy and thereby throughput, which is how SMS's large
sync delays turn into the slowdowns of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sched.postpass import PipelinedLoop

__all__ = ["KernelTimingTemplate", "ThreadTiming"]


@dataclass(frozen=True)
class _ChannelRef:
    """A synchronised dependence as the consumer thread sees it."""

    producer: str
    consumer: str
    hops: int
    consumer_index: int
    producer_index: int


class KernelTimingTemplate:
    """Schedule-derived constants shared by all threads of one run."""

    def __init__(self, pipelined: PipelinedLoop, reg_comm_latency: int) -> None:
        sched = pipelined.schedule
        ddg = sched.ddg
        self.ii = sched.ii
        self.reg_comm_latency = reg_comm_latency
        self.names: list[str] = [n.name for n in ddg.nodes]
        self.index: dict[str, int] = {nm: i for i, nm in enumerate(self.names)}
        self.row = np.array([sched.row(nm) for nm in self.names], dtype=np.int64)
        self.latency = np.array([n.latency for n in ddg.nodes], dtype=np.int64)
        #: no-stall completion span of one kernel execution
        self.span = int((self.row + self.latency).max())

        # intra-thread dataflow edges: flow dependences with kernel
        # distance 0, topologically ordered (the distance-0 subgraph is a
        # DAG by construction; d_ker-0 edges are a subset shifted by
        # stages, still acyclic because slot(dst) >= slot(src) + delay).
        intra: list[tuple[int, int]] = []  # (src_index, dst_index)
        for e in ddg.edges:
            if e.dtype.value == "flow" and sched.d_ker(e) == 0:
                intra.append((self.index[e.src], self.index[e.dst]))
        order = np.argsort(np.array([sched.slot(nm) for nm in self.names]))
        self.topo: list[int] = [int(i) for i in order]
        self.intra_preds: list[list[int]] = [[] for _ in self.names]
        for src, dst in intra:
            self.intra_preds[dst].append(src)
        #: forward adjacency of the same DAG (partial re-resolution
        #: walks the affected cone downstream from stalled consumers)
        self.intra_succs: list[list[int]] = [[] for _ in self.names]
        for src, dst in intra:
            self.intra_succs[src].append(dst)

        #: incoming synchronised dependences (consumer side)
        self.channels: list[_ChannelRef] = [
            _ChannelRef(
                producer=ch.edge.src,
                consumer=ch.edge.dst,
                hops=ch.hops,
                consumer_index=self.index[ch.edge.dst],
                producer_index=self.index[ch.edge.src],
            )
            for ch in pipelined.comm.channels
        ]
        self.channels_into: list[list[int]] = [[] for _ in self.names]
        for ci, ch in enumerate(self.channels):
            self.channels_into[ch.consumer_index].append(ci)

        #: speculated memory dependences (producer completes in thread j-k,
        #: consumer issues in thread j).
        self.speculated = [
            (e.src, e.dst, sched.d_ker(e), e.probability)
            for e in pipelined.speculated
        ]

        # -- vectorised-executor views (simulator fast path) ---------------
        # Channels grouped by hop count: arrivals for one group come from a
        # single producer thread (j - hops), so each group is one gather.
        self.latency_f = self.latency.astype(np.float64)
        self.n_channels = len(self.channels)
        self.chan_consumer_idx = np.array(
            [ch.consumer_index for ch in self.channels], dtype=np.int64)
        by_hops: dict[int, list[int]] = {}
        for ci, ch in enumerate(self.channels):
            by_hops.setdefault(ch.hops, []).append(ci)
        #: list of (hops, channel_indices, producer_node_indices)
        self.hop_groups: list[tuple[int, np.ndarray, np.ndarray]] = [
            (hops,
             np.array(cis, dtype=np.int64),
             np.array([self.channels[ci].producer_index for ci in cis],
                      dtype=np.int64))
            for hops, cis in sorted(by_hops.items())
        ]
        # The no-stall reference execution: what resolve() returns when
        # every arrival is satisfied by dataflow alone.  Computed by the
        # scalar resolver itself so the values are definitionally identical.
        _base = ThreadTiming.resolve(
            self, 0.0, [float("-inf")] * self.n_channels)
        #: issue_rel of a stall-free thread (shared, read-only)
        self.base_issue_rel: list[float] = _base.issue_rel
        self.base_issue = np.array(_base.issue_rel, dtype=np.float64)
        #: finish - start of a stall-free thread
        self.base_finish: float = _base.finish
        #: base issue time of each channel's consumer: an arrival at or
        #: below this threshold cannot stall anything.
        self.base_cons_issue = (self.base_issue[self.chan_consumer_idx]
                                if self.n_channels else
                                np.empty(0, dtype=np.float64))


@dataclass
class ThreadTiming:
    """Resolved timing of one thread execution (times relative to start)."""

    start: float
    issue_rel: list[float]
    total_stall: float
    finish: float

    @classmethod
    def resolve(cls, template: KernelTimingTemplate, start: float,
                arrivals: Sequence[float],
                extra_latency: Sequence[int] | None = None,
                stall_log: list[tuple[int, float, float]] | None = None
                ) -> "ThreadTiming":
        """Dataflow timing given per-channel value-arrival times.

        ``arrivals[i]`` is the absolute time channel ``i``'s value is ready
        in this thread's receive queue.  ``extra_latency`` optionally
        lengthens individual instructions (cache misses).  ``stall_log``,
        when given, collects one ``(channel_index, ready_rel, wait)``
        entry per RECV that actually stalled — the tracer's per-channel
        view of ``total_stall``.
        """
        row = template.row
        lat = template.latency
        issue: list[float] = [0.0] * len(row)
        stall = 0.0
        finish = 0.0
        for i in template.topo:
            t = float(row[i])
            for p in template.intra_preds[i]:
                lp = float(lat[p])
                if extra_latency is not None:
                    lp += extra_latency[p]
                ready = issue[p] + lp
                if ready > t:
                    t = ready
            for ci in template.channels_into[i]:
                arr_rel = arrivals[ci] - start
                if arr_rel > t:
                    if stall_log is not None:
                        stall_log.append((ci, t, arr_rel - t))
                    stall += arr_rel - t
                    t = arr_rel
            issue[i] = t
            li = float(lat[i])
            if extra_latency is not None:
                li += extra_latency[i]
            if t + li > finish:
                finish = t + li
        return cls(start=start, issue_rel=issue, total_stall=stall,
                   finish=start + finish)

    @classmethod
    def resolve_partial(cls, template: KernelTimingTemplate, start: float,
                        arrivals: Sequence[float],
                        seeds: Sequence[int]) -> "ThreadTiming":
        """:meth:`resolve` when only ``seeds`` — the consumer nodes whose
        channel arrival exceeds their stall-free issue time — can perturb
        the stall-free execution: relax just the affected cone over the
        template's precomputed base pattern.

        Byte-identical to :meth:`resolve`: an unaffected node's running
        issue time is at least its base issue time at every channel
        comparison (arrivals only add delay), so an arrival at or below
        the base threshold can neither stall nor raise it — those nodes
        keep their base values and contribute exactly ``0.0`` stall, and
        the affected nodes replay the scalar loop's float operations in
        the same topological order.
        """
        row = template.row
        lat = template.latency
        issue: list[float] = list(template.base_issue_rel)
        dirty = set(seeds)
        stall = 0.0
        finish = template.base_finish
        for i in template.topo:
            if i not in dirty:
                continue
            t = float(row[i])
            for p in template.intra_preds[i]:
                ready = issue[p] + float(lat[p])
                if ready > t:
                    t = ready
            for ci in template.channels_into[i]:
                arr_rel = arrivals[ci] - start
                if arr_rel > t:
                    stall += arr_rel - t
                    t = arr_rel
            if t != issue[i]:
                issue[i] = t
                for s in template.intra_succs[i]:
                    dirty.add(s)
            top = t + float(lat[i])
            if top > finish:
                finish = top
        return cls(start=start, issue_rel=issue, total_stall=stall,
                   finish=start + finish)

    @classmethod
    def no_stall(cls, template: KernelTimingTemplate,
                 start: float) -> "ThreadTiming":
        """The stall-free execution at ``start``.

        Byte-identical to :meth:`resolve` whenever no arrival exceeds its
        consumer's dataflow-ready time (then every relaxation in the
        scalar loop is a no-op and the issue pattern is the template's
        precomputed base).  ``issue_rel`` is shared with the template —
        callers treat timings as immutable.
        """
        return cls(start=start, issue_rel=template.base_issue_rel,
                   total_stall=0.0, finish=start + template.base_finish)

    def shifted(self, delta: float) -> "ThreadTiming":
        """This timing translated ``delta`` cycles later (issue pattern
        shared — relative times are unchanged by translation)."""
        return ThreadTiming(start=self.start + delta,
                            issue_rel=self.issue_rel,
                            total_stall=self.total_stall,
                            finish=self.finish + delta)

    def issue_array(self) -> np.ndarray:
        """``issue_rel`` as a float64 array, cached on the instance."""
        arr = getattr(self, "_issue_np", None)
        if arr is None:
            arr = np.asarray(self.issue_rel, dtype=np.float64)
            self._issue_np = arr
        return arr

    def issue_time(self, template: KernelTimingTemplate, name: str) -> float:
        return self.start + self.issue_rel[template.index[name]]

    def completion_time(self, template: KernelTimingTemplate, name: str) -> float:
        idx = template.index[name]
        return self.start + self.issue_rel[idx] + float(template.latency[idx])

    def value_arrival(self, template: KernelTimingTemplate,
                      channel_index: int) -> float:
        """When this thread's produced value for channel ``channel_index``
        reaches the consumer ``hops`` threads downstream: one full
        communication latency per ring hop after the producer completes."""
        ch = template.channels[channel_index]
        produced = (self.start + self.issue_rel[ch.producer_index]
                    + float(template.latency[ch.producer_index]))
        return produced + ch.hops * template.reg_comm_latency
