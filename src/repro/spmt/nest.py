"""Loop-nest execution: amortisation of per-entry overheads.

The paper parallelises *innermost* loops only and names outer-loop support
as future work (Section 6).  This module models why that matters: every
entry into an SpMT-parallelised inner loop pays

* a **live-in broadcast** — the registers holding the loop's live-ins are
  copied to every participating core (Section 3: "this will happen only
  once for a loop"), one ring hop per core: ``(ncore - 1) * C_reg_com``;
* the **pipeline fill** — the first ``num_stages - 1`` kernel iterations
  ramp up before all cores contribute;

so short inner trip counts amortise poorly.  Two strategies are modelled
for a two-level nest with independent outer iterations:

* ``simulate_nest_inner_tms`` — the paper's approach: each outer iteration
  runs the TMS-parallelised inner loop across all cores;
* ``simulate_nest_outer_parallel`` — the classic alternative: outer
  iterations are dealt round-robin to cores, each running the inner loop
  single-threaded (no speculation hardware needed, no per-entry ramp, but
  no help for a *single* traversal and no use for DOACROSS outer loops).

Comparing them over inner trip counts reproduces the crossover that
motivates the future work.
"""

from __future__ import annotations

import math

from ..config import ArchConfig, SimConfig
from ..graph.ddg import DDG
from ..machine.resources import ResourceModel
from ..sched.postpass import PipelinedLoop
from .sim import simulate
from .single import simulate_sequential
from .stats import SimStats

__all__ = [
    "loop_entry_overhead",
    "simulate_nest_inner_tms",
    "simulate_nest_outer_parallel",
]


def loop_entry_overhead(pipelined: PipelinedLoop, arch: ArchConfig) -> float:
    """Cycles paid on every entry into the SpMT-parallelised loop."""
    broadcast = (arch.ncore - 1) * arch.reg_comm_latency
    fill = (pipelined.num_stages - 1) * pipelined.ii / arch.ncore
    return broadcast + fill


def simulate_nest_inner_tms(pipelined: PipelinedLoop, arch: ArchConfig,
                            outer_trip: int, inner_trip: int,
                            seed: int = 0xACE5) -> SimStats:
    """Run ``outer_trip`` entries of the parallelised inner loop."""
    inner = simulate(pipelined, arch,
                     SimConfig(iterations=inner_trip, seed=seed))
    per_entry = loop_entry_overhead(pipelined, arch) + inner.total_cycles
    stats = SimStats(iterations=outer_trip * inner_trip, ncore=arch.ncore,
                     reg_comm_latency=arch.reg_comm_latency)
    stats.total_cycles = outer_trip * per_entry
    stats.sync_stall_cycles = outer_trip * inner.sync_stall_cycles
    stats.send_recv_pairs = outer_trip * inner.send_recv_pairs
    stats.misspeculations = outer_trip * inner.misspeculations
    return stats


def simulate_nest_outer_parallel(ddg: DDG, resources: ResourceModel,
                                 arch: ArchConfig,
                                 outer_trip: int, inner_trip: int) -> SimStats:
    """Independent outer iterations dealt round-robin to cores, each
    running the inner loop single-threaded."""
    single = simulate_sequential(ddg, resources, inner_trip)
    waves = math.ceil(outer_trip / arch.ncore)
    stats = SimStats(iterations=outer_trip * inner_trip, ncore=arch.ncore)
    # one broadcast of the nest's live-ins at nest entry
    stats.total_cycles = (waves * single.total_cycles
                          + (arch.ncore - 1) * arch.reg_comm_latency)
    return stats
