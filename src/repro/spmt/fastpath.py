"""Steady-state detection and analytic fast-forward for the simulator.

The thread recurrence the event loop iterates —

    start(j)  = max(start(j-1) + C_spn, core_free[j % ncore])
    timing(j) = resolve(start(j), arrivals from threads j - hops)
    commit(j) = max(finish(j), commit(j-1)) + C_ci

— is a max-plus system over the kernel template's constants, so after a
transient it settles into a periodic regime: thread ``j + P`` replays
thread ``j`` shifted by a constant ``D`` cycles.  The state period ``P``
is always a multiple of ``ncore`` (core affinity must line up) but its
other factor is the cyclicity of the system's critical circuit, which is
*not* predictable from the kernel distances alone — so the detector
verifies candidate periods at successive multiples of
``base = lcm(ncore, channel hops, speculated distances)`` against the
recorded history and uses the first one that proves out.

The periodic regime may *include* misspeculations: a speculated
dependence with probability 1 violates on every thread (the paper's SMS
pathology), and the squash/restart cascade is a deterministic function
of the feeder timings and the realisation vector — so a pattern of
"execute, violate at a fixed relative time, restart, commit" replays
shifted by ``D`` exactly like a clean one.  The detector therefore
records each thread's restart count and its squash-statistics deltas and
verifies them as part of the period.

Proof obligations before a skip (all checked, never assumed):

* **Periodicity** — over the last ``P`` threads, ``start``/``commit``/
  ``finish`` advance by exactly ``D`` versus ``P`` threads earlier while
  the per-thread stall, restart count, wasted-execution and
  squashed-thread deltas are unchanged; the threads that feed future
  arrivals (the last ``max_dist + 1``) additionally have identical
  ``issue_rel`` patterns.  With that window fixed, induction over ``j``
  extends the pattern to every future thread: ``max``/``+`` commute with
  the shift.
* **Integrality** — the induction argument needs exact arithmetic, so
  every window value (and ``D`` and ``C_spn``) must be an integral float
  and the shifted magnitudes must stay below 2**52.  Fractional timings
  fall back to the event loop rather than risk one ulp of drift.
* **Realisation safety** — the realisation RNG draws per thread, so the
  skip must not change *which* outcomes future threads see.  Deps with
  probability 0 or 1 are deterministic and need no scan (their
  violations, if any, are part of the verified pattern).  Probabilistic
  deps (``0 < p < 1``) have their Bernoulli draws batch-scanned in
  stream order (:meth:`RealisationTable.block`); the skip stops at the
  first thread where a probabilistic manifestation could change the
  outcome — one that would violate under the pattern timings, or one
  landing on a pattern offset that restarts (where it could perturb an
  intermediate attempt of the cascade).  That thread, and everything
  after it, runs through the exact loop.

``SimStats`` accumulated across a skip are affine in the skipped count:
the stall/wasted/squash/restart patterns sum per period, and
spawn/commit/pair totals are already ``N``-proportional.  After a skip
the history rings are backfilled from the proven pattern, so the
detector can re-lock immediately after the single exact thread a scan
stop inserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lcm

import numpy as np

from ..config import ArchConfig
from .channels import KernelTimingTemplate, ThreadTiming
from .violations import RealisationTable, manifest_violations

__all__ = ["FastForward", "SteadyStateDetector"]

#: periods past this are not worth proving (the verification window and
#: per-attempt cost grow with P; real ring kernels sit far below this).
_MAX_PERIOD = 512

#: candidate periods tried per attempt: base, 2*base, ... up to this many.
_MAX_MULTIPLES = 16

#: threads per batched realisation draw while scanning for the next
#: manifest-unsafe thread (bounds the retained block's memory).
_SCAN_CHUNK = 1 << 15

#: cap on the attempt back-off gap for kernels that never lock.
_MAX_BACKOFF = 1 << 14

#: shifted timing values must stay exactly representable.
_MAX_MAGNITUDE = float(2 ** 52)


@dataclass
class FastForward:
    """A verified skip: the event-loop state at thread ``target``."""

    target: int
    skipped: int
    stall_cycles: float
    prev_start: float
    prev_commit: float
    core_free: list[float]
    timings: dict[int, ThreadTiming]
    #: squash statistics accumulated over the skipped range (all zero
    #: for a violation-free pattern).
    misspeculations: int = 0
    squashed_threads: int = 0
    wasted_cycles: float = 0.0
    invalidation_cycles: float = 0.0


class SteadyStateDetector:
    """Watches committed threads for the periodic fixed point."""

    def __init__(self, template: KernelTimingTemplate, arch: ArchConfig,
                 n: int) -> None:
        self.template = template
        self.arch = arch
        self.n = n
        distances = {ch.hops for ch in template.channels}
        distances |= {k for (_x, _y, k, _p) in template.speculated}
        self.max_dist = max(distances, default=1)
        base = arch.ncore
        for d in sorted(distances):
            if d > 0:
                base = lcm(base, d)
        self.base = base
        self.candidates = [base * k for k in range(1, _MAX_MULTIPLES + 1)
                           if base * k <= _MAX_PERIOD]
        p_max = self.candidates[-1] if self.candidates else base
        #: ThreadTiming entries the simulator must retain for us (the
        #: largest candidate's verification reaches P + max_dist + 1 back).
        self.retention = p_max + self.max_dist + 2
        self.viable = (base <= _MAX_PERIOD
                       and n > 2 * base + self.max_dist + 2
                       and float(arch.spawn_overhead).is_integer())
        #: deps whose manifestation is a coin flip (0 < p < 1); the
        #: deterministic rest either never manifests or is part of the
        #: verified pattern.
        self.prob_idx = [i for i, (_x, _y, _k, p)
                         in enumerate(template.speculated)
                         if 0.0 < p < 1.0]
        self.next_try = 0
        self._gap = base
        #: sorted thread indices (within the ring horizon) that restarted;
        #: lets an attempt reject candidates whose window would contain a
        #: non-periodic restart without touching numpy at all.
        self._restart_log: list[int] = []
        #: per-candidate retry gates: a failed verification reports the
        #: newest offending window position, and the candidate is not
        #: re-verified until that position has scrolled out of its window.
        self._cand_gate: dict[int, int] = {}
        #: scalar history rings sized for the largest candidate's window;
        #: entries before ``valid_from`` are stale (never observed).
        self.valid_from = 0
        self.size = 2 * p_max + self.max_dist + 2
        self._rstart = np.zeros(self.size, dtype=np.float64)
        self._rstall = np.zeros(self.size, dtype=np.float64)
        self._rfinish = np.zeros(self.size, dtype=np.float64)
        self._rcommit = np.zeros(self.size, dtype=np.float64)
        self._rrestarts = np.zeros(self.size, dtype=np.int64)
        self._rwasted = np.zeros(self.size, dtype=np.float64)
        self._rsquash = np.zeros(self.size, dtype=np.int64)

    # -- observation --------------------------------------------------------

    def observe(self, j: int, timing: ThreadTiming, commit: float,
                restarts: int, wasted: float, squashed: int) -> None:
        """Record thread ``j``'s committed execution (``wasted`` and
        ``squashed`` are this thread's contributions to the run stats)."""
        i = j % self.size
        self._rstart[i] = timing.start
        self._rstall[i] = timing.total_stall
        self._rfinish[i] = timing.finish
        self._rcommit[i] = commit
        self._rrestarts[i] = restarts
        self._rwasted[i] = wasted
        self._rsquash[i] = squashed
        if restarts:
            # a squash is a re-lock opportunity: probe at the base
            # cadence again
            self._gap = self.base
            # an isolated violation in an otherwise clean regime knocks
            # the pattern out for exactly one verification window — aim
            # the next attempt right past it.  When violations are the
            # regime (restarts in the recent log too) the pattern can
            # re-verify with the restarts in it, so leave the schedule to
            # the back-off machinery instead of pushing it out forever.
            log = self._restart_log
            if not (log and log[-1] >= j - self.base):
                self.next_try = j + 2 * self.base + self.max_dist + 2
            log.append(j)

    # -- attempt ------------------------------------------------------------

    def attempt(self, t: int, timings: dict[int, ThreadTiming],
                realisations: RealisationTable) -> FastForward | None:
        """Try to fast-forward from thread ``t`` (threads [0, t) are
        committed).  Returns the verified skip, or None to keep iterating."""
        if t < self.next_try or t >= self.n:
            return None
        avail = t - self.valid_from
        tried = False
        log = self._restart_log
        while log and log[0] < t - self.size:
            log.pop(0)
        gates = self._cand_gate
        earliest: int | None = None
        for P in self.candidates:
            if avail < 2 * P + self.max_dist + 2:
                break
            tried = True
            gate = gates.get(P, 0)
            if t < gate:
                earliest = gate if earliest is None else min(earliest, gate)
                continue
            # restart positions in the window must be P-periodic; the
            # sparse log settles that in pure python, so the (frequent)
            # "isolated restart still in window" case never pays for a
            # numpy verification
            r_new = [x for x in log if x >= t - P]
            r_old = [x - (t - 2 * P) for x in log if t - 2 * P <= x < t - P]
            if len(r_new) != len(r_old) or \
                    any(a - (t - P) != b for a, b in zip(r_new, r_old)):
                # unaligned restarts: retry once the newest one has
                # scrolled out of the 2P window (earlier re-checks would
                # find the same mismatch)
                gate = max(x for x in log if x >= t - 2 * P) + 2 * P + 1
                gates[P] = gate
                earliest = gate if earliest is None else min(earliest, gate)
                continue
            D, retry = self._verify(t, P)
            if D is None:
                gates[P] = retry
                earliest = retry if earliest is None \
                    else min(earliest, retry)
                continue
            status, unsafe, blocked = self._classify(t, P, timings,
                                                     realisations)
            if status == "blocked":
                # no candidate can succeed while the ambiguous thread is
                # inside the (smallest) verification window: retry once
                # it has scrolled out
                self.next_try = max(t + 1, blocked + self.base + 1)
                return None
            if status != "ok":
                gate = t + self.base
                gates[P] = gate
                earliest = gate if earliest is None else min(earliest, gate)
                continue
            target = self.n if unsafe is None \
                else self._scan(t, P, unsafe, realisations)
            if self._pattern_restarts(t, P):
                # skipped threads must have the full speculative window
                # ahead of them (the squash estimate's n-1-j cap)
                target = min(target, self.n - self.arch.ncore)
            if target <= t:
                # thread t itself will violate; let the event loop take it
                self.next_try = t + 1
                return None
            plan = self._plan(t, P, target, D, timings)
            gates.clear()
            self.next_try = target + 1
            self._gap = self.base
            return plan
        if tried:
            if earliest is not None:
                # every candidate reported when it could next verify
                self.next_try = max(t + 1, earliest)
                self._gap = self.base
            else:
                # nothing reported a retry point: back off exponentially
                # so kernels that never settle pay a vanishing overhead
                self.next_try = t + self._gap
                self._gap = min(self._gap * 2, _MAX_BACKOFF)
        return None

    # -- verification -------------------------------------------------------

    def _at(self, arr: np.ndarray, j: int) -> float:
        return float(arr[j % self.size])

    def _pattern_restarts(self, t: int, P: int) -> bool:
        idx = np.arange(t - P, t) % self.size
        return bool(self._rrestarts[idx].any())

    def _verify(self, t: int, P: int) -> tuple[float | None, int]:
        """``(D, 0)`` if the last ``P`` threads replay the ``P`` before
        them exactly (and exactly representably); ``(None, retry_at)``
        otherwise, where ``retry_at`` is the earliest thread at which
        this candidate could plausibly verify again (the newest
        offending window position — assumed to be the deviant of its
        mismatched pair — must scroll out of the 2P window first).

        One fancy-indexed gather of the 2P-thread window per ring, then
        whole-array comparisons: the cost per attempt is a handful of
        numpy ops regardless of the candidate period.
        """
        idx = np.arange(t - 2 * P, t) % self.size
        new, old = slice(P, None), slice(None, P)

        def fail(bad: np.ndarray) -> tuple[None, int]:
            # bad: boolean mask over the P window offsets
            return None, t + P + int(np.nonzero(bad)[0].max()) + 1

        # integer pre-checks first: restart/squash pattern equality
        # aborts most failed attempts before any float work
        rs = self._rrestarts[idx]
        if not np.array_equal(rs[new], rs[old]):
            return fail(rs[new] != rs[old])
        sq = self._rsquash[idx]
        if not np.array_equal(sq[new], sq[old]):
            return fail(sq[new] != sq[old])
        st = self._rstart[idx]
        D = float(st[-1] - st[P - 1])
        if not D.is_integer():
            return None, t + 2 * P
        # a full skip shifts by at most this much; stay in exact-int range
        periods_left = float(self.n - t) / P + 2.0
        cm = self._rcommit[idx]
        if abs(D) * periods_left + abs(float(cm[-1])) > _MAX_MAGNITUDE:
            return None, t + 2 * P
        fn = self._rfinish[idx]
        wl = self._rstall[idx]
        wa = self._rwasted[idx]
        ds = st[new] - st[old]
        if not np.all(ds == D):
            return fail(ds != D)
        dc = cm[new] - cm[old]
        if not np.all(dc == D):
            return fail(dc != D)
        df = fn[new] - fn[old]
        if not np.all(df == D):
            return fail(df != D)
        if not np.array_equal(wl[new], wl[old]):
            return fail(wl[new] != wl[old])
        if not np.array_equal(wa[new], wa[old]):
            return fail(wa[new] != wa[old])
        win = np.stack((st[new], cm[new], fn[new], wl[new], wa[new]))
        frac = win != np.floor(win)
        if frac.any():
            return fail(frac.any(axis=0))
        if float(wa[new].sum()) * periods_left > _MAX_MAGNITUDE:
            return None, t + 2 * P
        return D, 0

    def _issue_pattern_matches(self, a: ThreadTiming, b: ThreadTiming) -> bool:
        if a.issue_rel is b.issue_rel:
            arr = a.issue_array()
            return bool(np.all(arr == np.floor(arr)))
        ia, ib = a.issue_array(), b.issue_array()
        return bool(np.array_equal(ia, ib) and np.all(ia == np.floor(ia)))

    def _classify(self, t: int, P: int, timings: dict[int, ThreadTiming],
                  realisations: RealisationTable
                  ) -> tuple[str, np.ndarray | None, int]:
        """Issue-pattern check plus per-offset realisation classification.

        Returns ``("retry", None, -1)`` when the pattern cannot be proven
        at this period (a longer candidate may still prove out),
        ``("blocked", None, m)`` when an ambiguous coin-flip
        manifestation on restarting thread ``m`` forbids any skip until
        ``m`` leaves the verification window, ``("ok", None, -1)`` when
        no realisation can ever change the outcome (skip needs no scan),
        or ``("ok", mask, -1)`` with the (P x n_deps) mask of
        probabilistic deps whose manifestation at each offset would
        perturb the pattern.
        """
        # threads that feed future arrivals must replay exactly
        for j in range(t - self.max_dist - 1, t):
            a = timings.get(j)
            b = timings.get(j - P)
            if a is None or b is None:
                return "retry", None, -1
            if a.total_stall != b.total_stall:
                return "retry", None, -1
            if not self._issue_pattern_matches(a, b):
                return "retry", None, -1
        nspec = len(self.template.speculated)
        if nspec == 0:
            return "ok", None, -1
        restarts = [bool(self._rrestarts[(t - P + o) % self.size])
                    for o in range(P)]
        if self.prob_idx and any(restarts):
            # a coin-flip manifestation on a restarting window thread is
            # ambiguous (it may have driven an intermediate attempt of
            # the cascade): refuse rather than misattribute.  This is
            # terminal for the whole attempt — any longer candidate's
            # window contains this one — so report the newest such
            # thread and let the caller schedule the retry past it.
            blocked = -1
            for o in range(P):
                if not restarts[o]:
                    continue
                realised = realisations.realised(t - P + o)
                if any(realised[idx] for idx in self.prob_idx):
                    blocked = max(blocked, t - P + o)
            if blocked >= 0:
                return "blocked", None, blocked
        # fully deterministic deps need no scan: p == 0 never manifests
        # and p == 1 violations are part of the verified pattern (a p == 1
        # dep that were timing-unsafe on a clean offset would have
        # violated there, contradicting the pattern)
        mask = np.zeros((P, nspec), dtype=bool)
        for o in range(P):
            if not self.prob_idx:
                break
            # a probabilistic manifestation perturbs the pattern if it
            # would violate under the pattern timings, or if it lands on
            # a restarting thread (whose intermediate attempts see other
            # timings than the committed one)
            if restarts[o]:
                for idx in self.prob_idx:
                    mask[o, idx] = True
            else:
                unsafe = manifest_violations(self.template, timings,
                                             t - P + o)
                for idx in self.prob_idx:
                    if idx in unsafe:
                        mask[o, idx] = True
        return "ok", (mask if mask.any() else None), -1

    def _scan(self, t: int, P: int, unsafe: np.ndarray,
              realisations: RealisationTable) -> int:
        """First thread >= ``t`` whose realisation manifests a dependence
        that would perturb the pattern, or ``n`` if none does."""
        cur = t
        while cur < self.n:
            cnt = min(_SCAN_CHUNK, self.n - cur)
            mat = realisations.block(cur, cnt)
            offsets = (np.arange(cur - t, cur - t + cnt)) % P
            hits = (mat & unsafe[offsets]).any(axis=1)
            nz = np.nonzero(hits)[0]
            if nz.size:
                return cur + int(nz[0])
            cur += cnt
        return self.n

    # -- plan construction --------------------------------------------------

    def _plan(self, t: int, P: int, target: int, D: float,
              timings: dict[int, ThreadTiming]) -> FastForward:
        skipped = target - t
        # snapshot the window pattern first: the ring backfill below may
        # overwrite window positions (when the skip exceeds the ring size
        # minus one period), and every computation here must read the
        # pattern as observed
        offs = [(t - P + o) % self.size for o in range(P)]
        pat_start = [float(self._rstart[i]) for i in offs]
        pat_stall = np.array([self._rstall[i] for i in offs])
        pat_finish = [float(self._rfinish[i]) for i in offs]
        pat_commit = [float(self._rcommit[i]) for i in offs]
        pat_restarts = np.array([self._rrestarts[i] for i in offs])
        pat_wasted = np.array([self._rwasted[i] for i in offs])
        pat_squash = np.array([self._rsquash[i] for i in offs])

        # per-period stats: every per-thread contribution is affine in
        # the skipped count (full periods plus a prefix); all values are
        # integral so regrouping the sums is exact.
        full, rem = divmod(skipped, P)
        stall_cycles = full * float(pat_stall.sum()) \
            + float(pat_stall[:rem].sum())
        misspec = full * int(pat_restarts.sum()) \
            + int(pat_restarts[:rem].sum())
        wasted = full * float(pat_wasted.sum()) \
            + float(pat_wasted[:rem].sum())
        squashed = full * int(pat_squash.sum()) + int(pat_squash[:rem].sum())
        invalidation = float(misspec) * self.arch.invalidation_overhead

        def shift_of(j: int) -> tuple[int, float]:
            """(pattern offset, cycle shift) of thread ``j >= t - P``."""
            o = (j - (t - P)) % P
            return o, D * ((j - (t - P + o)) // P)

        def start_at(j: int) -> float:
            if j < t - P:
                return self._at(self._rstart, j)
            o, shift = shift_of(j)
            return pat_start[o] + shift

        def commit_at(j: int) -> float:
            if j < t - P:
                return self._at(self._rcommit, j)
            o, shift = shift_of(j)
            return pat_commit[o] + shift

        ncore = self.arch.ncore
        core_free = []
        for c in range(ncore):
            jc = target - 1 - ((target - 1 - c) % ncore)
            core_free.append(commit_at(jc) if jc >= 0 else 0.0)
        prev_start = start_at(target - 1)
        prev_commit = commit_at(target - 1)
        new_timings: dict[int, ThreadTiming] = {}
        if target < self.n:
            for j in range(max(0, target - self.retention), target):
                if j < t:
                    src = timings.get(j)
                    if src is not None:
                        new_timings[j] = src
                else:
                    o, shift = shift_of(j)
                    new_timings[j] = timings[t - P + o].shifted(shift)
            # backfill the history rings from the proven pattern so the
            # next attempt can verify (and re-lock) immediately after the
            # exact thread a scan stop inserts
            for j in range(max(t, target - self.size), target):
                i = j % self.size
                o, shift = shift_of(j)
                self._rstart[i] = pat_start[o] + shift
                self._rstall[i] = pat_stall[o]
                self._rfinish[i] = pat_finish[o] + shift
                self._rcommit[i] = pat_commit[o] + shift
                self._rrestarts[i] = pat_restarts[o]
                self._rwasted[i] = pat_wasted[o]
                self._rsquash[i] = pat_squash[o]
                if pat_restarts[o]:
                    self._restart_log.append(j)
        return FastForward(
            target=target,
            skipped=skipped,
            stall_cycles=stall_cycles,
            prev_start=prev_start,
            prev_commit=prev_commit,
            core_free=core_free,
            timings=new_timings,
            misspeculations=misspec,
            squashed_threads=squashed,
            wasted_cycles=wasted,
            invalidation_cycles=invalidation,
        )
