"""Discrete-event SpMT multicore simulator (the paper's Table-1 machine).

Executes a :class:`~repro.sched.postpass.PipelinedLoop` over ``N``
iterations on a ring of cores: one thread per kernel iteration, round-robin
core assignment, Voltron-queue SEND/RECV for synchronised register
dependences, MDT-style violation detection with squash + same-core
re-execution for speculated memory dependences, sequential spawns and
in-order head-thread commits.

Modules:

* :mod:`repro.spmt.stats` — per-run statistics (cycles, stall/overhead
  breakdown, SEND/RECV counts, misspeculations);
* :mod:`repro.spmt.channels` — per-thread timing of one kernel execution:
  the in-order stall model for RECV waits;
* :mod:`repro.spmt.violations` — speculated-dependence realisation draws
  and violation detection;
* :mod:`repro.spmt.sim` — the thread-level event loop;
* :mod:`repro.spmt.single` — single-core baselines (sequential
  list-scheduled code, and a modulo-scheduled kernel on one core).
"""

from .stats import SimStats
from .trace import ThreadRecord, format_trace
from .sim import SpMTSimulator, simulate
from .single import (
    simulate_sequential,
    simulate_modulo_single_core,
)

__all__ = [
    "SimStats",
    "ThreadRecord",
    "format_trace",
    "SpMTSimulator",
    "simulate",
    "simulate_modulo_single_core",
    "simulate_sequential",
]
