"""Per-thread execution trace records.

Enabled with ``SimConfig(trace=True)``: the simulator appends one
:class:`ThreadRecord` per *committed* thread (including how many times it
was squashed and re-executed first), giving tests and notebooks visibility
into the thread-level timeline the aggregate :class:`~repro.spmt.stats.
SimStats` summarises.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThreadRecord", "format_trace"]


@dataclass(frozen=True)
class ThreadRecord:
    """Timeline of one committed thread (= one kernel iteration)."""

    index: int          # iteration number
    core: int
    start: float        # final (committed) execution's start time
    finish: float
    commit: float
    stall_cycles: float
    restarts: int       # squash + re-execute rounds before committing

    @property
    def occupancy(self) -> float:
        """Cycles the thread held its core in its committed run."""
        return self.finish - self.start


def format_trace(records: list[ThreadRecord], limit: int = 20) -> str:
    """Human-readable thread timeline (first ``limit`` threads).

    Truncation is explicit (a ``... (N more)`` footer) and the aggregate
    restart/stall totals always cover *every* record, not just the shown
    ones, so the summary line is trustworthy regardless of ``limit``.
    """
    lines = [f"{'thr':>4} {'core':>4} {'start':>9} {'finish':>9} "
             f"{'commit':>9} {'stall':>7} {'restarts':>8}"]
    for rec in records[:limit]:
        lines.append(
            f"{rec.index:>4} {rec.core:>4} {rec.start:>9.1f} "
            f"{rec.finish:>9.1f} {rec.commit:>9.1f} "
            f"{rec.stall_cycles:>7.1f} {rec.restarts:>8}")
    if len(records) > limit:
        lines.append(f"... ({len(records) - limit} more)")
    lines.append(
        f"totals: {len(records)} threads, "
        f"{sum(r.restarts for r in records)} restarts, "
        f"{sum(r.stall_cycles for r in records):.1f} stall cycles")
    return "\n".join(lines)
