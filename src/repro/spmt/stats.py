"""Simulation statistics.

Field names follow the paper's measurement vocabulary (Section 5.2):

* *synchronisation stall* — cycles committed threads spend stalled at a
  RECV instruction on an empty receive queue;
* *SEND/RECV pairs* — dynamic count over committed threads;
* *communication overhead* — stall cycles plus ``C_reg_com`` times the
  dynamic pair count;
* *misspeculation frequency* — violations over committed threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import ArchConfig

if TYPE_CHECKING:  # pragma: no cover
    from .trace import ThreadRecord

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Outcome of one SpMT simulation run."""

    iterations: int = 0
    ncore: int = 0
    total_cycles: float = 0.0
    #: RECV-wait cycles summed over committed thread executions.
    sync_stall_cycles: float = 0.0
    #: dynamic SEND/RECV pairs over committed threads.
    send_recv_pairs: int = 0
    #: violations detected (each squashes >= 1 thread).
    misspeculations: int = 0
    #: threads squashed (the violated thread plus more speculative ones).
    squashed_threads: int = 0
    #: cycles spent in invalidations.
    invalidation_cycles: float = 0.0
    #: cycles wasted in squashed executions.
    wasted_execution_cycles: float = 0.0
    #: spawn / commit overhead cycles (N * C_spn, N * C_ci by construction).
    spawn_cycles: float = 0.0
    commit_cycles: float = 0.0
    #: ``C_reg_com`` of the simulated machine.  The default is derived
    #: from :class:`~repro.config.ArchConfig` (the simulator overwrites
    #: it with the actual run's value) so it cannot drift from the
    #: machine model.
    reg_comm_latency: int = field(
        default_factory=lambda: ArchConfig.paper_default().reg_comm_latency)
    #: per-thread timeline, populated when ``SimConfig.trace`` is set.
    thread_records: list["ThreadRecord"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready numeric view of the run (the golden-pin format).

        Cycle fields are cast through ``float`` so numpy scalars never
        leak into serialised output; ``thread_records`` are omitted (they
        are populated only under ``SimConfig.trace``).
        """
        return {
            "iterations": int(self.iterations),
            "ncore": int(self.ncore),
            "total_cycles": float(self.total_cycles),
            "sync_stall_cycles": float(self.sync_stall_cycles),
            "send_recv_pairs": int(self.send_recv_pairs),
            "misspeculations": int(self.misspeculations),
            "squashed_threads": int(self.squashed_threads),
            "invalidation_cycles": float(self.invalidation_cycles),
            "wasted_execution_cycles": float(self.wasted_execution_cycles),
            "spawn_cycles": float(self.spawn_cycles),
            "commit_cycles": float(self.commit_cycles),
            "reg_comm_latency": int(self.reg_comm_latency),
        }

    @property
    def communication_overhead(self) -> float:
        """Stall cycles + C_reg_com x dynamic SEND/RECV pairs (Fig. 6c)."""
        return self.sync_stall_cycles + self.reg_comm_latency * self.send_recv_pairs

    @property
    def misspec_frequency(self) -> float:
        """Misspeculations per committed thread (paper: < 0.1% under TMS)."""
        return self.misspeculations / self.iterations if self.iterations else 0.0

    @property
    def cycles_per_iteration(self) -> float:
        return self.total_cycles / self.iterations if self.iterations else 0.0

    def summary(self) -> str:
        return (f"{self.total_cycles:.0f} cycles for {self.iterations} iterations "
                f"on {self.ncore} core(s): {self.cycles_per_iteration:.2f} cyc/iter, "
                f"stalls {self.sync_stall_cycles:.0f}, "
                f"pairs {self.send_recv_pairs}, "
                f"misspec {self.misspeculations} "
                f"({100 * self.misspec_frequency:.3f}%)")
