"""Acyclic list scheduling: the single-threaded baseline (Figure 5).

Schedules one loop iteration on one core (height-priority greedy list
scheduling over the distance-0 sub-DAG, honouring functional units and issue
width), then models back-to-back execution of ``N`` iterations on an ideal
out-of-order core: successive iterations may overlap, limited by

* the resource bound (``ResMII``), and
* loop-carried dependences at their *scheduled* positions:
  ``delta >= ceil((t(u) + delay - t(v)) / distance)``.

``T(N) = span + (N - 1) * delta``.  This is deliberately generous to the
baseline (perfect dynamic scheduling, infinite window) so the TMS-vs-single-
threaded speedups we report are conservative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SchedulingError
from ..graph.ddg import DDG
from ..graph.paths import compute_metrics
from ..machine.resources import ResourceModel

__all__ = ["ListSchedule", "list_schedule"]


@dataclass(frozen=True)
class ListSchedule:
    """Result of acyclic list scheduling of one iteration."""

    ddg: DDG
    times: dict[str, int]
    span: int            # completion time of one iteration
    delta: int           # steady-state initiation interval across iterations

    def execution_time(self, iterations: int) -> int:
        """Cycles to run ``iterations`` iterations single-threaded."""
        if iterations <= 0:
            return 0
        return self.span + (iterations - 1) * self.delta


def list_schedule(ddg: DDG, resources: ResourceModel) -> ListSchedule:
    """Greedy list scheduling of the distance-0 sub-DAG."""
    metrics = compute_metrics(ddg)
    remaining_preds = {
        n.name: sum(1 for e in ddg.preds(n.name) if e.distance == 0)
        for n in ddg.nodes
    }
    ready = {n for n, cnt in remaining_preds.items() if cnt == 0}
    earliest: dict[str, int] = {n.name: 0 for n in ddg.nodes}
    times: dict[str, int] = {}
    # per-cycle resource usage
    fu_busy: dict[tuple[int, object], int] = {}
    issue_busy: dict[int, int] = {}

    def fits(name: str, cycle: int) -> bool:
        node = ddg.node(name)
        spec = resources.spec(node.opcode.fu_class)
        if issue_busy.get(cycle, 0) >= resources.issue_width:
            return False
        for k in range(spec.occupancy):
            if fu_busy.get((cycle + k, node.opcode.fu_class), 0) >= spec.count:
                return False
        return True

    def place(name: str, cycle: int) -> None:
        node = ddg.node(name)
        spec = resources.spec(node.opcode.fu_class)
        issue_busy[cycle] = issue_busy.get(cycle, 0) + 1
        for k in range(spec.occupancy):
            key = (cycle + k, node.opcode.fu_class)
            fu_busy[key] = fu_busy.get(key, 0) + 1
        times[name] = cycle

    guard = 0
    while ready:
        guard += 1
        if guard > 4 * len(ddg) + 16:
            raise SchedulingError(
                f"list scheduler livelock on {ddg.name!r}")
        # highest height first (critical path), then program order
        batch = sorted(ready, key=lambda n: (-metrics[n].height,
                                             ddg.node(n).position))
        for name in batch:
            cycle = earliest[name]
            safety = 0
            while not fits(name, cycle):
                cycle += 1
                safety += 1
                if safety > 10_000:
                    raise SchedulingError(
                        f"list scheduler cannot place {name!r} on {ddg.name!r}")
            place(name, cycle)
            ready.discard(name)
            for e in ddg.succs(name):
                if e.distance == 0:
                    earliest[e.dst] = max(earliest[e.dst], cycle + e.delay)
                    remaining_preds[e.dst] -= 1
                    if remaining_preds[e.dst] == 0:
                        ready.add(e.dst)

    span = max(times[n.name] + n.latency for n in ddg.nodes)
    delta = resources.res_mii(ddg.opcodes())
    for e in ddg.edges:
        if e.distance > 0:
            need = times[e.src] + e.delay - times[e.dst]
            if need > 0:
                delta = max(delta, math.ceil(need / e.distance))
    return ListSchedule(ddg=ddg, times=times, span=span, delta=max(delta, 1))
