"""Software-pipelined execution checker.

Replays a modulo schedule as real dataflow and compares the outcome against
the sequential reference interpreter.  This is the library's end-to-end
guarantee that a schedule (plus the post-pass's modulo variable expansion)
preserves the loop's semantics.

Model
-----
Instance ``(j, v)`` — iteration ``j`` of instruction ``v`` — *issues* (reads
operands, computes) at flat cycle ``slot(v) + j * II`` and *commits* its
register result at ``slot(v) + lat(v) + j * II``.  Register values live in a
rotating file with ``floor(lifetime / II) + 1`` physical copies per producer,
as modulo variable expansion provides; a consumer reading distance ``d`` back
fetches copy ``(j - d) mod R``.  Events are replayed in global time order,
so an under-provisioned rotation (missing copies) or a violated register
dependence clobbers a value and the final state diverges — which the checker
reports.

Memory is an *oracle*: loads return the value the sequential reference
execution observed for that same dynamic instance.  This emulates the SpMT
machine's MDT + rollback guarantee — a load that raced ahead of the store
it depends on is squashed and re-executed with the committed value, so
memory can never break semantics; what the schedule (and the post-pass's
register rotation) must get right on its own is the *register* dataflow,
which this checker executes for real.  Stores write the values the
pipelined register dataflow computed, so a register divergence still
surfaces in the final arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..ir.interp import SequentialInterpreter, _BINOPS, _UNOPS, _default_array
from ..ir.loop import INDUCTION_VAR, Loop
from ..ir.opcode import Opcode
from ..ir.operand import Imm, Reg
from .schedule import Schedule

__all__ = ["PipelineExecutionResult", "execute_pipelined", "check_equivalence"]


@dataclass
class PipelineExecutionResult:
    """Final state of a pipelined execution."""

    iterations: int
    registers: dict[str, float]
    arrays: dict[str, np.ndarray]

    def state_fingerprint(self) -> tuple:
        regs = tuple(sorted((k, round(v, 9)) for k, v in self.registers.items()))
        arrays = tuple(
            (name, tuple(np.round(arr, 9).tolist()))
            for name, arr in sorted(self.arrays.items())
        )
        return (regs, arrays)


class _OracleMemory:
    """MDT + rollback emulation.

    Loads return the value the sequential reference observed for the same
    dynamic instance (hardware squashes and re-executes any load that read
    too early, so the committed value is always the sequential one).
    Stores record the values computed by the *pipelined register dataflow*
    at their sequential addresses; the final arrays therefore reflect any
    register-side divergence.
    """

    def __init__(self, arrays: dict[str, np.ndarray],
                 load_values: dict[str, list[float]],
                 store_addresses: dict[str, list[tuple[int, int]]]) -> None:
        self.base = arrays
        self._load_values = load_values
        self._store_addr = {
            name: dict(entries) for name, entries in store_addresses.items()
        }
        # (array, addr) -> list of ((iteration, position), value)
        self.writes: dict[tuple[str, int], list[tuple[tuple[int, int], float]]] = {}

    def read(self, ins_name: str, j: int) -> float:
        return self._load_values[ins_name][j]

    def write(self, ins_name: str, array: str, j: int, pos: int,
              value: float) -> None:
        addr = self._store_addr[ins_name][j]
        self.writes.setdefault((array, addr), []).append(((j, pos), value))

    def final_arrays(self) -> dict[str, np.ndarray]:
        out = {k: v.copy() for k, v in self.base.items()}
        for (array, addr), entries in self.writes.items():
            _key, val = max(entries)
            out[array][addr] = val
        return out


def execute_pipelined(loop: Loop, schedule: Schedule, iterations: int,
                      *, array_init: dict[str, np.ndarray] | None = None
                      ) -> PipelineExecutionResult:
    """Execute ``iterations`` iterations of ``loop`` as pipelined by
    ``schedule``."""
    if schedule.ddg.loop is not loop and set(schedule.ddg.node_names) != set(
            loop.instruction_names):
        raise SimulationError("schedule does not cover this loop")
    ii = schedule.ii
    positions = {ins.name: idx for idx, ins in enumerate(loop.body)}
    definers = loop.definers()

    # rotation depth per producer: standard modulo-variable-expansion
    # sizing, floor(lifetime / II) + 1 physical copies, where the lifetime
    # runs from the producer's issue to the latest consumer's issue in
    # flat-schedule time.  (Kernel-distance-based sizing is one short when
    # a value's last read coincides with the next rotation's write.)
    lifetime: dict[str, int] = {}
    for e in schedule.ddg.edges:
        if e.is_register_flow:
            span = (schedule.slot(e.dst) + e.distance * ii
                    - schedule.slot(e.src))
            lifetime[e.src] = max(lifetime.get(e.src, 0), span)
    depth = {name: span // ii + 1 for name, span in lifetime.items()}

    # regfile[(producer, j mod depth)] = value
    regfile: dict[tuple[str, int], float] = {}

    arrays = {}
    for name, size in loop.arrays.items():
        if array_init is not None and name in array_init:
            arrays[name] = np.asarray(array_init[name], dtype=np.float64).copy()
        else:
            arrays[name] = _default_array(name, size)

    # sequential oracle: per-instance load values and store addresses
    oracle = SequentialInterpreter(
        loop, trace=True,
        array_init={k: v.copy() for k, v in arrays.items()}).run(iterations)
    load_values = {ins.name: oracle.value_trace.get(ins.name, [])
                   for ins in loop.loads}
    store_addresses = {ins.name: oracle.address_trace.get(ins.name, [])
                       for ins in loop.stores}
    memory = _OracleMemory(arrays, load_values, store_addresses)

    def read_reg(reg: Reg, j: int, pos: int) -> float:
        if reg.name == INDUCTION_VAR:
            return float(j)
        u = definers.get(reg.name)
        if u is None:
            return float(loop.live_ins.get(reg.name, 0.0))
        dist = reg.back + (0 if positions[u.name] < pos else 1)
        src_iter = j - dist
        if src_iter < 0:
            return float(loop.live_ins.get(reg.name, 0.0))
        d = depth.get(u.name, 1)
        key = (u.name, src_iter % d)
        if key not in regfile:
            raise SimulationError(
                f"pipelined execution of {loop.name!r}: value of "
                f"{reg.name!r} (producer {u.name!r}, iteration {src_iter}) "
                f"not available — rotation depth {d} too small or schedule "
                f"violates the dependence")
        return regfile[key]

    def operand(op, j: int, pos: int) -> float:
        return float(op.value) if isinstance(op, Imm) else read_reg(op, j, pos)

    # event list: (time, phase, j, position); commits (phase 1) after issues
    # (phase 0) at the same cycle — a consumer issuing exactly at the
    # producer's completion cycle must see the new value, so commits at t
    # precede issues at t: use phase 0 = commit, 1 = issue.
    events: list[tuple[int, int, int, int]] = []
    for j in range(iterations):
        for ins in loop.body:
            t_issue = schedule.slot(ins.name) + j * ii
            node = schedule.ddg.node(ins.name)
            events.append((t_issue, 1, j, positions[ins.name]))
            if ins.dest is not None:
                events.append((t_issue + node.latency, 0, j, positions[ins.name]))
    events.sort()

    pending: dict[tuple[int, int], float] = {}  # (j, pos) -> computed value

    for time, phase, j, pos in events:
        ins = loop.body[pos]
        if phase == 1:  # issue: read operands, compute
            value = _compute(ins, j, pos, operand, memory, arrays)
            if ins.dest is not None:
                pending[(j, pos)] = value
        else:  # commit register result
            value = pending.pop((j, pos))
            d = depth.get(ins.name, 1)
            regfile[(ins.name, j % d)] = value

    # final register values: last committed instance of each definer
    registers = dict(loop.live_ins)
    for reg_name, u in definers.items():
        j = iterations - 1
        if j < 0:
            continue
        d = depth.get(u.name, 1)
        key = (u.name, j % d)
        if key in regfile:
            registers[reg_name] = regfile[key]
    return PipelineExecutionResult(
        iterations=iterations,
        registers=registers,
        arrays=memory.final_arrays(),
    )


def _compute(ins, j: int, pos: int, operand, memory: _OracleMemory,
             arrays: dict[str, np.ndarray]) -> float:
    op = ins.opcode
    if op.is_load:
        return memory.read(ins.name, j)
    if op.is_store:
        value = operand(ins.srcs[0], j, pos)
        memory.write(ins.name, ins.mem.array, j, pos, value)
        return value
    if op in _BINOPS:
        return _BINOPS[op](operand(ins.srcs[0], j, pos),
                           operand(ins.srcs[1], j, pos))
    if op in _UNOPS:
        return _UNOPS[op](operand(ins.srcs[0], j, pos))
    if op is Opcode.SELECT:
        cond = operand(ins.srcs[0], j, pos)
        return (operand(ins.srcs[1], j, pos) if cond != 0.0
                else operand(ins.srcs[2], j, pos))
    if op is Opcode.FMA:
        return (operand(ins.srcs[0], j, pos) * operand(ins.srcs[1], j, pos)
                + operand(ins.srcs[2], j, pos))
    raise SimulationError(f"pipelined executor cannot execute {op.name}")


def check_equivalence(loop: Loop, schedule: Schedule, iterations: int = 32,
                      *, array_init: dict[str, np.ndarray] | None = None) -> bool:
    """True iff pipelined execution matches the sequential interpreter.

    Raises :class:`~repro.errors.SimulationError` on divergence with a
    description of the first mismatching piece of state.
    """
    seq = SequentialInterpreter(loop, array_init=array_init).run(iterations)
    pipe = execute_pipelined(loop, schedule, iterations, array_init=array_init)
    # compare arrays
    for name, ref in seq.arrays.items():
        got = pipe.arrays[name]
        if not np.allclose(ref, got, rtol=1e-9, atol=1e-9):
            idx = int(np.argmax(~np.isclose(ref, got, rtol=1e-9, atol=1e-9)))
            raise SimulationError(
                f"{loop.name!r}: array {name!r} diverges at index {idx}: "
                f"sequential={ref[idx]!r} pipelined={got[idx]!r}")
    # compare loop-defined registers
    for reg, value in seq.registers.items():
        if reg in pipe.registers and not math.isclose(
                value, pipe.registers[reg], rel_tol=1e-9, abs_tol=1e-9):
            raise SimulationError(
                f"{loop.name!r}: register {reg!r} diverges: "
                f"sequential={value!r} pipelined={pipe.registers[reg]!r}")
    return True
