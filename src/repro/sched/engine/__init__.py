"""Unified modulo-scheduling engine.

One placement core — incremental partial schedules, memoized dependence
windows, pluggable slot policies — that IMS, SMS and TMS are thin policy
instances over.  See :mod:`repro.sched.engine.core` for the two
placement disciplines and ``docs/scheduling.md`` for the architecture.
"""

from .context import EngineContext
from .core import PlacementEngine
from .partial import LiveTracker, PartialSchedule
from .policy import HookPolicy, SlotPolicy, TMSContext, TMSPolicy
from .windows import WindowService, WindowTable

__all__ = [
    "EngineContext",
    "HookPolicy",
    "LiveTracker",
    "PartialSchedule",
    "PlacementEngine",
    "SlotPolicy",
    "TMSContext",
    "TMSPolicy",
    "WindowService",
    "WindowTable",
]
