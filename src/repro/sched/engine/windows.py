"""Memoized dependence-window service.

:func:`repro.sched.window.compute_window` re-walks every incident edge of
the node being placed — including the edge's ``delay - II * distance``
arithmetic — on every probe of every candidate.  Those deltas depend only
on ``(DDG, II)``, and TMS re-attempts the same II for many ``C_delay``
thresholds and two seed passes.  A :class:`WindowTable` folds each edge
to a ``(neighbour, delta)`` pair once per ``(DDG, II)``; the
:class:`WindowService` memoizes tables across every candidate of a
search.

The produced windows are semantically identical to ``compute_window``
(the engine's test suite asserts exact parity on randomized partial
schedules).
"""

from __future__ import annotations

from typing import Mapping

from ...obs import metrics
from .context import EngineContext

__all__ = ["WindowService", "WindowTable"]


class WindowTable:
    """Per-(DDG, II) folded dependence deltas.

    ``pred[v]`` holds ``(src, delay - II*distance)`` per incoming edge —
    ``Estart`` is the max of ``slot(src) + delta`` over placed sources.
    ``succ[v]`` holds ``(dst, II*distance - delay)`` per outgoing edge —
    ``Lstart`` is the min of ``slot(dst) + delta`` over placed sinks.
    Self edges are dropped: the node being windowed is never already
    placed, so they can't contribute a bound.  ``self_blocked[v]`` is the
    IMS legality fact ``delay - II*distance > 0`` for any self edge — a
    per-(node, II) constant.
    """

    __slots__ = ("ii", "pred", "succ", "asap", "self_blocked")

    def __init__(self, ctx: EngineContext, ii: int) -> None:
        ddg = ctx.ddg
        self.ii = ii
        self.asap = ctx.depth
        self.pred: dict[str, tuple[tuple[str, int], ...]] = {}
        self.succ: dict[str, tuple[tuple[str, int], ...]] = {}
        self.self_blocked: dict[str, bool] = {}
        for v in ctx.node_names:
            self.pred[v] = tuple(
                (e.src, e.delay - ii * e.distance)
                for e in ddg.preds(v) if e.src != v)
            self.succ[v] = tuple(
                (e.dst, ii * e.distance - e.delay)
                for e in ddg.succs(v) if e.dst != v)
            self.self_blocked[v] = any(
                e.delay - ii * e.distance > 0
                for e in ddg.succs(v) if e.dst == v)

    def window(self, v: str, slots: Mapping[str, int], bottom_up: bool,
               seed_high: bool) -> tuple[int, int, bool]:
        """``(start, end, scan_down)`` of ``v`` against ``slots``.

        Mirrors :func:`repro.sched.window.compute_window`: both
        neighbours -> bounded window scanned by ordering direction;
        predecessors only -> ``[Estart, Estart+II-1]`` upward; successors
        only -> ``[Lstart-II+1, Lstart]`` downward; neither -> the ASAP
        window, scanned down when the seed anchors high.
        """
        estart = None
        for src, delta in self.pred[v]:
            s = slots.get(src)
            if s is not None:
                bound = s + delta
                if estart is None or bound > estart:
                    estart = bound
        lstart = None
        for dst, delta in self.succ[v]:
            s = slots.get(dst)
            if s is not None:
                bound = s + delta
                if lstart is None or bound < lstart:
                    lstart = bound
        ii = self.ii
        if estart is not None:
            if lstart is not None:
                if bottom_up:
                    return (max(estart, lstart - ii + 1), lstart, True)
                return (estart, min(lstart, estart + ii - 1), False)
            return (estart, estart + ii - 1, False)
        if lstart is not None:
            return (lstart - ii + 1, lstart, True)
        asap = self.asap[v]
        return (asap, asap + ii - 1, seed_high)

    def estart(self, v: str, slots: Mapping[str, int], floor: int = 0) -> int:
        """Earliest dependence-legal slot of ``v`` (IMS's ``Estart`` with
        a monotonic ``mintime`` floor)."""
        e0 = floor
        for src, delta in self.pred[v]:
            s = slots.get(src)
            if s is not None:
                bound = s + delta
                if bound > e0:
                    e0 = bound
        return e0


class WindowService:
    """Lazily built, memoized :class:`WindowTable` per II."""

    def __init__(self, ctx: EngineContext) -> None:
        self._ctx = ctx
        self._tables: dict[int, WindowTable] = {}

    def table(self, ii: int) -> WindowTable:
        table = self._tables.get(ii)
        if table is None:
            table = WindowTable(self._ctx, ii)
            self._tables[ii] = table
            metrics.counter(
                "sched.engine.window_tables",
                "per-(DDG, II) dependence-window tables built").inc()
        else:
            metrics.counter(
                "sched.engine.window_reuses",
                "window-table lookups served from the per-II memo").inc()
        return table
