"""Per-(DDG, machine) facts shared by every placement attempt.

The seed schedulers rebuilt this state per candidate — edge lists,
latencies, ancestor closures, resource specs — which profiling showed was
a dominant cost of the TMS ``(II, C_delay)`` search (thousands of
attempts per loop, each re-deriving identical dictionaries).  The
:class:`EngineContext` computes everything that depends only on the DDG
and the resource model exactly once; per-II state lives in
:class:`~repro.sched.engine.windows.WindowTable` and per-attempt state in
:class:`~repro.sched.engine.partial.PartialSchedule`.
"""

from __future__ import annotations

from typing import Mapping

from ...graph.ddg import DDG
from ...graph.paths import NodeMetrics, compute_metrics
from ...ir.opcode import FUClass
from ...machine.resources import ResourceModel

__all__ = ["EngineContext"]

#: stable small-int index per functional-unit class (list-of-ints rows
#: beat dict-of-enum rows: no enum hashing on the probe hot path).
_FU_INDEX: dict[FUClass, int] = {fu: i for i, fu in enumerate(FUClass)}
_N_FU = len(_FU_INDEX)


class EngineContext:
    """Immutable per-(DDG, resources) scheduling facts.

    Attributes
    ----------
    spec:
        ``name -> (fu_index, count, occupancy)`` — the node's resolved
        functional-unit spec, so the MRT probe never touches the opcode
        enum or the resource-model dict.
    reg_uses / reg_prods:
        Register-flow fan-out/fan-in as ``(neighbour, distance)`` tuples,
        for the incremental MaxLive tracker.
    depth / height:
        ASAP depth and height from :func:`compute_metrics` (window seeds
        and IMS priorities).
    """

    n_fu = _N_FU

    def __init__(self, ddg: DDG, resources: ResourceModel,
                 metrics: Mapping[str, NodeMetrics] | None = None) -> None:
        self.ddg = ddg
        self.name = ddg.name
        self.resources = resources
        self.issue_width = resources.issue_width
        self.metrics = metrics if metrics is not None else compute_metrics(ddg)

        self.node_names: tuple[str, ...] = ddg.node_names
        self.position = {n.name: n.position for n in ddg.nodes}
        self.latency = {n.name: n.latency for n in ddg.nodes}
        self.spec: dict[str, tuple[int, int, int]] = {}
        for node in ddg.nodes:
            fu = node.opcode.fu_class
            fu_spec = resources.spec(fu)
            self.spec[node.name] = (_FU_INDEX[fu], fu_spec.count,
                                    fu_spec.occupancy)

        self.depth = {name: m.depth for name, m in self.metrics.items()}
        self.height = {name: m.height for name, m in self.metrics.items()}
        #: IMS priority key: greatest height first, then program order.
        self.priority = {n.name: (-self.metrics[n.name].height, n.position)
                         for n in ddg.nodes}

        self.reg_uses: dict[str, tuple[tuple[str, int], ...]] = {}
        self.reg_prods: dict[str, tuple[tuple[str, int], ...]] = {}
        for node in ddg.nodes:
            v = node.name
            self.reg_uses[v] = tuple(
                (e.dst, e.distance) for e in ddg.succs(v)
                if e.is_register_flow)
            self.reg_prods[v] = tuple(
                (e.src, e.distance) for e in ddg.preds(v)
                if e.is_register_flow)
