"""The placement engine: one scheduling core for IMS, SMS and TMS.

:class:`PlacementEngine` owns the machinery every modulo scheduler in
this repo shares — the per-DDG :class:`EngineContext`, the memoized
:class:`WindowService`, the incremental :class:`PartialSchedule` — and
exposes the two placement disciplines on top of it:

``try_place``
    the restart discipline (SMS/TMS): walk a precomputed node order,
    place each node at the best acceptable slot of its dependence
    window, fail the whole attempt if any node has none.  *Which* slot
    is best is the :class:`~repro.sched.engine.policy.SlotPolicy`'s
    call.

``run_backtracking``
    the IMS discipline (Rau): repeatedly pick the highest-priority
    unscheduled op; if its window has no conflict-free slot, force it in
    and eject whoever conflicts, under a per-II budget.

Both produce slot maps byte-identical to the seed implementations they
replace — the golden-equivalence suite pins this on every paper kernel.
The engine publishes ``sched.engine.*`` counters (attempts, placements,
slot probes, window-table reuse) alongside the pre-existing ``sched.*``
series, so ``--stats`` shows how much probing a search actually did.
"""

from __future__ import annotations

from typing import Mapping

from ...graph.ddg import DDG
from ...machine.resources import ResourceModel
from ...obs import metrics
from ...obs.events import get_tracer
from ...obs.spans import get_span_tracer
from .context import EngineContext
from .partial import PartialSchedule
from .policy import SlotPolicy
from .windows import WindowService

__all__ = ["PlacementEngine"]

_FIRST_FIT = SlotPolicy()


class PlacementEngine:
    """Shared placement core over one DDG + resource model."""

    def __init__(self, ddg: DDG, resources: ResourceModel,
                 metrics_map=None) -> None:
        self.ctx = EngineContext(ddg, resources, metrics_map)
        self.windows = WindowService(self.ctx)

    # -- restart discipline (SMS / TMS) -------------------------------------

    def try_place(self, ii: int, order, directions: Mapping[str, str],
                  policy: SlotPolicy | None = None, *, alg: str,
                  seed_high: bool = False,
                  track_live: bool = False) -> dict[str, int] | None:
        """One placement attempt at ``ii`` over ``order``.

        Each node is probed across its dependence window (scan direction
        per its ordering ``directions``; unconstrained seeds anchor high
        when ``seed_high``).  ``policy.accept`` may veto a conflict-free
        slot; without ``policy.score`` the first acceptable slot wins
        (SMS's lifetime-minimal strategy), with it the minimum-score slot
        wins, ties to window order, short-circuiting at a perfect
        ``score <= 0`` — how TMS "finds the time slot ... that leads to
        the shortest synchronisation delay" (Section 4.1).

        Returns the slot map, or ``None`` on failure.
        """
        spans = get_span_tracer()
        if spans.enabled and spans.detail:
            # detail span: one per placement attempt — --trace only, so
            # ledger-scale runs don't accumulate one span per II candidate.
            with spans.span("sched.place", alg=alg, kernel=self.ctx.name,
                            ii=ii) as sp:
                out = self._try_place(ii, order, directions, policy, alg=alg,
                                      seed_high=seed_high,
                                      track_live=track_live)
                if sp is not None:
                    sp.attrs["ok"] = out is not None
                return out
        return self._try_place(ii, order, directions, policy, alg=alg,
                               seed_high=seed_high, track_live=track_live)

    def _try_place(self, ii: int, order, directions: Mapping[str, str],
                   policy: SlotPolicy | None = None, *, alg: str,
                   seed_high: bool = False,
                   track_live: bool = False) -> dict[str, int] | None:
        if policy is None:
            policy = _FIRST_FIT
        tracer = get_tracer()
        metrics.counter(
            "sched.attempts",
            "scheduling attempts (one try_ii call per II candidate)").inc()
        metrics.counter(
            "sched.engine.attempts",
            "placement attempts run by the unified engine").inc()
        table = self.windows.table(ii)
        ps = PartialSchedule(self.ctx, ii, track_live=track_live)
        partial = ps.slots
        policy.begin_attempt(ps)
        accept = policy.accept
        score = policy.score
        on_place = policy.on_place
        loop_name = self.ctx.name
        probes = 0
        for v in order:
            start, end, scan_down = table.window(
                v, partial, directions.get(v, "top-down") == "bottom-up",
                seed_high)
            best_cycle: int | None = None
            best_score = 0.0
            if scan_down:
                candidates = range(end, start - 1, -1)
            else:
                candidates = range(start, end + 1)
            for cycle in candidates:
                probes += 1
                if not ps.fits(v, cycle):
                    continue
                if accept is not None and not accept(v, cycle, partial):
                    continue
                if score is None:
                    best_cycle = cycle
                    break
                s = score(v, cycle, partial)
                if best_cycle is None or s < best_score:
                    best_cycle, best_score = cycle, s
                    if s <= 0.0:
                        break  # cannot do better than "no new sync at all"
            if best_cycle is None:
                if tracer.enabled:
                    tracer.emit("sched", "place_fail", alg=alg,
                                loop=loop_name, ii=ii, node=v)
                metrics.counter(
                    "sched.engine.slot_probes",
                    "window slots probed by the unified engine").inc(probes)
                return None
            ps.place(v, best_cycle)
            if tracer.enabled:
                tracer.emit("sched", "place", alg=alg, loop=loop_name,
                            ii=ii, node=v, cycle=best_cycle,
                            row=best_cycle % ii, stage=best_cycle // ii)
            if on_place is not None:
                on_place(v, best_cycle, partial)
        metrics.counter(
            "sched.placements",
            "nodes placed in completed scheduling attempts").inc(len(partial))
        metrics.counter(
            "sched.engine.slot_probes",
            "window slots probed by the unified engine").inc(probes)
        return partial

    # -- backtracking discipline (IMS) ---------------------------------------

    def run_backtracking(self, ii: int, budget: int,
                         policy: SlotPolicy | None = None, *,
                         alg: str = "IMS") -> dict[str, int] | None:
        """One IMS attempt at ``ii`` under an eviction ``budget``.

        Highest priority first (greatest height, then program order);
        an op with no conflict-free window slot is forced into its
        earliest dependence-legal slot (raised monotonically by
        ``mintime`` to guarantee progress) and conflicting ops are
        ejected — resource conflicts via :func:`_evict_conflicts`,
        dependence violations by direct ejection of the offending
        neighbours.
        """
        spans = get_span_tracer()
        if spans.enabled and spans.detail:
            with spans.span("sched.backtrack", alg=alg,
                            kernel=self.ctx.name, ii=ii) as sp:
                out = self._run_backtracking(ii, budget, policy, alg=alg)
                if sp is not None:
                    sp.attrs["ok"] = out is not None
                return out
        return self._run_backtracking(ii, budget, policy, alg=alg)

    def _run_backtracking(self, ii: int, budget: int,
                          policy: SlotPolicy | None = None, *,
                          alg: str = "IMS") -> dict[str, int] | None:
        if policy is None:
            policy = _FIRST_FIT
        tracer = get_tracer()
        metrics.counter(
            "sched.attempts",
            "scheduling attempts (one try_ii call per II candidate)").inc()
        metrics.counter(
            "sched.engine.attempts",
            "placement attempts run by the unified engine").inc()
        ctx = self.ctx
        table = self.windows.table(ii)
        pred = table.pred
        succ = table.succ
        self_blocked = table.self_blocked
        priority = ctx.priority
        loop_name = ctx.name
        ps = PartialSchedule(ctx, ii)
        placed = ps.slots
        policy.begin_attempt(ps)
        on_eject = policy.on_eject
        n_nodes = len(ctx.node_names)
        never_scheduled = set(ctx.node_names)
        # mintime: monotonically raised forced-start per node, guaranteeing
        # termination progress.
        mintime = {name: 0 for name in ctx.node_names}

        while never_scheduled or len(placed) < n_nodes:
            unsched = [n for n in ctx.node_names if n not in placed]
            if not unsched:
                break
            if budget <= 0:
                return None
            budget -= 1
            v = min(unsched, key=priority.__getitem__)
            lo = table.estart(v, placed, mintime[v])
            slot = None
            if not self_blocked[v]:
                preds_v = pred[v]
                for cycle in range(lo, lo + ii):
                    deps_ok = True
                    for src, delta in preds_v:
                        s = placed.get(src)
                        if s is not None and cycle < s + delta:
                            deps_ok = False
                            break
                    if deps_ok and ps.fits(v, cycle):
                        slot = cycle
                        break
            if slot is None:
                # force placement at the earliest dependence-legal slot,
                # ejecting whoever conflicts.
                slot = lo
                if v not in never_scheduled and mintime[v] >= slot:
                    slot = mintime[v] + 1
                self._evict_conflicts(ps, v, slot, on_eject)
                mintime[v] = slot
            if v in placed:
                ps.remove(v)
            ps.place(v, slot)
            never_scheduled.discard(v)
            if tracer.enabled:
                tracer.emit("sched", "place", alg=alg, loop=loop_name,
                            ii=ii, node=v, cycle=slot, row=slot % ii,
                            stage=slot // ii)
            # eject dependence-violating already-placed neighbours
            for dst, delta in succ[v]:
                s = placed.get(dst)
                if s is not None and s < slot - delta:
                    ps.remove(dst)
                    if on_eject is not None:
                        on_eject(dst, placed)
                    if tracer.enabled:
                        tracer.emit("sched", "eject", alg=alg,
                                    loop=loop_name, ii=ii, node=dst, by=v)
            for src, delta in pred[v]:
                s = placed.get(src)
                if s is not None and slot < s + delta:
                    ps.remove(src)
                    if on_eject is not None:
                        on_eject(src, placed)
                    if tracer.enabled:
                        tracer.emit("sched", "eject", alg=alg,
                                    loop=loop_name, ii=ii, node=src, by=v)
        metrics.counter(
            "sched.placements",
            "nodes placed in completed scheduling attempts").inc(len(placed))
        return placed

    @staticmethod
    def _evict_conflicts(ps: PartialSchedule, v: str, slot: int,
                         on_eject) -> None:
        """Remove the minimum of already-placed ops blocking ``v`` at
        ``slot``: first same-FU ops overlapping its reservation rows, then
        (if the issue row is still full) arbitrary ops issuing in the same
        row."""
        placed = ps.slots
        fu_v = ps.fu_index(v)
        rows = set(ps.occupancy_rows(v, slot))
        for name in list(placed):
            if name == v or ps.fits(v, slot):
                continue
            if ps.fu_index(name) != fu_v:
                continue
            if rows & set(ps.occupancy_rows(name, placed[name])):
                ps.remove(name)
                if on_eject is not None:
                    on_eject(name, placed)
        ii = ps.ii
        for name in list(placed):
            if ps.fits(v, slot):
                break
            if name != v and placed[name] % ii == slot % ii:
                ps.remove(name)
                if on_eject is not None:
                    on_eject(name, placed)
