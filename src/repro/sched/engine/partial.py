"""The incremental partial schedule: MRT + slots + optional MaxLive.

:class:`PartialSchedule` is the engine's mutable state for one placement
attempt.  It subsumes :class:`repro.machine.reservation.ModuloReservationTable`
with a flat list-of-int-rows layout and per-node pre-resolved FU specs
(from :class:`~repro.sched.engine.context.EngineContext`), making the
resource probe — by far the hottest call of a modulo-scheduling search —
a few list indexings with no enum hashing or spec lookups.

``track_live=True`` additionally maintains the kernel's MaxLive
incrementally (a :class:`LiveTracker`): every ``place``/``remove``
updates the per-row live counts of exactly the value intervals the
placement touches, so the register-pressure figure is available at any
point of a partial schedule without rescanning — and provably equals
:func:`repro.sched.maxlive.max_live` on a completed one.
"""

from __future__ import annotations

from ...errors import MachineError
from .context import EngineContext

__all__ = ["LiveTracker", "PartialSchedule"]


class LiveTracker:
    """Incremental per-row live-value counts (the MaxLive invariant).

    A value born at flat cycle ``b`` and dying at ``d`` contributes
    ``|{k >= 0 : b <= r + k*II < d}|`` live instances to kernel row
    ``r``.  Births are producer issue slots; deaths the latest *placed*
    consumer's ``slot + distance*II`` (``birth+1`` when no placed
    consumer outlives the birth — a zero-length lifetime still occupies a
    register).  Placements extend producers' deaths; removals shrink
    them; each change re-applies one interval in O(II).
    """

    __slots__ = ("ii", "_uses", "_prods", "_rows", "_birth", "_cons")

    def __init__(self, ctx: EngineContext, ii: int) -> None:
        self.ii = ii
        self._uses = ctx.reg_uses
        self._prods = ctx.reg_prods
        self._rows = [0] * ii
        self._birth: dict[str, int] = {}
        self._cons: dict[str, int | None] = {}

    def _apply(self, u: str, sign: int) -> None:
        birth = self._birth[u]
        cons = self._cons[u]
        death = cons if (cons is not None and cons > birth) else birth + 1
        ii = self.ii
        rows = self._rows
        for r in range(ii):
            k0 = -(-(birth - r) // ii)  # ceil((birth - r) / ii)
            if k0 < 0:
                k0 = 0
            k1 = (death - 1 - r) // ii  # floor((death - 1 - r) / ii)
            if k1 >= k0:
                rows[r] += sign * (k1 - k0 + 1)

    def _recompute_cons(self, u: str, slots: dict[str, int]) -> int | None:
        cons = None
        for dst, dist in self._uses[u]:
            s = slots.get(dst)
            if s is not None:
                flat = s + dist * self.ii
                if cons is None or flat > cons:
                    cons = flat
        return cons

    def on_place(self, v: str, cycle: int, slots: dict[str, int]) -> None:
        """``slots`` must already contain ``v``."""
        if self._uses[v]:
            self._birth[v] = cycle
            self._cons[v] = self._recompute_cons(v, slots)
            self._apply(v, +1)
        for src, dist in self._prods[v]:
            if src == v or src not in self._birth:
                continue
            flat = cycle + dist * self.ii
            cons = self._cons[src]
            if cons is None or flat > cons:
                self._apply(src, -1)
                self._cons[src] = flat
                self._apply(src, +1)

    def on_remove(self, v: str, slots: dict[str, int]) -> None:
        """``slots`` must no longer contain ``v``."""
        if v in self._birth:
            self._apply(v, -1)
            del self._birth[v]
            del self._cons[v]
        for src, _dist in self._prods[v]:
            if src == v or src not in self._birth:
                continue
            self._apply(src, -1)
            self._cons[src] = self._recompute_cons(src, slots)
            self._apply(src, +1)

    @property
    def max_live(self) -> int:
        return max(self._rows) if self._birth else 0


class PartialSchedule:
    """Slots + modulo reservation state for one attempt at one II."""

    __slots__ = ("ii", "ctx", "slots", "live", "_issue_width", "_spec",
                 "_fu_use", "_issue_use")

    def __init__(self, ctx: EngineContext, ii: int, *,
                 track_live: bool = False) -> None:
        if ii < 1:
            raise MachineError(f"II must be >= 1, got {ii}")
        self.ii = ii
        self.ctx = ctx
        self.slots: dict[str, int] = {}
        self.live = LiveTracker(ctx, ii) if track_live else None
        self._issue_width = ctx.issue_width
        self._spec = ctx.spec
        self._fu_use: list[list[int]] = [[0] * ctx.n_fu for _ in range(ii)]
        self._issue_use: list[int] = [0] * ii

    # -- queries -----------------------------------------------------------

    def fits(self, name: str, cycle: int) -> bool:
        """Resource probe: O(1) for pipelined units (the common case)."""
        ii = self.ii
        row0 = cycle % ii
        if self._issue_use[row0] >= self._issue_width:
            return False
        fu, count, occ = self._spec[name]
        fu_use = self._fu_use
        if occ == 1:
            return fu_use[row0][fu] < count
        if occ >= ii:
            # a single op monopolises every row of this class; it fits
            # only if no other op of the class is present anywhere.
            for row in fu_use:
                if row[fu] >= count:
                    return False
            return True
        for k in range(occ):
            if fu_use[(cycle + k) % ii][fu] >= count:
                return False
        return True

    def occupancy_rows(self, name: str, cycle: int) -> list[int]:
        occ = min(self._spec[name][2], self.ii)
        return [(cycle + k) % self.ii for k in range(occ)]

    def fu_index(self, name: str) -> int:
        return self._spec[name][0]

    def __contains__(self, name: str) -> bool:
        return name in self.slots

    def __len__(self) -> int:
        return len(self.slots)

    # -- mutation ------------------------------------------------------------

    def place(self, name: str, cycle: int) -> None:
        if name in self.slots:
            raise MachineError(f"instruction {name!r} already placed")
        if not self.fits(name, cycle):
            raise MachineError(
                f"cannot place {name!r} at cycle {cycle} (II={self.ii}): "
                f"resource conflict")
        fu = self._spec[name][0]
        for row in self.occupancy_rows(name, cycle):
            self._fu_use[row][fu] += 1
        self._issue_use[cycle % self.ii] += 1
        self.slots[name] = cycle
        if self.live is not None:
            self.live.on_place(name, cycle, self.slots)

    def remove(self, name: str) -> None:
        cycle = self.slots.pop(name, None)
        if cycle is None:
            raise MachineError(f"instruction {name!r} is not placed")
        fu = self._spec[name][0]
        for row in self.occupancy_rows(name, cycle):
            self._fu_use[row][fu] -= 1
        self._issue_use[cycle % self.ii] -= 1
        if self.live is not None:
            self.live.on_remove(name, self.slots)
