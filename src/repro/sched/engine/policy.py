"""The SlotPolicy protocol: pluggable slot acceptance and scoring.

A placement attempt (:meth:`PlacementEngine.try_place`) walks the swing
node order and, per node, scans its dependence window.  What makes a
scheduler IMS, SMS or TMS is *policy*: which conflict-free slots are
acceptable, how competing slots are ranked, and what incremental state a
commitment updates.  A :class:`SlotPolicy` packages exactly those four
hooks:

``accept(v, cycle, slots)``
    veto an otherwise conflict-free slot (TMS's C1/C2);
``score(v, cycle, slots)``
    rank acceptable slots — ``None`` (the attribute, not a return) means
    first-fit in window order (SMS's lifetime-minimal strategy);
``on_place(v, cycle, slots)``
    commit incremental state after a placement (``slots`` already
    updated);
``on_eject(v, slots)``
    notification when backtracking (IMS) evicts a node (``slots``
    already updated).

Hooks are *attributes*: a policy that doesn't participate in a stage
leaves the attribute ``None`` and the engine skips the call entirely —
the hot loop pays nothing for unused extension points.

:class:`TMSPolicy` is the paper's Figure-3 slot acceptance as a policy
instance, with two hot-path improvements over the seed implementation
(placements are byte-identical; only the work per probe changes):

* all per-DDG state (incident flow-edge tables, latencies, the
  intra-thread ancestor closures, depth/height tiebreak inputs) lives in
  a :class:`TMSContext` built once per scheduler and shared by every
  ``(II, C_delay)`` candidate;
* the C2 misspeculation product no longer rescans every scheduled
  memory dependence against every scheduled register dependence:
  committed memory dependences carry a cached *preserved* flag
  (monotone — synchronised dependences are only ever added within an
  attempt), so a probe only checks committed non-preserved dependences
  against the *new* register dependences, and the new memory
  dependences against the committed register set.  The survivors'
  ``(1 - p_e)`` factors are multiplied in the exact order the seed used
  (commit order, then the tentative placement's), keeping the float
  product bit-identical.
"""

from __future__ import annotations

from typing import Mapping

from ...config import ArchConfig, SchedulerConfig
from ...graph.ddg import DDG
from .context import EngineContext

__all__ = ["HookPolicy", "SlotPolicy", "TMSContext", "TMSPolicy"]


class SlotPolicy:
    """Base policy: first-fit, no veto, no state (plain SMS placement)."""

    name = "firstfit"

    #: hooks; ``None`` means "not used" and is skipped by the engine.
    accept = None
    score = None
    on_place = None
    on_eject = None

    def begin_attempt(self, partial) -> None:
        """Reset per-attempt incremental state (called by the engine
        before every placement attempt)."""


class HookPolicy(SlotPolicy):
    """Adapter wrapping loose ``accept``/``on_place``/``score`` callables
    (the legacy :meth:`SwingModuloScheduler.try_ii` hook signature)."""

    name = "hooks"

    def __init__(self, accept=None, on_place=None, score=None,
                 on_eject=None) -> None:
        self.accept = accept
        self.on_place = on_place
        self.score = score
        self.on_eject = on_eject


class TMSContext:
    """Per-DDG facts of the TMS acceptance conditions, computed once per
    scheduler and shared across every ``(II, C_delay)`` candidate.

    Incident register/memory flow edges are folded to positional tuples
    (``(neighbour, distance, producer_latency[, probability])``) in DDG
    edge order — the order the seed's ``new_deps`` walked them, which the
    C2 product depends on.
    """

    __slots__ = ("reg_in", "reg_out", "mem_in", "mem_out", "ancestors",
                 "pred0", "succ0", "depth", "height")

    def __init__(self, ddg: DDG, ctx: EngineContext) -> None:
        lat = ctx.latency
        self.reg_in: dict[str, tuple] = {}
        self.reg_out: dict[str, tuple] = {}
        self.mem_in: dict[str, tuple] = {}
        self.mem_out: dict[str, tuple] = {}
        self.pred0: dict[str, tuple] = {}
        self.succ0: dict[str, tuple] = {}
        for node in ddg.nodes:
            v = node.name
            preds = ddg.preds(v)
            succs = ddg.succs(v)
            self.reg_in[v] = tuple(
                (e.src, e.distance, lat[e.src])
                for e in preds if e.is_register_flow)
            # self edges are covered by the in-edge walk
            self.reg_out[v] = tuple(
                (e.dst, e.distance, lat[v])
                for e in succs if e.is_register_flow and e.dst != v)
            self.mem_in[v] = tuple(
                (e.src, e.distance, lat[e.src], e.probability)
                for e in preds if e.is_memory_flow)
            self.mem_out[v] = tuple(
                (e.dst, e.distance, lat[v], e.probability)
                for e in succs if e.is_memory_flow and e.dst != v)
            self.pred0[v] = tuple(
                e.src for e in preds if e.distance == 0 and e.src != v)
            self.succ0[v] = tuple(
                e.dst for e in succs if e.distance == 0 and e.dst != v)

        # Intra-thread ancestors (distance-0 flow closure) per node.  Our
        # cores issue out of order, so a synchronisation wait only delays
        # the RECV's *dependents*; a memory dependence is preserved by a
        # synchronised dependence u -> v (Definition 3) only when v feeds
        # the memory consumer within the same iteration — otherwise the
        # consumer issues regardless of the wait and the "preserved"
        # dependence can still be violated at run time.
        ancestors: dict[str, frozenset[str]] = {}
        order_by_pos = sorted(ddg.nodes, key=lambda n: n.position)
        for node in order_by_pos:
            anc: set[str] = {node.name}
            for e in ddg.preds(node.name):
                if e.distance == 0 and e.dtype.value == "flow" \
                        and e.src in ancestors:
                    anc |= ancestors[e.src]
            ancestors[node.name] = frozenset(anc)
        self.ancestors = ancestors
        self.depth = ctx.depth
        self.height = ctx.height


class TMSPolicy(SlotPolicy):
    """Figure 3's C1/C2 slot acceptance for one ``(II, C_delay, P_max)``
    candidate.

    The ``speculation=False`` mode (Section 5.2's ablation) treats memory
    flow dependences as synchronised: they join C1 and never
    misspeculate.
    """

    name = "tms"

    def __init__(self, tms_ctx: TMSContext, arch: ArchConfig,
                 config: SchedulerConfig, ii: int, c_delay: int,
                 p_max: float) -> None:
        self._tms = tms_ctx
        self._ii = ii
        self._c_delay = c_delay
        self._p_max = p_max
        self._ccom = arch.reg_comm_latency
        self._speculation = config.speculation
        # incremental Definition-4 sets over the scheduled prefix:
        #   committed register deps as (row_of_src, sync_delay, consumer)
        #   committed memory deps as [row_of_src, required_skew,
        #                             probability, consumer, preserved]
        self._sreg: list[tuple[int, float, str]] = []
        self._smem: list[list] = []
        # last (v, cycle) dependence sets — accept/score/on_place for the
        # same probe share one computation.
        self._ck: tuple[str, int] | None = None
        self._creg: list = []
        self._cmem: list = []

    def begin_attempt(self, partial) -> None:
        self._sreg.clear()
        self._smem.clear()
        self._ck = None

    # -- new-dependence enumeration ---------------------------------------

    def _deps(self, v: str, cycle: int, slots: Mapping[str, int]):
        """The inter-iteration dependences placing ``v`` at ``cycle``
        would create: ``(reg, mem)`` where reg entries are
        ``(row_src, sync_delay, consumer)`` and mem entries
        ``(row_src, sync_delay, required_skew, probability, consumer)``.

        For edge ``e`` under tentative slots the kernel distance is
        ``k = d(e) + stage(dst) - stage(src)``; ``k < 1`` means the
        dependence stays intra-iteration.  ``sync = span/k + C_reg_com``
        with ``span = row(src) - row(dst) + latency(src)`` (Definition
        2); ``req = span/k`` is C2's required skew.
        """
        key = (v, cycle)
        if self._ck == key:
            return self._creg, self._cmem
        ii = self._ii
        ccom = self._ccom
        tms = self._tms
        stage_v = cycle // ii
        row_v = cycle % ii
        new_reg = []
        for src, dist, lat_s in tms.reg_in[v]:
            s = cycle if src == v else slots.get(src)
            if s is None:
                continue
            k = dist + stage_v - s // ii
            if k < 1:
                continue
            row_s = s % ii
            span = row_s - row_v + lat_s
            new_reg.append((row_s, span / k + ccom, v))
        for dst, dist, lat_v in tms.reg_out[v]:
            s = slots.get(dst)
            if s is None:
                continue
            k = dist + s // ii - stage_v
            if k < 1:
                continue
            span = row_v - s % ii + lat_v
            new_reg.append((row_v, span / k + ccom, dst))
        new_mem = []
        for src, dist, lat_s, prob in tms.mem_in[v]:
            s = cycle if src == v else slots.get(src)
            if s is None:
                continue
            k = dist + stage_v - s // ii
            if k < 1:
                continue
            row_s = s % ii
            req = (row_s - row_v + lat_s) / k
            new_mem.append((row_s, req + ccom, req, prob, v))
        for dst, dist, lat_v, prob in tms.mem_out[v]:
            s = slots.get(dst)
            if s is None:
                continue
            k = dist + s // ii - stage_v
            if k < 1:
                continue
            req = (row_v - s % ii + lat_v) / k
            new_mem.append((row_v, req + ccom, req, prob, dst))
        self._ck = key
        self._creg = new_reg
        self._cmem = new_mem
        return new_reg, new_mem

    # -- the Figure-3 acceptance conditions ---------------------------------

    def accept(self, v: str, cycle: int, slots: Mapping[str, int]) -> bool:
        new_reg, new_mem = self._deps(v, cycle, slots)
        c_delay = self._c_delay
        # C1: every new synchronised dependence within threshold
        for _row, sync, _dst in new_reg:
            if sync > c_delay:
                return False
        if not self._speculation:
            # no-speculation mode: memory deps are synchronised too
            for _row, sync, _req, _prob, _dst in new_mem:
                if sync > c_delay:
                    return False
            return True
        if not new_mem:
            return True
        # C2: misspeculation frequency of non-preserved memory deps.  The
        # (1 - p) factors multiply in commit order then tentative order —
        # the same sequence the seed's full rescan produced.
        ancestors = self._tms.ancestors
        prod = 1.0
        for ent in self._smem:
            if ent[4]:
                continue  # preserved by a committed register dep (cached)
            row_x = ent[0]
            req = ent[1]
            anc_y = ancestors[ent[3]]
            preserved = False
            for row_u, sync, dst in new_reg:
                if row_u < row_x and sync >= req and dst in anc_y:
                    preserved = True
                    break
            if preserved:
                continue
            prod *= (1.0 - ent[2])
        sreg = self._sreg
        for row_x, _sync, req, prob, y in new_mem:
            if req <= 0:
                continue  # preserved (Definition 3, ancestor-refined)
            anc_y = ancestors[y]
            preserved = False
            for row_u, sync, dst in sreg:
                if row_u < row_x and sync >= req and dst in anc_y:
                    preserved = True
                    break
            if not preserved:
                for row_u, sync, dst in new_reg:
                    if row_u < row_x and sync >= req and dst in anc_y:
                        preserved = True
                        break
            if preserved:
                continue
            prod *= (1.0 - prob)
        if 1.0 - prod > self._p_max:
            return False
        return True

    def score(self, v: str, cycle: int, slots: Mapping[str, int]) -> float:
        """The largest sync delay this placement would introduce (0 if
        none): TMS picks the slot with the shortest synchronisation
        delay among the acceptable ones (Section 4.1).

        A sub-unit tiebreak prefers slots whose kernel row leaves
        same-stage room for the node's still-unplaced same-iteration
        neighbours — *below* for its feeder chain (depth), *above* for
        its consumer chain (height).  Placing a node flush against a
        stage boundary forces that chain across the boundary and turns
        intra-thread dependences into synchronised ones.
        """
        new_reg, new_mem = self._deps(v, cycle, slots)
        worst = 0.0
        for _row, sync, _dst in new_reg:
            if sync > worst:
                worst = sync
        if not self._speculation:
            for _row, sync, _req, _prob, _dst in new_mem:
                if sync > worst:
                    worst = sync
        tms = self._tms
        row = cycle % self._ii
        need_below = tms.depth[v]
        if need_below > 0 and any(p not in slots for p in tms.pred0[v]):
            shortfall = need_below - row
            if shortfall > 0:
                worst += min(0.45, 0.45 * shortfall / need_below)
        need_above = tms.height[v]
        if need_above > 0 and any(s not in slots for s in tms.succ0[v]):
            shortfall = need_above - (self._ii - 1 - row)
            if shortfall > 0:
                worst += min(0.45, 0.45 * shortfall / need_above)
        return worst

    def on_place(self, v: str, cycle: int, slots: Mapping[str, int]) -> None:
        new_reg, new_mem = self._deps(v, cycle, slots)
        sreg = self._sreg
        smem = self._smem
        if new_reg:
            sreg.extend(new_reg)
            # the new synchronised deps may preserve previously committed
            # memory deps: refresh the cached flags (monotone within an
            # attempt — register deps are only ever added).
            ancestors = self._tms.ancestors
            for ent in smem:
                if ent[4]:
                    continue
                row_x = ent[0]
                req = ent[1]
                anc_y = ancestors[ent[3]]
                for row_u, sync, dst in new_reg:
                    if row_u < row_x and sync >= req and dst in anc_y:
                        ent[4] = True
                        break
        if self._speculation:
            ancestors = self._tms.ancestors
            for row_x, _sync, req, prob, y in new_mem:
                preserved = req <= 0
                if not preserved:
                    anc_y = ancestors[y]
                    for row_u, sync, dst in sreg:
                        if row_u < row_x and sync >= req and dst in anc_y:
                            preserved = True
                            break
                smem.append([row_x, req, prob, y, preserved])
