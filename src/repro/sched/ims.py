"""Iterative Modulo Scheduling (Rau, MICRO'94) — an extra baseline.

Unlike SMS, IMS backtracks: when the highest-priority unscheduled operation
has no conflict-free slot in its window, it is *forced* into its earliest
slot and every operation it conflicts with (dependence- or resource-wise) is
ejected and rescheduled.  A per-II budget bounds the effort before the II is
bumped.

Included because the paper notes TMS "is not tied to any existing modulo
scheduling algorithm"; the ablation bench compares TMS-on-SMS against plain
IMS/SMS kernels on the SpMT machine.
"""

from __future__ import annotations

from ..config import SchedulerConfig
from ..errors import SchedulingError
from ..graph.ddg import DDG
from ..graph.mii import compute_mii
from ..graph.paths import compute_metrics, longest_dependence_path
from ..machine.reservation import ModuloReservationTable
from ..machine.resources import ResourceModel
from ..obs import metrics
from ..obs.events import get_tracer
from .schedule import Schedule, validate_schedule

__all__ = ["IterativeModuloScheduler", "schedule_ims"]

_II_SLACK = 16


class IterativeModuloScheduler:
    """Rau's IMS over one DDG + resource model."""

    algorithm_name = "IMS"

    def __init__(self, ddg: DDG, resources: ResourceModel,
                 config: SchedulerConfig | None = None) -> None:
        self.ddg = ddg
        self.resources = resources
        self.config = config or SchedulerConfig()
        self.metrics = compute_metrics(ddg)
        self.mii = compute_mii(ddg, resources)
        self.ldp = longest_dependence_path(ddg)

    def max_ii(self) -> int:
        base = max(self.mii, self.ldp)
        return int(base * self.config.max_ii_factor) + _II_SLACK

    def schedule(self) -> Schedule:
        for ii in range(self.mii, self.max_ii() + 1):
            slots = self._try_ii(ii)
            if slots is not None:
                sched = Schedule(self.ddg, ii, slots,
                                 algorithm=self.algorithm_name,
                                 meta={"mii": self.mii, "ldp": self.ldp})
                validate_schedule(sched, self.resources)
                return sched
        raise SchedulingError(
            f"IMS failed on {self.ddg.name!r}: no valid schedule with "
            f"II <= {self.max_ii()}")

    # -- one attempt -----------------------------------------------------------

    def _try_ii(self, ii: int) -> dict[str, int] | None:
        tracer = get_tracer()
        metrics.counter(
            "sched.attempts",
            "scheduling attempts (one try_ii call per II candidate)").inc()
        budget = self.config.budget_ratio_ii * len(self.ddg) + 32
        mrt = ModuloReservationTable(ii, self.resources)
        placed: dict[str, int] = {}
        never_scheduled = {n.name for n in self.ddg.nodes}
        # mintime: monotonically raised forced-start per node, guaranteeing
        # termination progress.
        mintime: dict[str, int] = {n.name: 0 for n in self.ddg.nodes}

        def estart(v: str) -> int:
            e0 = mintime[v]
            for e in self.ddg.preds(v):
                if e.src in placed:
                    e0 = max(e0, placed[e.src] + e.delay - ii * e.distance)
            return e0

        while never_scheduled or len(placed) < len(self.ddg):
            unsched = [n.name for n in self.ddg.nodes if n.name not in placed]
            if not unsched:
                break
            if budget <= 0:
                return None
            budget -= 1
            # highest priority: greatest height, then program order
            v = min(unsched, key=lambda n: (-self.metrics[n].height,
                                            self.ddg.node(n).position))
            node = self.ddg.node(v)
            lo = estart(v)
            slot = None
            for cycle in range(lo, lo + ii):
                if not _deps_ok(self.ddg, v, cycle, placed, ii):
                    continue
                if mrt.fits(v, node.opcode, cycle):
                    slot = cycle
                    break
            if slot is None:
                # force placement at the earliest dependence-legal slot,
                # ejecting whoever conflicts.
                slot = lo
                if v not in never_scheduled and mintime[v] >= slot:
                    slot = mintime[v] + 1
                _evict_conflicts(self.ddg, mrt, placed, v, node.opcode, slot, ii)
                mintime[v] = slot
            if v in mrt:
                mrt.remove(v)
            mrt.place(v, node.opcode, slot)
            placed[v] = slot
            never_scheduled.discard(v)
            if tracer.enabled:
                tracer.emit("sched", "place", alg=self.algorithm_name,
                            loop=self.ddg.name, ii=ii, node=v, cycle=slot,
                            row=slot % ii, stage=slot // ii)
            # eject dependence-violating already-placed neighbours
            for e in self.ddg.succs(v):
                if e.dst in placed and e.dst != v:
                    if placed[e.dst] < slot + e.delay - ii * e.distance:
                        mrt.remove(e.dst)
                        del placed[e.dst]
                        if tracer.enabled:
                            tracer.emit("sched", "eject",
                                        alg=self.algorithm_name,
                                        loop=self.ddg.name, ii=ii,
                                        node=e.dst, by=v)
            for e in self.ddg.preds(v):
                if e.src in placed and e.src != v:
                    if slot < placed[e.src] + e.delay - ii * e.distance:
                        mrt.remove(e.src)
                        del placed[e.src]
                        if tracer.enabled:
                            tracer.emit("sched", "eject",
                                        alg=self.algorithm_name,
                                        loop=self.ddg.name, ii=ii,
                                        node=e.src, by=v)
        metrics.counter(
            "sched.placements",
            "nodes placed in completed scheduling attempts").inc(len(placed))
        return placed


def _deps_ok(ddg: DDG, v: str, cycle: int, placed: dict[str, int], ii: int) -> bool:
    for e in ddg.preds(v):
        if e.src in placed and cycle < placed[e.src] + e.delay - ii * e.distance:
            return False
        if e.src == v and e.delay - ii * e.distance > 0:
            return False
    return True


def _evict_conflicts(ddg: DDG, mrt: ModuloReservationTable,
                     placed: dict[str, int], v: str, opcode, slot: int,
                     ii: int) -> None:
    """Remove the minimum of already-placed ops blocking ``v`` at ``slot``:
    first same-FU ops overlapping its reservation rows, then (if the issue
    row is still full) arbitrary ops issuing in the same row."""
    rows = set(mrt.occupancy_rows(opcode, slot))
    for name in list(placed):
        if name == v or mrt.fits(v, opcode, slot):
            continue
        other = ddg.node(name)
        if other.opcode.fu_class != opcode.fu_class:
            continue
        if rows & set(mrt.occupancy_rows(other.opcode, placed[name])):
            mrt.remove(name)
            del placed[name]
    for name in list(placed):
        if mrt.fits(v, opcode, slot):
            break
        if name != v and placed[name] % ii == slot % ii:
            mrt.remove(name)
            del placed[name]


def schedule_ims(ddg: DDG, resources: ResourceModel,
                 config: SchedulerConfig | None = None) -> Schedule:
    """Convenience wrapper: IMS-schedule ``ddg``."""
    return IterativeModuloScheduler(ddg, resources, config).schedule()
