"""Iterative Modulo Scheduling (Rau, MICRO'94) — an extra baseline.

Unlike SMS, IMS backtracks: when the highest-priority unscheduled operation
has no conflict-free slot in its window, it is *forced* into its earliest
slot and every operation it conflicts with (dependence- or resource-wise) is
ejected and rescheduled.  A per-II budget bounds the effort before the II is
bumped.

Included because the paper notes TMS "is not tied to any existing modulo
scheduling algorithm"; the ablation bench compares TMS-on-SMS against plain
IMS/SMS kernels on the SpMT machine.

Placement runs on the unified engine: IMS is
:meth:`repro.sched.engine.PlacementEngine.run_backtracking`, the engine's
eviction discipline, under the default (first-fit, no-veto) policy.
"""

from __future__ import annotations

from ..config import SchedulerConfig
from ..errors import SchedulingError
from ..graph.ddg import DDG
from ..graph.mii import compute_mii
from ..graph.paths import compute_metrics, longest_dependence_path
from ..machine.resources import ResourceModel
from .engine import PlacementEngine
from .schedule import Schedule, validate_schedule

__all__ = ["IterativeModuloScheduler", "schedule_ims"]

_II_SLACK = 16


class IterativeModuloScheduler:
    """Rau's IMS over one DDG + resource model."""

    algorithm_name = "IMS"

    def __init__(self, ddg: DDG, resources: ResourceModel,
                 config: SchedulerConfig | None = None) -> None:
        self.ddg = ddg
        self.resources = resources
        self.config = config or SchedulerConfig()
        self.metrics = compute_metrics(ddg)
        self.mii = compute_mii(ddg, resources)
        self.ldp = longest_dependence_path(ddg)
        self.engine = PlacementEngine(ddg, resources, self.metrics)

    def max_ii(self) -> int:
        base = max(self.mii, self.ldp)
        return int(base * self.config.max_ii_factor) + _II_SLACK

    def schedule(self) -> Schedule:
        for ii in range(self.mii, self.max_ii() + 1):
            slots = self._try_ii(ii)
            if slots is not None:
                sched = Schedule(self.ddg, ii, slots,
                                 algorithm=self.algorithm_name,
                                 meta={"mii": self.mii, "ldp": self.ldp})
                validate_schedule(sched, self.resources)
                return sched
        raise SchedulingError(
            f"IMS failed on {self.ddg.name!r}: no valid schedule with "
            f"II <= {self.max_ii()}")

    # -- one attempt -----------------------------------------------------------

    def _try_ii(self, ii: int) -> dict[str, int] | None:
        budget = self.config.budget_ratio_ii * len(self.ddg) + 32
        return self.engine.run_backtracking(ii, budget,
                                            alg=self.algorithm_name)


def schedule_ims(ddg: DDG, resources: ResourceModel,
                 config: SchedulerConfig | None = None) -> Schedule:
    """Convenience wrapper: IMS-schedule ``ddg``."""
    return IterativeModuloScheduler(ddg, resources, config).schedule()
