"""Post-pass: modulo variable expansion and communication planning.

After a schedule is built (paper, end of Section 4.3):

* overlapping lifetimes are renamed by **register copies** — a value whose
  kernel consumers sit ``k > 1`` threads away is forwarded hop by hop
  through ``k - 1`` copies, so every inter-iteration register dependence in
  the executed kernel has distance 1;
* **SEND/RECV pairs** synchronise inter-thread register dependences.
  Dependences sharing one producer share the communication (the paper's
  ``n6 -> n0`` / ``n6 -> n6`` observation), so the dynamic SEND/RECV pair
  count per iteration is ``sum over producers of max d_ker`` over their
  inter-thread consumers.

The result, a :class:`PipelinedLoop`, is what the SpMT simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ArchConfig
from ..costmodel.sync import sync_delay
from ..graph.dependence import Dependence
from .maxlive import max_live
from .schedule import Schedule

__all__ = ["SyncChannel", "CommPlan", "PipelinedLoop", "run_postpass"]


@dataclass(frozen=True)
class SyncChannel:
    """One synchronised inter-thread dependence in the executed kernel."""

    edge: Dependence
    hops: int          # kernel distance = number of ring hops
    sync: float        # per-thread skew it demands (Definition 2)


@dataclass(frozen=True)
class CommPlan:
    """Communication summary of a pipelined loop."""

    channels: tuple[SyncChannel, ...]
    #: dynamic SEND/RECV pairs executed per kernel iteration.
    pairs_per_iteration: int
    #: register copies inserted by modulo variable expansion.
    copies: int

    @property
    def c_delay(self) -> float:
        """The maximum per-thread synchronisation delay (the paper's
        achieved ``C_delay``; 0.0 with no synchronised dependences)."""
        return max((ch.sync for ch in self.channels), default=0.0)


@dataclass(frozen=True)
class PipelinedLoop:
    """A scheduled loop ready for SpMT execution."""

    schedule: Schedule
    comm: CommPlan
    max_live: int
    #: inter-iteration memory flow dependences left to hardware speculation
    #: (empty when memory is synchronised).
    speculated: tuple[Dependence, ...]
    synchronize_memory: bool = False

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def num_stages(self) -> int:
        return self.schedule.num_stages


def run_postpass(schedule: Schedule, arch: ArchConfig,
                 *, synchronize_memory: bool = False) -> PipelinedLoop:
    """Build the :class:`PipelinedLoop` for ``schedule``.

    ``synchronize_memory=True`` is the no-speculation mode: memory flow
    dependences get SEND/RECV channels too and nothing is speculated.
    """
    ccom = arch.reg_comm_latency
    sync_edges: list[Dependence] = schedule.inter_iteration_register_deps()
    mem_edges: list[Dependence] = schedule.inter_iteration_memory_deps()
    if synchronize_memory:
        sync_edges = sync_edges + mem_edges
        speculated: tuple[Dependence, ...] = ()
    else:
        speculated = tuple(mem_edges)

    channels = tuple(
        SyncChannel(edge=e, hops=schedule.d_ker(e),
                    sync=sync_delay(schedule, e, ccom))
        for e in sync_edges
    )

    # one communication chain per producer, as long as its farthest consumer
    hops_by_producer: dict[str, int] = {}
    for ch in channels:
        hops_by_producer[ch.edge.src] = max(
            hops_by_producer.get(ch.edge.src, 0), ch.hops)
    pairs = sum(hops_by_producer.values())
    copies = sum(h - 1 for h in hops_by_producer.values() if h > 1)

    return PipelinedLoop(
        schedule=schedule,
        comm=CommPlan(channels=channels, pairs_per_iteration=pairs,
                      copies=copies),
        max_live=max_live(schedule),
        speculated=speculated,
        synchronize_memory=synchronize_memory,
    )
