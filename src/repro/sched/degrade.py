"""Graceful scheduler degradation: TMS -> SMS -> IMS -> sequential.

The experiment drivers must never die (or hang) because one pathological
loop defeats the TMS ``(II, C_delay)`` search.  This module provides the
degradation chain the pipeline routes through:

1. **TMS** — the thread-sensitive search, optionally bounded by the
   ``SchedulerConfig.max_schedule_seconds`` wall-clock watchdog;
2. **SMS** — plain swing modulo scheduling (no thread-sensitivity);
3. **IMS** — the backtracking iterative modulo scheduler (survives the
   pinched windows that wedge SMS's restart-only discipline);
4. **sequential** — the loop body list-scheduled once per iteration with
   ``II = span``: no inter-iteration overlap, trivially valid, always
   succeeds.

``SchedulerConfig.policy`` names the chain's first rung (one of
:data:`repro.config.KNOWN_POLICIES`), so the same driver sweeps the
baseline schedulers by config alone — the ``sched.policy`` DSE dimension
and the ``--policy`` CLI flag ride on this.  Every schedule the chain
returns carries ``meta["policy"]`` naming the rung that actually
produced it.

Each step down the chain publishes the ``sched.degraded`` metric, emits a
``sched.degraded`` trace event, and stamps the schedule's ``meta`` with
``degraded_from``/``degraded_to`` so reports can surface the loss of
fidelity instead of silently absorbing it.
"""

from __future__ import annotations

from ..config import KNOWN_POLICIES, ArchConfig, SchedulerConfig
from ..errors import SchedulingError
from ..graph.ddg import DDG
from ..machine.resources import ResourceModel
from ..obs import metrics
from ..obs.events import get_tracer
from ..obs.spans import span
from .ims import IterativeModuloScheduler
from .listsched import list_schedule
from .schedule import Schedule, validate_schedule
from .sms import SwingModuloScheduler
from .tms import ThreadSensitiveScheduler

__all__ = ["schedule_sequential_fallback", "schedule_with_degradation",
           "schedule_with_policy"]

#: the degradation ladder, most to least capable.
_LADDER: tuple[str, ...] = ("tms", "sms", "ims", "seq")


def schedule_sequential_fallback(ddg: DDG,
                                 resources: ResourceModel) -> Schedule:
    """A modulo schedule with no inter-iteration overlap (``II = span``).

    List-schedules the distance-0 sub-DAG and widens II to the iteration
    span, so every loop-carried dependence is satisfied by construction
    and the per-row resource usage equals the (already valid) acyclic
    placement.  The last rung of the degradation ladder: slow, but it
    cannot fail on any well-formed DDG.
    """
    listed = list_schedule(ddg, resources)
    ii = max(listed.span, 1)
    sched = Schedule(ddg, ii, dict(listed.times), algorithm="SEQ",
                     meta={"span": listed.span, "delta": listed.delta})
    validate_schedule(sched, resources)
    return sched


def _rung_builders(ddg: DDG, resources: ResourceModel, arch: ArchConfig,
                   config: SchedulerConfig):
    return {
        "tms": lambda: ThreadSensitiveScheduler(
            ddg, resources, arch, config).schedule(),
        "sms": lambda: SwingModuloScheduler(
            ddg, resources, config).schedule(),
        "ims": lambda: IterativeModuloScheduler(
            ddg, resources, config).schedule(),
        "seq": lambda: schedule_sequential_fallback(ddg, resources),
    }


def schedule_with_policy(ddg: DDG, resources: ResourceModel,
                         arch: ArchConfig, policy: str | None = None,
                         config: SchedulerConfig | None = None) -> Schedule:
    """Schedule with exactly the named policy — no degradation.

    ``policy`` defaults to ``config.policy``.  Raises
    :class:`SchedulingError` if the named scheduler fails (use
    :func:`schedule_with_degradation` for a never-fail chain).  The
    result carries ``meta["policy"]``.
    """
    config = config or SchedulerConfig()
    name = (policy if policy is not None else config.policy).lower()
    if name not in KNOWN_POLICIES:
        raise SchedulingError(
            f"unknown scheduling policy {name!r}; known: {KNOWN_POLICIES}")
    with span("sched.policy", kernel=ddg.name, policy=name):
        sched = _rung_builders(ddg, resources, arch, config)[name]()
    sched.meta["policy"] = name
    return sched


def schedule_with_degradation(ddg: DDG, resources: ResourceModel,
                              arch: ArchConfig,
                              config: SchedulerConfig | None = None
                              ) -> Schedule:
    """``config.policy`` with graceful degradation; never hangs, never
    raises :class:`SchedulingError` for a well-formed DDG.

    Returns the first schedule the chain produces, with
    ``meta["policy"]`` naming the rung that succeeded.  A degraded result
    additionally carries ``meta["degraded_from"]`` (the requested rung,
    e.g. ``"TMS"``) and ``meta["degraded_to"]`` naming the rung that
    succeeded.
    """
    config = config or SchedulerConfig()
    first = config.policy  # validated against KNOWN_POLICIES on construction
    ladder = _LADDER[_LADDER.index(first):]
    builders = _rung_builders(ddg, resources, arch, config)
    failures: list[str] = []
    for name in ladder:
        try:
            with span("sched.rung", kernel=ddg.name, policy=name) as sp:
                sched = builders[name]()
                if sp is not None:
                    sp.attrs["outcome"] = "ok"
        except SchedulingError as exc:
            failures.append(f"{name.upper()}: {exc}")
            continue
        sched.meta["policy"] = name
        if failures:
            sched.meta["degraded_from"] = first.upper()
            sched.meta["degraded_to"] = name.upper()
            sched.meta["degradation_reason"] = failures[0]
            metrics.counter(
                "sched.degraded",
                "schedules produced by a degradation fallback").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit("sched", "sched.degraded", loop=ddg.name,
                            degraded_from=first.upper(),
                            degraded_to=name.upper(), reason=failures[0])
        return sched
    raise SchedulingError(
        f"every degradation rung failed on {ddg.name!r}: "
        + "; ".join(failures))
