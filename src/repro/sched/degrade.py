"""Graceful scheduler degradation: TMS -> SMS -> IMS -> sequential.

The experiment drivers must never die (or hang) because one pathological
loop defeats the TMS ``(II, C_delay)`` search.  This module provides the
degradation chain the pipeline routes through:

1. **TMS** — the thread-sensitive search, optionally bounded by the
   ``SchedulerConfig.max_schedule_seconds`` wall-clock watchdog;
2. **SMS** — plain swing modulo scheduling (no thread-sensitivity);
3. **IMS** — the backtracking iterative modulo scheduler (survives the
   pinched windows that wedge SMS's restart-only discipline);
4. **sequential** — the loop body list-scheduled once per iteration with
   ``II = span``: no inter-iteration overlap, trivially valid, always
   succeeds.

Each step down the chain publishes the ``sched.degraded`` metric, emits a
``sched.degraded`` trace event, and stamps the schedule's ``meta`` with
``degraded_from``/``degraded_to`` so reports can surface the loss of
fidelity instead of silently absorbing it.
"""

from __future__ import annotations

from ..config import ArchConfig, SchedulerConfig
from ..errors import SchedulingError
from ..graph.ddg import DDG
from ..machine.resources import ResourceModel
from ..obs import metrics
from ..obs.events import get_tracer
from .ims import IterativeModuloScheduler
from .listsched import list_schedule
from .schedule import Schedule, validate_schedule
from .sms import SwingModuloScheduler
from .tms import ThreadSensitiveScheduler

__all__ = ["schedule_sequential_fallback", "schedule_with_degradation"]


def schedule_sequential_fallback(ddg: DDG,
                                 resources: ResourceModel) -> Schedule:
    """A modulo schedule with no inter-iteration overlap (``II = span``).

    List-schedules the distance-0 sub-DAG and widens II to the iteration
    span, so every loop-carried dependence is satisfied by construction
    and the per-row resource usage equals the (already valid) acyclic
    placement.  The last rung of the degradation ladder: slow, but it
    cannot fail on any well-formed DDG.
    """
    listed = list_schedule(ddg, resources)
    ii = max(listed.span, 1)
    sched = Schedule(ddg, ii, dict(listed.times), algorithm="SEQ",
                     meta={"span": listed.span, "delta": listed.delta})
    validate_schedule(sched, resources)
    return sched


def schedule_with_degradation(ddg: DDG, resources: ResourceModel,
                              arch: ArchConfig,
                              config: SchedulerConfig | None = None
                              ) -> Schedule:
    """TMS with graceful degradation; never hangs, never raises
    :class:`SchedulingError` for a well-formed DDG.

    Returns the first schedule the chain produces.  A degraded result
    carries ``meta["degraded_from"] == "TMS"`` and
    ``meta["degraded_to"]`` naming the rung that succeeded.
    """
    config = config or SchedulerConfig()
    failures: list[str] = []

    def _attempt(name: str, build) -> Schedule | None:
        try:
            return build()
        except SchedulingError as exc:
            failures.append(f"{name}: {exc}")
            return None

    sched = _attempt("TMS", lambda: ThreadSensitiveScheduler(
        ddg, resources, arch, config).schedule())
    if sched is not None:
        return sched

    chain = (
        ("SMS", lambda: SwingModuloScheduler(
            ddg, resources, config).schedule()),
        ("IMS", lambda: IterativeModuloScheduler(
            ddg, resources, config).schedule()),
        ("SEQ", lambda: schedule_sequential_fallback(ddg, resources)),
    )
    for name, build in chain:
        sched = _attempt(name, build)
        if sched is None:
            continue
        sched.meta["degraded_from"] = "TMS"
        sched.meta["degraded_to"] = name
        sched.meta["degradation_reason"] = failures[0]
        metrics.counter(
            "sched.degraded",
            "schedules produced by a degradation fallback").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("sched", "sched.degraded", loop=ddg.name,
                        degraded_from="TMS", degraded_to=name,
                        reason=failures[0])
        return sched
    raise SchedulingError(
        f"every degradation rung failed on {ddg.name!r}: "
        + "; ".join(failures))
