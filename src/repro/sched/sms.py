"""Swing Modulo Scheduling (Llosa, PACT'96) — the baseline.

The algorithm the paper implements in GCC 4.1.1 and extends into TMS:

1. compute ``MII = max(ResMII, RecMII)``;
2. order nodes with the SCC-prioritised swing ordering;
3. for each candidate II starting at MII: place each node at the first
   conflict-free slot of its scheduling window (scanned toward its already
   scheduled neighbours, minimising value lifetimes — the
   "lifetime-minimal" strategy the paper's Section 4.1 critiques);
4. if any node cannot be placed, give up on this II and restart with
   ``II + 1``.

Placement runs on the unified engine
(:class:`repro.sched.engine.PlacementEngine`): SMS is the engine's
restart discipline under the default first-fit policy.  The ``accept`` /
``on_place`` / ``score`` hooks of :meth:`try_ii` are kept for
compatibility (and wrapped into a
:class:`~repro.sched.engine.policy.HookPolicy`); TMS passes a full
:class:`~repro.sched.engine.policy.SlotPolicy` via :meth:`try_policy`.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..config import SchedulerConfig
from ..errors import SchedulingError
from ..graph.ddg import DDG
from ..graph.mii import compute_mii
from ..graph.paths import compute_metrics, longest_dependence_path
from ..machine.resources import ResourceModel
from .engine import HookPolicy, PlacementEngine, SlotPolicy
from .ordering import compute_node_order_with_directions
from .schedule import Schedule, validate_schedule

__all__ = ["SwingModuloScheduler", "schedule_sms"]

#: extra II headroom beyond max(MII, LDP) before declaring failure.
_II_SLACK = 16

AcceptHook = Callable[[str, int, Mapping[str, int]], bool]
PlaceHook = Callable[[str, int, Mapping[str, int]], None]
ScoreHook = Callable[[str, int, Mapping[str, int]], float]


class SwingModuloScheduler:
    """SMS over one DDG + resource model."""

    algorithm_name = "SMS"

    def __init__(self, ddg: DDG, resources: ResourceModel,
                 config: SchedulerConfig | None = None) -> None:
        self.ddg = ddg
        self.resources = resources
        self.config = config or SchedulerConfig()
        self.metrics = compute_metrics(ddg)
        self.order, self.order_directions = compute_node_order_with_directions(
            ddg, self.metrics)
        self.mii = compute_mii(ddg, resources)
        self.ldp = longest_dependence_path(ddg)
        self.engine = PlacementEngine(ddg, resources, self.metrics)
        #: anchor unconstrained seeds at the top of their II range (TMS
        #: sets this; see the window table's seed_high).
        self.seed_high = False

    # -- public API -----------------------------------------------------------

    def max_ii(self) -> int:
        """Search bound: the paper bounds II by the longest dependence
        path; we add slack for resource-bound corner cases."""
        base = max(self.mii, self.ldp)
        return int(base * self.config.max_ii_factor) + _II_SLACK

    def schedule(self) -> Schedule:
        """Find the lowest-II valid schedule (validated before return)."""
        for ii in range(self.mii, self.max_ii() + 1):
            slots = self.try_ii(ii)
            if slots is not None:
                sched = Schedule(self.ddg, ii, slots,
                                 algorithm=self.algorithm_name,
                                 meta={"mii": self.mii, "ldp": self.ldp})
                validate_schedule(sched, self.resources)
                return sched
        raise SchedulingError(
            f"{self.algorithm_name} failed on {self.ddg.name!r}: no valid "
            f"schedule with II <= {self.max_ii()} (MII={self.mii})")

    # -- one scheduling attempt ------------------------------------------------

    def try_policy(self, ii: int,
                   policy: SlotPolicy | None = None) -> dict[str, int] | None:
        """Attempt a schedule at the given II under ``policy`` (first-fit
        when None).  Returns the slot map, or None on failure."""
        return self.engine.try_place(ii, self.order, self.order_directions,
                                     policy, alg=self.algorithm_name,
                                     seed_high=self.seed_high)

    def try_ii(self, ii: int, accept: AcceptHook | None = None,
               on_place: PlaceHook | None = None,
               score: ScoreHook | None = None) -> dict[str, int] | None:
        """Attempt a schedule at the given II.

        ``accept(v, cycle, partial)`` may veto an otherwise conflict-free
        slot (TMS's C1/C2 conditions); ``on_place`` is notified after each
        successful placement (with ``partial`` already updated) so callers
        can maintain incremental state.

        Without ``score``, the first acceptable slot in window order is
        taken — SMS's lifetime-minimal strategy.  With ``score``, every
        acceptable slot in the window is evaluated and the minimum-score
        one wins (ties resolved by window order) — this is how TMS "finds
        the time slot ... that leads to the shortest synchronisation
        delay" (paper Section 4.1).

        Returns the slot map, or None on failure.
        """
        policy = None
        if accept is not None or on_place is not None or score is not None:
            policy = HookPolicy(accept=accept, on_place=on_place, score=score)
        return self.try_policy(ii, policy)


def schedule_sms(ddg: DDG, resources: ResourceModel,
                 config: SchedulerConfig | None = None) -> Schedule:
    """Convenience wrapper: SMS-schedule ``ddg``."""
    return SwingModuloScheduler(ddg, resources, config).schedule()
