"""Rotating register allocation for modulo-scheduled kernels.

The post-pass's modulo variable expansion says *how many* copies each value
needs; this module finishes the job the way a compiler without rotating
register files does it (the paper's GCC 4.1.1 setting): unroll the kernel
``K = max copies`` times and colour the resulting cyclic lifetimes onto
physical registers.

For each value (a producer with register consumers):

* lifetime = producer issue -> latest consumer issue in flat time,
  ``copies = floor(lifetime / II) + 1``;
* in the kernel unrolled ``K`` times (period ``K * II`` cycles), instance
  ``q`` of the value is live on the cyclic interval
  ``[slot + q * II, slot + q * II + lifetime) mod K * II``;
* a greedy interval colouring assigns each instance a physical register
  such that no two simultaneously-live instances share one.

The resulting register count is the kernel's true integer-register demand;
it is never below MaxLive (the paper's Table-2 pressure metric counts
simultaneous live ranges, which is a lower bound on colours) and never
above the naive ``sum of copies``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from .schedule import Schedule

__all__ = ["RegisterAllocation", "allocate_registers"]


@dataclass(frozen=True)
class _CyclicInterval:
    """A half-open cyclic interval over a period-``period`` timeline."""

    start: int
    length: int
    period: int

    def overlaps(self, other: "_CyclicInterval") -> bool:
        if self.length == 0 or other.length == 0:
            return False
        if self.length >= self.period or other.length >= self.period:
            return True
        # unroll both intervals onto a doubled timeline and test linearly
        a0 = self.start % self.period
        b0 = other.start % self.period
        for shift in (-self.period, 0, self.period):
            a_lo, a_hi = a0 + shift, a0 + shift + self.length
            if a_lo < b0 + other.length and b0 < a_hi:
                return True
        return False


@dataclass(frozen=True)
class RegisterAllocation:
    """Physical-register assignment for one kernel."""

    ii: int
    kernel_unroll: int
    #: (value, instance) -> physical register id
    assignment: dict[tuple[str, int], int]
    #: per-value copy counts
    copies: dict[str, int]
    n_registers: int

    def registers_of(self, value: str) -> list[int]:
        return [preg for (name, _q), preg in sorted(self.assignment.items())
                if name == value]


def allocate_registers(schedule: Schedule) -> RegisterAllocation:
    """Colour the kernel's rotating lifetimes onto physical registers."""
    ii = schedule.ii
    ddg = schedule.ddg

    lifetimes: dict[str, int] = {}
    for e in ddg.edges:
        if not e.is_register_flow:
            continue
        span = schedule.slot(e.dst) + e.distance * ii - schedule.slot(e.src)
        lifetimes[e.src] = max(lifetimes.get(e.src, 0), max(span, 1))
    if not lifetimes:
        return RegisterAllocation(ii=ii, kernel_unroll=1, assignment={},
                                  copies={}, n_registers=0)

    copies = {name: span // ii + 1 for name, span in lifetimes.items()}
    unroll = max(copies.values())
    period = unroll * ii

    # build every instance's cyclic interval in the unrolled kernel
    instances: list[tuple[str, int, _CyclicInterval]] = []
    for name, span in lifetimes.items():
        base = schedule.slot(name)
        for q in range(unroll):
            instances.append((name, q, _CyclicInterval(
                start=(base + q * ii) % period, length=min(span, period),
                period=period)))
    # greedy colouring, longest/earliest first for stable, compact results
    instances.sort(key=lambda t: (-t[2].length, t[2].start, t[0], t[1]))
    registers: list[list[_CyclicInterval]] = []
    assignment: dict[tuple[str, int], int] = {}
    for name, q, interval in instances:
        for preg, occupied in enumerate(registers):
            if not any(interval.overlaps(o) for o in occupied):
                occupied.append(interval)
                assignment[(name, q)] = preg
                break
        else:
            registers.append([interval])
            assignment[(name, q)] = len(registers) - 1

    allocation = RegisterAllocation(
        ii=ii, kernel_unroll=unroll, assignment=assignment,
        copies=copies, n_registers=len(registers))
    _verify(allocation, instances)
    return allocation


def _verify(allocation: RegisterAllocation,
            instances: list[tuple[str, int, _CyclicInterval]]) -> None:
    """No two simultaneously-live instances may share a register."""
    by_reg: dict[int, list[tuple[str, int, _CyclicInterval]]] = {}
    for name, q, interval in instances:
        by_reg.setdefault(allocation.assignment[(name, q)], []).append(
            (name, q, interval))
    for preg, members in by_reg.items():
        for i, (n1, q1, iv1) in enumerate(members):
            for n2, q2, iv2 in members[i + 1:]:
                if iv1.overlaps(iv2):
                    raise SchedulingError(
                        f"register allocation bug: r{preg} holds "
                        f"overlapping lifetimes {n1}#{q1} and {n2}#{q2}")
